//! Backbone link survey: the paper's §7.2 scenario — one sketch per link,
//! flow counts spanning five orders of magnitude, one shared
//! configuration.
//!
//! The point of scale-invariance: an operator dimensions *once* for the
//! whole network (`N = 1.5e6`, 7.2 kbit per link) and gets the same
//! relative accuracy on a 50-flow link as on a 500k-flow link, instead of
//! tuning per-link sampling rates.
//!
//! ```sh
//! cargo run --release --example link_survey
//! ```

use std::sync::Arc;

use sbitmap::core::{DistinctCounter, RateSchedule, SBitmap};
use sbitmap::hash::SplitMix64Hasher;
use sbitmap::stream::BackboneSnapshot;

fn main() {
    let snapshot = BackboneSnapshot::generate(600);
    // One schedule, shared by all 600 sketches (the threshold table is
    // configuration, not per-sketch state).
    let schedule = Arc::new(RateSchedule::from_memory(1_500_000, 7_200).expect("config"));
    println!(
        "shared config: m = 7200 bits/link, C = {:.1}, expected RRMSE = {:.1}%\n",
        schedule.dims().c(),
        schedule.dims().epsilon() * 100.0
    );

    let mut worst: (usize, f64) = (0, 0.0);
    let mut by_decade: Vec<(u64, Vec<f64>)> = vec![
        (100, vec![]),
        (10_000, vec![]),
        (1_000_000, vec![]),
        (u64::MAX, vec![]),
    ];
    for link in 0..snapshot.counts().len() {
        let truth = snapshot.counts()[link];
        if truth < 10 {
            continue; // the paper drops links with under 10 flows
        }
        let mut sketch =
            SBitmap::with_shared_schedule(schedule.clone(), SplitMix64Hasher::new(link as u64));
        for flow in snapshot.link_stream(link) {
            sketch.insert_u64(flow);
        }
        let rel = sketch.estimate() / truth as f64 - 1.0;
        if rel.abs() > worst.1.abs() {
            worst = (link, rel);
        }
        let bucket = by_decade
            .iter_mut()
            .find(|(cap, _)| truth <= *cap)
            .expect("decade bucket");
        bucket.1.push(rel);
    }

    println!("scale         links  RRMSE");
    let labels = ["n <= 100", "n <= 10k", "n <= 1M", "n > 1M"];
    for ((_, errs), label) in by_decade.iter().zip(labels) {
        if errs.is_empty() {
            continue;
        }
        let rrmse = (errs.iter().map(|e| e * e).sum::<f64>() / errs.len() as f64).sqrt();
        println!("{label:<12}  {:>5}  {:>5.2}%", errs.len(), rrmse * 100.0);
    }
    println!(
        "\nworst link: #{} with {:+.1}% (count {})",
        worst.0,
        worst.1 * 100.0,
        snapshot.counts()[worst.0]
    );
    println!(
        "total sketch memory for the whole survey: {:.1} KiB",
        600.0 * 7200.0 / 8192.0
    );
}
