//! Shootout: every sketch in the workspace on the same Zipf-duplicated
//! stream with the same memory budget.
//!
//! ```sh
//! cargo run --release --example sketch_shootout
//! ```

use sbitmap::baselines::{
    AdaptiveSampling, ExactCounter, FmSketch, HyperLogLog, KMinValues, LinearCounting, LogLog,
    MrBitmap, VirtualBitmap,
};
use sbitmap::core::{DistinctCounter, SBitmap};
use sbitmap::stream::zipf_stream;

fn main() {
    const N_MAX: u64 = 1_000_000;
    const M: usize = 8_000; // bits for every sketch
    const SEED: u64 = 99;

    // 2M packets from up to 300k flows, Zipf(1.05)-skewed: a few elephant
    // flows dominate, most flows appear once or twice.
    let (packets, truth) = zipf_stream(SEED, 300_000, 2_000_000, 1.05);
    println!(
        "stream: {} packets, {} distinct flows (Zipf 1.05)\n",
        packets.len(),
        truth
    );

    let mut sketches: Vec<Box<dyn DistinctCounter>> = vec![
        Box::new(SBitmap::with_memory(N_MAX, M, SEED).unwrap()),
        Box::new(LinearCounting::new(M, SEED).unwrap()),
        Box::new(VirtualBitmap::for_cardinality(M, N_MAX, SEED).unwrap()),
        Box::new(MrBitmap::with_memory(M, N_MAX, SEED).unwrap()),
        Box::new(FmSketch::with_memory(M, SEED).unwrap()),
        Box::new(LogLog::with_memory(M, N_MAX, SEED).unwrap()),
        Box::new(HyperLogLog::with_memory(M, N_MAX, SEED).unwrap()),
        Box::new(AdaptiveSampling::with_memory(M, SEED).unwrap()),
        Box::new(KMinValues::with_memory(M, SEED).unwrap()),
        Box::new(ExactCounter::new(SEED)),
    ];

    println!("sketch             bits      estimate   rel err   ns/item");
    for sketch in &mut sketches {
        let start = std::time::Instant::now();
        for &p in &packets {
            sketch.insert_u64(p);
        }
        let elapsed = start.elapsed().as_nanos() as f64 / packets.len() as f64;
        let est = sketch.estimate();
        let rel = est / truth as f64 - 1.0;
        println!(
            "{:<17} {:>6}  {:>12.0}  {:>+7.2}%  {:>8.1}",
            sketch.name(),
            sketch.memory_bits(),
            est,
            rel * 100.0,
            elapsed
        );
    }
    println!("\n(the exact counter's 'bits' grow with the stream — the cost sketches avoid)");
}
