//! Event reports with Gibbons' distinct sampling (paper §2.4): beyond
//! the plain distinct count, estimate *how many distinct flows match a
//! multiplicity predicate* — e.g. singleton flows (one packet ever), the
//! classic port-scan signature, vs heavy flows.
//!
//! This is the query class the S-bitmap gives up in exchange for its
//! memory advantage; the example shows both sketches side by side on the
//! same stream so the trade-off is concrete.
//!
//! ```sh
//! cargo run --release --example event_reports
//! ```

use sbitmap::baselines::DistinctSampling;
use sbitmap::core::{DistinctCounter, SBitmap};
use sbitmap::hash::rng::{Rng, Xoshiro256StarStar};

fn main() {
    let mut rng = Xoshiro256StarStar::new(7);

    // Build a stream: 60k "normal" flows with 2-50 packets each, plus a
    // scanner sending exactly one packet to each of 15k distinct targets.
    let mut packets: Vec<u64> = Vec::new();
    for flow in 0..60_000u64 {
        let count = 2 + rng.next_below(49);
        for _ in 0..count {
            packets.push(flow);
        }
    }
    for scan in 0..15_000u64 {
        packets.push(0xdead_0000_0000 + scan);
    }
    rng.shuffle(&mut packets);

    let truth_distinct = 75_000.0;
    let truth_singletons = 15_000.0;

    // Same memory for both sketches.
    let m_bits = 32_768;
    let mut sbitmap = SBitmap::with_memory(1_000_000, m_bits, 1).expect("config");
    let mut gibbons = DistinctSampling::with_memory(m_bits, 1).expect("config");
    for &p in &packets {
        sbitmap.insert_u64(p);
        gibbons.insert_u64(p);
    }

    println!(
        "stream: {} packets, {truth_distinct} distinct flows, {truth_singletons} singletons\n",
        packets.len()
    );
    println!(
        "S-bitmap          : distinct = {:>8.0}  ({:+.1}%)   [no multiplicity queries]",
        sbitmap.estimate(),
        (sbitmap.estimate() / truth_distinct - 1.0) * 100.0
    );
    println!(
        "distinct sampling : distinct = {:>8.0}  ({:+.1}%)",
        gibbons.estimate(),
        (gibbons.estimate() / truth_distinct - 1.0) * 100.0
    );
    let singles = gibbons.singletons();
    println!(
        "                    singletons = {singles:>6.0}  ({:+.1}%)   <- scan detector",
        (singles / truth_singletons - 1.0) * 100.0
    );
    let heavy = gibbons.estimate_where(|c| c >= 10);
    println!("                    flows with >= 10 packets = {heavy:.0}");
    println!(
        "\nscan alarm: {:.0}% of distinct flows are singletons (normal traffic baseline ~0%)",
        100.0 * singles / gibbons.estimate()
    );
}
