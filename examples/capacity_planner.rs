//! Capacity planner: given a cardinality range `N` and target RRMSE,
//! print the memory each sketch family needs (the paper's Table 2 / Fig 3
//! decision, as a tool).
//!
//! ```sh
//! cargo run --release --example capacity_planner -- 1000000 0.02
//! ```

use sbitmap::baselines::memory_model;
use sbitmap::core::Dimensioning;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_max: u64 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let epsilon: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0.02);

    println!(
        "capacity plan for N = {n_max}, target RRMSE = {:.1}%\n",
        epsilon * 100.0
    );

    let dims = Dimensioning::from_error(n_max, epsilon).expect("valid target");
    let sb = dims.m() as f64;
    let hll = memory_model::hyperloglog_bits(n_max, epsilon);
    let ll = memory_model::loglog_bits(n_max, epsilon);
    let fm = memory_model::fm_bits(epsilon);

    println!("method        bits      vs S-bitmap");
    for (name, bits) in [
        ("S-bitmap", sb),
        ("HyperLogLog", hll),
        ("LogLog", ll),
        ("FM/PCSA", fm),
    ] {
        println!("{name:<12}  {bits:>8.0}  {:>6.2}x", bits / sb);
    }

    println!(
        "\nS-bitmap details: C = {:.1}, b_max = {}, fill at N = {} bits",
        dims.c(),
        dims.b_max(),
        dims.b_max()
    );
    let crossover = sbitmap::core::theory::hll_crossover_epsilon(n_max);
    println!(
        "asymptotic crossover at N = {n_max}: S-bitmap wins for eps below ~{:.2}%",
        crossover * 100.0
    );
    if epsilon < crossover {
        println!("=> your target is in the S-bitmap's regime");
    } else {
        println!("=> your target favours HyperLogLog (coarse accuracy, huge range)");
    }
}
