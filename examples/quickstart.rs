//! Quickstart: count distinct items in a duplicate-heavy stream with a
//! few kilobits of memory.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sbitmap::{DistinctCounter, SBitmap};

fn main() {
    // We expect at most a million distinct flows and want ~2% error.
    let n_max = 1_000_000;
    let target_rrmse = 0.02;
    let mut sketch =
        SBitmap::with_error(n_max, target_rrmse, /* seed */ 42).expect("valid configuration");

    println!(
        "configured S-bitmap: m = {} bits ({:.1} KiB), C = {:.1}, theoretical RRMSE = {:.2}%",
        sketch.memory_bits(),
        sketch.memory_bits() as f64 / 8192.0,
        sketch.dims().c(),
        sketch.theoretical_rrmse() * 100.0
    );

    // A stream of 200k "packets" from 50k distinct "flows": every flow is
    // seen four times, in interleaved order. Duplicates are filtered by
    // the sketch's design (monotone sampling rates), not by storage.
    let distinct = 50_000u64;
    for round in 0..4 {
        for flow_id in 0..distinct {
            // Byte-string items work too: sketch.insert_bytes(b"...").
            sketch.insert_u64(flow_id);
        }
        println!(
            "after round {}: estimate = {:.0} (truth {}), bits set = {}",
            round + 1,
            sketch.estimate(),
            distinct,
            sketch.fill()
        );
    }

    let err = sketch.estimate() / distinct as f64 - 1.0;
    println!("final relative error: {:+.2}%", err * 100.0);
    assert!(err.abs() < 0.10, "estimate should be within a few sigma");
}
