//! Worm-outbreak monitoring: the paper's §7.1 scenario as an application.
//!
//! A network operator watches per-minute distinct flow counts on a
//! peering link; a sudden jump in flows is the signature of worm
//! scanning (the paper's motivating example from Bu et al. 2006). One
//! 8-kbit S-bitmap per minute — managed by [`RotatingCounter`] — gives
//! ≈ 2.2% accuracy up to a million flows, accurate enough to alarm on
//! genuine multiples.
//!
//! ```sh
//! cargo run --release --example worm_monitor
//! ```

use sbitmap::core::{DistinctCounter, RotatingCounter, SBitmap};
use sbitmap::stream::{WormLink, WormTrace};

fn main() {
    let trace = WormTrace::generate(WormLink::Link1, 20030125);
    let sketch = SBitmap::with_memory(1_000_000, 8_000, 7).expect("paper config");
    // Keep a 15-minute history; its median is the alarm baseline.
    let mut monitor = RotatingCounter::new(sketch, 15);

    let mut alarms = 0usize;
    println!("minute  estimate  baseline  status");
    for minute in 0..WormTrace::MINUTES {
        for flow in trace.minute_stream(minute) {
            monitor.insert_u64(flow);
        }
        let estimate = monitor.current_estimate();
        let baseline = monitor.baseline().unwrap_or(estimate);
        if estimate > 3.0 * baseline {
            alarms += 1;
            println!(
                "{minute:>6}  {estimate:>8.0}  {baseline:>8.0}  ALARM: flow count jumped {:.1}x",
                estimate / baseline
            );
        } else if minute % 60 == 0 {
            println!("{minute:>6}  {estimate:>8.0}  {baseline:>8.0}  ok");
        }
        monitor.rotate();
    }
    println!(
        "\n{alarms} alarm minutes over {} (bursty scanners in the trace)",
        WormTrace::MINUTES
    );
    println!(
        "sketch memory: {} bits vs exact counting at ~64 bits/flow x ~40k flows/min",
        monitor.counter().memory_bits()
    );
}
