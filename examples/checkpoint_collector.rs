//! Checkpoint shipping: measurement nodes serialize their per-link
//! S-bitmaps with the dependency-free binary codec; a collector restores
//! them and reports estimates with confidence intervals.
//!
//! The checkpoint for the paper's `m = 8000` configuration is ~1 KiB —
//! the whole point of sketching: the collector receives kilobytes, not
//! the flow tables.
//!
//! ```sh
//! cargo run --release --example checkpoint_collector
//! ```

use sbitmap::core::codec;
use sbitmap::core::{DistinctCounter, SBitmap};
use sbitmap::stream::BackboneSnapshot;

fn main() {
    let snapshot = BackboneSnapshot::with_links(8, 42);

    // --- measurement nodes: one sketch per link, then encode ---
    let mut wire: Vec<(usize, Vec<u8>)> = Vec::new();
    for link in 0..snapshot.counts().len() {
        let mut sketch = SBitmap::with_memory(1_000_000, 8_000, link as u64).expect("config");
        for flow in snapshot.link_stream(link) {
            sketch.insert_u64(flow);
        }
        let bytes = codec::encode(&sketch);
        wire.push((link, bytes));
    }
    let total_bytes: usize = wire.iter().map(|(_, b)| b.len()).sum();
    println!(
        "shipped {} checkpoints, {} bytes total ({} bytes each)\n",
        wire.len(),
        total_bytes,
        wire[0].1.len()
    );

    // --- collector: decode, estimate, attach 95% intervals ---
    println!("link   truth   estimate   95% interval        covered");
    let mut covered = 0;
    for (link, bytes) in &wire {
        let sketch: SBitmap = codec::decode(bytes).expect("valid checkpoint");
        let est = sketch.estimate_with_ci(0.95);
        let truth = snapshot.counts()[*link] as f64;
        let hit = est.lo <= truth && truth <= est.hi;
        covered += usize::from(hit);
        println!(
            "{link:>4}  {truth:>6.0}  {:>9.0}   [{:>8.0}, {:>8.0}]   {}",
            est.value,
            est.lo,
            est.hi,
            if hit { "yes" } else { "NO" }
        );
    }
    println!(
        "\n{covered}/{} links covered by their 95% intervals",
        wire.len()
    );

    // Corruption in transit is detected, not silently mis-decoded.
    let mut tampered = wire[0].1.clone();
    tampered[100] ^= 0xff;
    match codec::decode::<sbitmap::hash::SplitMix64Hasher>(&tampered) {
        Err(e) => println!("tampered checkpoint rejected: {e}"),
        Ok(_) => unreachable!("corruption must not decode"),
    }
}
