//! Runtime-dispatched word kernels: the vectorized inner loops every
//! word-at-a-time bitmap operation in the workspace runs on.
//!
//! The rest of the crate (and the fleet/window layers above it) express
//! their hot paths as operations over `&[u64]` word slices: popcount a
//! region, OR one region into another and report the newly set bits, or
//! accumulate an OR *and* the running popcount in one pass (the fused
//! window-query kernel). This module provides each of those as a pair of
//! bit-identical implementations —
//!
//! * a **scalar** loop (`u64` ops only, every platform), and
//! * an **AVX2** loop (x86-64, 4 words per vector, nibble-LUT popcount)
//!
//! — behind a function-pointer table selected **once per process**:
//! [`WordKernels::dispatched`] probes `is_x86_feature_detected!("avx2")`
//! the first time any kernel runs and caches the result, so steady-state
//! calls are one indirect call with zero per-call feature checks.
//!
//! Setting the environment variable `SBITMAP_FORCE_SCALAR=1` (any value
//! other than `0`/empty) before the first kernel call pins the dispatch
//! to the scalar table — that is how CI exercises the scalar path on
//! AVX2 hosts, and how a misbehaving host can be triaged. The scalar
//! table also stays reachable directly via [`WordKernels::scalar`], so
//! differential tests can compare the two paths *within* one process.
//!
//! Every kernel is a pure function of its input words; the AVX2 and
//! scalar variants are locked bit-identical (same outputs, same counts)
//! by the property tests in this module and the workspace-level
//! `tests/kernel_parity.rs` suite. Checkpoint bytes therefore cannot
//! depend on which path ran.

use std::sync::OnceLock;

/// The word-kernel table: one entry per primitive, all entries from the
/// same implementation family (never a mix).
#[derive(Debug)]
pub struct WordKernels {
    /// `"avx2"` or `"scalar"` — recorded in every `BENCH_*.json` header.
    name: &'static str,
    popcount: fn(&[u64]) -> usize,
    or_into: fn(&mut [u64], &[u64]),
    union_or_count: fn(&mut [u64], &[u64]) -> usize,
    or_accumulate_popcount: fn(&mut [u64], &[u64]) -> usize,
    or_gather_popcount: fn(&mut [u64], &[&[u64]], bool) -> usize,
}

static SCALAR: WordKernels = WordKernels {
    name: "scalar",
    popcount: scalar::popcount,
    or_into: scalar::or_into,
    union_or_count: scalar::union_or_count,
    or_accumulate_popcount: scalar::or_accumulate_popcount,
    or_gather_popcount: scalar::or_gather_popcount,
};

#[cfg(target_arch = "x86_64")]
static AVX2: WordKernels = WordKernels {
    name: "avx2",
    popcount: avx2::popcount,
    or_into: avx2::or_into,
    union_or_count: avx2::union_or_count,
    or_accumulate_popcount: avx2::or_accumulate_popcount,
    or_gather_popcount: avx2::or_gather_popcount,
};

/// `true` when `SBITMAP_FORCE_SCALAR` is set to anything but `0`/empty.
pub(crate) fn force_scalar() -> bool {
    std::env::var_os("SBITMAP_FORCE_SCALAR").is_some_and(|v| !v.is_empty() && v != "0")
}

impl WordKernels {
    /// The table the process dispatched to: AVX2 when the CPU has it and
    /// `SBITMAP_FORCE_SCALAR` is unset, scalar otherwise. Detection runs
    /// once; every later call returns the cached table.
    pub fn dispatched() -> &'static WordKernels {
        static TABLE: OnceLock<&'static WordKernels> = OnceLock::new();
        TABLE.get_or_init(|| {
            #[cfg(target_arch = "x86_64")]
            if !force_scalar() && std::arch::is_x86_feature_detected!("avx2") {
                return &AVX2;
            }
            &SCALAR
        })
    }

    /// The scalar table, always available — the reference side of every
    /// differential test.
    pub fn scalar() -> &'static WordKernels {
        &SCALAR
    }

    /// The implementation family: `"avx2"` or `"scalar"`.
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of one bits across `words`.
    #[inline]
    pub fn popcount(&self, words: &[u64]) -> usize {
        (self.popcount)(words)
    }

    /// `dst |= src`, word by word.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    #[inline]
    pub fn or_into(&self, dst: &mut [u64], src: &[u64]) {
        assert_eq!(dst.len(), src.len(), "or_into: slice lengths differ");
        (self.or_into)(dst, src);
    }

    /// `dst |= src`, returning how many bits the OR newly set — the
    /// increment a mergeable sketch's fill counter needs, without a
    /// second scan.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    #[inline]
    pub fn union_or_count(&self, dst: &mut [u64], src: &[u64]) -> usize {
        assert_eq!(dst.len(), src.len(), "union_or_count: slice lengths differ");
        (self.union_or_count)(dst, src)
    }

    /// The fused window-query kernel: `acc |= src` and the popcount of
    /// `acc` *after* the OR, both in one pass. A W-epoch union that ends
    /// with this call gets its final fill with zero extra scans.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    #[inline]
    pub fn or_accumulate_popcount(&self, acc: &mut [u64], src: &[u64]) -> usize {
        assert_eq!(
            acc.len(),
            src.len(),
            "or_accumulate_popcount: slice lengths differ"
        );
        (self.or_accumulate_popcount)(acc, src)
    }

    /// The multi-source fused kernel behind the sliding-window query:
    /// OR every slice of `srcs` into `acc` — overwriting `acc` when
    /// `overwrite` is set, accumulating otherwise — and return the
    /// popcount of `acc` after, all in **one pass over the words**. A
    /// W-epoch union becomes `W` source reads, one write and the final
    /// popcount per word, instead of `W` separate read-modify-write
    /// passes plus a popcount sweep.
    ///
    /// # Panics
    ///
    /// Panics if any source length differs from `acc`, or if `srcs` is
    /// empty while `overwrite` is set (there would be nothing to define
    /// `acc` from).
    #[inline]
    pub fn or_gather_popcount(&self, acc: &mut [u64], srcs: &[&[u64]], overwrite: bool) -> usize {
        for s in srcs {
            assert_eq!(
                acc.len(),
                s.len(),
                "or_gather_popcount: slice lengths differ"
            );
        }
        assert!(
            !(overwrite && srcs.is_empty()),
            "or_gather_popcount: overwrite needs at least one source"
        );
        (self.or_gather_popcount)(acc, srcs, overwrite)
    }
}

/// [`WordKernels::popcount`] on the dispatched table.
#[inline]
pub fn popcount_slice(words: &[u64]) -> usize {
    WordKernels::dispatched().popcount(words)
}

/// [`WordKernels::or_into`] on the dispatched table.
#[inline]
pub fn or_into(dst: &mut [u64], src: &[u64]) {
    WordKernels::dispatched().or_into(dst, src);
}

/// [`WordKernels::union_or_count`] on the dispatched table.
#[inline]
pub fn union_or_count(dst: &mut [u64], src: &[u64]) -> usize {
    WordKernels::dispatched().union_or_count(dst, src)
}

/// [`WordKernels::or_accumulate_popcount`] on the dispatched table.
#[inline]
pub fn or_accumulate_popcount(acc: &mut [u64], src: &[u64]) -> usize {
    WordKernels::dispatched().or_accumulate_popcount(acc, src)
}

/// [`WordKernels::or_gather_popcount`] on the dispatched table.
#[inline]
pub fn or_gather_popcount(acc: &mut [u64], srcs: &[&[u64]], overwrite: bool) -> usize {
    WordKernels::dispatched().or_gather_popcount(acc, srcs, overwrite)
}

/// The dispatched implementation family: `"avx2"` or `"scalar"`.
/// Benchmark reports record this next to `available_parallelism`.
#[inline]
pub fn active_path() -> &'static str {
    WordKernels::dispatched().name()
}

mod scalar {
    //! The portable loops. On x86-64 these compile to `popcnt` and
    //! SSE2-width ORs; the point of the AVX2 table is the 256-bit width
    //! and the single-pass fusion, not beating these per instruction.

    pub(super) fn popcount(words: &[u64]) -> usize {
        words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub(super) fn or_into(dst: &mut [u64], src: &[u64]) {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d |= s;
        }
    }

    pub(super) fn union_or_count(dst: &mut [u64], src: &[u64]) -> usize {
        let mut newly = 0usize;
        for (d, &s) in dst.iter_mut().zip(src) {
            let merged = *d | s;
            newly += (merged ^ *d).count_ones() as usize;
            *d = merged;
        }
        newly
    }

    pub(super) fn or_accumulate_popcount(acc: &mut [u64], src: &[u64]) -> usize {
        let mut pop = 0usize;
        for (a, &s) in acc.iter_mut().zip(src) {
            let merged = *a | s;
            pop += merged.count_ones() as usize;
            *a = merged;
        }
        pop
    }

    pub(super) fn or_gather_popcount(
        acc: &mut [u64],
        mut srcs: &[&[u64]],
        mut overwrite: bool,
    ) -> usize {
        // Fixed two-source passes, then a fused final pass: every loop
        // here is a plain slice zip the autovectorizer turns into full
        // vector ORs — a dynamic inner loop over `srcs` per word would
        // defeat it and lose to the naive pass-per-source shape.
        while srcs.len() > 2 {
            let (a, b) = (srcs[0], srcs[1]);
            if overwrite {
                for ((d, &x), &y) in acc.iter_mut().zip(a).zip(b) {
                    *d = x | y;
                }
                overwrite = false;
            } else {
                for ((d, &x), &y) in acc.iter_mut().zip(a).zip(b) {
                    *d |= x | y;
                }
            }
            srcs = &srcs[2..];
        }
        let mut pop = 0usize;
        match (srcs, overwrite) {
            ([a, b], true) => {
                for ((d, &x), &y) in acc.iter_mut().zip(*a).zip(*b) {
                    let v = x | y;
                    *d = v;
                    pop += v.count_ones() as usize;
                }
            }
            ([a, b], false) => {
                for ((d, &x), &y) in acc.iter_mut().zip(*a).zip(*b) {
                    let v = *d | x | y;
                    *d = v;
                    pop += v.count_ones() as usize;
                }
            }
            ([a], true) => {
                for (d, &x) in acc.iter_mut().zip(*a) {
                    *d = x;
                    pop += x.count_ones() as usize;
                }
            }
            ([a], false) => pop = or_accumulate_popcount(acc, a),
            // Empty with overwrite is rejected by the dispatch wrapper;
            // empty without overwrite is a pure popcount of `acc`.
            (_, _) => pop = popcount(acc),
        }
        pop
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! 256-bit variants: 4 words per vector, unaligned loads (arena
    //! regions are word- but not vector-aligned), popcounts via the
    //! nibble-LUT (`vpshufb`) + `vpsadbw` reduction. All `unsafe` in the
    //! crate beyond the prefetch hint lives here; every intrinsic body
    //! is reached only through the safe wrappers below, which are only
    //! installed in the dispatch table after AVX2 detection succeeded.
    #![allow(unsafe_code)]

    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_loadu_si256,
        _mm256_or_si256, _mm256_sad_epu8, _mm256_set1_epi8, _mm256_setr_epi8, _mm256_setzero_si256,
        _mm256_shuffle_epi8, _mm256_srli_epi16, _mm256_storeu_si256, _mm256_xor_si256,
    };

    /// Per-64-bit-lane popcount of `v` (Muła's nibble-LUT algorithm).
    #[inline(always)]
    unsafe fn popcnt_epi64(v: __m256i) -> __m256i {
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        );
        let low = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low);
        let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
        let counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(counts, _mm256_setzero_si256())
    }

    /// Sum the four 64-bit lanes of an accumulator.
    #[inline(always)]
    unsafe fn hsum_epi64(v: __m256i) -> usize {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v);
        (lanes[0] + lanes[1] + lanes[2] + lanes[3]) as usize
    }

    #[target_feature(enable = "avx2")]
    unsafe fn popcount_impl(words: &[u64]) -> usize {
        let mut chunks = words.chunks_exact(4);
        let mut acc = _mm256_setzero_si256();
        for c in &mut chunks {
            let v = _mm256_loadu_si256(c.as_ptr().cast());
            acc = _mm256_add_epi64(acc, popcnt_epi64(v));
        }
        let mut total = hsum_epi64(acc);
        for &w in chunks.remainder() {
            total += w.count_ones() as usize;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    unsafe fn or_into_impl(dst: &mut [u64], src: &[u64]) {
        let mut d_chunks = dst.chunks_exact_mut(4);
        let mut s_chunks = src.chunks_exact(4);
        for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
            let dv = _mm256_loadu_si256(d.as_ptr().cast());
            let sv = _mm256_loadu_si256(s.as_ptr().cast());
            _mm256_storeu_si256(d.as_mut_ptr().cast(), _mm256_or_si256(dv, sv));
        }
        for (d, &s) in d_chunks
            .into_remainder()
            .iter_mut()
            .zip(s_chunks.remainder())
        {
            *d |= s;
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn union_or_count_impl(dst: &mut [u64], src: &[u64]) -> usize {
        let mut d_chunks = dst.chunks_exact_mut(4);
        let mut s_chunks = src.chunks_exact(4);
        let mut acc = _mm256_setzero_si256();
        for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
            let dv = _mm256_loadu_si256(d.as_ptr().cast());
            let sv = _mm256_loadu_si256(s.as_ptr().cast());
            let merged = _mm256_or_si256(dv, sv);
            _mm256_storeu_si256(d.as_mut_ptr().cast(), merged);
            acc = _mm256_add_epi64(acc, popcnt_epi64(_mm256_xor_si256(merged, dv)));
        }
        let mut newly = hsum_epi64(acc);
        for (d, &s) in d_chunks
            .into_remainder()
            .iter_mut()
            .zip(s_chunks.remainder())
        {
            let merged = *d | s;
            newly += (merged ^ *d).count_ones() as usize;
            *d = merged;
        }
        newly
    }

    #[target_feature(enable = "avx2")]
    unsafe fn or_accumulate_popcount_impl(acc: &mut [u64], src: &[u64]) -> usize {
        let mut a_chunks = acc.chunks_exact_mut(4);
        let mut s_chunks = src.chunks_exact(4);
        let mut pops = _mm256_setzero_si256();
        for (a, s) in (&mut a_chunks).zip(&mut s_chunks) {
            let av = _mm256_loadu_si256(a.as_ptr().cast());
            let sv = _mm256_loadu_si256(s.as_ptr().cast());
            let merged = _mm256_or_si256(av, sv);
            _mm256_storeu_si256(a.as_mut_ptr().cast(), merged);
            pops = _mm256_add_epi64(pops, popcnt_epi64(merged));
        }
        let mut pop = hsum_epi64(pops);
        for (a, &s) in a_chunks
            .into_remainder()
            .iter_mut()
            .zip(s_chunks.remainder())
        {
            let merged = *a | s;
            pop += merged.count_ones() as usize;
            *a = merged;
        }
        pop
    }

    // Safe wrappers with the plain `fn` signature the dispatch table
    // needs. SAFETY (all four): these symbols are referenced only by the
    // `AVX2` table, which `WordKernels::dispatched` installs exclusively
    // after `is_x86_feature_detected!("avx2")` returned true, so the
    // target-feature contract of the inner functions holds.

    pub(super) fn popcount(words: &[u64]) -> usize {
        unsafe { popcount_impl(words) }
    }

    pub(super) fn or_into(dst: &mut [u64], src: &[u64]) {
        unsafe { or_into_impl(dst, src) }
    }

    pub(super) fn union_or_count(dst: &mut [u64], src: &[u64]) -> usize {
        unsafe { union_or_count_impl(dst, src) }
    }

    pub(super) fn or_accumulate_popcount(acc: &mut [u64], src: &[u64]) -> usize {
        unsafe { or_accumulate_popcount_impl(acc, src) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn or_gather_popcount_impl(acc: &mut [u64], srcs: &[&[u64]], overwrite: bool) -> usize {
        let n = acc.len();
        let zero = _mm256_setzero_si256();
        let mut pops = zero;
        let mut i = 0usize;
        while i + 4 <= n {
            let mut v = if overwrite {
                zero
            } else {
                _mm256_loadu_si256(acc.as_ptr().add(i).cast())
            };
            for s in srcs {
                // Length equality is asserted by the dispatch wrapper,
                // so `s.as_ptr().add(i)` stays in bounds.
                v = _mm256_or_si256(v, _mm256_loadu_si256(s.as_ptr().add(i).cast()));
            }
            _mm256_storeu_si256(acc.as_mut_ptr().add(i).cast(), v);
            pops = _mm256_add_epi64(pops, popcnt_epi64(v));
            i += 4;
        }
        let mut pop = hsum_epi64(pops);
        for j in i..n {
            let mut v = if overwrite { 0 } else { acc[j] };
            for s in srcs {
                v |= s[j];
            }
            acc[j] = v;
            pop += v.count_ones() as usize;
        }
        pop
    }

    pub(super) fn or_gather_popcount(acc: &mut [u64], srcs: &[&[u64]], overwrite: bool) -> usize {
        unsafe { or_gather_popcount_impl(acc, srcs, overwrite) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic word-slice generator covering the shapes the issue
    /// calls out: empty, single word, vector-width multiples, odd
    /// lengths with tails, all-zeros, all-ones.
    fn cases() -> Vec<(Vec<u64>, Vec<u64>)> {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut out = Vec::new();
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 31, 64, 125, 127, 200] {
            let a: Vec<u64> = (0..len).map(|_| next()).collect();
            let b: Vec<u64> = (0..len).map(|_| next()).collect();
            out.push((a, b));
            out.push((vec![0u64; len], vec![u64::MAX; len]));
            out.push((vec![u64::MAX; len], vec![u64::MAX; len]));
        }
        out
    }

    #[test]
    fn dispatched_and_scalar_are_bit_identical() {
        let d = WordKernels::dispatched();
        let s = WordKernels::scalar();
        for (a, b) in cases() {
            assert_eq!(d.popcount(&a), s.popcount(&a), "popcount len {}", a.len());

            let (mut da, mut sa) = (a.clone(), a.clone());
            d.or_into(&mut da, &b);
            s.or_into(&mut sa, &b);
            assert_eq!(da, sa, "or_into len {}", a.len());

            let (mut da, mut sa) = (a.clone(), a.clone());
            let dn = d.union_or_count(&mut da, &b);
            let sn = s.union_or_count(&mut sa, &b);
            assert_eq!(da, sa, "union_or_count words len {}", a.len());
            assert_eq!(dn, sn, "union_or_count count len {}", a.len());

            let (mut da, mut sa) = (a.clone(), a.clone());
            let dp = d.or_accumulate_popcount(&mut da, &b);
            let sp = s.or_accumulate_popcount(&mut sa, &b);
            assert_eq!(da, sa, "or_accumulate words len {}", a.len());
            assert_eq!(dp, sp, "or_accumulate pop len {}", a.len());

            for overwrite in [true, false] {
                for srcs in [
                    &[&a[..]][..],
                    &[&a[..], &b[..]][..],
                    &[&b[..], &a[..], &b[..]][..],
                ] {
                    let (mut da, mut sa) = (b.clone(), b.clone());
                    let dg = d.or_gather_popcount(&mut da, srcs, overwrite);
                    let sg = s.or_gather_popcount(&mut sa, srcs, overwrite);
                    assert_eq!(
                        (da, dg),
                        (sa, sg),
                        "or_gather len {} srcs {} overwrite {overwrite}",
                        a.len(),
                        srcs.len()
                    );
                }
            }
        }
    }

    #[test]
    fn kernels_agree_with_first_principles() {
        for (a, b) in cases() {
            let k = WordKernels::dispatched();
            let expect_pop: usize = a.iter().map(|w| w.count_ones() as usize).sum();
            assert_eq!(k.popcount(&a), expect_pop);

            let mut merged = a.clone();
            let newly = k.union_or_count(&mut merged, &b);
            let expect: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x | y).collect();
            assert_eq!(merged, expect);
            assert_eq!(newly, k.popcount(&expect) - expect_pop);

            let mut acc = a.clone();
            let pop = k.or_accumulate_popcount(&mut acc, &b);
            assert_eq!(acc, expect);
            assert_eq!(pop, k.popcount(&expect));

            // Gather with overwrite rebuilds the same union from
            // scratch contents that must be ignored; without overwrite
            // it accumulates on top.
            let mut gathered = vec![u64::MAX; a.len()];
            let pop = k.or_gather_popcount(&mut gathered, &[&a, &b], true);
            assert_eq!(gathered, expect);
            assert_eq!(pop, k.popcount(&expect));
            let mut acc2 = a.clone();
            let pop = k.or_gather_popcount(&mut acc2, &[&b], false);
            assert_eq!(acc2, expect);
            assert_eq!(pop, k.popcount(&expect));
            if !a.is_empty() {
                let mut acc3 = a.clone();
                assert_eq!(
                    k.or_gather_popcount(&mut acc3, &[], false),
                    k.popcount(&a),
                    "empty gather is a popcount of the accumulator"
                );
                assert_eq!(acc3, a);
            }
        }
    }

    #[test]
    fn free_functions_route_through_the_dispatched_table() {
        let a = vec![0b1011u64, u64::MAX, 0];
        let b = vec![0b0110u64, 1, 1 << 63];
        assert_eq!(popcount_slice(&a), 3 + 64);
        let mut d = a.clone();
        assert_eq!(union_or_count(&mut d, &b), 2);
        let mut d2 = a.clone();
        or_into(&mut d2, &b);
        assert_eq!(d, d2);
        let mut acc = a;
        assert_eq!(or_accumulate_popcount(&mut acc, &b), 3 + 64 + 2);
        assert_eq!(acc, d);
        assert!(matches!(active_path(), "avx2" | "scalar"));
        assert_eq!(active_path(), WordKernels::dispatched().name());
        assert_eq!(WordKernels::scalar().name(), "scalar");
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_lengths_panic() {
        union_or_count(&mut [0u64; 2], &[0u64; 3]);
    }
}
