//! Fixed-width register file packed into `u64` words.

/// `count` unsigned registers of `width` bits each (1 ≤ width ≤ 32),
/// packed contiguously into `u64` words. Registers may straddle word
/// boundaries; the accessors handle the split.
///
/// This is the storage for the Flajolet–Martin family: LogLog and
/// HyperLogLog keep one `log2 log2 N`-bit register per stochastic-average
/// group (the paper's memory model charges `α = k+1` bits per register for
/// `2^{2^k} ≤ N < 2^{2^{k+1}}`), and FM/PCSA keeps one bit pattern per
/// group.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PackedRegisters {
    words: Box<[u64]>,
    count: usize,
    width: u32,
}

impl PackedRegisters {
    /// Create `count` zeroed registers of `width` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 32.
    pub fn new(count: usize, width: u32) -> Self {
        assert!(
            (1..=32).contains(&width),
            "register width {width} must be in 1..=32"
        );
        let total_bits = count * width as usize;
        Self {
            words: vec![0u64; total_bits.div_ceil(64)].into_boxed_slice(),
            count,
            width,
        }
    }

    /// Number of registers.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` if there are no registers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Register width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Largest storable value, `2^width − 1`.
    #[inline]
    pub fn max_value(&self) -> u32 {
        if self.width == 32 {
            u32::MAX
        } else {
            (1u32 << self.width) - 1
        }
    }

    /// Read register `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> u32 {
        assert!(
            idx < self.count,
            "register {idx} out of range {}",
            self.count
        );
        let bit = idx * self.width as usize;
        let word = bit >> 6;
        let offset = (bit & 63) as u32;
        let mask = u64::from(self.max_value());
        let lo = self.words[word] >> offset;
        let value = if offset + self.width > 64 {
            lo | (self.words[word + 1] << (64 - offset))
        } else {
            lo
        };
        (value & mask) as u32
    }

    /// Write register `idx` (value is truncated to `width` bits — callers
    /// saturate first; see [`PackedRegisters::update_max`]).
    #[inline]
    pub fn set(&mut self, idx: usize, value: u32) {
        assert!(
            idx < self.count,
            "register {idx} out of range {}",
            self.count
        );
        let value = u64::from(value & self.max_value());
        let bit = idx * self.width as usize;
        let word = bit >> 6;
        let offset = (bit & 63) as u32;
        let mask = u64::from(self.max_value());
        self.words[word] &= !(mask << offset);
        self.words[word] |= value << offset;
        if offset + self.width > 64 {
            let spill = self.width - (64 - offset);
            let hi_mask = (1u64 << spill) - 1;
            self.words[word + 1] &= !hi_mask;
            self.words[word + 1] |= value >> (64 - offset);
        }
    }

    /// `reg[idx] = max(reg[idx], value)`, saturating at the register's
    /// capacity. Returns `true` if the register changed. This is the only
    /// update LogLog/HyperLogLog perform.
    #[inline]
    pub fn update_max(&mut self, idx: usize, value: u32) -> bool {
        let clamped = value.min(self.max_value());
        if clamped > self.get(idx) {
            self.set(idx, clamped);
            true
        } else {
            false
        }
    }

    /// Bitwise-or `value` into register `idx` (FM/PCSA's update). Returns
    /// `true` if the register changed.
    #[inline]
    pub fn update_or(&mut self, idx: usize, value: u32) -> bool {
        let old = self.get(idx);
        let new = old | (value & self.max_value());
        if new != old {
            self.set(idx, new);
            true
        } else {
            false
        }
    }

    /// Reset all registers to zero, keeping the allocation.
    pub fn reset(&mut self) {
        self.words.fill(0);
    }

    /// Iterator over register values.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.count).map(move |i| self.get(i))
    }

    /// Payload size in bits (`count × width`), the paper's accounting.
    #[inline]
    pub fn memory_bits(&self) -> usize {
        self.count * self.width as usize
    }

    /// Merge with `other` by taking per-register maxima (the LogLog/HLL
    /// union). Errors if the shapes differ.
    pub fn merge_max(&mut self, other: &Self) -> Result<(), String> {
        if self.count != other.count || self.width != other.width {
            return Err(format!(
                "register shape mismatch: {}x{} vs {}x{}",
                self.count, self.width, other.count, other.width
            ));
        }
        for i in 0..self.count {
            let v = other.get(i);
            self.update_max(i, v);
        }
        Ok(())
    }

    /// Merge with `other` by per-register bitwise or (the FM/PCSA union).
    /// Errors if the shapes differ.
    ///
    /// Bitwise or distributes over the packing — or-ing the backing words
    /// is exactly per-register or, even for registers straddling word
    /// boundaries — so this runs word-level, not register-level.
    pub fn merge_or(&mut self, other: &Self) -> Result<(), String> {
        if self.count != other.count || self.width != other.width {
            return Err(format!(
                "register shape mismatch: {}x{} vs {}x{}",
                self.count, self.width, other.count, other.width
            ));
        }
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
        Ok(())
    }

    /// The packed words backing the register file (for binary
    /// serialization; little-endian register order within each word).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild a register file from its packed words.
    ///
    /// # Errors
    ///
    /// Rejects a width outside `1..=32`, a word count that does not match
    /// `count × width` bits, or set bits beyond the logical length in the
    /// final partial word.
    pub fn from_words(words: Vec<u64>, count: usize, width: u32) -> Result<Self, String> {
        if !(1..=32).contains(&width) {
            return Err(format!("register width {width} must be in 1..=32"));
        }
        let total_bits = count * width as usize;
        if words.len() != total_bits.div_ceil(64) {
            return Err(format!(
                "word count {} does not match {count} registers of {width} bits",
                words.len()
            ));
        }
        if !total_bits.is_multiple_of(64) {
            let tail = words.last().copied().unwrap_or(0);
            if tail >> (total_bits % 64) != 0 {
                return Err("set bits beyond the logical length".into());
            }
        }
        Ok(Self {
            words: words.into_boxed_slice(),
            count,
            width,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        for width in 1..=32u32 {
            let mut r = PackedRegisters::new(77, width);
            let max = r.max_value();
            for i in 0..77 {
                let v = (i as u32).wrapping_mul(0x9e37_79b9) & max;
                r.set(i, v);
            }
            for i in 0..77 {
                let v = (i as u32).wrapping_mul(0x9e37_79b9) & max;
                assert_eq!(r.get(i), v, "width={width} idx={i}");
            }
        }
    }

    #[test]
    fn straddling_word_boundary() {
        // width 5: register 12 spans bits 60..65 — across words.
        let mut r = PackedRegisters::new(16, 5);
        r.set(12, 0b10101);
        assert_eq!(r.get(12), 0b10101);
        // Neighbours untouched.
        assert_eq!(r.get(11), 0);
        assert_eq!(r.get(13), 0);
        // Overwrite with a different pattern clears old bits.
        r.set(12, 0b01010);
        assert_eq!(r.get(12), 0b01010);
    }

    #[test]
    fn set_truncates_to_width() {
        let mut r = PackedRegisters::new(4, 3);
        r.set(0, 0xff);
        assert_eq!(r.get(0), 0b111);
    }

    #[test]
    fn update_max_saturates() {
        let mut r = PackedRegisters::new(4, 4);
        assert!(r.update_max(1, 7));
        assert!(!r.update_max(1, 7), "equal value is not a change");
        assert!(!r.update_max(1, 3), "smaller value is not a change");
        assert!(r.update_max(1, 200), "saturating update still raises");
        assert_eq!(r.get(1), 15);
    }

    #[test]
    fn update_or_accumulates_bits() {
        let mut r = PackedRegisters::new(2, 8);
        assert!(r.update_or(0, 0b0001));
        assert!(r.update_or(0, 0b0100));
        assert!(!r.update_or(0, 0b0101));
        assert_eq!(r.get(0), 0b0101);
    }

    #[test]
    fn merge_max_takes_pointwise_maxima() {
        let mut a = PackedRegisters::new(8, 6);
        let mut b = PackedRegisters::new(8, 6);
        for i in 0..8 {
            a.set(i, i as u32);
            b.set(i, 7 - i as u32);
        }
        a.merge_max(&b).unwrap();
        for i in 0..8u32 {
            assert_eq!(a.get(i as usize), i.max(7 - i));
        }
    }

    #[test]
    fn merge_shape_mismatch_errors() {
        let mut a = PackedRegisters::new(8, 6);
        let b = PackedRegisters::new(8, 5);
        assert!(a.merge_max(&b).is_err());
        let c = PackedRegisters::new(9, 6);
        assert!(a.merge_or(&c).is_err());
    }

    #[test]
    fn word_level_merge_or_matches_register_level() {
        // Width 5 straddles word boundaries: the word-level or must still
        // equal per-register or.
        let mut a = PackedRegisters::new(29, 5);
        let mut b = PackedRegisters::new(29, 5);
        for i in 0..29 {
            a.set(i, (i as u32).wrapping_mul(7) & 0b11111);
            b.set(i, (i as u32).wrapping_mul(13) & 0b11111);
        }
        let mut expect = a.clone();
        for i in 0..29 {
            let v = b.get(i);
            expect.update_or(i, v);
        }
        a.merge_or(&b).unwrap();
        assert_eq!(a, expect);
    }

    #[test]
    fn words_round_trip() {
        let mut r = PackedRegisters::new(29, 5);
        for i in 0..29 {
            r.set(i, (i as u32) & 0b11111);
        }
        let rebuilt = PackedRegisters::from_words(r.words().to_vec(), r.len(), r.width()).unwrap();
        assert_eq!(rebuilt, r);
    }

    #[test]
    fn from_words_rejects_bad_shapes() {
        assert!(
            PackedRegisters::from_words(vec![0; 2], 29, 5).is_err(),
            "wrong word count"
        );
        assert!(
            PackedRegisters::from_words(vec![0; 3], 29, 0).is_err(),
            "zero width"
        );
        // 29 * 5 = 145 bits: bits above 145 % 64 = 17 in the last word
        // are out of range.
        assert!(PackedRegisters::from_words(vec![0, 0, 1 << 20], 29, 5).is_err());
        assert!(PackedRegisters::from_words(vec![0, 0, (1 << 17) - 1], 29, 5).is_ok());
    }

    #[test]
    fn memory_bits_exact() {
        assert_eq!(PackedRegisters::new(1024, 5).memory_bits(), 5120);
    }

    #[test]
    fn width_32_full_range() {
        let mut r = PackedRegisters::new(3, 32);
        r.set(1, u32::MAX);
        assert_eq!(r.get(1), u32::MAX);
        assert_eq!(r.get(0), 0);
        assert_eq!(r.get(2), 0);
    }

    #[test]
    #[should_panic(expected = "register width")]
    fn zero_width_panics() {
        PackedRegisters::new(4, 0);
    }

    #[test]
    fn reset_zeroes() {
        let mut r = PackedRegisters::new(100, 7);
        for i in 0..100 {
            r.set(i, 99);
        }
        r.reset();
        assert!(r.iter().all(|v| v == 0));
    }
}
