//! The [`BitStore`] abstraction every bitmap backend implements.

/// Common interface over bit-vector backends.
///
/// Three backends ship in this crate:
///
/// * [`crate::Bitmap`] — plain `u64` words behind `&mut self` access. The
///   fastest option for single-threaded ingestion and the only one that
///   can be snapshotted for free; pick it unless you need shared-memory
///   concurrency.
/// * [`crate::AtomicBitmap`] — `AtomicU64` words updated with relaxed
///   `fetch_or`. Pick it when several threads must ingest into *one*
///   sketch concurrently (the fleet-scale scenario of the paper's §7.2
///   where a shared schedule serves hundreds of links): `set` takes
///   `&self`, so the bitmap can sit behind an `Arc` with no lock. The
///   price is an atomic RMW per *newly set* bit and an atomic load per
///   probe — on contended cache lines that is the hardware-level cost of
///   sharing, not an artifact of this crate.
/// * [`crate::SliceBitmap`] — the same vector over a *borrowed*
///   `&mut [u64]` region. Pick it when the words live in somebody else's
///   allocation — one stride of an arena packing thousands of
///   identically-sized bitmaps contiguously. It cannot allocate, so it
///   implements only [`BitStore`], not [`OwnedBitStore`].
///
/// The trait exposes the mutable single-owner view (`set` takes
/// `&mut self`); the atomic backend additionally offers lock-free
/// `&self` setters as inherent methods, which is what concurrent callers
/// use. Generic code (property tests, differential harnesses, the
/// benches) goes through this trait so every backend sees the same
/// workload.
pub trait BitStore {
    /// Length in bits (the paper's `m`).
    fn len(&self) -> usize;

    /// `true` if the store has zero length.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read bit `idx`. Panics if `idx >= len`.
    fn get(&self, idx: usize) -> bool;

    /// Set bit `idx`, returning `true` if it was previously zero.
    /// Panics if `idx >= len`.
    fn set(&mut self, idx: usize) -> bool;

    /// Number of one bits.
    fn count_ones(&self) -> usize;

    /// Reset every bit to zero, keeping the allocation.
    fn reset(&mut self);

    /// Payload size in bits, as the paper accounts memory.
    fn memory_bits(&self) -> usize {
        self.len()
    }
}

/// Backends that own their words and can therefore be allocated from a
/// bare length. Borrowed views ([`crate::SliceBitmap`]) implement
/// [`BitStore`] but not this.
pub trait OwnedBitStore: BitStore + Sized {
    /// Create an all-zero store of `len` bits.
    fn with_len(len: usize) -> Self;
}
