//! Lock-free bitmap over `AtomicU64` words.
//!
//! Modeled on the word-parallel atomic-bitmap idiom of allocator bitmaps
//! (CAS-free `fetch_or` per set, relaxed loads per probe): every bit
//! operation touches exactly one word, so no two bits ever need a
//! combined atomic update and `Ordering::Relaxed` suffices — the sketch
//! invariants are per-bit, and cross-thread publication of a finished
//! bitmap happens through whatever synchronization ends the ingest (a
//! `join`, a channel, an `Arc` drop), all of which are release/acquire
//! edges already.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::store::BitStore;
use crate::Bitmap;

/// A fixed-length bit vector packed into `AtomicU64` words, shareable
/// across threads by reference.
///
/// Semantics match [`Bitmap`] — bits start at zero, [`AtomicBitmap::set`]
/// flips a bit on and reports whether this call changed it — but `set`
/// takes `&self`, so concurrent ingestion needs no lock. When two threads
/// race to set the same bit, the `fetch_or` guarantees exactly one of
/// them observes the zero→one transition; that is the property the
/// S-bitmap fill counter relies on.
#[derive(Debug)]
pub struct AtomicBitmap {
    words: Box<[AtomicU64]>,
    len: usize,
}

impl AtomicBitmap {
    /// Create an all-zero atomic bitmap of `len` bits.
    pub fn new(len: usize) -> Self {
        Self {
            words: (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect(),
            len,
        }
    }

    /// Length in bits (the paper's `m`).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the bitmap has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `idx` with a relaxed load.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        (self.words[idx >> 6].load(Ordering::Relaxed) >> (idx & 63)) & 1 == 1
    }

    /// Read bit `idx` without the range assert (hot-path variant).
    ///
    /// The caller guarantees `idx < len`; violations are a `debug_assert!`
    /// in debug builds and an unspecified result or panic (never UB) in
    /// release builds.
    #[inline]
    pub fn get_unchecked(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        (self.words[idx >> 6].load(Ordering::Relaxed) >> (idx & 63)) & 1 == 1
    }

    /// Set bit `idx` through `fetch_or`, returning `true` iff *this call*
    /// flipped it from zero — under a concurrent race exactly one caller
    /// gets `true`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len`.
    #[inline]
    pub fn set(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let mask = 1u64 << (idx & 63);
        self.words[idx >> 6].fetch_or(mask, Ordering::Relaxed) & mask == 0
    }

    /// [`AtomicBitmap::set`] without the range assert (hot-path variant).
    ///
    /// The caller guarantees `idx < len`; violations are a `debug_assert!`
    /// in debug builds and an unspecified result or panic (never UB) in
    /// release builds.
    #[inline]
    pub fn set_unchecked(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let mask = 1u64 << (idx & 63);
        self.words[idx >> 6].fetch_or(mask, Ordering::Relaxed) & mask == 0
    }

    /// Prefetch the cache line holding bit `idx` into L1 (x86-64; no-op
    /// elsewhere). Out-of-range indices are ignored.
    #[inline]
    pub fn prefetch(&self, idx: usize) {
        crate::prefetch_word(&self.words, idx >> 6);
    }

    /// Number of one bits, by relaxed word loads. Exact once all writers
    /// have synchronized with this thread; during a concurrent ingest it
    /// is a live lower-bound snapshot. Loads land in a stack buffer in
    /// cache-line-sized runs so the popcount itself runs on the
    /// dispatched [`crate::kernels`] path.
    pub fn count_ones(&self) -> usize {
        let mut buf = [0u64; 64];
        let mut total = 0usize;
        for chunk in self.words.chunks(64) {
            for (b, w) in buf.iter_mut().zip(chunk) {
                *b = w.load(Ordering::Relaxed);
            }
            total += crate::kernels::popcount_slice(&buf[..chunk.len()]);
        }
        total
    }

    /// Number of zero bits (`m − |V|`).
    #[inline]
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Reset every bit to zero through relaxed stores. The caller must
    /// ensure no concurrent writers, or the reset is not a clean point in
    /// time.
    pub fn reset(&self) {
        for w in self.words.iter() {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Payload size in bits, as the paper accounts memory.
    #[inline]
    pub fn memory_bits(&self) -> usize {
        self.len
    }

    /// Snapshot into a plain [`Bitmap`] (relaxed loads; exact once
    /// writers have synchronized).
    pub fn to_bitmap(&self) -> Bitmap {
        let words: Vec<u64> = self
            .words
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect();
        // Mask padding bits defensively; set paths never write them, but
        // `from_words` verifies and we want the invariant loud.
        Bitmap::from_words(words, self.len).expect("atomic bitmap snapshot is well-formed")
    }

    /// Build an atomic bitmap holding the same bits as `bitmap`.
    pub fn from_bitmap(bitmap: &Bitmap) -> Self {
        Self {
            words: bitmap.words().iter().map(|&w| AtomicU64::new(w)).collect(),
            len: bitmap.len(),
        }
    }
}

impl Clone for AtomicBitmap {
    fn clone(&self) -> Self {
        Self {
            words: self
                .words
                .iter()
                .map(|w| AtomicU64::new(w.load(Ordering::Relaxed)))
                .collect(),
            len: self.len,
        }
    }
}

impl crate::OwnedBitStore for AtomicBitmap {
    fn with_len(len: usize) -> Self {
        Self::new(len)
    }
}

impl BitStore for AtomicBitmap {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, idx: usize) -> bool {
        AtomicBitmap::get(self, idx)
    }

    fn set(&mut self, idx: usize) -> bool {
        // Single-owner view: same semantics, still one RMW.
        AtomicBitmap::set(self, idx)
    }

    fn count_ones(&self) -> usize {
        AtomicBitmap::count_ones(self)
    }

    fn reset(&mut self) {
        AtomicBitmap::reset(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_all_zero() {
        let b = AtomicBitmap::new(129);
        assert_eq!(b.len(), 129);
        assert_eq!(b.count_ones(), 0);
        assert!(!b.get(0));
        assert!(!b.get(128));
    }

    #[test]
    fn set_reports_transition_through_shared_ref() {
        let b = AtomicBitmap::new(100);
        assert!(b.set(63));
        assert!(!b.set(63), "second set must report already-set");
        assert!(b.get(63));
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        AtomicBitmap::new(64).set(64);
    }

    #[test]
    fn snapshot_round_trip() {
        let a = AtomicBitmap::new(200);
        for idx in [0, 1, 63, 64, 65, 127, 128, 199] {
            a.set(idx);
        }
        let plain = a.to_bitmap();
        assert_eq!(plain.count_ones(), 8);
        let back = AtomicBitmap::from_bitmap(&plain);
        assert_eq!(back.count_ones(), 8);
        assert!(back.get(199));
    }

    #[test]
    fn reset_and_clone() {
        let a = AtomicBitmap::new(128);
        a.set(5);
        let c = a.clone();
        a.reset();
        assert_eq!(a.count_ones(), 0);
        assert_eq!(c.count_ones(), 1, "clone is an independent snapshot");
    }

    #[test]
    fn bitstore_impl_matches_inherent() {
        let mut b = <AtomicBitmap as crate::OwnedBitStore>::with_len(80);
        assert!(BitStore::set(&mut b, 3));
        assert!(BitStore::get(&b, 3));
        assert_eq!(BitStore::count_ones(&b), 1);
        BitStore::reset(&mut b);
        assert!(BitStore::is_empty(&AtomicBitmap::new(0)));
        assert_eq!(b.memory_bits(), 80);
    }

    #[test]
    fn racing_setters_hand_out_exactly_one_transition() {
        // 8 threads all hammer the same 256 bits; every bit's zero→one
        // transition must be claimed exactly once across all threads.
        let bits = 256;
        let b = Arc::new(AtomicBitmap::new(bits));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let mut claimed = 0usize;
                for idx in 0..bits {
                    if b.set(idx) {
                        claimed += 1;
                    }
                }
                claimed
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, bits, "transitions double-counted or lost");
        assert_eq!(b.count_ones(), bits);
    }
}
