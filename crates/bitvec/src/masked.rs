//! Masked word-set helpers: the prefix-region kernels behind the
//! size-classed sparse fleet storage in `sbitmap-core`.
//!
//! A sparse record stores a bitmap's *live* (non-zero) words compacted
//! into a short prefix, addressed through a word-occupancy mask: bit `w`
//! of the mask says whether logical word `w` is materialized, and the
//! materialized words sit in ascending word-index order. Three
//! operations connect that layout to the flat `&[u64]` world the rest of
//! the workspace speaks:
//!
//! * [`rank_before`] — where a logical word lives in the packed prefix
//!   (a classic rank query over the mask);
//! * [`scatter_masked`] — expand `(mask, packed)` back into a full
//!   dense word slice (promotion to a full-stride slab, checkpoint
//!   writing, exports);
//! * [`gather_masked`] — compact a full word slice into `(mask,
//!   packed)` (restoring a checkpoint straight into a sparse class).
//!
//! The heavy popcount inside [`rank_before`] goes through the
//! runtime-dispatched [`crate::kernels`] table, so the sparse probe path
//! shares the same AVX2/scalar story (and the same
//! `SBITMAP_FORCE_SCALAR` override) as every other word loop in the
//! workspace. All three functions are pure: outputs depend only on the
//! input words, never on the dispatch path — the kernel-parity suites
//! lock that in.

use crate::kernels;

/// Number of mask bits set strictly below index `idx` — the packed-slot
/// position logical word `idx` occupies (or would occupy on insertion).
///
/// # Panics
///
/// Panics if `idx >> 6` is out of bounds for `mask`.
#[inline]
pub fn rank_before(mask: &[u64], idx: usize) -> usize {
    let g = idx >> 6;
    let below = (mask[g] & ((1u64 << (idx & 63)) - 1)).count_ones() as usize;
    kernels::popcount_slice(&mask[..g]) + below
}

/// Expand a masked word set into a full dense word slice: `out` is
/// zeroed, then packed word `r` lands at the index of the mask's `r`-th
/// set bit.
///
/// # Panics
///
/// Panics if `packed` holds fewer words than the mask has set bits at
/// indices below `out.len()`, or if a mask bit at or beyond `out.len()`
/// is set.
pub fn scatter_masked(mask: &[u64], packed: &[u64], out: &mut [u64]) {
    out.fill(0);
    let mut next = 0usize;
    for (g, &group) in mask.iter().enumerate() {
        let mut bits = group;
        while bits != 0 {
            let wi = (g << 6) | bits.trailing_zeros() as usize;
            out[wi] = packed[next];
            next += 1;
            bits &= bits - 1;
        }
    }
    debug_assert!(next <= packed.len());
}

/// Compact a full dense word slice into a masked word set, writing the
/// occupancy mask into `mask` (cleared first) and the non-zero words, in
/// ascending index order, into the head of `packed`. Returns the live
/// word count.
///
/// # Panics
///
/// Panics if `mask` is shorter than `words.len().div_ceil(64)` or
/// `packed` is shorter than the number of non-zero words.
pub fn gather_masked(words: &[u64], mask: &mut [u64], packed: &mut [u64]) -> usize {
    mask[..words.len().div_ceil(64)].fill(0);
    let mut live = 0usize;
    for (wi, &w) in words.iter().enumerate() {
        if w != 0 {
            mask[wi >> 6] |= 1u64 << (wi & 63);
            packed[live] = w;
            live += 1;
        }
    }
    live
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(words: &[u64]) {
        let mut mask = vec![0u64; words.len().div_ceil(64)];
        let mut packed = vec![0u64; words.len()];
        let live = gather_masked(words, &mut mask, &mut packed);
        assert_eq!(live, words.iter().filter(|&&w| w != 0).count());
        assert_eq!(
            live,
            kernels::popcount_slice(&mask),
            "mask popcount is the live count"
        );
        let mut out = vec![u64::MAX; words.len()];
        scatter_masked(&mask, &packed[..live], &mut out);
        assert_eq!(out, words, "scatter(gather(x)) == x");
    }

    #[test]
    fn gather_scatter_roundtrips() {
        roundtrip(&[0; 7]);
        roundtrip(&[1, 0, 0, 0xffff_0000_0000_0001, 0, 2, 0]);
        roundtrip(&(0..200u64).map(|i| i % 3).collect::<Vec<_>>());
        roundtrip(&[u64::MAX; 65]);
    }

    #[test]
    fn rank_matches_naive_count() {
        // 130 words of mask → three mask groups, bits in a fixed pattern.
        let mut mask = vec![0u64; 3];
        for wi in [0usize, 3, 63, 64, 70, 128, 129] {
            mask[wi >> 6] |= 1u64 << (wi & 63);
        }
        let naive = |idx: usize| {
            (0..idx)
                .filter(|&w| mask[w >> 6] & (1u64 << (w & 63)) != 0)
                .count()
        };
        for idx in 0..192 {
            assert_eq!(rank_before(&mask, idx), naive(idx), "idx {idx}");
        }
    }

    #[test]
    fn insertion_position_is_stable_under_growth() {
        // Inserting words one at a time through rank_before keeps the
        // packed order ascending — the invariant the sparse probe relies
        // on when it shifts the tail to make room.
        let mut mask = vec![0u64; 2];
        let mut packed: Vec<u64> = Vec::new();
        for &wi in &[77usize, 3, 120, 0, 64, 63] {
            let pos = rank_before(&mask, wi);
            packed.insert(pos, wi as u64 + 1);
            mask[wi >> 6] |= 1u64 << (wi & 63);
        }
        assert_eq!(packed, vec![1, 4, 64, 65, 78, 121]);
    }
}
