//! Bit-level storage substrate for the S-bitmap workspace.
//!
//! Two containers:
//!
//! * [`Bitmap`] — a packed bit vector (`u64` words). This is the `V` of
//!   the paper's Algorithms 1 and 2 and the storage of every bitmap-family
//!   baseline (linear counting, virtual bitmap, multiresolution bitmap).
//! * [`PackedRegisters`] — a fixed-width unsigned register file packed
//!   into `u64` words, used by the Flajolet–Martin family (LogLog /
//!   HyperLogLog store 4–6 bit registers; FM/PCSA stores bit patterns).
//!
//! Both report their *payload* size in bits exactly the way the paper
//! accounts memory (§6.2: "the size of the summary statistics (in bits)").

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bitmap;
mod registers;

pub use bitmap::Bitmap;
pub use registers::PackedRegisters;
