//! Bit-level storage substrate for the S-bitmap workspace.
//!
//! Four containers:
//!
//! * [`Bitmap`] — a packed bit vector (`u64` words). This is the `V` of
//!   the paper's Algorithms 1 and 2 and the storage of every bitmap-family
//!   baseline (linear counting, virtual bitmap, multiresolution bitmap).
//! * [`AtomicBitmap`] — the same vector over `AtomicU64` words with
//!   lock-free `&self` setters, for concurrent ingestion into one sketch.
//! * [`SliceBitmap`] — the same vector over a *borrowed* `&mut [u64]`
//!   region, so a bitmap can live inside someone else's allocation (one
//!   stride of an arena packing a whole fleet contiguously).
//! * [`PackedRegisters`] — a fixed-width unsigned register file packed
//!   into `u64` words, used by the Flajolet–Martin family (LogLog /
//!   HyperLogLog store 4–6 bit registers; FM/PCSA stores bit patterns).
//!
//! The bitmaps share the [`BitStore`] trait so generic code (tests,
//! benches, differential harnesses) can exercise any backend; the two
//! owning backends additionally implement [`OwnedBitStore`] (allocation
//! from a bare length).
//!
//! ## Choosing a backend
//!
//! Use [`Bitmap`] by default: plain loads and stores, cheapest probes,
//! trivially snapshottable. Switch to [`AtomicBitmap`] only when multiple
//! threads must feed the *same* sketch — its `set` is a relaxed
//! `fetch_or` whose return value tells exactly one racing thread that it
//! performed the zero→one transition, which is what keeps the S-bitmap
//! fill counter exact under concurrency. With a single writer the atomic
//! backend costs one uncontended RMW per newly set bit — measurable but
//! small; under real sharing the cost is the cache-coherence traffic any
//! shared-memory design pays.
//!
//! Both report their *payload* size in bits exactly the way the paper
//! accounts memory (§6.2: "the size of the summary statistics (in bits)").
//!
//! Word-level operations — popcounts, unions, the fused OR+popcount the
//! sliding-window query runs on — go through the [`kernels`] module: a
//! function-pointer table filled once per process with either AVX2 or
//! scalar loops (`is_x86_feature_detected!`, overridable with
//! `SBITMAP_FORCE_SCALAR=1`), the two property-tested bit-identical.
//!
//! `unsafe` in this crate is confined to two places, both hardware
//! interfaces: the x86-64 prefetch intrinsic behind [`Bitmap::prefetch`]
//! / [`AtomicBitmap::prefetch`] (a pure cache hint, no memory access),
//! and the AVX2 intrinsic bodies inside [`kernels`] (reachable only
//! after runtime feature detection).

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod atomic;
mod bitmap;
pub mod kernels;
pub mod masked;
mod registers;
mod slice;
mod store;

pub use atomic::AtomicBitmap;
pub use bitmap::Bitmap;
pub use registers::PackedRegisters;
pub use slice::SliceBitmap;
pub use store::{BitStore, OwnedBitStore};

/// Prefetch the word at `wi` of `words` into L1 on x86-64; no-op on other
/// architectures or out-of-range indices.
///
/// Public because arena-style callers (a fleet packing many bitmaps into
/// one buffer at a fixed stride) want to warm the *next* region's lines
/// while ingesting the current one — a hint that spans individual
/// [`SliceBitmap`] views.
#[inline]
pub fn prefetch_word<T>(words: &[T], wi: usize) {
    #[cfg(target_arch = "x86_64")]
    if let Some(w) = words.get(wi) {
        // SAFETY: `_mm_prefetch` performs no memory access (it is a pure
        // cache hint) and the pointer is derived from a live reference.
        #[allow(unsafe_code)]
        unsafe {
            std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(
                w as *const T as *const i8,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (words, wi);
    }
}
