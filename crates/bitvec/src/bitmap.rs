//! A packed bit vector with the operations the sketches need.

/// A fixed-length bit vector packed into `u64` words.
///
/// Semantics match the paper's bitmap `V ∈ {0,1}^m`: bits start at zero,
/// [`Bitmap::set`] flips a bit to one (reporting whether it was newly set),
/// and [`Bitmap::count_ones`] is `|V|`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Bitmap {
    words: Box<[u64]>,
    len: usize,
}

impl Bitmap {
    /// Create an all-zero bitmap of `len` bits.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(64)].into_boxed_slice(),
            len,
        }
    }

    /// Length in bits (the paper's `m`).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the bitmap has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len` (debug and release — the check is one
    /// compare and keeps sketch bugs loud).
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        (self.words[idx >> 6] >> (idx & 63)) & 1 == 1
    }

    /// Read bit `idx` without the range assert (hot-path variant).
    ///
    /// The caller guarantees `idx < len` — the S-bitmap hot loop holds
    /// this structurally (`HashSplit::split` maps into `0..m`). Violations
    /// are a `debug_assert!` in debug builds and an unspecified result or
    /// panic (never UB) in release builds.
    #[inline]
    pub fn get_unchecked(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        (self.words[idx >> 6] >> (idx & 63)) & 1 == 1
    }

    /// Set bit `idx` to one. Returns `true` if the bit was previously zero
    /// (i.e. this call changed it) — the signal the S-bitmap uses to
    /// increment its fill counter `L`.
    #[inline]
    pub fn set(&mut self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let word = &mut self.words[idx >> 6];
        let mask = 1u64 << (idx & 63);
        let was_zero = *word & mask == 0;
        *word |= mask;
        was_zero
    }

    /// [`Bitmap::set`] without the range assert (hot-path variant); same
    /// caller contract as [`Bitmap::get_unchecked`].
    #[inline]
    pub fn set_unchecked(&mut self, idx: usize) -> bool {
        debug_assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let word = &mut self.words[idx >> 6];
        let mask = 1u64 << (idx & 63);
        let was_zero = *word & mask == 0;
        *word |= mask;
        was_zero
    }

    /// Prefetch the cache line holding bit `idx` into L1 (x86-64; no-op
    /// elsewhere). Out-of-range indices are ignored. Used by the batched
    /// ingest loop to overlap the probe for hash `i + k` with the work on
    /// hash `i`.
    #[inline]
    pub fn prefetch(&self, idx: usize) {
        crate::prefetch_word(&self.words, idx >> 6);
    }

    /// Clear bit `idx` to zero. Returns `true` if the bit was previously
    /// one. (Not used by the sketches' hot paths; provided for tooling.)
    #[inline]
    pub fn clear_bit(&mut self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let word = &mut self.words[idx >> 6];
        let mask = 1u64 << (idx & 63);
        let was_one = *word & mask != 0;
        *word &= !mask;
        was_one
    }

    /// Number of one bits (`|V|`), by word-level popcount on the
    /// dispatched [`crate::kernels`] path.
    pub fn count_ones(&self) -> usize {
        crate::kernels::popcount_slice(&self.words)
    }

    /// Number of zero bits (`m − |V|`), the statistic linear counting uses.
    #[inline]
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Reset every bit to zero, keeping the allocation.
    pub fn reset(&mut self) {
        self.words.fill(0);
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some((wi << 6) | bit)
            })
        })
    }

    /// In-place union with another bitmap of identical length.
    ///
    /// # Errors
    ///
    /// Returns an error if the lengths differ.
    pub fn union_with(&mut self, other: &Bitmap) -> Result<(), String> {
        self.union_or(other).map(|_| ())
    }

    /// Word-level in-place union (`self |= other`), returning how many
    /// bits this call newly set — the increment a mergeable sketch's fill
    /// counter needs, obtained in the same pass (the
    /// [`crate::kernels::union_or_count`] kernel) rather than a second
    /// full scan.
    ///
    /// # Errors
    ///
    /// Returns an error if the lengths differ.
    pub fn union_or(&mut self, other: &Bitmap) -> Result<usize, String> {
        if self.len != other.len {
            return Err(format!(
                "bitmap length mismatch: {} vs {}",
                self.len, other.len
            ));
        }
        Ok(crate::kernels::union_or_count(
            &mut self.words,
            &other.words,
        ))
    }

    /// Payload size in bits, as the paper accounts memory. The partial last
    /// word is charged at its logical width (`m`), not the allocated 64.
    #[inline]
    pub fn memory_bits(&self) -> usize {
        self.len
    }

    /// The packed words backing the bitmap (little-endian bit order
    /// within each word), for binary serialization.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the packed words, for word-at-a-time update
    /// kernels (the branchless sketch probe loop).
    ///
    /// Caller contract: bits at positions `>= len` in the final partial
    /// word must stay zero — [`Bitmap::count_ones`] and serialization
    /// assume it. Kernels that derive their masks from in-range bit
    /// indices hold this structurally.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Rebuild a bitmap from its packed words.
    ///
    /// # Errors
    ///
    /// Rejects a word count that does not match `len` bits, or set bits
    /// beyond `len` in the final partial word.
    pub fn from_words(words: Vec<u64>, len: usize) -> Result<Self, String> {
        if words.len() != len.div_ceil(64) {
            return Err(format!(
                "word count {} does not match {} bits",
                words.len(),
                len
            ));
        }
        if !len.is_multiple_of(64) {
            let tail = words.last().copied().unwrap_or(0);
            if tail >> (len % 64) != 0 {
                return Err("set bits beyond the logical length".into());
            }
        }
        Ok(Self {
            words: words.into_boxed_slice(),
            len,
        })
    }
}

impl crate::OwnedBitStore for Bitmap {
    fn with_len(len: usize) -> Self {
        Self::new(len)
    }
}

impl crate::BitStore for Bitmap {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, idx: usize) -> bool {
        Bitmap::get(self, idx)
    }

    fn set(&mut self, idx: usize) -> bool {
        Bitmap::set(self, idx)
    }

    fn count_ones(&self) -> usize {
        Bitmap::count_ones(self)
    }

    fn reset(&mut self) {
        Bitmap::reset(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_zero() {
        let b = Bitmap::new(129);
        assert_eq!(b.len(), 129);
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.count_zeros(), 129);
        assert!(!b.get(0));
        assert!(!b.get(128));
    }

    #[test]
    fn set_reports_transition() {
        let mut b = Bitmap::new(100);
        assert!(b.set(63));
        assert!(!b.set(63), "second set must report already-set");
        assert!(b.get(63));
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn set_across_word_boundaries() {
        let mut b = Bitmap::new(200);
        for idx in [0, 1, 63, 64, 65, 127, 128, 199] {
            assert!(b.set(idx));
            assert!(b.get(idx));
        }
        assert_eq!(b.count_ones(), 8);
    }

    #[test]
    fn clear_bit_round_trip() {
        let mut b = Bitmap::new(70);
        b.set(69);
        assert!(b.clear_bit(69));
        assert!(!b.clear_bit(69));
        assert!(!b.get(69));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmap::new(10).get(10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        Bitmap::new(64).set(64);
    }

    #[test]
    fn iter_ones_matches_sets() {
        let mut b = Bitmap::new(300);
        let idxs = [0usize, 5, 63, 64, 100, 255, 299];
        for &i in &idxs {
            b.set(i);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, idxs);
    }

    #[test]
    fn reset_clears_everything() {
        let mut b = Bitmap::new(128);
        for i in 0..128 {
            b.set(i);
        }
        b.reset();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn union_or_semantics() {
        let mut a = Bitmap::new(80);
        let mut b = Bitmap::new(80);
        a.set(1);
        b.set(2);
        b.set(1);
        a.union_with(&b).unwrap();
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn union_or_counts_newly_set_bits() {
        let mut a = Bitmap::new(130);
        let mut b = Bitmap::new(130);
        for i in [0usize, 63, 64, 129] {
            a.set(i);
        }
        for i in [63usize, 64, 65, 100] {
            b.set(i);
        }
        // 65 and 100 are new; 63 and 64 overlap.
        assert_eq!(a.union_or(&b).unwrap(), 2);
        assert_eq!(a.count_ones(), 6);
        // Merging again adds nothing.
        assert_eq!(a.union_or(&b).unwrap(), 0);
    }

    #[test]
    fn union_length_mismatch_errors() {
        let mut a = Bitmap::new(80);
        let b = Bitmap::new(81);
        assert!(a.union_with(&b).is_err());
    }

    #[test]
    fn memory_bits_is_logical_length() {
        assert_eq!(Bitmap::new(100).memory_bits(), 100);
        assert_eq!(Bitmap::new(0).memory_bits(), 0);
    }

    #[test]
    fn unchecked_paths_agree_with_checked() {
        let mut a = Bitmap::new(300);
        let mut b = Bitmap::new(300);
        for idx in [0usize, 5, 63, 64, 100, 255, 299] {
            assert_eq!(a.set(idx), b.set_unchecked(idx));
            assert_eq!(a.get(idx), b.get_unchecked(idx));
            assert_eq!(a.set(idx), b.set_unchecked(idx), "re-set at {idx}");
        }
        assert_eq!(a, b);
        a.prefetch(0); // smoke: prefetch is a pure hint
        a.prefetch(10_000); // out-of-range is ignored
    }

    #[test]
    fn bitstore_impl_matches_inherent() {
        use crate::{BitStore, OwnedBitStore};
        let mut b = <Bitmap as OwnedBitStore>::with_len(80);
        assert!(BitStore::set(&mut b, 3));
        assert!(BitStore::get(&b, 3));
        assert_eq!(BitStore::count_ones(&b), 1);
        assert_eq!(b.memory_bits(), 80);
        BitStore::reset(&mut b);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn zero_length_bitmap_is_fine() {
        let b = Bitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter_ones().count(), 0);
    }
}
