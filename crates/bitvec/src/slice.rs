//! A bitmap view over a *borrowed* word region — the storage primitive
//! behind arena-packed sketch fleets.
//!
//! [`crate::Bitmap`] owns its words behind one heap allocation, which is
//! the right shape for a standalone sketch but the wrong one for a fleet
//! of thousands of identically-dimensioned sketches: one `Box<[u64]>`
//! per key scatters the hot working set across the allocator's arenas
//! and pays a pointer chase per probe. [`SliceBitmap`] is the same bit
//! vector over a caller-provided `&mut [u64]`, so a fleet can pack every
//! key's bitmap into one contiguous buffer at a fixed stride and hand
//! each ingest a zero-cost view of its region.

use crate::BitStore;

/// A fixed-length bit vector over a borrowed `&mut [u64]` region.
///
/// Semantics are identical to [`crate::Bitmap`] — bits start wherever the
/// underlying words say they are, [`SliceBitmap::set`] reports the
/// zero→one transition, lengths are logical bits — but the words belong
/// to someone else (typically one stride of an arena). Constructing one
/// is free: no allocation, no copy, just a borrow with a length check.
#[derive(Debug, PartialEq, Eq)]
pub struct SliceBitmap<'a> {
    words: &'a mut [u64],
    len: usize,
}

impl<'a> SliceBitmap<'a> {
    /// View `words` as a bitmap of `len` logical bits.
    ///
    /// # Errors
    ///
    /// Rejects a word count that does not match `len` bits
    /// (`words.len() != len.div_ceil(64)`).
    pub fn new(words: &'a mut [u64], len: usize) -> Result<Self, String> {
        if words.len() != len.div_ceil(64) {
            return Err(format!(
                "word count {} does not match {} bits",
                words.len(),
                len
            ));
        }
        Ok(Self { words, len })
    }

    /// Length in bits (the paper's `m`).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the view has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len` (debug and release).
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        (self.words[idx >> 6] >> (idx & 63)) & 1 == 1
    }

    /// Read bit `idx` without the range assert (hot-path variant); same
    /// caller contract as [`crate::Bitmap::get_unchecked`].
    #[inline]
    pub fn get_unchecked(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        (self.words[idx >> 6] >> (idx & 63)) & 1 == 1
    }

    /// Set bit `idx` to one. Returns `true` if the bit was previously
    /// zero — the signal the S-bitmap uses to increment its fill counter.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len` (debug and release).
    #[inline]
    pub fn set(&mut self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let word = &mut self.words[idx >> 6];
        let mask = 1u64 << (idx & 63);
        let was_zero = *word & mask == 0;
        *word |= mask;
        was_zero
    }

    /// [`SliceBitmap::set`] without the range assert (hot-path variant);
    /// same caller contract as [`crate::Bitmap::get_unchecked`].
    #[inline]
    pub fn set_unchecked(&mut self, idx: usize) -> bool {
        debug_assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let word = &mut self.words[idx >> 6];
        let mask = 1u64 << (idx & 63);
        let was_zero = *word & mask == 0;
        *word |= mask;
        was_zero
    }

    /// Prefetch the cache line holding bit `idx` into L1 (x86-64; no-op
    /// elsewhere). Out-of-range indices are ignored.
    #[inline]
    pub fn prefetch(&self, idx: usize) {
        crate::prefetch_word(self.words, idx >> 6);
    }

    /// Number of one bits, by word-level popcount on the dispatched
    /// [`crate::kernels`] path.
    pub fn count_ones(&self) -> usize {
        crate::kernels::popcount_slice(self.words)
    }

    /// Reset every bit to zero.
    pub fn reset(&mut self) {
        self.words.fill(0);
    }

    /// The packed words backing the view (little-endian bit order within
    /// each word).
    #[inline]
    pub fn words(&self) -> &[u64] {
        self.words
    }

    /// Mutable access to the backing words; same caller contract as
    /// [`crate::Bitmap::words_mut`] (no set bits at positions `>= len`).
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64] {
        self.words
    }
}

impl BitStore for SliceBitmap<'_> {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, idx: usize) -> bool {
        SliceBitmap::get(self, idx)
    }

    fn set(&mut self, idx: usize) -> bool {
        SliceBitmap::set(self, idx)
    }

    fn count_ones(&self) -> usize {
        SliceBitmap::count_ones(self)
    }

    fn reset(&mut self) {
        SliceBitmap::reset(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bitmap;

    #[test]
    fn rejects_mismatched_word_count() {
        let mut words = vec![0u64; 2];
        assert!(SliceBitmap::new(&mut words, 129).is_err());
        assert!(SliceBitmap::new(&mut words, 128).is_ok());
        assert!(SliceBitmap::new(&mut words, 65).is_ok());
    }

    #[test]
    fn set_get_and_popcount_match_owned_bitmap() {
        let mut owned = Bitmap::new(300);
        let mut words = vec![0u64; 300usize.div_ceil(64)];
        let mut view = SliceBitmap::new(&mut words, 300).unwrap();
        for idx in [0usize, 5, 63, 64, 100, 255, 299] {
            assert_eq!(owned.set(idx), view.set(idx), "first set at {idx}");
            assert_eq!(owned.set(idx), view.set(idx), "re-set at {idx}");
            assert_eq!(owned.get(idx), view.get(idx));
            assert_eq!(view.get_unchecked(idx), view.get(idx));
        }
        assert_eq!(owned.count_ones(), view.count_ones());
        assert_eq!(owned.words(), view.words());
    }

    #[test]
    fn unchecked_set_agrees_with_checked() {
        let mut a = vec![0u64; 4];
        let mut b = vec![0u64; 4];
        let mut checked = SliceBitmap::new(&mut a, 200).unwrap();
        let mut unchecked = SliceBitmap::new(&mut b, 200).unwrap();
        for idx in [0usize, 63, 64, 127, 199] {
            assert_eq!(checked.set(idx), unchecked.set_unchecked(idx));
        }
        assert_eq!(checked, unchecked);
        checked.prefetch(0); // smoke: pure hint
        checked.prefetch(100_000); // out-of-range ignored
    }

    #[test]
    fn mutations_land_in_the_borrowed_words() {
        let mut words = vec![0u64; 2];
        {
            let mut view = SliceBitmap::new(&mut words, 128).unwrap();
            view.set(64);
            view.set(65);
        }
        assert_eq!(words, vec![0, 0b11]);
        {
            let mut view = SliceBitmap::new(&mut words, 128).unwrap();
            view.reset();
        }
        assert_eq!(words, vec![0, 0]);
    }

    #[test]
    fn zero_length_view_is_fine() {
        let mut words: Vec<u64> = Vec::new();
        let view = SliceBitmap::new(&mut words, 0).unwrap();
        assert!(view.is_empty());
        assert_eq!(view.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn checked_get_panics_out_of_range() {
        let mut words = vec![0u64; 1];
        SliceBitmap::new(&mut words, 10).unwrap().get(10);
    }

    #[test]
    fn bitstore_impl_matches_inherent() {
        let mut words = vec![0u64; 2];
        let mut view = SliceBitmap::new(&mut words, 80).unwrap();
        assert!(BitStore::set(&mut view, 3));
        assert!(BitStore::get(&view, 3));
        assert_eq!(BitStore::count_ones(&view), 1);
        assert_eq!(view.memory_bits(), 80);
        BitStore::reset(&mut view);
        assert_eq!(view.count_ones(), 0);
    }
}
