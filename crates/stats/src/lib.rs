//! # sbitmap-stats — error metrics and the replication harness
//!
//! The paper evaluates estimators by their relative error distribution
//! over many independent replicates (1000 per cardinality in §6):
//!
//! * [`ErrorStats`] accumulates `(truth, estimate)` pairs and reports the
//!   paper's three metrics — L1 (`E|n̂/n − 1|`), L2/RRMSE
//!   (`sqrt(E(n̂/n − 1)²)`), and quantiles of `|n̂/n − 1|` — plus bias;
//! * [`replicate`] runs a replicated experiment across threads with
//!   deterministic per-replicate seeds, so every table in EXPERIMENTS.md
//!   is reproducible bit-for-bit at a fixed thread-independent seed
//!   schedule;
//! * [`ks_statistic`] / [`ks_same_distribution`] — a two-sample
//!   Kolmogorov–Smirnov test, used to validate the fast simulator
//!   against the real sketch at the whole-distribution level.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error_stats;
mod ks;
mod replicate;

pub use error_stats::ErrorStats;
pub use ks::{ks_critical, ks_same_distribution, ks_statistic};
pub use replicate::{default_threads, replicate, replicate_with_threads};
