//! Accumulator for relative-error metrics.

/// Collects relative errors `n̂/n − 1` and reports the paper's metrics.
///
/// Stores the individual errors (8 bytes each) so that exact quantiles
/// can be computed — the experiments run at most a few thousand
/// replicates per cell, so this is cheap and avoids sketching the
/// sketch-evaluation.
#[derive(Debug, Clone, Default)]
pub struct ErrorStats {
    rel_errors: Vec<f64>,
}

impl ErrorStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one `(truth, estimate)` pair. `truth` must be positive.
    pub fn push(&mut self, truth: f64, estimate: f64) {
        assert!(truth > 0.0, "truth must be positive, got {truth}");
        self.rel_errors.push(estimate / truth - 1.0);
    }

    /// Record a pre-computed relative error.
    pub fn push_rel(&mut self, rel_error: f64) {
        self.rel_errors.push(rel_error);
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &ErrorStats) {
        self.rel_errors.extend_from_slice(&other.rel_errors);
    }

    /// Number of recorded replicates.
    pub fn count(&self) -> usize {
        self.rel_errors.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rel_errors.is_empty()
    }

    /// The paper's headline metric: RRMSE = `sqrt(mean((n̂/n − 1)²))`.
    pub fn rrmse(&self) -> f64 {
        self.expect_nonempty();
        (self.rel_errors.iter().map(|e| e * e).sum::<f64>() / self.count() as f64).sqrt()
    }

    /// L1 metric: `mean(|n̂/n − 1|)` (paper Tables 3–4).
    pub fn l1(&self) -> f64 {
        self.expect_nonempty();
        self.rel_errors.iter().map(|e| e.abs()).sum::<f64>() / self.count() as f64
    }

    /// Mean signed relative error (bias check for Theorem 3).
    pub fn mean_bias(&self) -> f64 {
        self.expect_nonempty();
        self.rel_errors.iter().sum::<f64>() / self.count() as f64
    }

    /// Exact `q`-quantile of `|n̂/n − 1|` (paper uses `q = 0.99`),
    /// using the nearest-rank definition.
    pub fn quantile_abs(&self, q: f64) -> f64 {
        self.expect_nonempty();
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
        let mut abs: Vec<f64> = self.rel_errors.iter().map(|e| e.abs()).collect();
        abs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN errors"));
        let idx = ((abs.len() as f64 * q).ceil() as usize).clamp(1, abs.len()) - 1;
        abs[idx]
    }

    /// Largest absolute relative error observed.
    pub fn max_abs(&self) -> f64 {
        self.expect_nonempty();
        self.rel_errors.iter().fold(0.0, |m, e| m.max(e.abs()))
    }

    /// Fraction of replicates with `|n̂/n − 1|` exceeding `threshold` —
    /// the exceedance curves of the paper's Figures 6 and 8.
    pub fn exceedance(&self, threshold: f64) -> f64 {
        self.expect_nonempty();
        self.rel_errors
            .iter()
            .filter(|e| e.abs() > threshold)
            .count() as f64
            / self.count() as f64
    }

    /// The raw relative errors (sorted copies are made by the metrics; the
    /// stored order is insertion order).
    pub fn rel_errors(&self) -> &[f64] {
        &self.rel_errors
    }

    fn expect_nonempty(&self) {
        assert!(!self.is_empty(), "no replicates recorded");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(pairs: &[(f64, f64)]) -> ErrorStats {
        let mut s = ErrorStats::new();
        for &(t, e) in pairs {
            s.push(t, e);
        }
        s
    }

    #[test]
    fn rrmse_hand_computed() {
        // errors: +0.1, -0.1 → rrmse 0.1, l1 0.1, bias 0.
        let s = stats(&[(100.0, 110.0), (100.0, 90.0)]);
        assert!((s.rrmse() - 0.1).abs() < 1e-12);
        assert!((s.l1() - 0.1).abs() < 1e-12);
        assert!(s.mean_bias().abs() < 1e-12);
    }

    #[test]
    fn rrmse_penalizes_outliers_more_than_l1() {
        let s = stats(&[(100.0, 100.0), (100.0, 100.0), (100.0, 200.0)]);
        assert!(s.rrmse() > s.l1());
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut s = ErrorStats::new();
        for i in 1..=100 {
            s.push_rel(i as f64 / 100.0);
        }
        assert!((s.quantile_abs(0.99) - 0.99).abs() < 1e-12);
        assert!((s.quantile_abs(0.5) - 0.5).abs() < 1e-12);
        assert!((s.quantile_abs(1.0) - 1.0).abs() < 1e-12);
        assert!((s.quantile_abs(0.0) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn exceedance_counts_tails() {
        let s = stats(&[(10.0, 10.0), (10.0, 15.0), (10.0, 4.0), (10.0, 10.1)]);
        assert!((s.exceedance(0.2) - 0.5).abs() < 1e-12);
        assert!((s.exceedance(10.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = stats(&[(1.0, 2.0)]);
        let b = stats(&[(1.0, 0.5), (1.0, 1.0)]);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.max_abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "no replicates")]
    fn empty_metrics_panic() {
        ErrorStats::new().rrmse();
    }

    #[test]
    #[should_panic(expected = "truth must be positive")]
    fn zero_truth_rejected() {
        let mut s = ErrorStats::new();
        s.push(0.0, 1.0);
    }
}
