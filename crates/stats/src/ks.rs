//! Two-sample Kolmogorov–Smirnov test.
//!
//! Used to validate that the Lemma-1 fast simulator draws from the *same
//! distribution* as the real hashed sketch — a stronger check than
//! comparing RRMSEs, which only matches second moments.

/// The two-sample KS statistic `D = sup |F_a(x) − F_b(x)|` over the
/// empirical CDFs of the two samples.
///
/// # Panics
///
/// Panics if either sample is empty or contains NaN.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "samples must be non-empty");
    let sort = |v: &[f64]| -> Vec<f64> {
        let mut v = v.to_vec();
        v.sort_by(|x, y| x.partial_cmp(y).expect("no NaN in KS samples"));
        v
    };
    let (a, b) = (sort(a), sort(b));
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < a.len() && j < b.len() {
        // Advance past the smallest pending value in *both* samples so
        // that ties move the two CDFs together.
        let x = a[i].min(b[j]);
        while i < a.len() && a[i] <= x {
            i += 1;
        }
        while j < b.len() && b[j] <= x {
            j += 1;
        }
        let fa = i as f64 / a.len() as f64;
        let fb = j as f64 / b.len() as f64;
        d = d.max((fa - fb).abs());
    }
    d
}

/// Asymptotic critical value of the two-sample KS statistic at
/// significance `alpha` (Smirnov): `c(α)·sqrt((n+m)/(n·m))` with
/// `c(α) = sqrt(−ln(α/2)/2)`.
pub fn ks_critical(n: usize, m: usize, alpha: f64) -> f64 {
    assert!(n > 0 && m > 0, "sample sizes must be positive");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha in (0,1)");
    let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
    c * (((n + m) as f64) / ((n * m) as f64)).sqrt()
}

/// `true` when the two samples are consistent with one distribution at
/// significance `alpha` (i.e. the KS statistic is below its critical
/// value — failing to reject the null).
pub fn ks_same_distribution(a: &[f64], b: &[f64], alpha: f64) -> bool {
    ks_statistic(a, b) < ks_critical(a.len(), b.len(), alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbitmap_hash::rng::{Rng, Xoshiro256StarStar};

    #[test]
    fn identical_samples_have_zero_statistic() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_statistic(&a, &a), 0.0);
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0];
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_distribution_passes_shifted_fails() {
        let mut rng = Xoshiro256StarStar::new(42);
        let a: Vec<f64> = (0..2_000).map(|_| rng.normal()).collect();
        let b: Vec<f64> = (0..2_000).map(|_| rng.normal()).collect();
        assert!(ks_same_distribution(&a, &b, 0.01), "same dist rejected");
        let shifted: Vec<f64> = b.iter().map(|x| x + 0.3).collect();
        assert!(
            !ks_same_distribution(&a, &shifted, 0.01),
            "clearly shifted dist accepted"
        );
    }

    #[test]
    fn critical_value_shrinks_with_samples() {
        assert!(ks_critical(100, 100, 0.05) > ks_critical(10_000, 10_000, 0.05));
        // Known constant: c(0.05) ≈ 1.358; at n=m the factor is sqrt(2/n).
        let expect = 1.358 * (2.0f64 / 100.0).sqrt();
        assert!((ks_critical(100, 100, 0.05) - expect).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sample_panics() {
        ks_statistic(&[], &[1.0]);
    }
}
