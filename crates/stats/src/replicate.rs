//! Parallel replication harness with deterministic seeding.

use crate::ErrorStats;

/// A sensible thread count for the experiment harness: the machine's
/// available parallelism capped at 16 (the workloads are memory-light and
/// scale linearly well past that, but the experiments don't need more).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get().min(16))
}

/// Run `reps` independent replicates of `trial` on [`default_threads`]
/// threads and collect the error statistics.
///
/// `trial(replicate_index)` returns one `(truth, estimate)` pair. The
/// replicate index is the *only* source of randomness handed to the
/// trial — derive RNGs and sketch seeds from it — so results do not
/// depend on the thread count or interleaving.
pub fn replicate<F>(reps: usize, trial: F) -> ErrorStats
where
    F: Fn(u64) -> (f64, f64) + Sync,
{
    replicate_with_threads(reps, default_threads(), trial)
}

/// [`replicate`] with an explicit thread count.
pub fn replicate_with_threads<F>(reps: usize, threads: usize, trial: F) -> ErrorStats
where
    F: Fn(u64) -> (f64, f64) + Sync,
{
    let threads = threads.max(1).min(reps.max(1));
    let trial = &trial;
    let chunks: Vec<ErrorStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut local = ErrorStats::new();
                    // Strided assignment keeps chunk sizes within 1.
                    let mut r = t as u64;
                    while (r as usize) < reps {
                        let (truth, est) = trial(r);
                        local.push(truth, est);
                        r += threads as u64;
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replicate worker panicked"))
            .collect()
    });
    let mut all = ErrorStats::new();
    for c in &chunks {
        all.merge(c);
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_replicate_exactly_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let mask = AtomicU64::new(0);
        let stats = replicate_with_threads(64, 7, |r| {
            let bit = 1u64 << r;
            let prev = mask.fetch_or(bit, Ordering::SeqCst);
            assert_eq!(prev & bit, 0, "replicate {r} ran twice");
            (1.0, 1.0)
        });
        assert_eq!(stats.count(), 64);
        assert_eq!(mask.load(Ordering::SeqCst), u64::MAX);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let trial = |r: u64| (100.0, 100.0 + (r % 7) as f64);
        let a = replicate_with_threads(100, 1, trial);
        let b = replicate_with_threads(100, 8, trial);
        // Same multiset of errors → identical metrics.
        assert!((a.rrmse() - b.rrmse()).abs() < 1e-15);
        assert!((a.l1() - b.l1()).abs() < 1e-15);
        assert!((a.quantile_abs(0.99) - b.quantile_abs(0.99)).abs() < 1e-15);
    }

    #[test]
    fn more_threads_than_reps_is_fine() {
        let s = replicate_with_threads(3, 64, |_| (1.0, 1.0));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn zero_reps_yields_empty_stats() {
        let s = replicate_with_threads(0, 4, |_| unreachable!());
        assert!(s.is_empty());
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
