//! Carter–Wegman universal hashing over the Mersenne prime `p = 2^61 − 1`.
//!
//! This is the construction the paper cites (footnote 1 of §2.2):
//! `h(x) = ((a·x + b) mod p) mod m`. We implement the `(a·x + b) mod p`
//! core as a [`Hasher64`]; the `mod m` (bucket) step is performed by
//! [`crate::HashSplit`] like for every other hash. Byte strings are first
//! compressed with a polynomial rolling hash mod `p` (a standard
//! string-to-field reduction), which keeps the per-pair collision bound of
//! order `len / p`.

use crate::splitmix::mix64;
use crate::traits::{FromSeed, Hasher64};

/// The Mersenne prime `2^61 − 1`.
pub const MERSENNE_P: u64 = (1 << 61) - 1;

#[inline]
fn mod_mersenne(x: u128) -> u64 {
    // Fold twice: after one fold the value is < 2^62 + 2^61, after the
    // second it is < 2^61 + 1, so a single conditional subtract finishes.
    let p = u128::from(MERSENNE_P);
    let folded = (x & p) + (x >> 61);
    let folded = (folded & p) + (folded >> 61);
    let r = folded as u64;
    if r >= MERSENNE_P {
        r - MERSENNE_P
    } else {
        r
    }
}

#[inline]
fn mul_mod(a: u64, b: u64) -> u64 {
    mod_mersenne(u128::from(a) * u128::from(b))
}

/// Carter–Wegman universal hashing over `p = 2^61 − 1`.
///
/// Two *independently keyed* affine maps `(a1·x + b1) mod p` and
/// `(a2·x + b2) mod p` supply the high and low 32 output bits. The split
/// matters for the S-bitmap: Theorem 1 of the paper requires the bucket
/// choice and the sampling word to be independent, and [`crate::HashSplit`]
/// carves them from disjoint output bits — a *single* affine map would
/// make them deterministic functions of each other (pairwise independence
/// across items says nothing about independence across the bit positions
/// of one hash). The paper's own algorithm likewise uses universal hashing
/// separately for the bucket location and for sampling (§3).
#[derive(Debug, Clone, Copy)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CarterWegman {
    seed: u64,
    a1: u64,
    b1: u64,
    a2: u64,
    b2: u64,
}

impl CarterWegman {
    /// Create a Carter–Wegman hasher keyed by `seed`.
    pub fn new(seed: u64) -> Self {
        // Derive the coefficient pairs from the seed; force a != 0.
        let a1 = mix64(seed ^ 0xa076_1d64_78bd_642f) % (MERSENNE_P - 1) + 1;
        let b1 = mix64(seed ^ 0xe703_7ed1_a0b4_28db) % MERSENNE_P;
        let a2 = mix64(seed ^ 0x8ebc_6af0_9c88_c6e3) % (MERSENNE_P - 1) + 1;
        let b2 = mix64(seed ^ 0x5896_27dd_4796_9ea9) % MERSENNE_P;
        Self {
            seed,
            a1,
            b1,
            a2,
            b2,
        }
    }

    /// First affine map on a field element.
    #[inline]
    fn affine1(&self, x: u64) -> u64 {
        mod_mersenne(u128::from(self.a1) * u128::from(x) + u128::from(self.b1))
    }

    /// Second affine map on a field element.
    #[inline]
    fn affine2(&self, x: u64) -> u64 {
        mod_mersenne(u128::from(self.a2) * u128::from(x) + u128::from(self.b2))
    }

    /// A value in `[0, p)` scaled to 32 bits (fixed-point stretch).
    #[inline]
    fn top32(v: u64) -> u64 {
        ((u128::from(v) << 32) / u128::from(MERSENNE_P)) as u64
    }

    /// Combine the two affine images into one 64-bit output word.
    #[inline]
    fn combine(&self, x: u64) -> u64 {
        (Self::top32(self.affine1(x)) << 32) | Self::top32(self.affine2(x))
    }
}

impl FromSeed for CarterWegman {
    fn from_seed(seed: u64) -> Self {
        Self::new(seed)
    }
}

impl Hasher64 for CarterWegman {
    fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        // Polynomial compression mod p with base derived from `a1`.
        let base = self.a1 | 1;
        let mut acc: u64 = bytes.len() as u64;
        let mut chunks = bytes.chunks_exact(7);
        for chunk in &mut chunks {
            let mut w = [0u8; 8];
            w[..7].copy_from_slice(chunk);
            // 56-bit word < p, safe as a field element.
            acc = mod_mersenne(u128::from(mul_mod(acc, base)) + u128::from(u64::from_le_bytes(w)));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            w[7] = rem.len() as u8;
            acc = mod_mersenne(
                u128::from(mul_mod(acc, base)) + u128::from(u64::from_le_bytes(w) & MERSENNE_P),
            );
        }
        self.combine(acc)
    }

    #[inline]
    fn hash_u64(&self, x: u64) -> u64 {
        // Fold the 64-bit input into a field element without loss:
        // multiply the low 61 bits by a1 and add the high 3 bits.
        let lo = x & MERSENNE_P;
        let hi = x >> 61;
        let folded = mod_mersenne(u128::from(mul_mod(lo, self.a1)) + u128::from(hi));
        self.combine(folded)
    }

    fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_mersenne_matches_naive() {
        let cases: [u128; 6] = [
            0,
            1,
            u128::from(MERSENNE_P),
            u128::from(MERSENNE_P) + 1,
            u128::from(u64::MAX),
            u128::MAX,
        ];
        for &x in &cases {
            assert_eq!(
                u128::from(mod_mersenne(x)),
                x % u128::from(MERSENNE_P),
                "x={x}"
            );
        }
    }

    #[test]
    fn affine_outputs_in_field() {
        let h = CarterWegman::new(99);
        for x in 0..1000u64 {
            assert!(h.affine1(x) < MERSENNE_P);
            assert!(h.affine2(x) < MERSENNE_P);
        }
    }

    #[test]
    fn distinct_u64_inputs_rarely_collide() {
        let h = CarterWegman::new(5);
        let mut seen = std::collections::HashSet::new();
        for x in 0..100_000u64 {
            seen.insert(h.hash_u64(x));
        }
        // Two independent 32-bit halves: expected collisions
        // ~ (1e5)²/2^65 ≈ 0 (each half alone would see a few).
        assert!(seen.len() >= 99_995, "{} distinct", seen.len());
    }

    #[test]
    fn high_and_low_halves_are_decorrelated() {
        // Sequential inputs: the high half must not determine the low
        // half. Check a crude independence proxy: the correlation of the
        // two halves' top bits is near zero.
        let h = CarterWegman::new(11);
        let n = 40_000u64;
        let (mut hi1, mut lo1, mut both) = (0u32, 0u32, 0u32);
        for x in 0..n {
            let v = h.hash_u64(x);
            let a = (v >> 63) & 1;
            let b = (v >> 31) & 1;
            hi1 += a as u32;
            lo1 += b as u32;
            both += (a & b) as u32;
        }
        let pa = f64::from(hi1) / n as f64;
        let pb = f64::from(lo1) / n as f64;
        let pab = f64::from(both) / n as f64;
        assert!((pab - pa * pb).abs() < 0.01, "corr proxy {}", pab - pa * pb);
    }

    #[test]
    fn top32_covers_high_bits() {
        let h = CarterWegman::new(11);
        let any_high = (0..1000u64).any(|x| h.hash_u64(x) >> 63 == 1);
        assert!(any_high);
    }

    #[test]
    fn bytes_rolling_hash_is_position_sensitive() {
        let h = CarterWegman::new(3);
        assert_ne!(h.hash_bytes(b"ab"), h.hash_bytes(b"ba"));
        assert_ne!(h.hash_bytes(b"ab"), h.hash_bytes(b"ab\0"));
    }
}
