//! Deterministic pseudo-random number generation for the simulation and
//! experiment harness.
//!
//! Two generators are provided, both implemented from their published
//! descriptions (Vigna, 2015/2018):
//!
//! * [`SplitMix64`] — a tiny 64-bit state generator, used for seeding and
//!   for stream derivation;
//! * [`Xoshiro256StarStar`] — the workhorse generator used by the
//!   experiment harness (fast, 256-bit state, passes BigCrush).
//!
//! On top of the raw generators, [`Rng`] (implemented by both) provides the
//! distributions the paper's experiments require: uniform variates,
//! Bernoulli trials, geometric waiting times (Lemma 1's `T_k − T_{k−1}`),
//! Gaussian/log-normal variates (synthetic traffic traces), and integer
//! ranges / shuffles (workload generation).

/// Uniform random source plus the derived distributions the workspace uses.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53-bit resolution.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits: (0..2^53) / 2^53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1]` (safe for `ln`).
    #[inline]
    fn next_f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be positive.
    ///
    /// Uses the widening-multiply reduction with rejection of the biased
    /// region (Lemire 2019), so the result is exactly uniform.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// A Bernoulli(`p`) trial.
    #[inline]
    fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A Geometric(`p`) waiting time on `{1, 2, …}`: the number of trials
    /// up to and including the first success. This is the distribution of
    /// the paper's `T_k − T_{k−1}` increments (Lemma 1).
    ///
    /// Sampled by inversion: `⌊ln U / ln(1−p)⌋ + 1` with `U ∈ (0, 1]`.
    fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric needs p in (0,1], got {p}");
        if p >= 1.0 {
            return 1;
        }
        let u = self.next_f64_open();
        let x = (u.ln() / (-p).ln_1p()).floor();
        // Guard against pathological rounding for sub-normal p.
        if x >= (u64::MAX - 1) as f64 {
            u64::MAX
        } else {
            x as u64 + 1
        }
    }

    /// A standard normal variate (Box–Muller, fresh pair each call; the
    /// second value of the pair is discarded to keep the trait stateless).
    fn normal(&mut self) -> f64 {
        let u1 = self.next_f64_open();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal variate with the given mean and standard deviation.
    #[inline]
    fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }

    /// A log-normal variate: `exp(N(mu, sigma))`.
    #[inline]
    fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal_with(mu, sigma).exp()
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// SplitMix64 generator (Vigna). One 64-bit word of state; every call
/// advances by the golden-ratio increment and finalizes with
/// [`crate::mix64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derive an independent stream for `(self.seed, stream)` pairs —
    /// used to give every experiment replicate its own generator.
    pub fn derive(&self, stream: u64) -> Self {
        let mut g =
            Self::new(self.state ^ crate::mix64(stream.wrapping_add(0xd1b5_4a32_d192_ed03)));
        g.state = g.next_u64();
        Self { state: g.state }
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        crate::mix64(self.state)
    }
}

/// xoshiro256** generator (Blackman & Vigna, 2018).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Create from a seed, expanding it through SplitMix64 as the authors
    /// recommend (avoids the all-zero state).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Derive an independent generator for a substream.
    pub fn derive(&self, stream: u64) -> Self {
        Self::new(self.s[0] ^ crate::mix64(stream.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1))
    }
}

impl Rng for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::new(0xfeed_beef)
    }

    #[test]
    fn deterministic_streams() {
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_gives_distinct_streams() {
        let base = rng();
        let mut d1 = base.derive(1);
        let mut d2 = base.derive(2);
        let equal = (0..100).filter(|_| d1.next_u64() == d2.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = rng();
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = g.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn uniform_mean_and_variance() {
        let mut g = rng();
        let n = 100_000;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = g.next_f64();
            s += x;
            s2 += x * x;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn next_below_is_unbiased_at_edges() {
        let mut g = rng();
        let bound = 3u64;
        let mut counts = [0u32; 3];
        let n = 90_000;
        for _ in 0..n {
            counts[g.next_below(bound) as usize] += 1;
        }
        for &c in &counts {
            let p = c as f64 / n as f64;
            assert!((p - 1.0 / 3.0).abs() < 0.01, "p={p}");
        }
    }

    #[test]
    fn geometric_mean_matches_inverse_p() {
        let mut g = rng();
        for &p in &[0.5, 0.1, 0.01] {
            let n = 50_000;
            let mean: f64 = (0..n).map(|_| g.geometric(p) as f64).sum::<f64>() / n as f64;
            let expect = 1.0 / p;
            assert!(
                (mean / expect - 1.0).abs() < 0.05,
                "p={p} mean={mean} expect={expect}"
            );
        }
    }

    #[test]
    fn geometric_p_one_is_always_one() {
        let mut g = rng();
        for _ in 0..100 {
            assert_eq!(g.geometric(1.0), 1);
        }
    }

    #[test]
    fn normal_moments() {
        let mut g = rng();
        let n = 200_000;
        let (mut s, mut s2) = (0.0, 0.0);
        for _ in 0..n {
            let x = g.normal();
            s += x;
            s2 += x * x;
        }
        let mean = s / n as f64;
        let var = s2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = rng();
        let mut v: Vec<u32> = (0..1000).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        // And it actually moved things.
        assert_ne!(v, sorted);
    }

    #[test]
    fn splitmix_matches_reference_first_outputs() {
        // Reference outputs for seed = 1234567 from Vigna's splitmix64.c.
        let mut g = SplitMix64::new(1234567);
        let first = g.next_u64();
        let second = g.next_u64();
        assert_ne!(first, second);
        // Determinism lock (self-vector): regenerating must reproduce.
        let mut h = SplitMix64::new(1234567);
        assert_eq!(h.next_u64(), first);
        assert_eq!(h.next_u64(), second);
    }
}
