//! Hashing and pseudo-randomness substrate for the S-bitmap workspace.
//!
//! The S-bitmap paper (Chen, Cao, Shepp, Nguyen; ICDE 2009) assumes a
//! *universal hash function* that maps every item to an effectively uniform
//! bit string, part of which selects a bucket and part of which drives the
//! sequential sampling decision. This crate provides:
//!
//! * [`Hasher64`] — the trait every stream hash implements, plus four
//!   implementations built from scratch:
//!   [`SplitMix64Hasher`] (default: one multiply-xorshift chain),
//!   [`Xxh64`] (the XXH64 algorithm), [`Murmur3`] (MurmurHash3 x64
//!   finalizer family) and [`CarterWegman`] (the classic
//!   `((a·x + b) mod p) mod m` universal hash over the Mersenne prime
//!   `2^61 − 1`, the construction cited by the paper).
//! * [`HashSplit`] — the paper's `c + d` bit-splitting scheme generalized
//!   to 64-bit hashes: the high 32 bits pick a bucket in `{0, …, m−1}`
//!   (no power-of-two restriction, via Lemire's fastrange) and the low
//!   `d ≤ 32` bits form the sampling fraction `u`.
//! * [`rng`] — deterministic PRNGs ([`rng::SplitMix64`],
//!   [`rng::Xoshiro256StarStar`]) and the handful of distributions the
//!   simulation studies need (uniform, Bernoulli, geometric, normal,
//!   log-normal, Zipf). Implemented locally so every experiment is
//!   reproducible from a single `u64` seed with no external RNG crate.
//!
//! # Example
//!
//! ```
//! use sbitmap_hash::{Hasher64, SplitMix64Hasher, HashSplit};
//!
//! let hasher = SplitMix64Hasher::new(42);
//! let split = HashSplit::new(4096, 32).unwrap();
//! let h = hasher.hash_bytes(b"192.0.2.7:443 -> 198.51.100.3:80 tcp");
//! let (bucket, fraction) = split.split(h);
//! assert!(bucket < 4096);
//! assert!(fraction < (1u64 << 32));
//! ```

// `unsafe` is denied, not forbidden: the one exception is the AVX2
// batch-hash kernel in `simd`, whose intrinsics are reachable only
// after runtime feature detection (see that module's docs).
#![warn(missing_docs)]
#![deny(unsafe_code)]

mod carter_wegman;
mod murmur3;
pub mod quality;
pub mod rng;
pub mod simd;
mod split;
mod splitmix;
mod traits;
mod xxh64;

pub use carter_wegman::CarterWegman;
pub use murmur3::Murmur3;
pub use split::HashSplit;
pub use splitmix::{mix64, SplitMix64Hasher};
pub use traits::{for_each_hash_u64, FromSeed, HashKind, Hasher64};
pub use xxh64::{xxh64, Xxh64};
