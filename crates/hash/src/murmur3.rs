//! MurmurHash3 x64_128, implemented from Austin Appleby's public domain
//! reference (`MurmurHash3_x64_128`). We expose the low 64 bits of the
//! 128-bit digest as the stream hash.

use crate::traits::{FromSeed, Hasher64};

const C1: u64 = 0x87c3_7b91_1142_53d5;
const C2: u64 = 0x4cf5_ad43_2745_937f;

#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^ (k >> 33)
}

/// One-shot MurmurHash3 x64_128; returns `(h1, h2)`.
pub fn murmur3_x64_128(bytes: &[u8], seed: u64) -> (u64, u64) {
    let len = bytes.len();
    let mut h1 = seed;
    let mut h2 = seed;

    let mut blocks = bytes.chunks_exact(16);
    for block in &mut blocks {
        let mut k1 = u64::from_le_bytes(block[..8].try_into().expect("8 bytes"));
        let mut k2 = u64::from_le_bytes(block[8..].try_into().expect("8 bytes"));

        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1
            .rotate_left(27)
            .wrapping_add(h2)
            .wrapping_mul(5)
            .wrapping_add(0x52dc_e729);

        k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2
            .rotate_left(31)
            .wrapping_add(h1)
            .wrapping_mul(5)
            .wrapping_add(0x3849_5ab5);
    }

    let tail = blocks.remainder();
    let mut k1: u64 = 0;
    let mut k2: u64 = 0;
    // Reference implementation's fall-through switch, written as loops.
    for (i, &b) in tail.iter().enumerate().skip(8) {
        k2 ^= u64::from(b) << ((i - 8) * 8);
    }
    if tail.len() > 8 {
        k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        h2 ^= k2;
    }
    for (i, &b) in tail.iter().enumerate().take(8) {
        k1 ^= u64::from(b) << (i * 8);
    }
    if !tail.is_empty() {
        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= len as u64;
    h2 ^= len as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

/// Seeded MurmurHash3 (x64_128, low word) stream hasher.
#[derive(Debug, Clone, Copy, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Murmur3 {
    seed: u64,
}

impl Murmur3 {
    /// Create a Murmur3 hasher keyed by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl FromSeed for Murmur3 {
    fn from_seed(seed: u64) -> Self {
        Self::new(seed)
    }
}

impl Hasher64 for Murmur3 {
    fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        murmur3_x64_128(bytes, self.seed).0
    }

    fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_seed_zero_is_zero() {
        // Documented property of the reference implementation.
        assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
    }

    #[test]
    fn tail_lengths_all_distinct() {
        // Exercise every tail length 1..=15 plus one full block.
        let data = b"0123456789abcdefXYZ";
        let mut seen = std::collections::HashSet::new();
        for l in 0..=data.len() {
            assert!(
                seen.insert(murmur3_x64_128(&data[..l], 7)),
                "len {l} collided"
            );
        }
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(murmur3_x64_128(b"abc", 0), murmur3_x64_128(b"abc", 1));
    }

    #[test]
    fn deterministic() {
        let h = Murmur3::new(3);
        assert_eq!(h.hash_bytes(b"flow"), h.hash_bytes(b"flow"));
    }
}
