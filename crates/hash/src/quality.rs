//! Hash-quality measurement: avalanche and uniformity statistics.
//!
//! The paper's analysis assumes ideal uniform hashing; these routines are
//! the practical check that an implementation is close enough. They are
//! used by this crate's test suite and by the hash ablation experiment,
//! and exported so downstream users can vet their own [`Hasher64`]
//! implementations before trusting the sketch error bounds (the
//! Carter–Wegman finding in EXPERIMENTS.md shows this is not a
//! hypothetical concern).

use crate::traits::Hasher64;

/// Result of an avalanche test: how close every (input bit → output bit)
/// flip probability is to the ideal 1/2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvalancheReport {
    /// Largest deviation `|p − 0.5|` over all 64×64 bit pairs.
    pub max_bias: f64,
    /// Mean deviation over all bit pairs.
    pub mean_bias: f64,
    /// Number of sampled inputs.
    pub samples: usize,
}

/// Measure avalanche behaviour of `hasher` on `samples` pseudo-random
/// inputs: for every input bit `i`, flip it and record which output bits
/// change. Ideal hashes flip every output bit with probability 1/2.
pub fn avalanche(hasher: &dyn Hasher64, samples: usize) -> AvalancheReport {
    assert!(samples > 0, "need at least one sample");
    let mut flip_counts = [[0u32; 64]; 64];
    let mut x = 0x0123_4567_89ab_cdefu64;
    for _ in 0..samples {
        x = crate::mix64(x.wrapping_add(0x9e37_79b9_7f4a_7c15));
        let base = hasher.hash_u64(x);
        for (i, counts) in flip_counts.iter_mut().enumerate() {
            let diff = base ^ hasher.hash_u64(x ^ (1u64 << i));
            for (j, count) in counts.iter_mut().enumerate() {
                *count += ((diff >> j) & 1) as u32;
            }
        }
    }
    let mut max_bias = 0.0f64;
    let mut total = 0.0f64;
    for counts in &flip_counts {
        for &c in counts {
            let bias = (f64::from(c) / samples as f64 - 0.5).abs();
            max_bias = max_bias.max(bias);
            total += bias;
        }
    }
    AvalancheReport {
        max_bias,
        mean_bias: total / (64.0 * 64.0),
        samples,
    }
}

/// Chi-squared statistic of bucket occupancy when hashing `0..n` into
/// `buckets` via the top-32-bit fastrange (the sketch's bucket path).
/// For a uniform hash this is approximately chi²(buckets − 1): mean
/// `buckets − 1`, sd `sqrt(2(buckets − 1))`.
pub fn bucket_chi2(hasher: &dyn Hasher64, n: u64, buckets: usize) -> f64 {
    assert!(buckets > 1, "need at least 2 buckets");
    let mut counts = vec![0u32; buckets];
    let m = buckets as u64;
    for i in 0..n {
        let h = hasher.hash_u64(i);
        counts[(((h >> 32) * m) >> 32) as usize] += 1;
    }
    let expect = n as f64 / buckets as f64;
    counts
        .iter()
        .map(|&c| {
            let d = f64::from(c) - expect;
            d * d / expect
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HashKind, Murmur3, SplitMix64Hasher, Xxh64};

    #[test]
    fn strong_hashes_have_full_avalanche() {
        // 300 samples x 64 flips: per-cell sd ≈ 0.029; demand < 5 sigma.
        for hasher in [
            Box::new(SplitMix64Hasher::new(1)) as Box<dyn crate::Hasher64>,
            Box::new(Xxh64::new(1)),
            Box::new(Murmur3::new(1)),
        ] {
            let r = avalanche(&*hasher, 300);
            assert!(r.max_bias < 0.15, "max bias {}", r.max_bias);
            assert!(r.mean_bias < 0.03, "mean bias {}", r.mean_bias);
        }
    }

    #[test]
    fn carter_wegman_avalanche_is_weak() {
        // The 2-universal affine map is *not* an avalanche function: some
        // input bits barely influence some output bits. This is the
        // structural root of the sequential-key failure documented in
        // EXPERIMENTS.md.
        let cw = HashKind::CarterWegman.build(1);
        let r = avalanche(&*cw, 300);
        assert!(
            r.max_bias > 0.15,
            "expected weak avalanche for CW, max bias {}",
            r.max_bias
        );
    }

    #[test]
    fn bucket_chi2_in_range_for_strong_hashes() {
        let buckets = 256;
        let dof = (buckets - 1) as f64;
        for kind in [HashKind::SplitMix64, HashKind::Xxh64, HashKind::Murmur3] {
            let h = kind.build(3);
            let chi2 = bucket_chi2(&*h, 100_000, buckets);
            // Within 6 sd of the chi² mean.
            assert!(
                (chi2 - dof).abs() < 6.0 * (2.0 * dof).sqrt(),
                "{}: chi2 {chi2}",
                kind.name()
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn avalanche_rejects_zero_samples() {
        avalanche(&SplitMix64Hasher::new(1), 0);
    }
}
