//! The paper's `c + d` hash-bit split, generalized to 64-bit hashes and
//! arbitrary (non power-of-two) bucket counts.
//!
//! Algorithm 2 of the paper maps each item to `c + d` hashed bits: the
//! first `c` select a bucket in a bitmap of size `m = 2^c`, the last `d`
//! form an integer `u` compared against the scaled sampling rate
//! (`u·2^{−d} < p`). We keep the same structure but draw both parts from
//! one 64-bit hash: the high 32 bits select the bucket with Lemire's
//! fastrange reduction (which removes the power-of-two restriction on `m`),
//! and the low `d ≤ 32` bits form `u`.

/// Splits a 64-bit hash into a bucket index and a `d`-bit sampling word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HashSplit {
    m: u64,
    d: u32,
}

impl HashSplit {
    /// Create a splitter for `m` buckets using `d` sampling bits.
    ///
    /// # Errors
    ///
    /// Returns an error string if `m == 0`, `m > 2^32` (the bucket half of
    /// the hash is 32 bits wide), or `d ∉ [1, 32]`.
    pub fn new(m: usize, d: u32) -> Result<Self, String> {
        if m == 0 {
            return Err("bucket count m must be positive".into());
        }
        if m as u128 > 1 << 32 {
            return Err(format!("bucket count m={m} exceeds 2^32"));
        }
        if d == 0 || d > 32 {
            return Err(format!("sampling width d={d} must be in 1..=32"));
        }
        Ok(Self { m: m as u64, d })
    }

    /// Number of buckets.
    #[inline]
    pub fn buckets(&self) -> usize {
        self.m as usize
    }

    /// Width of the sampling word in bits (the paper's `d`).
    #[inline]
    pub fn sampling_bits(&self) -> u32 {
        self.d
    }

    /// `2^d`, the denominator of the sampling comparison.
    #[inline]
    pub fn sampling_range(&self) -> u64 {
        1u64 << self.d
    }

    /// Split a hash into `(bucket, u)` with `bucket < m` and `u < 2^d`.
    ///
    /// The two halves come from disjoint hash bits, so they are independent
    /// under the uniform-hash assumption — the property Theorem 1 of the
    /// paper needs (`S_t ⫫ I_t`).
    #[inline]
    pub fn split(&self, hash: u64) -> (usize, u64) {
        let hi = hash >> 32;
        let bucket = (hi * self.m) >> 32; // fastrange over the high 32 bits
        let u = hash & (self.sampling_range() - 1);
        (bucket as usize, u)
    }

    /// Convert a probability `p ∈ [0, 1]` into the `d`-bit threshold `t`
    /// such that `u < t  ⇔  u·2^{−d} < p` (up to quantization: the achieved
    /// rate is `t·2^{−d}`, the closest representable value not above... the
    /// ceiling is used so small positive rates never quantize to zero).
    #[inline]
    pub fn threshold(&self, p: f64) -> u64 {
        if p >= 1.0 {
            return self.sampling_range();
        }
        if p <= 0.0 {
            return 0;
        }
        let scaled = (p * self.sampling_range() as f64).ceil() as u64;
        scaled.min(self.sampling_range()).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Hasher64, SplitMix64Hasher};

    #[test]
    fn rejects_bad_parameters() {
        assert!(HashSplit::new(0, 32).is_err());
        assert!(HashSplit::new(8, 0).is_err());
        assert!(HashSplit::new(8, 33).is_err());
        assert!(HashSplit::new(1 << 33, 32).is_err());
        assert!(HashSplit::new(1, 1).is_ok());
    }

    #[test]
    fn split_ranges_hold() {
        let s = HashSplit::new(1000, 20).unwrap();
        let h = SplitMix64Hasher::new(1);
        for i in 0..10_000u64 {
            let (b, u) = s.split(h.hash_u64(i));
            assert!(b < 1000);
            assert!(u < 1 << 20);
        }
    }

    #[test]
    fn buckets_are_roughly_uniform() {
        let m = 64;
        let s = HashSplit::new(m, 32).unwrap();
        let h = SplitMix64Hasher::new(2);
        let n = 64_000u64;
        let mut counts = vec![0u32; m];
        for i in 0..n {
            counts[s.split(h.hash_u64(i)).0] += 1;
        }
        let expect = (n as usize / m) as f64;
        // chi^2 with 63 dof; 200 is far beyond the 99.9% point (~104)
        let chi2: f64 = counts
            .iter()
            .map(|&c| (c as f64 - expect).powi(2) / expect)
            .sum();
        assert!(chi2 < 200.0, "chi2 = {chi2}");
    }

    #[test]
    fn threshold_edge_cases() {
        let s = HashSplit::new(16, 8).unwrap();
        assert_eq!(s.threshold(1.0), 256);
        assert_eq!(s.threshold(0.0), 0);
        assert_eq!(s.threshold(0.5), 128);
        // Tiny positive rates never quantize to zero.
        assert_eq!(s.threshold(1e-12), 1);
        assert_eq!(s.threshold(2.0), 256);
        assert_eq!(s.threshold(-0.5), 0);
    }

    #[test]
    fn threshold_monotone_in_p() {
        let s = HashSplit::new(16, 16).unwrap();
        let mut last = 0;
        for i in 0..=1000 {
            let t = s.threshold(i as f64 / 1000.0);
            assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn sampling_acceptance_rate_matches_threshold() {
        let s = HashSplit::new(16, 32).unwrap();
        let h = SplitMix64Hasher::new(3);
        let p = 0.125;
        let t = s.threshold(p);
        let n = 200_000u64;
        let accepted = (0..n).filter(|&i| s.split(h.hash_u64(i)).1 < t).count();
        let rate = accepted as f64 / n as f64;
        assert!((rate - p).abs() < 0.005, "rate = {rate}");
    }
}
