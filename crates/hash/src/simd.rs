//! Runtime-dispatched AVX2 batch hashing for [`crate::SplitMix64Hasher`].
//!
//! The batched ingest paths (`SBitmap::insert_u64s`, the fleet arena's
//! per-slot ingest, the collector nodes) hash whole slices through
//! [`crate::Hasher64::hash_u64_batch`] before probing. The SplitMix64
//! chain is two [`crate::mix64`] rounds — xorshifts and 64-bit
//! multiplies — which vectorize cleanly to 4 lanes per `__m256i` (the
//! 64-bit multiply is emulated with three `vpmuludq` partial products,
//! the standard AVX2 idiom).
//!
//! The dispatch **decision** is not made here: it delegates to
//! `sbitmap_bitvec::kernels` (one `is_x86_feature_detected!("avx2")`
//! probe cached per process, `SBITMAP_FORCE_SCALAR=1` pins scalar), so
//! the hash kernel and the word kernels always sit on the same side of
//! the switch — the single `"simd"` value every `BENCH_*.json` header
//! records describes both. The two hash paths are locked bit-identical
//! by this crate's tests plus the workspace `tests/kernel_parity.rs`
//! suite (every hash is compared against the scalar
//! [`crate::Hasher64::hash_u64`]).

/// `true` when the process dispatched to the AVX2 kernel family (the
/// one decision shared with `sbitmap_bitvec::kernels`).
pub fn avx2_enabled() -> bool {
    sbitmap_bitvec::kernels::active_path() == "avx2"
}

/// The dispatched hash path name: `"avx2"` or `"scalar"` — by
/// construction identical to `sbitmap_bitvec::kernels::active_path`.
pub fn active_path() -> &'static str {
    sbitmap_bitvec::kernels::active_path()
}

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2 {
    //! The 4-lane SplitMix64 batch kernel. All `unsafe` in this crate
    //! lives here; the intrinsic body is reached only through
    //! [`hash_u64_batch`], which the caller gates on
    //! [`super::avx2_enabled`].
    #![allow(unsafe_code)]

    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_loadu_si256, _mm256_mul_epu32, _mm256_set1_epi64x,
        _mm256_slli_epi64, _mm256_srli_epi64, _mm256_storeu_si256, _mm256_xor_si256,
    };

    /// Lane-wise `a.wrapping_mul(b)` for 4×`u64`: three 32×32→64
    /// partial products (`lo·lo + ((hi·lo + lo·hi) << 32)`), since AVX2
    /// has no 64-bit multiply.
    #[inline(always)]
    unsafe fn mul64(a: __m256i, b: __m256i) -> __m256i {
        let lo_lo = _mm256_mul_epu32(a, b);
        let hi_lo = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), b);
        let lo_hi = _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32));
        let cross = _mm256_add_epi64(hi_lo, lo_hi);
        _mm256_add_epi64(lo_lo, _mm256_slli_epi64(cross, 32))
    }

    /// Lane-wise [`crate::mix64`] (Stafford variant 13).
    #[inline(always)]
    unsafe fn mix64x4(mut z: __m256i, c1: __m256i, c2: __m256i) -> __m256i {
        z = mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)), c1);
        z = mul64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)), c2);
        _mm256_xor_si256(z, _mm256_srli_epi64(z, 31))
    }

    #[target_feature(enable = "avx2")]
    unsafe fn hash_u64_batch_impl(seed: u64, key: u64, items: &[u64], out: &mut [u64]) {
        let c1 = _mm256_set1_epi64x(0xbf58_476d_1ce4_e5b9u64 as i64);
        let c2 = _mm256_set1_epi64x(0x94d0_49bb_1331_11ebu64 as i64);
        let key_v = _mm256_set1_epi64x(key as i64);
        let seed_v = _mm256_set1_epi64x(seed as i64);
        let mut src = items.chunks_exact(4);
        let mut dst = out.chunks_exact_mut(4);
        for (s, d) in (&mut src).zip(&mut dst) {
            let x = _mm256_loadu_si256(s.as_ptr().cast());
            // hash_u64: mix64(mix64(x ^ key) + seed), lane-wise.
            let h = mix64x4(
                _mm256_add_epi64(mix64x4(_mm256_xor_si256(x, key_v), c1, c2), seed_v),
                c1,
                c2,
            );
            _mm256_storeu_si256(d.as_mut_ptr().cast(), h);
        }
        for (o, &x) in dst.into_remainder().iter_mut().zip(src.remainder()) {
            *o = crate::mix64(crate::mix64(x ^ key).wrapping_add(seed));
        }
    }

    /// Hash `items` into `out` with the 4-lane AVX2 kernel; bit-identical
    /// to the scalar [`crate::Hasher64::hash_u64`] per element. The
    /// caller must have checked [`super::avx2_enabled`] (slice lengths
    /// are checked by the trait-level wrapper).
    pub(crate) fn hash_u64_batch(seed: u64, key: u64, items: &[u64], out: &mut [u64]) {
        // SAFETY: every call site is gated on `avx2_enabled()`, which
        // only returns true after `is_x86_feature_detected!("avx2")`.
        unsafe { hash_u64_batch_impl(seed, key, items, out) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_name_matches_dispatch() {
        assert_eq!(
            active_path(),
            if avx2_enabled() { "avx2" } else { "scalar" }
        );
    }
}
