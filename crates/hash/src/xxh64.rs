//! XXH64 — the 64-bit xxHash algorithm, implemented from the public
//! specification (<https://github.com/Cyan4973/xxHash/blob/dev/doc/xxhash_spec.md>).
//!
//! Included as an alternative stream hash for the hash-choice ablation and
//! verified against the reference test vectors.

use crate::traits::{FromSeed, Hasher64};

const PRIME64_1: u64 = 0x9e37_79b1_85eb_ca87;
const PRIME64_2: u64 = 0xc2b2_ae3d_27d4_eb4f;
const PRIME64_3: u64 = 0x1656_67b1_9e37_79f9;
const PRIME64_4: u64 = 0x85eb_ca77_c2b2_ae63;
const PRIME64_5: u64 = 0x27d4_eb2f_1656_67c5;

#[inline]
fn round(acc: u64, lane: u64) -> u64 {
    acc.wrapping_add(lane.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^ (h >> 32)
}

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8 bytes"))
}

#[inline]
fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("4 bytes"))
}

/// One-shot XXH64 of `bytes` with `seed`.
pub fn xxh64(bytes: &[u8], seed: u64) -> u64 {
    let len = bytes.len();
    let mut input = bytes;

    let mut h: u64 = if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while input.len() >= 32 {
            v1 = round(v1, read_u64(&input[0..]));
            v2 = round(v2, read_u64(&input[8..]));
            v3 = round(v3, read_u64(&input[16..]));
            v4 = round(v4, read_u64(&input[24..]));
            input = &input[32..];
        }
        let mut h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        merge_round(h, v4)
    } else {
        seed.wrapping_add(PRIME64_5)
    };

    h = h.wrapping_add(len as u64);

    while input.len() >= 8 {
        h ^= round(0, read_u64(input));
        h = h
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        input = &input[8..];
    }
    if input.len() >= 4 {
        h ^= u64::from(read_u32(input)).wrapping_mul(PRIME64_1);
        h = h
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        input = &input[4..];
    }
    for &byte in input {
        h ^= u64::from(byte).wrapping_mul(PRIME64_5);
        h = h.rotate_left(11).wrapping_mul(PRIME64_1);
    }

    avalanche(h)
}

/// Seeded XXH64 stream hasher.
#[derive(Debug, Clone, Copy, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Xxh64 {
    seed: u64,
}

impl Xxh64 {
    /// Create an XXH64 hasher keyed by `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl FromSeed for Xxh64 {
    fn from_seed(seed: u64) -> Self {
        Self::new(seed)
    }
}

impl Hasher64 for Xxh64 {
    fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        xxh64(bytes, self.seed)
    }

    #[inline]
    fn hash_u64(&self, x: u64) -> u64 {
        // Fixed-width specialization of the spec's <32-byte path for an
        // 8-byte input; identical output to hash_bytes(&x.to_le_bytes()).
        let mut h = self.seed.wrapping_add(PRIME64_5).wrapping_add(8);
        h ^= round(0, x);
        h = h
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        avalanche(h)
    }

    fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors from the xxHash repository / widely published.
    #[test]
    fn reference_vectors_seed_zero() {
        assert_eq!(xxh64(b"", 0), 0xef46_db37_51d8_e999);
        assert_eq!(xxh64(b"a", 0), 0xd24e_c4f1_a98c_6e5b);
        assert_eq!(xxh64(b"abc", 0), 0x44bc_2cf5_ad77_0999);
    }

    #[test]
    fn long_input_exercises_stripe_path() {
        let data: Vec<u8> = (0..=255u8).collect();
        // Not a published vector; locks in our implementation so future
        // refactors cannot silently change it.
        let h = xxh64(&data, 0);
        assert_eq!(h, xxh64(&data, 0));
        assert_ne!(h, xxh64(&data[..255], 0));
        assert_ne!(h, xxh64(&data, 1));
    }

    #[test]
    fn hash_u64_matches_bytes_path() {
        let h = Xxh64::new(0xdead_beef);
        for x in [0u64, 1, 42, u64::MAX, 0x0123_4567_89ab_cdef] {
            assert_eq!(h.hash_u64(x), h.hash_bytes(&x.to_le_bytes()));
        }
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(xxh64(b"abc", 0), xxh64(b"abc", 1));
    }
}
