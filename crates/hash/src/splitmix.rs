//! SplitMix64-style finalizer hash — the workspace default.
//!
//! The core primitive is [`mix64`], David Stafford's "variant 13" of the
//! MurmurHash3 64-bit finalizer, which is also the output function of
//! Vigna's SplitMix64 generator. It is a bijection on `u64` with full
//! avalanche (every input bit flips every output bit with probability
//! ≈ 1/2), which makes it an excellent stand-in for the paper's idealized
//! uniform hash when the input is already a machine word.

use crate::traits::{FromSeed, Hasher64};

/// Stafford variant-13 64-bit finalizer (bijective, full avalanche).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded hash built from [`mix64`].
///
/// * `u64` items are hashed with two chained finalizer rounds keyed by the
///   seed — one round is already bijective, the second decorrelates nearby
///   seeds.
/// * Byte strings are consumed 8 bytes at a time through a
///   multiply-accumulate-mix loop (a simplified, scalar XXH3-like shape),
///   then finalized with the length.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SplitMix64Hasher {
    seed: u64,
    key: u64,
}

impl SplitMix64Hasher {
    /// Golden-ratio increment used to derive the internal key from the seed.
    const GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

    /// Create a hasher keyed by `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            key: mix64(seed.wrapping_add(Self::GAMMA)),
        }
    }

    /// The scalar reference for [`Hasher64::hash_u64_batch`]: four
    /// independent mix chains in flight (each chain is ~10 cycles of
    /// multiply/xorshift latency, so interleaving lanes keeps the
    /// multiplier busy instead of paying the full latency per item).
    /// This is what the trait method runs when the AVX2 kernel is
    /// unavailable or `SBITMAP_FORCE_SCALAR=1` is set; it stays public
    /// so differential tests can pin the two paths bit-identical on one
    /// host in one process.
    pub fn hash_u64_batch_scalar(&self, items: &[u64], out: &mut [u64]) {
        assert_eq!(
            items.len(),
            out.len(),
            "hash_u64_batch: input and output lengths differ"
        );
        let mut chunks_in = items.chunks_exact(4);
        let mut chunks_out = out.chunks_exact_mut(4);
        for (src, dst) in (&mut chunks_in).zip(&mut chunks_out) {
            let h0 = mix64(mix64(src[0] ^ self.key).wrapping_add(self.seed));
            let h1 = mix64(mix64(src[1] ^ self.key).wrapping_add(self.seed));
            let h2 = mix64(mix64(src[2] ^ self.key).wrapping_add(self.seed));
            let h3 = mix64(mix64(src[3] ^ self.key).wrapping_add(self.seed));
            dst[0] = h0;
            dst[1] = h1;
            dst[2] = h2;
            dst[3] = h3;
        }
        for (o, &x) in chunks_out
            .into_remainder()
            .iter_mut()
            .zip(chunks_in.remainder())
        {
            *o = self.hash_u64(x);
        }
    }
}

impl Default for SplitMix64Hasher {
    fn default() -> Self {
        Self::new(0)
    }
}

impl FromSeed for SplitMix64Hasher {
    fn from_seed(seed: u64) -> Self {
        Self::new(seed)
    }
}

impl Hasher64 for SplitMix64Hasher {
    fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        let mut acc = self.key ^ (bytes.len() as u64).wrapping_mul(Self::GAMMA);
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            acc = mix64(acc ^ word).wrapping_mul(0x2545_f491_4f6c_dd1d);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            // Tag the tail with its length so "ab" and "ab\0" differ.
            tail[7] ^= rem.len() as u8;
            acc = mix64(acc ^ u64::from_le_bytes(tail));
        }
        mix64(acc)
    }

    #[inline]
    fn hash_u64(&self, x: u64) -> u64 {
        mix64(mix64(x ^ self.key).wrapping_add(self.seed))
    }

    fn hash_u64_batch(&self, items: &[u64], out: &mut [u64]) {
        assert_eq!(
            items.len(),
            out.len(),
            "hash_u64_batch: input and output lengths differ"
        );
        #[cfg(target_arch = "x86_64")]
        if crate::simd::avx2_enabled() {
            crate::simd::avx2::hash_u64_batch(self.seed, self.key, items, out);
            return;
        }
        self.hash_u64_batch_scalar(items, out);
    }

    fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_bijective_on_sample() {
        // A bijection has no collisions; spot-check a dense low range plus
        // scattered high values.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(u64::MAX - i * 0x1234_5678_9abc)));
        }
    }

    #[test]
    fn mix64_known_fixed_points_absent() {
        // mix64(0) is a documented constant of the Stafford-13 mixer family:
        // zero maps to zero (all xor/multiply stages preserve 0).
        assert_eq!(mix64(0), 0);
        assert_ne!(mix64(1), 1);
    }

    #[test]
    fn hash_u64_zero_is_not_zero() {
        // Unlike the raw mixer, the seeded hasher must not fix zero.
        let h = SplitMix64Hasher::new(0);
        assert_ne!(h.hash_u64(0), 0);
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a = SplitMix64Hasher::new(1);
        let b = SplitMix64Hasher::new(2);
        let same = (0..1000u64)
            .filter(|&i| a.hash_u64(i) == b.hash_u64(i))
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn bytes_and_u64_paths_are_deterministic() {
        let h = SplitMix64Hasher::new(7);
        assert_eq!(h.hash_bytes(b"flow-1"), h.hash_bytes(b"flow-1"));
        assert_eq!(h.hash_u64(99), h.hash_u64(99));
    }

    #[test]
    fn batch_matches_scalar_at_every_length() {
        let h = SplitMix64Hasher::new(77);
        // Cover the unrolled body and every remainder length. On an AVX2
        // host this pins the vector kernel to the scalar `hash_u64`.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 64, 1001] {
            let items: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9e37)).collect();
            let mut out = vec![0u64; n];
            h.hash_u64_batch(&items, &mut out);
            for (i, (&x, &got)) in items.iter().zip(&out).enumerate() {
                assert_eq!(got, h.hash_u64(x), "lane {i} of {n}");
            }
        }
    }

    #[test]
    fn dispatched_batch_matches_scalar_reference_batch() {
        let h = SplitMix64Hasher::new(0xfeed_beef);
        for n in [0usize, 1, 3, 4, 5, 8, 63, 257, 1000] {
            let items: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0x9e37_79b9).rotate_left(17))
                .collect();
            let mut dispatched = vec![0u64; n];
            let mut scalar = vec![0u64; n];
            h.hash_u64_batch(&items, &mut dispatched);
            h.hash_u64_batch_scalar(&items, &mut scalar);
            assert_eq!(dispatched, scalar, "length {n}");
        }
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn batch_length_mismatch_panics() {
        let h = SplitMix64Hasher::new(1);
        h.hash_u64_batch(&[1, 2, 3], &mut [0u64; 2]);
    }

    #[test]
    fn tail_length_matters() {
        let h = SplitMix64Hasher::new(7);
        assert_ne!(h.hash_bytes(b"ab"), h.hash_bytes(b"ab\0"));
        assert_ne!(h.hash_bytes(b""), h.hash_bytes(b"\0"));
    }
}
