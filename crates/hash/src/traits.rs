//! The stream-hash trait shared by every sketch in the workspace.

/// A seeded 64-bit hash over byte strings and machine words.
///
/// All sketches in this workspace consume items through this trait. The
/// paper's analysis treats the hash as an ideal uniform map; the
/// implementations provided here pass the avalanche and uniformity tests in
/// this crate's test suite, which is the practical stand-in for that
/// assumption.
///
/// Implementations must be deterministic: the same `(seed, input)` pair
/// always produces the same output, so that experiments are reproducible
/// and so that *duplicate stream items always hash identically* — the
/// property the S-bitmap duplicate filter relies on.
pub trait Hasher64: Send + Sync {
    /// Hash an arbitrary byte string to 64 bits.
    fn hash_bytes(&self, bytes: &[u8]) -> u64;

    /// Hash a `u64` item. The default implementation routes through
    /// [`Hasher64::hash_bytes`]; implementations may override with a faster
    /// fixed-width path (all of ours do).
    fn hash_u64(&self, x: u64) -> u64 {
        self.hash_bytes(&x.to_le_bytes())
    }

    /// Hash a slice of `u64` items into a caller-provided buffer.
    ///
    /// Semantically identical to calling [`Hasher64::hash_u64`] per item;
    /// the batch form exists for the ingestion hot path: the per-item
    /// hash chains are independent, so a single tight loop lets the CPU
    /// pipeline them (and the compiler vectorize them) instead of paying
    /// each chain's full latency serially between probes. Through
    /// `dyn Hasher64` it also replaces one virtual call per item with one
    /// per batch.
    ///
    /// # Panics
    ///
    /// Panics if `items.len() != out.len()`.
    fn hash_u64_batch(&self, items: &[u64], out: &mut [u64]) {
        assert_eq!(
            items.len(),
            out.len(),
            "hash_u64_batch: input and output lengths differ"
        );
        for (o, &x) in out.iter_mut().zip(items) {
            *o = self.hash_u64(x);
        }
    }

    /// Hash a slice of byte strings into a caller-provided buffer; the
    /// batch analogue of [`Hasher64::hash_bytes`].
    ///
    /// # Panics
    ///
    /// Panics if `items.len() != out.len()`.
    fn hash_bytes_batch(&self, items: &[&[u8]], out: &mut [u64]) {
        assert_eq!(
            items.len(),
            out.len(),
            "hash_bytes_batch: input and output lengths differ"
        );
        for (o, &bytes) in out.iter_mut().zip(items) {
            *o = self.hash_bytes(bytes);
        }
    }

    /// The seed this hasher was constructed with.
    fn seed(&self) -> u64;
}

/// Hash `items` in 256-item chunks through [`Hasher64::hash_u64_batch`]
/// (one tight, pipelineable loop per chunk; the hash buffer lives on the
/// stack and stays L1-resident) and feed each hash to `sink`, in order.
///
/// This is the shared skeleton of every sketch's batched ingest path:
/// semantically identical to `items.iter().for_each(|&x|
/// sink(hasher.hash_u64(x)))`, but with the per-item hash chains
/// pipelined. Sketches whose probe step cannot itself be batched (the
/// register files, KMV) get their batch speedup from this alone.
pub fn for_each_hash_u64<H: Hasher64 + ?Sized>(
    hasher: &H,
    items: &[u64],
    mut sink: impl FnMut(u64),
) {
    let mut buf = [0u64; 256];
    for chunk in items.chunks(256) {
        let out = &mut buf[..chunk.len()];
        hasher.hash_u64_batch(chunk, out);
        for &h in out.iter() {
            sink(h);
        }
    }
}

/// Hashers that can be reconstructed from their seed alone.
///
/// Every hasher in this crate is a pure function of its seed, which is what
/// lets a serialized sketch rebuild its hasher on deserialization.
pub trait FromSeed: Hasher64 + Sized {
    /// Reconstruct the hasher from a seed.
    fn from_seed(seed: u64) -> Self;
}

/// Enumeration of the hash families shipped in this crate, used by the
/// hash-choice ablation experiment and by configuration surfaces that need
/// a serializable hash identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashKind {
    /// [`crate::SplitMix64Hasher`] — one multiply-xorshift chain (default).
    SplitMix64,
    /// [`crate::Xxh64`] — the XXH64 algorithm.
    Xxh64,
    /// [`crate::Murmur3`] — MurmurHash3 x64 variant.
    Murmur3,
    /// [`crate::CarterWegman`] — `((a·x + b) mod p)` over `p = 2^61 − 1`.
    CarterWegman,
}

impl HashKind {
    /// All hash kinds, in a stable order (used by the ablation sweep).
    pub const ALL: [HashKind; 4] = [
        HashKind::SplitMix64,
        HashKind::Xxh64,
        HashKind::Murmur3,
        HashKind::CarterWegman,
    ];

    /// Construct a boxed hasher of this kind with the given seed.
    pub fn build(self, seed: u64) -> Box<dyn Hasher64> {
        match self {
            HashKind::SplitMix64 => Box::new(crate::SplitMix64Hasher::new(seed)),
            HashKind::Xxh64 => Box::new(crate::Xxh64::new(seed)),
            HashKind::Murmur3 => Box::new(crate::Murmur3::new(seed)),
            HashKind::CarterWegman => Box::new(crate::CarterWegman::new(seed)),
        }
    }

    /// Human-readable name (stable; used in experiment output tables).
    pub fn name(self) -> &'static str {
        match self {
            HashKind::SplitMix64 => "splitmix64",
            HashKind::Xxh64 => "xxh64",
            HashKind::Murmur3 => "murmur3",
            HashKind::CarterWegman => "carter-wegman",
        }
    }
}

impl std::fmt::Display for HashKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl<H: Hasher64 + ?Sized> Hasher64 for &H {
    fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        (**self).hash_bytes(bytes)
    }
    fn hash_u64(&self, x: u64) -> u64 {
        (**self).hash_u64(x)
    }
    fn hash_u64_batch(&self, items: &[u64], out: &mut [u64]) {
        (**self).hash_u64_batch(items, out);
    }
    fn hash_bytes_batch(&self, items: &[&[u8]], out: &mut [u64]) {
        (**self).hash_bytes_batch(items, out);
    }
    fn seed(&self) -> u64 {
        (**self).seed()
    }
}

impl Hasher64 for Box<dyn Hasher64> {
    fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        (**self).hash_bytes(bytes)
    }
    fn hash_u64(&self, x: u64) -> u64 {
        (**self).hash_u64(x)
    }
    fn hash_u64_batch(&self, items: &[u64], out: &mut [u64]) {
        (**self).hash_u64_batch(items, out);
    }
    fn hash_bytes_batch(&self, items: &[&[u8]], out: &mut [u64]) {
        (**self).hash_bytes_batch(items, out);
    }
    fn seed(&self) -> u64 {
        (**self).seed()
    }
}
