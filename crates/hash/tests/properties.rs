//! Property-based tests for the hashing substrate, over deterministic
//! randomized cases (this workspace builds offline; no proptest). Every
//! case derives from its loop index, so failures are reproducible.

use sbitmap_hash::rng::{Rng, SplitMix64, Xoshiro256StarStar};
use sbitmap_hash::{FromSeed, HashKind, HashSplit, Hasher64, SplitMix64Hasher};

fn rng(case: u64) -> SplitMix64 {
    SplitMix64::new(0x7e57_c0de ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

#[test]
fn split_stays_in_bounds() {
    for case in 0..128u64 {
        let mut g = rng(case);
        let m = 1 + g.next_below(5_000_000) as usize;
        let d = 1 + (g.next_below(32) as u32);
        let hash = g.next_u64();
        let s = HashSplit::new(m, d).unwrap();
        let (bucket, u) = s.split(hash);
        assert!(bucket < m, "case {case}: bucket {bucket} >= {m}");
        assert!(u < s.sampling_range(), "case {case}");
    }
}

#[test]
fn threshold_is_monotone_and_bounded() {
    for case in 0..128u64 {
        let mut g = rng(case ^ 0x71);
        let d = 1 + (g.next_below(32) as u32);
        let s = HashSplit::new(64, d).unwrap();
        let a = g.next_f64();
        let b = g.next_f64();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(s.threshold(lo) <= s.threshold(hi), "case {case}");
        assert!(s.threshold(hi) <= s.sampling_range(), "case {case}");
    }
}

#[test]
fn threshold_semantics_match_probability() {
    for case in 0..128u64 {
        let mut g = rng(case ^ 0x5e);
        let d = 4 + (g.next_below(29) as u32);
        let p = g.next_f64();
        let s = HashSplit::new(64, d).unwrap();
        let t = s.threshold(p);
        let achieved = t as f64 / s.sampling_range() as f64;
        assert!(
            (achieved - p).abs() <= 1.0 / s.sampling_range() as f64 + f64::EPSILON,
            "case {case}: p={p}, achieved={achieved}"
        );
    }
}

#[test]
fn hashers_are_pure_functions() {
    for case in 0..32u64 {
        let mut g = rng(case ^ 0x9a);
        let seed = g.next_u64();
        let len = g.next_below(64) as usize;
        let data: Vec<u8> = (0..len).map(|_| g.next_u64() as u8).collect();
        for kind in HashKind::ALL {
            let h1 = kind.build(seed);
            let h2 = kind.build(seed);
            assert_eq!(
                h1.hash_bytes(&data),
                h2.hash_bytes(&data),
                "case {case}: {}",
                kind.name()
            );
            assert_eq!(h1.seed(), seed);
        }
    }
}

#[test]
fn batch_hashing_matches_scalar_for_every_kind() {
    // The batch paths (including the boxed-trait-object forwarding) are
    // pure perf transforms of the scalar paths.
    for case in 0..16u64 {
        let mut g = rng(case ^ 0xba);
        let seed = g.next_u64();
        let n = g.next_below(300) as usize;
        let items: Vec<u64> = (0..n).map(|_| g.next_u64()).collect();
        let owned: Vec<Vec<u8>> = (0..n)
            .map(|_| {
                let len = g.next_below(24) as usize;
                (0..len).map(|_| g.next_u64() as u8).collect()
            })
            .collect();
        let byte_refs: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
        for kind in HashKind::ALL {
            let hasher = kind.build(seed);
            let mut out = vec![0u64; n];
            hasher.hash_u64_batch(&items, &mut out);
            for (i, (&x, &h)) in items.iter().zip(&out).enumerate() {
                assert_eq!(
                    h,
                    hasher.hash_u64(x),
                    "case {case} {}: u64 lane {i}",
                    kind.name()
                );
            }
            hasher.hash_bytes_batch(&byte_refs, &mut out);
            for (i, (&b, &h)) in byte_refs.iter().zip(&out).enumerate() {
                assert_eq!(
                    h,
                    hasher.hash_bytes(b),
                    "case {case} {}: bytes lane {i}",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn from_seed_matches_new() {
    for case in 0..64u64 {
        let mut g = rng(case ^ 0xf5);
        let seed = g.next_u64();
        let x = g.next_u64();
        let a = SplitMix64Hasher::new(seed);
        let b = SplitMix64Hasher::from_seed(seed);
        assert_eq!(a.hash_u64(x), b.hash_u64(x), "case {case}");
    }
}

#[test]
fn next_below_is_in_range() {
    for case in 0..64u64 {
        let mut g0 = rng(case ^ 0xbd);
        let seed = g0.next_u64();
        let bound = 1 + g0.next_below(u64::MAX - 1);
        let mut g = Xoshiro256StarStar::new(seed);
        for _ in 0..8 {
            assert!(g.next_below(bound) < bound, "case {case}");
        }
    }
}

#[test]
fn next_range_is_inclusive() {
    for case in 0..64u64 {
        let mut g0 = rng(case ^ 0x4a);
        let (a, b) = (g0.next_u64(), g0.next_u64());
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut g = SplitMix64::new(g0.next_u64());
        let v = g.next_range(lo, hi);
        assert!(v >= lo && v <= hi, "case {case}: {v} not in [{lo}, {hi}]");
    }
}

#[test]
fn geometric_is_at_least_one() {
    for case in 0..64u64 {
        let mut g0 = rng(case ^ 0x6e);
        let p = (g0.next_f64()).max(1e-6);
        let mut g = Xoshiro256StarStar::new(g0.next_u64());
        assert!(g.geometric(p) >= 1, "case {case}");
    }
}

#[test]
fn unit_interval_samplers_hold_bounds() {
    for case in 0..32u64 {
        let mut g = Xoshiro256StarStar::new(rng(case ^ 0x07).next_u64());
        for _ in 0..32 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x), "case {case}");
            let y = g.next_f64_open();
            assert!(y > 0.0 && y <= 1.0, "case {case}");
        }
    }
}

#[test]
fn shuffle_preserves_elements() {
    for case in 0..32u64 {
        let mut g0 = rng(case ^ 0x5f);
        let n = g0.next_below(64) as usize;
        let mut v: Vec<u32> = (0..n).map(|_| g0.next_u64() as u32).collect();
        let mut sorted_before = v.clone();
        sorted_before.sort_unstable();
        let mut g = SplitMix64::new(g0.next_u64());
        g.shuffle(&mut v);
        v.sort_unstable();
        assert_eq!(v, sorted_before, "case {case}");
    }
}
