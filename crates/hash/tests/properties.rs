//! Property-based tests for the hashing substrate.

use proptest::prelude::*;
use sbitmap_hash::rng::{Rng, SplitMix64, Xoshiro256StarStar};
use sbitmap_hash::{FromSeed, HashKind, HashSplit, Hasher64, SplitMix64Hasher};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn split_stays_in_bounds(m in 1usize..5_000_000, d in 1u32..=32, hash in any::<u64>()) {
        let s = HashSplit::new(m, d).unwrap();
        let (bucket, u) = s.split(hash);
        prop_assert!(bucket < m);
        prop_assert!(u < s.sampling_range());
    }

    #[test]
    fn threshold_is_monotone_and_bounded(d in 1u32..=32, a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let s = HashSplit::new(64, d).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(s.threshold(lo) <= s.threshold(hi));
        prop_assert!(s.threshold(hi) <= s.sampling_range());
    }

    #[test]
    fn threshold_semantics_match_probability(d in 4u32..=32, p in 0.0f64..=1.0) {
        // u < threshold(p)  ⇔  u/2^d < achieved rate, and the achieved
        // rate is within one quantum of p.
        let s = HashSplit::new(64, d).unwrap();
        let t = s.threshold(p);
        let achieved = t as f64 / s.sampling_range() as f64;
        prop_assert!((achieved - p).abs() <= 1.0 / s.sampling_range() as f64 + f64::EPSILON);
    }

    #[test]
    fn hashers_are_pure_functions(seed in any::<u64>(), data in prop::collection::vec(any::<u8>(), 0..64)) {
        for kind in HashKind::ALL {
            let h1 = kind.build(seed);
            let h2 = kind.build(seed);
            prop_assert_eq!(h1.hash_bytes(&data), h2.hash_bytes(&data), "{}", kind.name());
            prop_assert_eq!(h1.seed(), seed);
        }
    }

    #[test]
    fn from_seed_matches_new(seed in any::<u64>(), x in any::<u64>()) {
        let a = SplitMix64Hasher::new(seed);
        let b = SplitMix64Hasher::from_seed(seed);
        prop_assert_eq!(a.hash_u64(x), b.hash_u64(x));
    }

    #[test]
    fn next_below_is_in_range(seed in any::<u64>(), bound in 1u64..=u64::MAX) {
        let mut g = Xoshiro256StarStar::new(seed);
        for _ in 0..8 {
            prop_assert!(g.next_below(bound) < bound);
        }
    }

    #[test]
    fn next_range_is_inclusive(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut g = SplitMix64::new(seed);
        let v = g.next_range(lo, hi);
        prop_assert!(v >= lo && v <= hi);
    }

    #[test]
    fn geometric_is_at_least_one(seed in any::<u64>(), p in 1e-6f64..=1.0) {
        let mut g = Xoshiro256StarStar::new(seed);
        prop_assert!(g.geometric(p) >= 1);
    }

    #[test]
    fn unit_interval_samplers_hold_bounds(seed in any::<u64>()) {
        let mut g = Xoshiro256StarStar::new(seed);
        for _ in 0..32 {
            let x = g.next_f64();
            prop_assert!((0.0..1.0).contains(&x));
            let y = g.next_f64_open();
            prop_assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn shuffle_preserves_elements(seed in any::<u64>(), mut v in prop::collection::vec(any::<u32>(), 0..64)) {
        let mut sorted_before = v.clone();
        sorted_before.sort_unstable();
        let mut g = SplitMix64::new(seed);
        g.shuffle(&mut v);
        v.sort_unstable();
        prop_assert_eq!(v, sorted_before);
    }
}
