//! LogLog (Durand–Flajolet 2003) and HyperLogLog (Flajolet, Fusy,
//! Gandouet, Meunier 2007).
//!
//! Both sketches split the stream into `m` groups by hash and keep, per
//! group, the maximum "rank" (position of the lowest-order one bit in the
//! remaining hash — a Geometric(1/2) variable over distinct items). LogLog
//! averages the registers geometrically; HyperLogLog replaces the
//! geometric mean with a harmonic mean (plus a small-range linear-counting
//! correction), which cuts the constant in the RRMSE from
//! `≈ 1.30/√m` to `≈ 1.04/√m`.
//!
//! Deviations from the original papers, both behaviour-preserving:
//!
//! * Group selection uses Lemire's fastrange over the high 32 hash bits
//!   instead of "first `k` bits", so the register count does not have to
//!   be a power of two. The paper's experiments hand all algorithms the
//!   same bit budget `m` (e.g. 40 000 bits = 8 000 five-bit registers),
//!   which is not a power-of-two register count.
//! * Ranks come from the low 32 hash bits; with 32 rank bits and the
//!   cardinality scales of the paper (`N ≤ 1.5×10^7 ≪ 2^32`), the 32-bit
//!   large-range collision correction of the HLL paper never activates,
//!   so it is omitted.

use sbitmap_bitvec::PackedRegisters;
use sbitmap_core::codec::{Checkpoint, CounterKind, PayloadReader, PayloadWriter};
use sbitmap_core::{BatchedCounter, DistinctCounter, MergeableCounter, SBitmapError};
use sbitmap_hash::{Hasher64, SplitMix64Hasher};

/// Shared register machinery for the loglog family.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct RankRegisters {
    regs: PackedRegisters,
    hasher: SplitMix64Hasher,
}

impl RankRegisters {
    fn new(registers: usize, width: u32, seed: u64) -> Result<Self, SBitmapError> {
        if registers < 16 {
            return Err(SBitmapError::invalid(
                "registers",
                format!("need at least 16 registers, got {registers}"),
            ));
        }
        if !(2..=16).contains(&width) {
            return Err(SBitmapError::invalid(
                "width",
                "register width must be 2..=16",
            ));
        }
        Ok(Self {
            regs: PackedRegisters::new(registers, width),
            hasher: SplitMix64Hasher::new(seed),
        })
    }

    #[inline]
    fn insert_hash(&mut self, hash: u64) {
        let m = self.regs.len() as u64;
        let group = (((hash >> 32) * m) >> 32) as usize;
        let low = hash as u32;
        // Rank = index of lowest-order 1 bit, 1-based; 33 if all-zero.
        let rank = if low == 0 {
            33
        } else {
            low.trailing_zeros() + 1
        };
        self.regs.update_max(group, rank);
    }

    fn zeros(&self) -> usize {
        self.regs.iter().filter(|&v| v == 0).count()
    }

    /// Batch-hash a chunk of items, then run the scalar register update.
    fn insert_u64_batch(&mut self, items: &[u64]) {
        let hasher = self.hasher;
        sbitmap_hash::for_each_hash_u64(&hasher, items, |h| self.insert_hash(h));
    }

    /// Shared payload for the loglog family: register count (u64), width
    /// (u32), seed (u64), packed register words.
    fn write_payload(&self, out: &mut PayloadWriter) {
        out.u64(self.regs.len() as u64);
        out.u32(self.regs.width());
        out.u64(self.hasher.seed());
        out.words(self.regs.words());
    }

    fn read_payload(r: &mut PayloadReader<'_>) -> Result<Self, SBitmapError> {
        let registers = r.len_u64()?;
        let width = r.u32()?;
        let seed = r.u64()?;
        if !(2..=16).contains(&width) {
            return Err(SBitmapError::invalid("checkpoint", "width out of 2..=16"));
        }
        let total_bits = registers
            .checked_mul(width as usize)
            .ok_or_else(|| SBitmapError::invalid("checkpoint", "register count overflow"))?;
        let words = r.words(total_bits.div_ceil(64))?;
        let regs = PackedRegisters::from_words(words, registers, width)
            .map_err(|e| SBitmapError::invalid("checkpoint", e))?;
        Ok(Self {
            regs,
            hasher: SplitMix64Hasher::new(seed),
        })
    }
}

/// The paper's register width rule (§6.2): `α = k+1` bits per register for
/// `2^{2^k} ≤ N < 2^{2^{k+1}}`, with a floor of 4 (enough for `N ≥ 256`).
pub fn register_width_for(n_max: u64) -> u32 {
    let l2 = (n_max.max(2) as f64).log2();
    let k = l2.log2().floor() as u32;
    (k + 1).max(4)
}

// ---------------------------------------------------------------------
// LogLog
// ---------------------------------------------------------------------

/// LogLog counting (Durand–Flajolet 2003): `n̂ = α_m·m·2^{mean(M_j)}`.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogLog {
    inner: RankRegisters,
    alpha: f64,
}

impl LogLog {
    /// Create with an explicit register count and width. Needs ≥ 64
    /// registers (the asymptotic bias constant is used).
    ///
    /// # Errors
    ///
    /// Invalid register count/width.
    pub fn new(registers: usize, width: u32, seed: u64) -> Result<Self, SBitmapError> {
        if registers < 64 {
            return Err(SBitmapError::invalid(
                "registers",
                "LogLog bias constant needs at least 64 registers",
            ));
        }
        // α_m = α_∞ − (2π² + ln²2)/(48 m) + O(m⁻²), α_∞ ≈ 0.39701
        // (Durand–Flajolet, Theorem 2 discussion).
        let alpha = 0.39701
            - (2.0 * std::f64::consts::PI.powi(2) + std::f64::consts::LN_2.powi(2))
                / (48.0 * registers as f64);
        Ok(Self {
            inner: RankRegisters::new(registers, width, seed)?,
            alpha,
        })
    }

    /// Dimension from a total bit budget: `registers = m_bits / width(N)`.
    ///
    /// # Errors
    ///
    /// Budget too small for 64 registers.
    pub fn with_memory(m_bits: usize, n_max: u64, seed: u64) -> Result<Self, SBitmapError> {
        let width = register_width_for(n_max);
        Self::new(m_bits / width as usize, width, seed)
    }

    /// Dimension for a target RRMSE: `m = (1.30/ε)²` registers
    /// (Durand–Flajolet's accuracy constant).
    ///
    /// # Errors
    ///
    /// `epsilon` out of `(0, 1)`.
    pub fn with_error(n_max: u64, epsilon: f64, seed: u64) -> Result<Self, SBitmapError> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(SBitmapError::invalid("epsilon", "must be in (0, 1)"));
        }
        let registers = ((1.30 / epsilon).powi(2)).ceil() as usize;
        Self::new(registers.max(64), register_width_for(n_max), seed)
    }

    /// Number of registers.
    #[inline]
    pub fn registers(&self) -> usize {
        self.inner.regs.len()
    }

    /// Insert a pre-hashed item.
    #[inline]
    pub fn insert_hash(&mut self, hash: u64) {
        self.inner.insert_hash(hash);
    }

    /// Merge (pointwise register max). Requires identical configuration.
    ///
    /// # Errors
    ///
    /// Shape or seed mismatch.
    pub fn merge(&mut self, other: &Self) -> Result<(), SBitmapError> {
        if self.inner.hasher.seed() != other.inner.hasher.seed() {
            return Err(SBitmapError::invalid("seed", "merge requires equal seeds"));
        }
        self.inner
            .regs
            .merge_max(&other.inner.regs)
            .map_err(|e| SBitmapError::invalid("registers", e))
    }
}

impl MergeableCounter for LogLog {
    fn merge_from(&mut self, other: &Self) -> Result<(), SBitmapError> {
        self.merge(other)
    }
}

impl BatchedCounter for LogLog {
    fn insert_u64_batch(&mut self, items: &[u64]) {
        self.inner.insert_u64_batch(items);
    }
}

/// Payload: register count (u64), width (u32), seed (u64), packed
/// register words. The bias constant `α_m` is a pure function of the
/// register count and is recomputed on restore.
impl Checkpoint for LogLog {
    const KIND: CounterKind = CounterKind::LogLog;

    fn write_payload(&self, out: &mut PayloadWriter) {
        self.inner.write_payload(out);
    }

    fn read_payload(r: &mut PayloadReader<'_>) -> Result<Self, SBitmapError> {
        let inner = RankRegisters::read_payload(r)?;
        // Re-validate through the constructor so restored configurations
        // obey the same minimums, and to recompute alpha.
        let mut ll = Self::new(inner.regs.len(), inner.regs.width(), inner.hasher.seed())?;
        ll.inner = inner;
        Ok(ll)
    }
}

impl DistinctCounter for LogLog {
    #[inline]
    fn insert_u64(&mut self, item: u64) {
        self.insert_hash(self.inner.hasher.hash_u64(item));
    }

    #[inline]
    fn insert_bytes(&mut self, item: &[u8]) {
        self.insert_hash(self.inner.hasher.hash_bytes(item));
    }

    fn estimate(&self) -> f64 {
        let m = self.registers() as f64;
        let mean = self.inner.regs.iter().map(f64::from).sum::<f64>() / m;
        self.alpha * m * 2f64.powf(mean)
    }

    fn memory_bits(&self) -> usize {
        self.inner.regs.memory_bits()
    }

    fn reset(&mut self) {
        self.inner.regs.reset();
    }

    fn name(&self) -> &'static str {
        "loglog"
    }
}

// ---------------------------------------------------------------------
// HyperLogLog
// ---------------------------------------------------------------------

/// HyperLogLog (Flajolet et al. 2007): harmonic-mean estimator with
/// small-range linear-counting correction.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HyperLogLog {
    inner: RankRegisters,
    alpha: f64,
}

impl HyperLogLog {
    /// Create with an explicit register count (≥ 16) and width.
    ///
    /// # Errors
    ///
    /// Invalid register count/width.
    pub fn new(registers: usize, width: u32, seed: u64) -> Result<Self, SBitmapError> {
        // Bias constants from the HLL paper (§4, Fig. 2); the closed form
        // applies from m = 128, the small-m anchors below.
        let alpha = match registers {
            0..=31 => 0.673,
            32..=63 => 0.697,
            64..=127 => 0.709,
            m => 0.7213 / (1.0 + 1.079 / m as f64),
        };
        Ok(Self {
            inner: RankRegisters::new(registers, width, seed)?,
            alpha,
        })
    }

    /// Dimension from a total bit budget: `registers = m_bits / width(N)`.
    ///
    /// # Errors
    ///
    /// Budget too small for 16 registers.
    pub fn with_memory(m_bits: usize, n_max: u64, seed: u64) -> Result<Self, SBitmapError> {
        let width = register_width_for(n_max);
        Self::new(m_bits / width as usize, width, seed)
    }

    /// Dimension for a target RRMSE: `m = (1.04/ε)²` registers — the
    /// memory model of the paper's Table 2.
    ///
    /// # Errors
    ///
    /// `epsilon` out of `(0, 1)`.
    pub fn with_error(n_max: u64, epsilon: f64, seed: u64) -> Result<Self, SBitmapError> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(SBitmapError::invalid("epsilon", "must be in (0, 1)"));
        }
        let registers = ((1.04 / epsilon).powi(2)).ceil() as usize;
        Self::new(registers.max(16), register_width_for(n_max), seed)
    }

    /// Number of registers.
    #[inline]
    pub fn registers(&self) -> usize {
        self.inner.regs.len()
    }

    /// Insert a pre-hashed item.
    #[inline]
    pub fn insert_hash(&mut self, hash: u64) {
        self.inner.insert_hash(hash);
    }

    /// Merge (pointwise register max). Requires identical configuration.
    ///
    /// # Errors
    ///
    /// Shape or seed mismatch.
    pub fn merge(&mut self, other: &Self) -> Result<(), SBitmapError> {
        if self.inner.hasher.seed() != other.inner.hasher.seed() {
            return Err(SBitmapError::invalid("seed", "merge requires equal seeds"));
        }
        self.inner
            .regs
            .merge_max(&other.inner.regs)
            .map_err(|e| SBitmapError::invalid("registers", e))
    }
}

impl MergeableCounter for HyperLogLog {
    fn merge_from(&mut self, other: &Self) -> Result<(), SBitmapError> {
        self.merge(other)
    }
}

impl BatchedCounter for HyperLogLog {
    fn insert_u64_batch(&mut self, items: &[u64]) {
        self.inner.insert_u64_batch(items);
    }
}

/// Payload: identical layout to [`LogLog`] (register count, width, seed,
/// words) under its own kind tag; `α` is recomputed on restore.
impl Checkpoint for HyperLogLog {
    const KIND: CounterKind = CounterKind::HyperLogLog;

    fn write_payload(&self, out: &mut PayloadWriter) {
        self.inner.write_payload(out);
    }

    fn read_payload(r: &mut PayloadReader<'_>) -> Result<Self, SBitmapError> {
        let inner = RankRegisters::read_payload(r)?;
        let mut hll = Self::new(inner.regs.len(), inner.regs.width(), inner.hasher.seed())?;
        hll.inner = inner;
        Ok(hll)
    }
}

impl DistinctCounter for HyperLogLog {
    #[inline]
    fn insert_u64(&mut self, item: u64) {
        self.insert_hash(self.inner.hasher.hash_u64(item));
    }

    #[inline]
    fn insert_bytes(&mut self, item: &[u8]) {
        self.insert_hash(self.inner.hasher.hash_bytes(item));
    }

    fn estimate(&self) -> f64 {
        let m = self.registers() as f64;
        let harmonic: f64 = self.inner.regs.iter().map(|v| 2f64.powi(-(v as i32))).sum();
        let raw = self.alpha * m * m / harmonic;
        if raw <= 2.5 * m {
            let zeros = self.inner.zeros();
            if zeros > 0 {
                // Small-range correction: plain linear counting.
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    fn memory_bits(&self) -> usize {
        self.inner.regs.memory_bits()
    }

    fn reset(&mut self) {
        self.inner.regs.reset();
    }

    fn name(&self) -> &'static str {
        "hyperloglog"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_rule_matches_paper_alpha() {
        assert_eq!(register_width_for(1_000), 4); // 2^8 <= N < 2^16
        assert_eq!(register_width_for(10_000), 4);
        assert_eq!(register_width_for(100_000), 5); // 2^16 <= N < 2^32
        assert_eq!(register_width_for(1_000_000), 5);
        assert_eq!(register_width_for(10_000_000), 5);
        assert_eq!(register_width_for(u64::MAX / 2), 6);
    }

    #[test]
    fn hll_tracks_cardinality() {
        let mut h = HyperLogLog::with_error(1 << 20, 0.02, 1).unwrap();
        for &n in &[100u64, 10_000, 1_000_000] {
            h.reset();
            for i in 0..n {
                h.insert_u64(i);
            }
            let rel = h.estimate() / n as f64 - 1.0;
            assert!(rel.abs() < 0.10, "n={n}: rel {rel}");
        }
    }

    #[test]
    fn loglog_tracks_cardinality() {
        let mut l = LogLog::with_error(1 << 20, 0.02, 2).unwrap();
        for &n in &[50_000u64, 500_000] {
            l.reset();
            for i in 0..n {
                l.insert_u64(i);
            }
            let rel = l.estimate() / n as f64 - 1.0;
            assert!(rel.abs() < 0.10, "n={n}: rel {rel}");
        }
    }

    #[test]
    fn loglog_is_biased_low_at_small_n_without_correction() {
        // The scale dependence the paper exploits: LogLog without the
        // linear-counting patch is poor at tiny n.
        let mut l = LogLog::with_memory(3_200, 1 << 20, 3).unwrap();
        let mut h = HyperLogLog::with_memory(3_200, 1 << 20, 3).unwrap();
        for i in 0..100u64 {
            l.insert_u64(i);
            h.insert_u64(i);
        }
        let ll_err = (l.estimate() / 100.0 - 1.0).abs();
        let hll_err = (h.estimate() / 100.0 - 1.0).abs();
        assert!(hll_err < 0.25, "hll err {hll_err}");
        assert!(
            ll_err > hll_err,
            "loglog {ll_err} should be worse than hll {hll_err}"
        );
    }

    #[test]
    fn hll_small_range_correction_engages() {
        let mut h = HyperLogLog::new(1024, 5, 4).unwrap();
        for i in 0..50u64 {
            h.insert_u64(i);
        }
        // 50 items over 1024 registers: most registers zero, the raw
        // harmonic estimate would be biased; linear counting fixes it.
        let rel = h.estimate() / 50.0 - 1.0;
        assert!(rel.abs() < 0.10, "rel {rel}");
    }

    #[test]
    fn duplicates_are_free() {
        let mut h = HyperLogLog::new(256, 5, 5).unwrap();
        for i in 0..1000u64 {
            h.insert_u64(i);
        }
        let before = h.estimate();
        for i in 0..1000u64 {
            h.insert_u64(i);
        }
        assert_eq!(h.estimate(), before);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new(512, 5, 6).unwrap();
        let mut b = HyperLogLog::new(512, 5, 6).unwrap();
        let mut u = HyperLogLog::new(512, 5, 6).unwrap();
        for i in 0..3_000u64 {
            a.insert_u64(i);
            u.insert_u64(i);
        }
        for i in 2_000..6_000u64 {
            b.insert_u64(i);
            u.insert_u64(i);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.estimate(), u.estimate());
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = HyperLogLog::new(512, 5, 1).unwrap();
        let b = HyperLogLog::new(512, 5, 2).unwrap();
        assert!(a.merge(&b).is_err());
        let c = HyperLogLog::new(256, 5, 1).unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn memory_accounting() {
        let h = HyperLogLog::new(8_000, 5, 1).unwrap();
        assert_eq!(h.memory_bits(), 40_000);
        let l = LogLog::with_memory(40_000, 1 << 20, 1).unwrap();
        assert_eq!(l.memory_bits(), 40_000);
        assert_eq!(l.registers(), 8_000);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(HyperLogLog::new(8, 5, 1).is_err());
        assert!(LogLog::new(32, 5, 1).is_err());
        assert!(HyperLogLog::new(64, 1, 1).is_err());
        assert!(HyperLogLog::with_error(1000, 0.0, 1).is_err());
        assert!(LogLog::with_error(1000, 1.0, 1).is_err());
    }

    #[test]
    fn empty_sketches_estimate_zero() {
        let h = HyperLogLog::new(64, 5, 1).unwrap();
        assert_eq!(h.estimate(), 0.0);
    }

    #[test]
    fn checkpoints_round_trip_and_kinds_differ() {
        let mut ll = LogLog::new(100, 5, 21).unwrap(); // 500 bits: partial word
        let mut hll = HyperLogLog::new(100, 5, 21).unwrap();
        for i in 0..25_000u64 {
            ll.insert_u64(i);
            hll.insert_u64(i);
        }
        let ll2 = LogLog::restore(&ll.checkpoint()).unwrap();
        let hll2 = HyperLogLog::restore(&hll.checkpoint()).unwrap();
        assert_eq!(ll2.estimate(), ll.estimate());
        assert_eq!(hll2.estimate(), hll.estimate());
        // Same payload layout, different kind tags: cross-restoring must
        // be rejected by the frame, not silently accepted.
        assert!(LogLog::restore(&hll.checkpoint()).is_err());
        assert!(HyperLogLog::restore(&ll.checkpoint()).is_err());
    }

    #[test]
    fn restored_sketch_merges_with_original() {
        use sbitmap_core::MergeableCounter;
        let mut a = HyperLogLog::new(512, 5, 8).unwrap();
        for i in 0..5_000u64 {
            a.insert_u64(i);
        }
        let mut b = HyperLogLog::restore(&a.checkpoint()).unwrap();
        for i in 5_000..9_000u64 {
            b.insert_u64(i);
        }
        let mut u = HyperLogLog::new(512, 5, 8).unwrap();
        for i in 0..9_000u64 {
            u.insert_u64(i);
        }
        a.merge_from(&b).unwrap();
        assert_eq!(a.estimate(), u.estimate());
    }
}
