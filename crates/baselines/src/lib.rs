//! # sbitmap-baselines — every comparator from the paper's evaluation
//!
//! The S-bitmap paper benchmarks against the two established families of
//! streaming distinct counters plus sampling methods. This crate implements
//! all of them from their original publications, behind the shared
//! [`DistinctCounter`](sbitmap_core::DistinctCounter) trait:
//!
//! | type | source | family |
//! |---|---|---|
//! | [`LinearCounting`] | Whang, Vander-Zanden, Taylor 1990 | bitmap |
//! | [`VirtualBitmap`] | Estan, Varghese, Fisk 2006 | bitmap + sampling |
//! | [`AdaptiveBitmap`] | Estan, Varghese, Fisk 2006 | across-interval adaptation |
//! | [`MrBitmap`] | Estan, Varghese, Fisk 2006 | multiresolution bitmap |
//! | [`FmSketch`] | Flajolet, Martin 1985 (PCSA) | log counting |
//! | [`LogLog`] | Durand, Flajolet 2003 | loglog counting |
//! | [`HyperLogLog`] | Flajolet, Fusy, Gandouet, Meunier 2007 | loglog counting |
//! | [`AdaptiveSampling`] | Wegman / Flajolet 1990 | distinct sampling |
//! | [`DistinctSampling`] | Gibbons 2001 | distinct sampling + event reports |
//! | [`KMinValues`] | Bar-Yossef et al. 2002; Beyer et al. 2009 | order statistics |
//! | [`ExactCounter`] | — | ground truth |
//!
//! [`memory_model`] holds the closed-form memory costs used by the paper's
//! Table 2 and Figure 3 comparisons.
//!
//! ## Capability layers
//!
//! Beyond the shared streaming interface, the baselines implement the
//! capability traits of `sbitmap-core` where the mathematics allows:
//!
//! * [`MergeableCounter`](sbitmap_core::MergeableCounter) — the
//!   OR-mergeable bitmaps ([`LinearCounting`], [`VirtualBitmap`],
//!   [`MrBitmap`], [`FmSketch`]), the max-mergeable loglog family
//!   ([`LogLog`], [`HyperLogLog`]) and order statistics
//!   ([`KMinValues`]). `merge(sketch(A), sketch(B))` is bit-identical to
//!   `sketch(A ∪ B)` (property-tested in `tests/merge_properties.rs`) —
//!   the capability the S-bitmap trades away for its scale-invariant
//!   error.
//! * [`Checkpoint`](sbitmap_core::codec::Checkpoint) — the same seven
//!   sketches serialize through the tagged v2 wire format of
//!   `sbitmap_core::codec`, so a collector can receive, verify and merge
//!   them without knowing the concrete type up front.
//! * [`BatchedCounter`](sbitmap_core::BatchedCounter) — slice ingestion;
//!   mergeable sketches batch-hash through `Hasher64::hash_u64_batch`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod adaptive_bitmap;
mod adaptive_sampling;
mod distinct_sampling;
mod exact;
mod fm;
mod hyperloglog;
mod kmv;
mod linear;
pub mod memory_model;
mod mr_bitmap;
mod virtual_bitmap;

pub use adaptive_bitmap::AdaptiveBitmap;
pub use adaptive_sampling::AdaptiveSampling;
pub use distinct_sampling::DistinctSampling;
pub use exact::ExactCounter;
pub use fm::FmSketch;
pub use hyperloglog::{HyperLogLog, LogLog};
pub use kmv::KMinValues;
pub use linear::LinearCounting;
pub use mr_bitmap::MrBitmap;
pub use virtual_bitmap::VirtualBitmap;
