//! Flajolet–Martin probabilistic counting with stochastic averaging
//! (PCSA, Flajolet & Martin 1985).

use sbitmap_bitvec::PackedRegisters;
use sbitmap_core::codec::{Checkpoint, CounterKind, PayloadReader, PayloadWriter};
use sbitmap_core::{BatchedCounter, DistinctCounter, MergeableCounter, SBitmapError};
use sbitmap_hash::{Hasher64, SplitMix64Hasher};

/// PCSA: `m` groups, each keeping the *bit pattern* of observed ranks;
/// the estimator uses the position of the lowest unset bit `R_j` in each
/// pattern: `n̂ = (m/φ)·2^{mean(R_j)}` with Flajolet–Martin's magic
/// constant `φ ≈ 0.77351`.
///
/// This is the "log counting" ancestor of LogLog: each group stores a
/// 32-bit pattern instead of a 5-bit maximum, so it needs ~6× the memory
/// for the same group count, but has a smaller dispersion constant
/// (`≈ 0.78/√m`).
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FmSketch {
    patterns: PackedRegisters,
    hasher: SplitMix64Hasher,
}

impl FmSketch {
    /// FM's bias correction constant φ (Flajolet & Martin 1985, Thm. 2).
    pub const PHI: f64 = 0.773_51;

    /// Width of each bit pattern.
    pub const PATTERN_BITS: u32 = 32;

    /// Create a PCSA sketch with `groups` bit patterns.
    ///
    /// # Errors
    ///
    /// Needs at least 16 groups for the stochastic-averaging analysis.
    pub fn new(groups: usize, seed: u64) -> Result<Self, SBitmapError> {
        if groups < 16 {
            return Err(SBitmapError::invalid("groups", "need at least 16 groups"));
        }
        Ok(Self {
            patterns: PackedRegisters::new(groups, Self::PATTERN_BITS),
            hasher: SplitMix64Hasher::new(seed),
        })
    }

    /// Dimension from a bit budget: `groups = m_bits / 32`.
    ///
    /// # Errors
    ///
    /// Budget below 16 × 32 bits.
    pub fn with_memory(m_bits: usize, seed: u64) -> Result<Self, SBitmapError> {
        Self::new(m_bits / Self::PATTERN_BITS as usize, seed)
    }

    /// Number of groups.
    #[inline]
    pub fn groups(&self) -> usize {
        self.patterns.len()
    }

    /// Insert a pre-hashed item.
    #[inline]
    pub fn insert_hash(&mut self, hash: u64) {
        let m = self.patterns.len() as u64;
        let group = (((hash >> 32) * m) >> 32) as usize;
        let low = hash as u32;
        let rank = if low == 0 {
            31
        } else {
            low.trailing_zeros().min(31)
        };
        self.patterns.update_or(group, 1 << rank);
    }

    /// Merge (pointwise pattern or). Requires identical configuration.
    ///
    /// # Errors
    ///
    /// Shape or seed mismatch.
    pub fn merge(&mut self, other: &Self) -> Result<(), SBitmapError> {
        if self.hasher.seed() != other.hasher.seed() {
            return Err(SBitmapError::invalid("seed", "merge requires equal seeds"));
        }
        self.patterns
            .merge_or(&other.patterns)
            .map_err(|e| SBitmapError::invalid("groups", e))
    }
}

impl MergeableCounter for FmSketch {
    fn merge_from(&mut self, other: &Self) -> Result<(), SBitmapError> {
        self.merge(other)
    }
}

impl BatchedCounter for FmSketch {
    fn insert_u64_batch(&mut self, items: &[u64]) {
        let hasher = self.hasher;
        sbitmap_hash::for_each_hash_u64(&hasher, items, |h| self.insert_hash(h));
    }
}

/// Payload: group count (u64), seed (u64), packed 32-bit pattern words.
impl Checkpoint for FmSketch {
    const KIND: CounterKind = CounterKind::FmSketch;

    fn write_payload(&self, out: &mut PayloadWriter) {
        out.u64(self.patterns.len() as u64);
        out.u64(self.hasher.seed());
        out.words(self.patterns.words());
    }

    fn read_payload(r: &mut PayloadReader<'_>) -> Result<Self, SBitmapError> {
        let groups = r.len_u64()?;
        let seed = r.u64()?;
        if groups < 16 {
            return Err(SBitmapError::invalid("checkpoint", "fewer than 16 groups"));
        }
        let total_bits = groups
            .checked_mul(Self::PATTERN_BITS as usize)
            .ok_or_else(|| SBitmapError::invalid("checkpoint", "group count overflow"))?;
        let words = r.words(total_bits.div_ceil(64))?;
        let patterns = PackedRegisters::from_words(words, groups, Self::PATTERN_BITS)
            .map_err(|e| SBitmapError::invalid("checkpoint", e))?;
        Ok(Self {
            patterns,
            hasher: SplitMix64Hasher::new(seed),
        })
    }
}

impl DistinctCounter for FmSketch {
    #[inline]
    fn insert_u64(&mut self, item: u64) {
        self.insert_hash(self.hasher.hash_u64(item));
    }

    #[inline]
    fn insert_bytes(&mut self, item: &[u8]) {
        self.insert_hash(self.hasher.hash_bytes(item));
    }

    fn estimate(&self) -> f64 {
        let m = self.patterns.len() as f64;
        // R_j = number of trailing ones = index of lowest zero bit.
        let sum_r: f64 = self.patterns.iter().map(|p| p.trailing_ones() as f64).sum();
        m / Self::PHI * 2f64.powf(sum_r / m)
    }

    fn memory_bits(&self) -> usize {
        self.patterns.memory_bits()
    }

    fn reset(&mut self) {
        self.patterns.reset();
    }

    fn name(&self) -> &'static str {
        "fm-pcsa"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_cardinality_at_scale() {
        let mut fm = FmSketch::new(1024, 1).unwrap();
        for &n in &[100_000u64, 1_000_000] {
            fm.reset();
            for i in 0..n {
                fm.insert_u64(i);
            }
            let rel = fm.estimate() / n as f64 - 1.0;
            assert!(rel.abs() < 0.10, "n={n}: rel {rel}");
        }
    }

    #[test]
    fn duplicates_are_free() {
        let mut fm = FmSketch::new(64, 2).unwrap();
        for i in 0..10_000u64 {
            fm.insert_u64(i);
        }
        let before = fm.estimate();
        for i in 0..10_000u64 {
            fm.insert_u64(i);
        }
        assert_eq!(fm.estimate(), before);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = FmSketch::new(256, 3).unwrap();
        let mut b = FmSketch::new(256, 3).unwrap();
        let mut u = FmSketch::new(256, 3).unwrap();
        for i in 0..40_000u64 {
            a.insert_u64(i);
            u.insert_u64(i);
        }
        for i in 30_000..80_000u64 {
            b.insert_u64(i);
            u.insert_u64(i);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.estimate(), u.estimate());
    }

    #[test]
    fn memory_is_32_bits_per_group() {
        let fm = FmSketch::with_memory(40_000, 1).unwrap();
        assert_eq!(fm.groups(), 1250);
        assert_eq!(fm.memory_bits(), 40_000);
    }

    #[test]
    fn rejects_tiny_configs() {
        assert!(FmSketch::new(8, 1).is_err());
        assert!(FmSketch::with_memory(100, 1).is_err());
    }

    #[test]
    fn checkpoint_round_trips_exact_state() {
        let mut fm = FmSketch::new(99, 17).unwrap(); // 3168 bits: partial last word
        for i in 0..30_000u64 {
            fm.insert_u64(i);
        }
        let restored = FmSketch::restore(&fm.checkpoint()).unwrap();
        assert_eq!(restored.estimate(), fm.estimate());
        assert_eq!(restored.checkpoint(), fm.checkpoint(), "byte-stable");
    }
}
