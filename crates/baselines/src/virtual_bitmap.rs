//! Virtual bitmap (Estan, Varghese, Fisk 2006): linear counting over a
//! sampled substream.

use sbitmap_bitvec::Bitmap;
use sbitmap_core::codec::{Checkpoint, CounterKind, PayloadReader, PayloadWriter};
use sbitmap_core::{BatchedCounter, DistinctCounter, MergeableCounter, SBitmapError};
use sbitmap_hash::{HashSplit, Hasher64, SplitMix64Hasher};

/// Linear counting applied to the fraction `rho` of distinct items whose
/// hash falls below the sampling threshold: `n̂ = m·ln(m/Z)/ρ`.
///
/// A single sampling rate only covers one cardinality scale well — the
/// limitation (paper §2.2) that motivates both the multiresolution bitmap
/// and the S-bitmap.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VirtualBitmap {
    bitmap: Bitmap,
    split: HashSplit,
    hasher: SplitMix64Hasher,
    threshold: u64,
    rho: f64,
    ones: usize,
}

impl VirtualBitmap {
    /// Target bitmap load `v = ρ·n/m` at the design cardinality. `v = 1.6`
    /// roughly minimizes the linear-counting error per bit.
    pub const DESIGN_LOAD: f64 = 1.6;

    /// Create a virtual bitmap with `m` physical bits sampling at `rho`.
    ///
    /// # Errors
    ///
    /// Rejects `m` outside `[1, 2^32]` or `rho` outside `(0, 1]`.
    pub fn new(m: usize, rho: f64, seed: u64) -> Result<Self, SBitmapError> {
        if !(rho > 0.0 && rho <= 1.0) {
            return Err(SBitmapError::invalid("rho", format!("{rho} not in (0,1]")));
        }
        let split = HashSplit::new(m, 32).map_err(|e| SBitmapError::invalid("m", e))?;
        let threshold = split.threshold(rho);
        Ok(Self {
            bitmap: Bitmap::new(m),
            split,
            hasher: SplitMix64Hasher::new(seed),
            threshold,
            rho: threshold as f64 / split.sampling_range() as f64,
            ones: 0,
        })
    }

    /// Create a virtual bitmap of `m` bits tuned for cardinalities near
    /// `n_focus`: the sampling rate is chosen so the expected load at
    /// `n_focus` is [`VirtualBitmap::DESIGN_LOAD`].
    ///
    /// # Errors
    ///
    /// Propagates [`VirtualBitmap::new`]; rejects `n_focus == 0`.
    pub fn for_cardinality(m: usize, n_focus: u64, seed: u64) -> Result<Self, SBitmapError> {
        if n_focus == 0 {
            return Err(SBitmapError::invalid("n_focus", "must be at least 1"));
        }
        let rho = (Self::DESIGN_LOAD * m as f64 / n_focus as f64).min(1.0);
        Self::new(m, rho, seed)
    }

    /// The achieved sampling rate (after threshold quantization).
    #[inline]
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Insert a pre-hashed item.
    #[inline]
    pub fn insert_hash(&mut self, hash: u64) {
        let (bucket, u) = self.split.split(hash);
        if u < self.threshold && self.bitmap.set(bucket) {
            self.ones += 1;
        }
    }

    /// Merge with another virtual bitmap of identical configuration
    /// (word-level bitwise or): whether an item is sampled depends only
    /// on its hash, so the union of the physical bitmaps is exactly the
    /// sketch of the union stream.
    ///
    /// # Errors
    ///
    /// Errors if sizes, sampling thresholds or seeds differ.
    pub fn merge(&mut self, other: &Self) -> Result<(), SBitmapError> {
        if self.hasher.seed() != other.hasher.seed() {
            return Err(SBitmapError::invalid("seed", "merge requires equal seeds"));
        }
        if self.threshold != other.threshold {
            return Err(SBitmapError::invalid(
                "rho",
                "merge requires equal sampling rates",
            ));
        }
        self.ones += self
            .bitmap
            .union_or(&other.bitmap)
            .map_err(|e| SBitmapError::invalid("m", e))?;
        Ok(())
    }
}

impl MergeableCounter for VirtualBitmap {
    fn merge_from(&mut self, other: &Self) -> Result<(), SBitmapError> {
        self.merge(other)
    }
}

impl BatchedCounter for VirtualBitmap {
    fn insert_u64_batch(&mut self, items: &[u64]) {
        let hasher = self.hasher;
        sbitmap_hash::for_each_hash_u64(&hasher, items, |h| self.insert_hash(h));
    }
}

/// Payload: `m` (u64), seed (u64), sampling threshold (u64), bitmap
/// words. The achieved rate `rho` and the fill counter are recomputed on
/// restore.
impl Checkpoint for VirtualBitmap {
    const KIND: CounterKind = CounterKind::VirtualBitmap;

    fn write_payload(&self, out: &mut PayloadWriter) {
        out.u64(self.bitmap.len() as u64);
        out.u64(self.hasher.seed());
        out.u64(self.threshold);
        out.words(self.bitmap.words());
    }

    fn read_payload(r: &mut PayloadReader<'_>) -> Result<Self, SBitmapError> {
        let m = r.len_u64()?;
        let seed = r.u64()?;
        let threshold = r.u64()?;
        let words = r.words(m.div_ceil(64))?;
        let bitmap =
            Bitmap::from_words(words, m).map_err(|e| SBitmapError::invalid("checkpoint", e))?;
        let split = HashSplit::new(m, 32).map_err(|e| SBitmapError::invalid("checkpoint", e))?;
        if threshold == 0 || threshold > split.sampling_range() {
            return Err(SBitmapError::invalid(
                "checkpoint",
                "sampling threshold out of range",
            ));
        }
        Ok(Self {
            ones: bitmap.count_ones(),
            bitmap,
            split,
            hasher: SplitMix64Hasher::new(seed),
            threshold,
            rho: threshold as f64 / split.sampling_range() as f64,
        })
    }
}

impl DistinctCounter for VirtualBitmap {
    #[inline]
    fn insert_u64(&mut self, item: u64) {
        self.insert_hash(self.hasher.hash_u64(item));
    }

    #[inline]
    fn insert_bytes(&mut self, item: &[u8]) {
        self.insert_hash(self.hasher.hash_bytes(item));
    }

    fn estimate(&self) -> f64 {
        let m = self.bitmap.len() as f64;
        let zeros = self.bitmap.len() - self.ones;
        let lc = if zeros == 0 {
            m * m.ln()
        } else {
            m * (m / zeros as f64).ln()
        };
        lc / self.rho
    }

    fn memory_bits(&self) -> usize {
        self.bitmap.memory_bits()
    }

    fn reset(&mut self) {
        self.bitmap.reset();
        self.ones = 0;
    }

    fn name(&self) -> &'static str {
        "virtual-bitmap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_design_cardinality() {
        let n = 200_000u64;
        let mut vb = VirtualBitmap::for_cardinality(4096, n, 7).unwrap();
        for i in 0..n {
            vb.insert_u64(i);
        }
        let rel = vb.estimate() / n as f64 - 1.0;
        assert!(rel.abs() < 0.10, "rel err {rel}");
    }

    #[test]
    fn rho_one_degenerates_to_linear_counting() {
        let mut vb = VirtualBitmap::new(8192, 1.0, 3).unwrap();
        let mut lc = crate::LinearCounting::new(8192, 3).unwrap();
        for i in 0..4000u64 {
            vb.insert_u64(i);
            lc.insert_u64(i);
        }
        assert!((vb.estimate() - lc.estimate()).abs() < 1e-9);
    }

    #[test]
    fn small_cardinalities_are_noisy_with_small_rho() {
        // The scale-dependence the paper criticizes: a rate tuned for 1e6
        // sees almost nothing of a 100-item stream.
        let mut vb = VirtualBitmap::for_cardinality(4096, 1_000_000, 5).unwrap();
        for i in 0..100u64 {
            vb.insert_u64(i);
        }
        // Expected sampled items ≈ 100·rho ≈ 0.65 — the estimate is
        // essentially rho^{-1} granular.
        assert!(vb.rho() < 0.01);
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut vb = VirtualBitmap::new(1024, 0.5, 11).unwrap();
        for _ in 0..50 {
            for i in 0..500u64 {
                vb.insert_u64(i);
            }
        }
        let rel = vb.estimate() / 500.0 - 1.0;
        assert!(rel.abs() < 0.25, "rel err {rel}");
    }

    #[test]
    fn rejects_bad_rho() {
        assert!(VirtualBitmap::new(64, 0.0, 1).is_err());
        assert!(VirtualBitmap::new(64, 1.5, 1).is_err());
        assert!(VirtualBitmap::new(64, -0.1, 1).is_err());
    }

    #[test]
    fn reset_clears() {
        let mut vb = VirtualBitmap::new(256, 0.8, 1).unwrap();
        for i in 0..200u64 {
            vb.insert_u64(i);
        }
        vb.reset();
        assert_eq!(vb.estimate(), 0.0);
    }

    #[test]
    fn merge_equals_union_stream() {
        let mut a = VirtualBitmap::new(4096, 0.4, 9).unwrap();
        let mut b = VirtualBitmap::new(4096, 0.4, 9).unwrap();
        let mut u = VirtualBitmap::new(4096, 0.4, 9).unwrap();
        for i in 0..3_000u64 {
            a.insert_u64(i);
            u.insert_u64(i);
        }
        for i in 2_000..5_000u64 {
            b.insert_u64(i);
            u.insert_u64(i);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.estimate(), u.estimate());
    }

    #[test]
    fn merge_rejects_mismatched_config() {
        let mut a = VirtualBitmap::new(4096, 0.4, 1).unwrap();
        let b = VirtualBitmap::new(4096, 0.4, 2).unwrap();
        assert!(a.merge(&b).is_err(), "seed mismatch");
        let c = VirtualBitmap::new(4096, 0.7, 1).unwrap();
        assert!(a.merge(&c).is_err(), "rate mismatch");
        let d = VirtualBitmap::new(2048, 0.4, 1).unwrap();
        assert!(a.merge(&d).is_err(), "size mismatch");
    }

    #[test]
    fn checkpoint_round_trips_exact_state() {
        let mut vb = VirtualBitmap::for_cardinality(1_025, 50_000, 3).unwrap();
        for i in 0..20_000u64 {
            vb.insert_u64(i);
        }
        let restored = VirtualBitmap::restore(&vb.checkpoint()).unwrap();
        assert_eq!(restored.estimate(), vb.estimate());
        assert_eq!(restored.rho(), vb.rho());
        let mut a = vb.clone();
        let mut b = restored;
        for i in 50_000..51_000u64 {
            a.insert_u64(i);
            b.insert_u64(i);
        }
        assert_eq!(a.estimate(), b.estimate());
    }
}
