//! Virtual bitmap (Estan, Varghese, Fisk 2006): linear counting over a
//! sampled substream.

use sbitmap_bitvec::Bitmap;
use sbitmap_core::{DistinctCounter, SBitmapError};
use sbitmap_hash::{HashSplit, Hasher64, SplitMix64Hasher};

/// Linear counting applied to the fraction `rho` of distinct items whose
/// hash falls below the sampling threshold: `n̂ = m·ln(m/Z)/ρ`.
///
/// A single sampling rate only covers one cardinality scale well — the
/// limitation (paper §2.2) that motivates both the multiresolution bitmap
/// and the S-bitmap.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VirtualBitmap {
    bitmap: Bitmap,
    split: HashSplit,
    hasher: SplitMix64Hasher,
    threshold: u64,
    rho: f64,
    ones: usize,
}

impl VirtualBitmap {
    /// Target bitmap load `v = ρ·n/m` at the design cardinality. `v = 1.6`
    /// roughly minimizes the linear-counting error per bit.
    pub const DESIGN_LOAD: f64 = 1.6;

    /// Create a virtual bitmap with `m` physical bits sampling at `rho`.
    ///
    /// # Errors
    ///
    /// Rejects `m` outside `[1, 2^32]` or `rho` outside `(0, 1]`.
    pub fn new(m: usize, rho: f64, seed: u64) -> Result<Self, SBitmapError> {
        if !(rho > 0.0 && rho <= 1.0) {
            return Err(SBitmapError::invalid("rho", format!("{rho} not in (0,1]")));
        }
        let split = HashSplit::new(m, 32).map_err(|e| SBitmapError::invalid("m", e))?;
        let threshold = split.threshold(rho);
        Ok(Self {
            bitmap: Bitmap::new(m),
            split,
            hasher: SplitMix64Hasher::new(seed),
            threshold,
            rho: threshold as f64 / split.sampling_range() as f64,
            ones: 0,
        })
    }

    /// Create a virtual bitmap of `m` bits tuned for cardinalities near
    /// `n_focus`: the sampling rate is chosen so the expected load at
    /// `n_focus` is [`VirtualBitmap::DESIGN_LOAD`].
    ///
    /// # Errors
    ///
    /// Propagates [`VirtualBitmap::new`]; rejects `n_focus == 0`.
    pub fn for_cardinality(m: usize, n_focus: u64, seed: u64) -> Result<Self, SBitmapError> {
        if n_focus == 0 {
            return Err(SBitmapError::invalid("n_focus", "must be at least 1"));
        }
        let rho = (Self::DESIGN_LOAD * m as f64 / n_focus as f64).min(1.0);
        Self::new(m, rho, seed)
    }

    /// The achieved sampling rate (after threshold quantization).
    #[inline]
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Insert a pre-hashed item.
    #[inline]
    pub fn insert_hash(&mut self, hash: u64) {
        let (bucket, u) = self.split.split(hash);
        if u < self.threshold && self.bitmap.set(bucket) {
            self.ones += 1;
        }
    }
}

impl DistinctCounter for VirtualBitmap {
    #[inline]
    fn insert_u64(&mut self, item: u64) {
        self.insert_hash(self.hasher.hash_u64(item));
    }

    #[inline]
    fn insert_bytes(&mut self, item: &[u8]) {
        self.insert_hash(self.hasher.hash_bytes(item));
    }

    fn estimate(&self) -> f64 {
        let m = self.bitmap.len() as f64;
        let zeros = self.bitmap.len() - self.ones;
        let lc = if zeros == 0 {
            m * m.ln()
        } else {
            m * (m / zeros as f64).ln()
        };
        lc / self.rho
    }

    fn memory_bits(&self) -> usize {
        self.bitmap.memory_bits()
    }

    fn reset(&mut self) {
        self.bitmap.reset();
        self.ones = 0;
    }

    fn name(&self) -> &'static str {
        "virtual-bitmap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_design_cardinality() {
        let n = 200_000u64;
        let mut vb = VirtualBitmap::for_cardinality(4096, n, 7).unwrap();
        for i in 0..n {
            vb.insert_u64(i);
        }
        let rel = vb.estimate() / n as f64 - 1.0;
        assert!(rel.abs() < 0.10, "rel err {rel}");
    }

    #[test]
    fn rho_one_degenerates_to_linear_counting() {
        let mut vb = VirtualBitmap::new(8192, 1.0, 3).unwrap();
        let mut lc = crate::LinearCounting::new(8192, 3).unwrap();
        for i in 0..4000u64 {
            vb.insert_u64(i);
            lc.insert_u64(i);
        }
        assert!((vb.estimate() - lc.estimate()).abs() < 1e-9);
    }

    #[test]
    fn small_cardinalities_are_noisy_with_small_rho() {
        // The scale-dependence the paper criticizes: a rate tuned for 1e6
        // sees almost nothing of a 100-item stream.
        let mut vb = VirtualBitmap::for_cardinality(4096, 1_000_000, 5).unwrap();
        for i in 0..100u64 {
            vb.insert_u64(i);
        }
        // Expected sampled items ≈ 100·rho ≈ 0.65 — the estimate is
        // essentially rho^{-1} granular.
        assert!(vb.rho() < 0.01);
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut vb = VirtualBitmap::new(1024, 0.5, 11).unwrap();
        for _ in 0..50 {
            for i in 0..500u64 {
                vb.insert_u64(i);
            }
        }
        let rel = vb.estimate() / 500.0 - 1.0;
        assert!(rel.abs() < 0.25, "rel err {rel}");
    }

    #[test]
    fn rejects_bad_rho() {
        assert!(VirtualBitmap::new(64, 0.0, 1).is_err());
        assert!(VirtualBitmap::new(64, 1.5, 1).is_err());
        assert!(VirtualBitmap::new(64, -0.1, 1).is_err());
    }

    #[test]
    fn reset_clears() {
        let mut vb = VirtualBitmap::new(256, 0.8, 1).unwrap();
        for i in 0..200u64 {
            vb.insert_u64(i);
        }
        vb.reset();
        assert_eq!(vb.estimate(), 0.0);
    }
}
