//! Wegman's adaptive sampling (analyzed by Flajolet 1990).

use sbitmap_core::{BatchedCounter, DistinctCounter, SBitmapError};
use sbitmap_hash::{Hasher64, SplitMix64Hasher};

/// Adaptive sampling: keep a bounded collection of distinct hashed items
/// whose hash lies in a shrinking prefix of the hash space. When the
/// collection overflows its capacity, the "depth" increases (the kept
/// fraction halves) and the collection is filtered. The estimate is
/// `|collection| · 2^{depth}`.
///
/// Flajolet (1990) showed the estimator is unbiased with RRMSE
/// `≈ 1.20/√capacity`, but — as the S-bitmap paper recounts (§2.4) — the
/// error *oscillates periodically with the unknown cardinality*, so it is
/// not scale-invariant. It is also the only sketch here that periodically
/// rescans its state, making it computationally less attractive.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdaptiveSampling {
    sample: Vec<u64>,
    capacity: usize,
    depth: u32,
    hasher: SplitMix64Hasher,
}

impl AdaptiveSampling {
    /// Create a sampler holding at most `capacity` hashed values.
    ///
    /// # Errors
    ///
    /// Needs `capacity ≥ 8`.
    pub fn new(capacity: usize, seed: u64) -> Result<Self, SBitmapError> {
        if capacity < 8 {
            return Err(SBitmapError::invalid("capacity", "need at least 8 slots"));
        }
        Ok(Self {
            sample: Vec::with_capacity(capacity),
            capacity,
            depth: 0,
            hasher: SplitMix64Hasher::new(seed),
        })
    }

    /// Dimension from a bit budget, charging 64 bits per stored hash.
    ///
    /// # Errors
    ///
    /// Budget below 8 × 64 bits.
    pub fn with_memory(m_bits: usize, seed: u64) -> Result<Self, SBitmapError> {
        Self::new(m_bits / 64, seed)
    }

    /// Current sampling depth (kept fraction is `2^{-depth}`).
    #[inline]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Insert a pre-hashed item.
    pub fn insert_hash(&mut self, hash: u64) {
        // Keep iff the top `depth` bits are zero.
        if self.depth > 0 && hash.leading_zeros() < self.depth {
            return;
        }
        // Distinctness check: the sample is small; linear scan would be
        // O(capacity) per insert, so keep it sorted and binary search.
        match self.sample.binary_search(&hash) {
            Ok(_) => {}
            Err(pos) => {
                self.sample.insert(pos, hash);
                while self.sample.len() > self.capacity {
                    // Overflow: halve the kept fraction and rescan.
                    self.depth += 1;
                    let depth = self.depth;
                    self.sample.retain(|&h| h.leading_zeros() >= depth);
                }
            }
        }
    }
}

impl BatchedCounter for AdaptiveSampling {}

impl DistinctCounter for AdaptiveSampling {
    #[inline]
    fn insert_u64(&mut self, item: u64) {
        self.insert_hash(self.hasher.hash_u64(item));
    }

    #[inline]
    fn insert_bytes(&mut self, item: &[u8]) {
        self.insert_hash(self.hasher.hash_bytes(item));
    }

    fn estimate(&self) -> f64 {
        self.sample.len() as f64 * 2f64.powi(self.depth as i32)
    }

    fn memory_bits(&self) -> usize {
        self.capacity * 64
    }

    fn reset(&mut self) {
        self.sample.clear();
        self.depth = 0;
    }

    fn name(&self) -> &'static str {
        "adaptive-sampling"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity() {
        let mut s = AdaptiveSampling::new(1024, 1).unwrap();
        for i in 0..800u64 {
            s.insert_u64(i);
            s.insert_u64(i);
        }
        assert_eq!(s.depth(), 0);
        assert_eq!(s.estimate(), 800.0);
    }

    #[test]
    fn adapts_beyond_capacity() {
        let mut s = AdaptiveSampling::new(256, 2).unwrap();
        let n = 100_000u64;
        for i in 0..n {
            s.insert_u64(i);
        }
        assert!(s.depth() > 0);
        let rel = s.estimate() / n as f64 - 1.0;
        // RRMSE ~ 1.2/sqrt(256) ≈ 7.5%; allow 4 sigma.
        assert!(rel.abs() < 0.30, "rel {rel}");
    }

    #[test]
    fn duplicates_are_free() {
        let mut s = AdaptiveSampling::new(64, 3).unwrap();
        for _ in 0..5 {
            for i in 0..10_000u64 {
                s.insert_u64(i);
            }
        }
        let rel = s.estimate() / 10_000.0 - 1.0;
        assert!(rel.abs() < 0.5, "rel {rel}");
    }

    #[test]
    fn sample_never_exceeds_capacity() {
        let mut s = AdaptiveSampling::new(32, 4).unwrap();
        for i in 0..50_000u64 {
            s.insert_u64(i);
            assert!(s.sample.len() <= 32);
        }
    }

    #[test]
    fn reset_restores_depth() {
        let mut s = AdaptiveSampling::new(32, 5).unwrap();
        for i in 0..10_000u64 {
            s.insert_u64(i);
        }
        s.reset();
        assert_eq!(s.depth(), 0);
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn rejects_tiny_capacity() {
        assert!(AdaptiveSampling::new(4, 1).is_err());
    }
}
