//! K-minimum-values (Bar-Yossef et al. 2002; the "synopsis" of
//! Beyer et al. 2009).

use sbitmap_core::codec::{Checkpoint, CounterKind, PayloadReader, PayloadWriter};
use sbitmap_core::{BatchedCounter, DistinctCounter, MergeableCounter, SBitmapError};
use sbitmap_hash::{Hasher64, SplitMix64Hasher};

/// Keep the `k` smallest distinct hash values; if the `k`-th smallest,
/// normalized to `(0,1)`, is `U_(k)`, then `n̂ = (k−1)/U_(k)` (the
/// unbiased form from Beyer et al.). Below `k` distinct values the count
/// is exact.
///
/// Not part of the paper's head-to-head comparison, but included as the
/// standard order-statistics baseline (the `k = 1` special case is the
/// original Flajolet–Martin idea) and because its sketches support set
/// operations the bitmap family cannot do.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KMinValues {
    /// Sorted ascending; at most `k` values; no duplicates.
    mins: Vec<u64>,
    k: usize,
    hasher: SplitMix64Hasher,
}

impl KMinValues {
    /// Create a KMV sketch keeping the `k` smallest hashes.
    ///
    /// # Errors
    ///
    /// Needs `k ≥ 2` (the estimator divides by `k − 1`).
    pub fn new(k: usize, seed: u64) -> Result<Self, SBitmapError> {
        if k < 2 {
            return Err(SBitmapError::invalid("k", "need k >= 2"));
        }
        Ok(Self {
            mins: Vec::with_capacity(k),
            k,
            hasher: SplitMix64Hasher::new(seed),
        })
    }

    /// Dimension from a bit budget, charging 64 bits per stored hash.
    ///
    /// # Errors
    ///
    /// Budget below 2 × 64 bits.
    pub fn with_memory(m_bits: usize, seed: u64) -> Result<Self, SBitmapError> {
        Self::new(m_bits / 64, seed)
    }

    /// Insert a pre-hashed item.
    pub fn insert_hash(&mut self, hash: u64) {
        if self.mins.len() == self.k && hash >= *self.mins.last().expect("k >= 2") {
            return; // fast path: larger than the current k-th minimum
        }
        if let Err(pos) = self.mins.binary_search(&hash) {
            self.mins.insert(pos, hash);
            self.mins.truncate(self.k);
        }
    }

    /// Intersection-size estimate with another sketch of identical
    /// configuration (Beyer et al.'s Jaccard route): `|A∩B| ≈ ρ·|A∪B|`
    /// where `ρ` is the match fraction within the combined k minima.
    ///
    /// # Errors
    ///
    /// Mismatched `k` or seed.
    pub fn intersection_estimate(&self, other: &Self) -> Result<f64, SBitmapError> {
        if self.k != other.k || self.hasher.seed() != other.hasher.seed() {
            return Err(SBitmapError::invalid("k/seed", "sketches not compatible"));
        }
        // Union sketch = k smallest of the merged minima.
        let mut union = self.mins.clone();
        for &h in &other.mins {
            if let Err(pos) = union.binary_search(&h) {
                union.insert(pos, h);
            }
        }
        union.truncate(self.k);
        let in_both = union
            .iter()
            .filter(|h| self.mins.binary_search(h).is_ok() && other.mins.binary_search(h).is_ok())
            .count();
        let union_est = if union.len() < self.k {
            union.len() as f64
        } else {
            (self.k as f64 - 1.0) / (*union.last().expect("non-empty") as f64 / u64::MAX as f64)
        };
        Ok(in_both as f64 / union.len().max(1) as f64 * union_est)
    }

    /// Merge into the sketch of the stream union.
    ///
    /// # Errors
    ///
    /// Mismatched `k` or seed.
    pub fn merge(&mut self, other: &Self) -> Result<(), SBitmapError> {
        if self.k != other.k || self.hasher.seed() != other.hasher.seed() {
            return Err(SBitmapError::invalid("k/seed", "sketches not compatible"));
        }
        for &h in &other.mins {
            self.insert_hash_presorted(h);
        }
        Ok(())
    }

    fn insert_hash_presorted(&mut self, hash: u64) {
        if let Err(pos) = self.mins.binary_search(&hash) {
            self.mins.insert(pos, hash);
            self.mins.truncate(self.k);
        }
    }
}

impl MergeableCounter for KMinValues {
    fn merge_from(&mut self, other: &Self) -> Result<(), SBitmapError> {
        self.merge(other)
    }
}

impl BatchedCounter for KMinValues {
    fn insert_u64_batch(&mut self, items: &[u64]) {
        let hasher = self.hasher;
        sbitmap_hash::for_each_hash_u64(&hasher, items, |h| self.insert_hash(h));
    }
}

/// Payload: `k` (u64), seed (u64), stored-minima count (u64), the minima
/// (u64 each, strictly ascending).
impl Checkpoint for KMinValues {
    const KIND: CounterKind = CounterKind::KMinValues;

    fn write_payload(&self, out: &mut PayloadWriter) {
        out.u64(self.k as u64);
        out.u64(self.hasher.seed());
        out.u64(self.mins.len() as u64);
        out.words(&self.mins);
    }

    fn read_payload(r: &mut PayloadReader<'_>) -> Result<Self, SBitmapError> {
        let k = r.len_u64()?;
        let seed = r.u64()?;
        let len = r.len_u64()?;
        // `k` is wire-controlled: validate before any use, and never
        // allocate proportionally to it (only to the payload-backed
        // `len`) — a crafted checkpoint must fail, not abort.
        if k < 2 {
            return Err(SBitmapError::invalid("checkpoint", "need k >= 2"));
        }
        if k.checked_mul(64).is_none() {
            return Err(SBitmapError::invalid("checkpoint", "k out of range"));
        }
        if len > k {
            return Err(SBitmapError::invalid("checkpoint", "more than k minima"));
        }
        let mins = r.words(len)?;
        if !mins.windows(2).all(|w| w[0] < w[1]) {
            return Err(SBitmapError::invalid(
                "checkpoint",
                "minima not strictly ascending",
            ));
        }
        Ok(Self {
            mins,
            k,
            hasher: SplitMix64Hasher::new(seed),
        })
    }
}

impl DistinctCounter for KMinValues {
    #[inline]
    fn insert_u64(&mut self, item: u64) {
        self.insert_hash(self.hasher.hash_u64(item));
    }

    #[inline]
    fn insert_bytes(&mut self, item: &[u8]) {
        self.insert_hash(self.hasher.hash_bytes(item));
    }

    fn estimate(&self) -> f64 {
        if self.mins.len() < self.k {
            return self.mins.len() as f64; // exact below k
        }
        let kth = *self.mins.last().expect("k >= 2") as f64;
        // Normalize to (0, 1]; add 1 to avoid division by zero at h = 0.
        let u = (kth + 1.0) / (u64::MAX as f64 + 1.0);
        (self.k as f64 - 1.0) / u
    }

    fn memory_bits(&self) -> usize {
        self.k * 64
    }

    fn reset(&mut self) {
        self.mins.clear();
    }

    fn name(&self) -> &'static str {
        "kmv"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_k() {
        let mut s = KMinValues::new(100, 1).unwrap();
        for i in 0..50u64 {
            s.insert_u64(i);
            s.insert_u64(i);
        }
        assert_eq!(s.estimate(), 50.0);
    }

    #[test]
    fn estimates_beyond_k() {
        let mut s = KMinValues::new(512, 2).unwrap();
        let n = 200_000u64;
        for i in 0..n {
            s.insert_u64(i);
        }
        let rel = s.estimate() / n as f64 - 1.0;
        // RRMSE ≈ 1/sqrt(k-2) ≈ 4.4%; allow 4 sigma.
        assert!(rel.abs() < 0.18, "rel {rel}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = KMinValues::new(64, 3).unwrap();
        let mut b = KMinValues::new(64, 3).unwrap();
        let mut u = KMinValues::new(64, 3).unwrap();
        for i in 0..5_000u64 {
            a.insert_u64(i);
            u.insert_u64(i);
        }
        for i in 4_000..9_000u64 {
            b.insert_u64(i);
            u.insert_u64(i);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.estimate(), u.estimate());
    }

    #[test]
    fn intersection_estimate_is_plausible() {
        let mut a = KMinValues::new(256, 4).unwrap();
        let mut b = KMinValues::new(256, 4).unwrap();
        for i in 0..10_000u64 {
            a.insert_u64(i);
        }
        for i in 5_000..15_000u64 {
            b.insert_u64(i);
        }
        let inter = a.intersection_estimate(&b).unwrap();
        let rel = inter / 5_000.0 - 1.0;
        assert!(rel.abs() < 0.5, "intersection rel {rel}");
    }

    #[test]
    fn mins_stay_sorted_and_bounded() {
        let mut s = KMinValues::new(16, 5).unwrap();
        for i in 0..10_000u64 {
            s.insert_u64(i);
        }
        assert_eq!(s.mins.len(), 16);
        assert!(s.mins.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn rejects_k_below_two() {
        assert!(KMinValues::new(1, 1).is_err());
    }

    #[test]
    fn checkpoint_round_trips_exact_state() {
        let mut s = KMinValues::new(128, 11).unwrap();
        for i in 0..50_000u64 {
            s.insert_u64(i);
        }
        let restored = KMinValues::restore(&s.checkpoint()).unwrap();
        assert_eq!(restored.mins, s.mins);
        assert_eq!(restored.estimate(), s.estimate());
    }

    #[test]
    fn checkpoint_rejects_huge_k_without_allocating() {
        use sbitmap_core::codec::frame;
        // A validly-framed checkpoint claiming k = u64::MAX must error,
        // not preallocate/abort.
        let mut s = KMinValues::new(2, 1).unwrap();
        s.insert_u64(1);
        let good = s.checkpoint();
        // Rewrite the k field (payload offset 0 → byte 6) and re-frame
        // with a fixed checksum.
        let mut payload = good[6..good.len() - 8].to_vec();
        payload[0..8].copy_from_slice(&u64::MAX.to_le_bytes());
        let bytes = frame(CounterKind::KMinValues, &payload);
        let err = KMinValues::restore(&bytes).unwrap_err();
        assert!(err.to_string().contains("k out of range"), "{err}");
    }

    #[test]
    fn checkpoint_rejects_unsorted_minima() {
        let mut s = KMinValues::new(4, 1).unwrap();
        for i in 0..100u64 {
            s.insert_u64(i);
        }
        let bytes = s.checkpoint();
        // Swap two minima in the payload (header: 6 frame + 24 fields)
        // and re-frame with a fixed checksum.
        let mut payload = bytes[6..bytes.len() - 8].to_vec();
        let (a, b) = (24, 32);
        for i in 0..8 {
            payload.swap(a + i, b + i);
        }
        let reframed = sbitmap_core::codec::frame(CounterKind::KMinValues, &payload);
        let err = KMinValues::restore(&reframed).unwrap_err();
        assert!(err.to_string().contains("ascending"), "{err}");
    }
}
