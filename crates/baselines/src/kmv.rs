//! K-minimum-values (Bar-Yossef et al. 2002; the "synopsis" of
//! Beyer et al. 2009).

use sbitmap_core::{DistinctCounter, SBitmapError};
use sbitmap_hash::{Hasher64, SplitMix64Hasher};

/// Keep the `k` smallest distinct hash values; if the `k`-th smallest,
/// normalized to `(0,1)`, is `U_(k)`, then `n̂ = (k−1)/U_(k)` (the
/// unbiased form from Beyer et al.). Below `k` distinct values the count
/// is exact.
///
/// Not part of the paper's head-to-head comparison, but included as the
/// standard order-statistics baseline (the `k = 1` special case is the
/// original Flajolet–Martin idea) and because its sketches support set
/// operations the bitmap family cannot do.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KMinValues {
    /// Sorted ascending; at most `k` values; no duplicates.
    mins: Vec<u64>,
    k: usize,
    hasher: SplitMix64Hasher,
}

impl KMinValues {
    /// Create a KMV sketch keeping the `k` smallest hashes.
    ///
    /// # Errors
    ///
    /// Needs `k ≥ 2` (the estimator divides by `k − 1`).
    pub fn new(k: usize, seed: u64) -> Result<Self, SBitmapError> {
        if k < 2 {
            return Err(SBitmapError::invalid("k", "need k >= 2"));
        }
        Ok(Self {
            mins: Vec::with_capacity(k),
            k,
            hasher: SplitMix64Hasher::new(seed),
        })
    }

    /// Dimension from a bit budget, charging 64 bits per stored hash.
    ///
    /// # Errors
    ///
    /// Budget below 2 × 64 bits.
    pub fn with_memory(m_bits: usize, seed: u64) -> Result<Self, SBitmapError> {
        Self::new(m_bits / 64, seed)
    }

    /// Insert a pre-hashed item.
    pub fn insert_hash(&mut self, hash: u64) {
        if self.mins.len() == self.k && hash >= *self.mins.last().expect("k >= 2") {
            return; // fast path: larger than the current k-th minimum
        }
        if let Err(pos) = self.mins.binary_search(&hash) {
            self.mins.insert(pos, hash);
            self.mins.truncate(self.k);
        }
    }

    /// Intersection-size estimate with another sketch of identical
    /// configuration (Beyer et al.'s Jaccard route): `|A∩B| ≈ ρ·|A∪B|`
    /// where `ρ` is the match fraction within the combined k minima.
    ///
    /// # Errors
    ///
    /// Mismatched `k` or seed.
    pub fn intersection_estimate(&self, other: &Self) -> Result<f64, SBitmapError> {
        if self.k != other.k || self.hasher.seed() != other.hasher.seed() {
            return Err(SBitmapError::invalid("k/seed", "sketches not compatible"));
        }
        // Union sketch = k smallest of the merged minima.
        let mut union = self.mins.clone();
        for &h in &other.mins {
            if let Err(pos) = union.binary_search(&h) {
                union.insert(pos, h);
            }
        }
        union.truncate(self.k);
        let in_both = union
            .iter()
            .filter(|h| self.mins.binary_search(h).is_ok() && other.mins.binary_search(h).is_ok())
            .count();
        let union_est = if union.len() < self.k {
            union.len() as f64
        } else {
            (self.k as f64 - 1.0) / (*union.last().expect("non-empty") as f64 / u64::MAX as f64)
        };
        Ok(in_both as f64 / union.len().max(1) as f64 * union_est)
    }

    /// Merge into the sketch of the stream union.
    ///
    /// # Errors
    ///
    /// Mismatched `k` or seed.
    pub fn merge(&mut self, other: &Self) -> Result<(), SBitmapError> {
        if self.k != other.k || self.hasher.seed() != other.hasher.seed() {
            return Err(SBitmapError::invalid("k/seed", "sketches not compatible"));
        }
        for &h in &other.mins {
            self.insert_hash_presorted(h);
        }
        Ok(())
    }

    fn insert_hash_presorted(&mut self, hash: u64) {
        if let Err(pos) = self.mins.binary_search(&hash) {
            self.mins.insert(pos, hash);
            self.mins.truncate(self.k);
        }
    }
}

impl DistinctCounter for KMinValues {
    #[inline]
    fn insert_u64(&mut self, item: u64) {
        self.insert_hash(self.hasher.hash_u64(item));
    }

    #[inline]
    fn insert_bytes(&mut self, item: &[u8]) {
        self.insert_hash(self.hasher.hash_bytes(item));
    }

    fn estimate(&self) -> f64 {
        if self.mins.len() < self.k {
            return self.mins.len() as f64; // exact below k
        }
        let kth = *self.mins.last().expect("k >= 2") as f64;
        // Normalize to (0, 1]; add 1 to avoid division by zero at h = 0.
        let u = (kth + 1.0) / (u64::MAX as f64 + 1.0);
        (self.k as f64 - 1.0) / u
    }

    fn memory_bits(&self) -> usize {
        self.k * 64
    }

    fn reset(&mut self) {
        self.mins.clear();
    }

    fn name(&self) -> &'static str {
        "kmv"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_k() {
        let mut s = KMinValues::new(100, 1).unwrap();
        for i in 0..50u64 {
            s.insert_u64(i);
            s.insert_u64(i);
        }
        assert_eq!(s.estimate(), 50.0);
    }

    #[test]
    fn estimates_beyond_k() {
        let mut s = KMinValues::new(512, 2).unwrap();
        let n = 200_000u64;
        for i in 0..n {
            s.insert_u64(i);
        }
        let rel = s.estimate() / n as f64 - 1.0;
        // RRMSE ≈ 1/sqrt(k-2) ≈ 4.4%; allow 4 sigma.
        assert!(rel.abs() < 0.18, "rel {rel}");
    }

    #[test]
    fn merge_equals_union() {
        let mut a = KMinValues::new(64, 3).unwrap();
        let mut b = KMinValues::new(64, 3).unwrap();
        let mut u = KMinValues::new(64, 3).unwrap();
        for i in 0..5_000u64 {
            a.insert_u64(i);
            u.insert_u64(i);
        }
        for i in 4_000..9_000u64 {
            b.insert_u64(i);
            u.insert_u64(i);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.estimate(), u.estimate());
    }

    #[test]
    fn intersection_estimate_is_plausible() {
        let mut a = KMinValues::new(256, 4).unwrap();
        let mut b = KMinValues::new(256, 4).unwrap();
        for i in 0..10_000u64 {
            a.insert_u64(i);
        }
        for i in 5_000..15_000u64 {
            b.insert_u64(i);
        }
        let inter = a.intersection_estimate(&b).unwrap();
        let rel = inter / 5_000.0 - 1.0;
        assert!(rel.abs() < 0.5, "intersection rel {rel}");
    }

    #[test]
    fn mins_stay_sorted_and_bounded() {
        let mut s = KMinValues::new(16, 5).unwrap();
        for i in 0..10_000u64 {
            s.insert_u64(i);
        }
        assert_eq!(s.mins.len(), 16);
        assert!(s.mins.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn rejects_k_below_two() {
        assert!(KMinValues::new(1, 1).is_err());
    }
}
