//! Distinct sampling (Gibbons 2001) — the second sampling-family method
//! the paper reviews (§2.4).
//!
//! Like Wegman's adaptive sampling, a shrinking hash-prefix region
//! defines which distinct elements are retained; unlike it, the sample
//! keeps a *multiplicity count* per retained element, which is what lets
//! Gibbons' method answer "event report" queries (e.g. *how many distinct
//! flows carried at least `t` packets*) and not just the plain distinct
//! count. The estimator is `|sample|·2^{level}`, with predicate-restricted
//! variants scaling the matching subsample the same way.

use std::collections::HashMap;

use sbitmap_core::{BatchedCounter, DistinctCounter, SBitmapError};
use sbitmap_hash::{Hasher64, SplitMix64Hasher};

/// Gibbons' distinct sampling sketch.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DistinctSampling {
    /// Retained elements: hashed id → multiplicity in the stream so far.
    sample: HashMap<u64, u64>,
    capacity: usize,
    level: u32,
    hasher: SplitMix64Hasher,
}

impl DistinctSampling {
    /// Create a sampler retaining at most `capacity` distinct elements.
    ///
    /// # Errors
    ///
    /// Needs `capacity ≥ 8`.
    pub fn new(capacity: usize, seed: u64) -> Result<Self, SBitmapError> {
        if capacity < 8 {
            return Err(SBitmapError::invalid("capacity", "need at least 8 slots"));
        }
        Ok(Self {
            sample: HashMap::with_capacity(capacity + 1),
            capacity,
            level: 0,
            hasher: SplitMix64Hasher::new(seed),
        })
    }

    /// Dimension from a bit budget, charging 128 bits per retained
    /// element (64-bit hash + 64-bit multiplicity).
    ///
    /// # Errors
    ///
    /// Budget below 8 × 128 bits.
    pub fn with_memory(m_bits: usize, seed: u64) -> Result<Self, SBitmapError> {
        Self::new(m_bits / 128, seed)
    }

    /// Current sampling level (kept fraction is `2^{-level}`).
    #[inline]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Insert a pre-hashed item.
    pub fn insert_hash(&mut self, hash: u64) {
        if hash.leading_zeros() < self.level {
            return; // outside the kept region
        }
        *self.sample.entry(hash).or_insert(0) += 1;
        while self.sample.len() > self.capacity {
            self.level += 1;
            let level = self.level;
            self.sample.retain(|&h, _| h.leading_zeros() >= level);
        }
    }

    /// Estimate the number of distinct items whose stream multiplicity
    /// satisfies `predicate` — Gibbons' "event report" query. The plain
    /// distinct count is `estimate_where(|_| true)`.
    pub fn estimate_where(&self, predicate: impl Fn(u64) -> bool) -> f64 {
        let matching = self.sample.values().filter(|&&c| predicate(c)).count();
        matching as f64 * 2f64.powi(self.level as i32)
    }

    /// Estimate the number of distinct items seen exactly once
    /// ("rarity" / singleton flows — port-scan signatures).
    pub fn singletons(&self) -> f64 {
        self.estimate_where(|c| c == 1)
    }
}

impl BatchedCounter for DistinctSampling {}

impl DistinctCounter for DistinctSampling {
    #[inline]
    fn insert_u64(&mut self, item: u64) {
        self.insert_hash(self.hasher.hash_u64(item));
    }

    #[inline]
    fn insert_bytes(&mut self, item: &[u8]) {
        self.insert_hash(self.hasher.hash_bytes(item));
    }

    fn estimate(&self) -> f64 {
        self.sample.len() as f64 * 2f64.powi(self.level as i32)
    }

    fn memory_bits(&self) -> usize {
        self.capacity * 128
    }

    fn reset(&mut self) {
        self.sample.clear();
        self.level = 0;
    }

    fn name(&self) -> &'static str {
        "distinct-sampling"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_capacity_with_counts() {
        let mut s = DistinctSampling::new(256, 1).unwrap();
        for i in 0..100u64 {
            s.insert_u64(i);
            if i < 30 {
                s.insert_u64(i); // 30 items appear twice
            }
        }
        assert_eq!(s.level(), 0);
        assert_eq!(s.estimate(), 100.0);
        assert_eq!(s.singletons(), 70.0);
        assert_eq!(s.estimate_where(|c| c >= 2), 30.0);
    }

    #[test]
    fn adapts_and_estimates_at_scale() {
        let mut s = DistinctSampling::new(512, 2).unwrap();
        let n = 200_000u64;
        for i in 0..n {
            s.insert_u64(i);
        }
        assert!(s.level() > 0);
        let rel = s.estimate() / n as f64 - 1.0;
        assert!(rel.abs() < 0.25, "rel {rel}");
    }

    #[test]
    fn event_report_at_scale() {
        // 50k distinct; every 10th item appears 3 times.
        let mut s = DistinctSampling::new(1024, 3).unwrap();
        for i in 0..50_000u64 {
            s.insert_u64(i);
            if i % 10 == 0 {
                s.insert_u64(i);
                s.insert_u64(i);
            }
        }
        let heavy = s.estimate_where(|c| c >= 3);
        let rel = heavy / 5_000.0 - 1.0;
        assert!(rel.abs() < 0.4, "heavy-hitter distinct estimate off: {rel}");
    }

    #[test]
    fn counts_survive_level_increases() {
        let mut s = DistinctSampling::new(16, 4).unwrap();
        // Insert duplicates early, force many level bumps, then check
        // retained counts are still multiplicities (≥ 1).
        for round in 0..3 {
            for i in 0..10_000u64 {
                s.insert_u64(i);
            }
            let _ = round;
        }
        assert!(s.level() > 5);
        assert!(s.sample.values().all(|&c| c >= 1));
        let rel = s.estimate() / 10_000.0 - 1.0;
        assert!(rel.abs() < 0.9, "rel {rel}");
    }

    #[test]
    fn reset_restores() {
        let mut s = DistinctSampling::new(16, 5).unwrap();
        for i in 0..1_000u64 {
            s.insert_u64(i);
        }
        s.reset();
        assert_eq!(s.level(), 0);
        assert_eq!(s.estimate(), 0.0);
    }

    #[test]
    fn rejects_tiny_capacity() {
        assert!(DistinctSampling::new(4, 1).is_err());
        assert!(DistinctSampling::with_memory(500, 1).is_err());
    }
}
