//! Closed-form memory models used by the paper's Table 2 and Figure 3:
//! how many bits each method needs for a target RRMSE `ε` over `[1, N]`.

use crate::hyperloglog::register_width_for;
use sbitmap_core::dimensioning;

/// HyperLogLog memory in bits: `1.04²·ε^{−2}` registers of
/// `α = register_width_for(N)` bits (paper §6.2).
pub fn hyperloglog_bits(n_max: u64, epsilon: f64) -> f64 {
    (1.04 / epsilon).powi(2) * f64::from(register_width_for(n_max))
}

/// LogLog memory in bits: `1.30²·ε^{−2}` registers (≈ 56% more than
/// HyperLogLog at equal accuracy, as the paper notes).
pub fn loglog_bits(n_max: u64, epsilon: f64) -> f64 {
    (1.30 / epsilon).powi(2) * f64::from(register_width_for(n_max))
}

/// S-bitmap memory in bits: equation (7) with `C = 1 + ε^{−2}`.
pub fn sbitmap_bits(n_max: u64, epsilon: f64) -> f64 {
    dimensioning::memory_for(n_max, 1.0 + epsilon.powi(-2))
}

/// FM/PCSA memory in bits: `0.78²·ε^{−2}` groups of 32-bit patterns.
pub fn fm_bits(epsilon: f64) -> f64 {
    (0.78 / epsilon).powi(2) * 32.0
}

/// The Table 2 / Figure 3 quantity: HLL bits over S-bitmap bits at equal
/// `(N, ε)`. Values above 1 are the region where the S-bitmap wins.
pub fn hll_over_sbitmap(n_max: u64, epsilon: f64) -> f64 {
    hyperloglog_bits(n_max, epsilon) / sbitmap_bits(n_max, epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_hll_cells() {
        // Paper Table 2, HLLog columns (unit: 100 bits).
        let cases: &[(u64, f64, f64)] = &[
            (1_000, 0.01, 432.6),
            (10_000, 0.01, 432.6),
            (100_000, 0.01, 540.8),
            (1_000_000, 0.01, 540.8),
            (10_000_000, 0.01, 540.8),
            (1_000, 0.03, 48.1),
            (100_000, 0.03, 60.1),
            (1_000, 0.09, 5.3),
            (100_000, 0.09, 6.7),
        ];
        for &(n, eps, expect) in cases {
            let got = hyperloglog_bits(n, eps) / 100.0;
            assert!(
                (got - expect).abs() < 0.15,
                "N={n} eps={eps}: got {got:.1}, paper {expect}"
            );
        }
    }

    #[test]
    fn loglog_costs_56pct_more_than_hll() {
        let ratio = loglog_bits(1_000_000, 0.03) / hyperloglog_bits(1_000_000, 0.03);
        assert!((ratio - 1.5625).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn paper_quoted_ratios() {
        // §6.2: "for N = 1e6 and eps <= 3% HLL needs >= 27% more memory";
        // "for N = 1e4 and eps <= 3%, >= 120% more".
        assert!(hll_over_sbitmap(1_000_000, 0.03) >= 1.27);
        assert!(hll_over_sbitmap(10_000, 0.03) >= 2.19);
        // And the advantage dissipates for huge N / coarse eps.
        assert!(hll_over_sbitmap(10_000_000, 0.09) < 1.0);
    }

    #[test]
    fn ratio_monotone_down_in_n() {
        let r1 = hll_over_sbitmap(1_000, 0.03);
        let r2 = hll_over_sbitmap(10_000, 0.03);
        // Within a fixed register-width band the ratio falls as N grows.
        assert!(r2 < r1, "{r2} !< {r1}");
    }
}
