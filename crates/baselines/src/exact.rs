//! Exact distinct counting via a hash set — the ground truth the
//! experiments compare sketches against.

use std::collections::HashSet;

use sbitmap_core::{BatchedCounter, DistinctCounter};
use sbitmap_hash::{Hasher64, SplitMix64Hasher};

/// Exact counter: stores the 64-bit hash of every distinct item.
///
/// With the paper's cardinality scales (`≤ 1.5×10^7`) the probability of
/// any 64-bit hash collision is below `10^{-5}`, so the count is exact
/// for practical purposes while keeping the interface identical to the
/// sketches (byte items are not retained).
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExactCounter {
    seen: HashSet<u64>,
    hasher: SplitMix64Hasher,
}

impl ExactCounter {
    /// Create an exact counter.
    pub fn new(seed: u64) -> Self {
        Self {
            seen: HashSet::new(),
            hasher: SplitMix64Hasher::new(seed),
        }
    }

    /// The exact number of distinct items inserted.
    #[inline]
    pub fn count(&self) -> usize {
        self.seen.len()
    }
}

impl BatchedCounter for ExactCounter {}

impl DistinctCounter for ExactCounter {
    fn insert_u64(&mut self, item: u64) {
        self.seen.insert(self.hasher.hash_u64(item));
    }

    fn insert_bytes(&mut self, item: &[u8]) {
        self.seen.insert(self.hasher.hash_bytes(item));
    }

    fn estimate(&self) -> f64 {
        self.seen.len() as f64
    }

    /// Memory grows with the count — the cost the paper's §1 explains
    /// makes exact counting infeasible for streams.
    fn memory_bits(&self) -> usize {
        self.seen.len() * 64
    }

    fn reset(&mut self) {
        self.seen.clear();
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_exactly_with_duplicates() {
        let mut c = ExactCounter::new(1);
        for _ in 0..3 {
            for i in 0..1_000u64 {
                c.insert_u64(i);
            }
        }
        assert_eq!(c.count(), 1_000);
        assert_eq!(c.estimate(), 1_000.0);
    }

    #[test]
    fn memory_grows_linearly() {
        let mut c = ExactCounter::new(1);
        for i in 0..100u64 {
            c.insert_u64(i);
        }
        assert_eq!(c.memory_bits(), 6_400);
    }

    #[test]
    fn reset_clears() {
        let mut c = ExactCounter::new(1);
        c.insert_bytes(b"x");
        c.reset();
        assert_eq!(c.count(), 0);
    }
}
