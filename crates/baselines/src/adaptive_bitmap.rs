//! Adaptive bitmap (Estan, Varghese, Fisk 2006) — a virtual bitmap whose
//! sampling rate is re-tuned between measurement intervals from the
//! previous interval's estimate.
//!
//! The S-bitmap paper distinguishes this from its own method explicitly
//! (footnote 2 of §3): the adaptive bitmap adapts *across* intervals
//! using a rough prior estimate, whereas the S-bitmap adapts *within* a
//! single pass with no prior. The failure mode this implies — a sudden
//! jump between intervals (exactly the worm-outbreak scenario of §7.1)
//! catches the adaptive bitmap with a stale rate — is demonstrated in
//! the tests below.

use crate::virtual_bitmap::VirtualBitmap;
use sbitmap_core::{BatchedCounter, DistinctCounter, SBitmapError};

/// Virtual bitmap with across-interval rate adaptation.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AdaptiveBitmap {
    inner: VirtualBitmap,
    m: usize,
    seed: u64,
    interval: u64,
}

impl AdaptiveBitmap {
    /// Create with `m` bits, starting at sampling rate 1 (the right rate
    /// for small unknown cardinalities; the first overflow-ish interval
    /// tunes it down).
    ///
    /// # Errors
    ///
    /// Propagates [`VirtualBitmap::new`] errors.
    pub fn new(m: usize, seed: u64) -> Result<Self, SBitmapError> {
        Ok(Self {
            inner: VirtualBitmap::new(m, 1.0, seed)?,
            m,
            seed,
            interval: 0,
        })
    }

    /// The currently tuned sampling rate.
    pub fn rho(&self) -> f64 {
        self.inner.rho()
    }

    /// Close the current measurement interval: report its estimate, then
    /// re-tune the sampling rate so that a *similar* next interval would
    /// sit at the optimal bitmap load, and start fresh.
    pub fn advance_interval(&mut self) -> f64 {
        let estimate = self.inner.estimate();
        let target = estimate.max(1.0);
        let rho = (VirtualBitmap::DESIGN_LOAD * self.m as f64 / target).min(1.0);
        self.interval += 1;
        // Rebuild with a per-interval seed so intervals are independent.
        self.inner = VirtualBitmap::new(self.m, rho, self.seed ^ (self.interval << 32))
            .expect("rho in (0,1] by construction");
        estimate
    }
}

impl BatchedCounter for AdaptiveBitmap {}

impl DistinctCounter for AdaptiveBitmap {
    #[inline]
    fn insert_u64(&mut self, item: u64) {
        self.inner.insert_u64(item);
    }

    #[inline]
    fn insert_bytes(&mut self, item: &[u8]) {
        self.inner.insert_bytes(item);
    }

    fn estimate(&self) -> f64 {
        self.inner.estimate()
    }

    fn memory_bits(&self) -> usize {
        self.inner.memory_bits()
    }

    /// Reset keeps the tuned rate (that is the "adaptive" carry-over);
    /// use [`AdaptiveBitmap::advance_interval`] for the re-tuning reset.
    fn reset(&mut self) {
        self.inner.reset();
    }

    fn name(&self) -> &'static str {
        "adaptive-bitmap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(ab: &mut AdaptiveBitmap, interval: u64, n: u64) {
        for i in 0..n {
            ab.insert_u64((interval << 40) | i);
        }
    }

    #[test]
    fn tunes_to_steady_traffic() {
        let mut ab = AdaptiveBitmap::new(4_096, 1).unwrap();
        // Interval 0: rate 1, 200k flows — saturated, poor estimate.
        feed(&mut ab, 0, 200_000);
        ab.advance_interval();
        assert!(ab.rho() < 1.0, "rate should tune down");
        // Interval 1 at tuned rate: accurate.
        feed(&mut ab, 1, 200_000);
        let rel = ab.estimate() / 200_000.0 - 1.0;
        assert!(rel.abs() < 0.15, "tuned estimate off: {rel}");
    }

    #[test]
    fn sudden_burst_catches_stale_rate() {
        // The §7.1 weakness: tuned for 2k flows, hit with 400k.
        let mut ab = AdaptiveBitmap::new(4_096, 2).unwrap();
        feed(&mut ab, 0, 2_000);
        ab.advance_interval();
        assert!((ab.rho() - 1.0).abs() < 1e-9, "small interval keeps rate 1");
        feed(&mut ab, 1, 400_000);
        let rel = ab.estimate() / 400_000.0 - 1.0;
        // Rate-1 bitmap of 4096 bits is fully saturated at 400k: the
        // estimate is capped around m·ln m ≈ 34k — an error near -90%.
        assert!(rel < -0.5, "stale rate should badly underestimate: {rel}");
        // Each adaptation round re-tunes from a still-saturated estimate,
        // so recovery takes several intervals (the across-interval lag
        // the S-bitmap avoids). It must converge within a handful.
        let mut rounds = 0;
        let rel = loop {
            ab.advance_interval();
            rounds += 1;
            feed(&mut ab, 1 + rounds, 400_000);
            let rel = ab.estimate() / 400_000.0 - 1.0;
            if rel.abs() < 0.2 || rounds == 6 {
                break rel;
            }
        };
        assert!(
            rel.abs() < 0.2,
            "no convergence after {rounds} rounds: {rel}"
        );
        assert!(
            rounds >= 2,
            "convergence should take multiple rounds, took {rounds}"
        );
    }

    #[test]
    fn small_traffic_stays_at_rate_one() {
        let mut ab = AdaptiveBitmap::new(4_096, 3).unwrap();
        for interval in 0..3 {
            feed(&mut ab, interval, 500);
            let est = ab.advance_interval();
            assert!(
                (est / 500.0 - 1.0).abs() < 0.2,
                "interval {interval}: {est}"
            );
        }
        assert!((ab.rho() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reset_keeps_tuned_rate() {
        let mut ab = AdaptiveBitmap::new(2_048, 4).unwrap();
        feed(&mut ab, 0, 100_000);
        ab.advance_interval();
        let rho = ab.rho();
        ab.reset();
        assert_eq!(ab.rho(), rho);
        assert_eq!(ab.estimate(), 0.0);
    }
}
