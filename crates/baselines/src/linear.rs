//! Linear counting (Whang, Vander-Zanden, Taylor 1990).

use sbitmap_bitvec::Bitmap;
use sbitmap_core::codec::{Checkpoint, CounterKind, PayloadReader, PayloadWriter};
use sbitmap_core::{BatchedCounter, DistinctCounter, MergeableCounter, SBitmapError};
use sbitmap_hash::{HashSplit, Hasher64, SplitMix64Hasher};

/// The classic bitmap estimator: hash every item to one of `m` buckets,
/// estimate `n̂ = m·ln(m/Z)` from the number of empty buckets `Z`.
///
/// Accurate while the bitmap load `n/m` is moderate; the paper (§2.2)
/// notes an `m`-bit bitmap only covers cardinalities up to about
/// `m·ln m`, which is why it serves as a *component* of the
/// multiresolution bitmap rather than a wide-range counter itself.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinearCounting {
    bitmap: Bitmap,
    split: HashSplit,
    hasher: SplitMix64Hasher,
    ones: usize,
}

impl LinearCounting {
    /// Create a linear counter with `m` bits.
    ///
    /// # Errors
    ///
    /// Rejects `m == 0` or `m > 2^32`.
    pub fn new(m: usize, seed: u64) -> Result<Self, SBitmapError> {
        let split = HashSplit::new(m, 1).map_err(|e| SBitmapError::invalid("m", e))?;
        Ok(Self {
            bitmap: Bitmap::new(m),
            split,
            hasher: SplitMix64Hasher::new(seed),
            ones: 0,
        })
    }

    /// Choose the bitmap size for a target RRMSE at cardinality `n_max`
    /// by numerically minimizing Whang et al.'s standard-error formula
    /// `Re(n̂) ≈ sqrt(m)·sqrt(e^v − v − 1)/n` with `v = n/m`, then build.
    ///
    /// # Errors
    ///
    /// Propagates [`LinearCounting::new`] errors; rejects `epsilon ∉ (0,1)`
    /// or `n_max == 0`.
    pub fn for_error(n_max: u64, epsilon: f64, seed: u64) -> Result<Self, SBitmapError> {
        if n_max == 0 {
            return Err(SBitmapError::invalid("n_max", "must be at least 1"));
        }
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(SBitmapError::invalid("epsilon", "must be in (0, 1)"));
        }
        // Error at n is decreasing in m; bisect on m.
        let err_at = |m: f64| {
            let v = n_max as f64 / m;
            (m * ((v.exp() - v - 1.0).max(0.0))).sqrt() / n_max as f64
        };
        let mut lo = 8.0;
        let mut hi = 8.0;
        while err_at(hi) > epsilon {
            hi *= 2.0;
            if hi > 1e12 {
                return Err(SBitmapError::SolverFailure(
                    "linear counting dimensioning did not converge".into(),
                ));
            }
        }
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if err_at(mid) > epsilon {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Self::new(hi.ceil() as usize, seed)
    }

    /// Number of set bits.
    #[inline]
    pub fn fill(&self) -> usize {
        self.ones
    }

    /// Insert a pre-hashed item.
    #[inline]
    pub fn insert_hash(&mut self, hash: u64) {
        let (bucket, _) = self.split.split(hash);
        if self.bitmap.set(bucket) {
            self.ones += 1;
        }
    }

    /// Merge with another linear counter of identical configuration
    /// (word-level bitwise or) — linear counting *is* mergeable, unlike
    /// the S-bitmap.
    ///
    /// # Errors
    ///
    /// Errors if sizes or seeds differ.
    pub fn merge(&mut self, other: &Self) -> Result<(), SBitmapError> {
        if self.hasher.seed() != other.hasher.seed() {
            return Err(SBitmapError::invalid("seed", "merge requires equal seeds"));
        }
        self.ones += self
            .bitmap
            .union_or(&other.bitmap)
            .map_err(|e| SBitmapError::invalid("m", e))?;
        Ok(())
    }
}

impl MergeableCounter for LinearCounting {
    fn merge_from(&mut self, other: &Self) -> Result<(), SBitmapError> {
        self.merge(other)
    }
}

impl BatchedCounter for LinearCounting {
    fn insert_u64_batch(&mut self, items: &[u64]) {
        let hasher = self.hasher;
        sbitmap_hash::for_each_hash_u64(&hasher, items, |h| self.insert_hash(h));
    }
}

/// Payload: `m` (u64), seed (u64), bitmap words (u64 × ⌈m/64⌉). The fill
/// counter is recomputed from the popcount on restore.
impl Checkpoint for LinearCounting {
    const KIND: CounterKind = CounterKind::LinearCounting;

    fn write_payload(&self, out: &mut PayloadWriter) {
        out.u64(self.bitmap.len() as u64);
        out.u64(self.hasher.seed());
        out.words(self.bitmap.words());
    }

    fn read_payload(r: &mut PayloadReader<'_>) -> Result<Self, SBitmapError> {
        let m = r.len_u64()?;
        let seed = r.u64()?;
        let words = r.words(m.div_ceil(64))?;
        let bitmap =
            Bitmap::from_words(words, m).map_err(|e| SBitmapError::invalid("checkpoint", e))?;
        let mut lc = LinearCounting::new(m, seed)?;
        lc.ones = bitmap.count_ones();
        lc.bitmap = bitmap;
        Ok(lc)
    }
}

impl DistinctCounter for LinearCounting {
    #[inline]
    fn insert_u64(&mut self, item: u64) {
        self.insert_hash(self.hasher.hash_u64(item));
    }

    #[inline]
    fn insert_bytes(&mut self, item: &[u8]) {
        self.insert_hash(self.hasher.hash_bytes(item));
    }

    fn estimate(&self) -> f64 {
        let m = self.bitmap.len() as f64;
        let zeros = self.bitmap.len() - self.ones;
        if zeros == 0 {
            // Saturated: report the capacity point m·ln m.
            return m * m.ln();
        }
        m * (m / zeros as f64).ln()
    }

    fn memory_bits(&self) -> usize {
        self.bitmap.memory_bits()
    }

    fn reset(&mut self) {
        self.bitmap.reset();
        self.ones = 0;
    }

    fn name(&self) -> &'static str {
        "linear-counting"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_within_tolerance_at_moderate_load() {
        let mut lc = LinearCounting::new(20_000, 1).unwrap();
        for i in 0..10_000u64 {
            lc.insert_u64(i);
            lc.insert_u64(i); // duplicates free
        }
        let rel = lc.estimate() / 10_000.0 - 1.0;
        assert!(rel.abs() < 0.05, "rel err {rel}");
    }

    #[test]
    fn empty_estimates_zero() {
        let lc = LinearCounting::new(1000, 1).unwrap();
        assert_eq!(lc.estimate(), 0.0);
    }

    #[test]
    fn saturation_returns_capacity() {
        let mut lc = LinearCounting::new(64, 1).unwrap();
        for i in 0..100_000u64 {
            lc.insert_u64(i);
        }
        let est = lc.estimate();
        assert!((est - 64.0 * 64f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn for_error_hits_target_at_n_max() {
        let lc = LinearCounting::for_error(10_000, 0.02, 3).unwrap();
        // Spot check the chosen size: error formula at n_max ≈ epsilon.
        let m = lc.memory_bits() as f64;
        let v = 10_000.0 / m;
        let err = (m * (v.exp() - v - 1.0)).sqrt() / 10_000.0;
        assert!(err <= 0.02 + 1e-9, "err {err} at m {m}");
    }

    #[test]
    fn merge_equals_union_stream() {
        let mut a = LinearCounting::new(4096, 9).unwrap();
        let mut b = LinearCounting::new(4096, 9).unwrap();
        let mut c = LinearCounting::new(4096, 9).unwrap();
        for i in 0..500u64 {
            a.insert_u64(i);
            c.insert_u64(i);
        }
        for i in 400..900u64 {
            b.insert_u64(i);
            c.insert_u64(i);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.fill(), c.fill());
        assert_eq!(a.estimate(), c.estimate());
    }

    #[test]
    fn merge_rejects_seed_mismatch() {
        let mut a = LinearCounting::new(64, 1).unwrap();
        let b = LinearCounting::new(64, 2).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn reset_clears() {
        let mut lc = LinearCounting::new(256, 5).unwrap();
        for i in 0..100u64 {
            lc.insert_u64(i);
        }
        lc.reset();
        assert_eq!(lc.estimate(), 0.0);
        assert_eq!(lc.fill(), 0);
    }

    #[test]
    fn rejects_zero_size() {
        assert!(LinearCounting::new(0, 1).is_err());
    }

    #[test]
    fn checkpoint_round_trips_exact_state() {
        // Non-word-multiple m exercises the partial-word validation.
        let mut lc = LinearCounting::new(4_001, 13).unwrap();
        for i in 0..2_000u64 {
            lc.insert_u64(i);
        }
        let restored = LinearCounting::restore(&lc.checkpoint()).unwrap();
        assert_eq!(restored.fill(), lc.fill());
        assert_eq!(restored.estimate(), lc.estimate());
        // Restored sketch keeps merging/counting identically.
        let mut a = lc.clone();
        let mut b = restored;
        a.insert_u64(777_777);
        b.insert_u64(777_777);
        assert_eq!(a.fill(), b.fill());
    }

    #[test]
    fn batched_insert_matches_scalar() {
        let mut batched = LinearCounting::new(2_048, 5).unwrap();
        let mut scalar = LinearCounting::new(2_048, 5).unwrap();
        let items: Vec<u64> = (0..1_001u64).collect();
        batched.insert_u64_batch(&items);
        for &i in &items {
            scalar.insert_u64(i);
        }
        assert_eq!(batched.fill(), scalar.fill());
    }
}
