//! Multiresolution bitmap (Estan, Varghese, Fisk 2006).
//!
//! Several virtual bitmaps with geometrically decreasing sampling rates
//! are packed into one memory budget: component `i` (0-based) receives the
//! fraction `2^{−(i+1)}` of the hash space (the last component receives
//! the leftover `2^{−(K−1)}`), and each component is a small linear
//! counter. At estimation time the algorithm picks the finest component
//! that is not overloaded ("base") and sums the linear-counting estimates
//! of components `base..K`, scaling by the inverse of their combined
//! coverage `2^{−base}`.
//!
//! Estan et al.'s dimensioning is "quasi-optimal" (and the S-bitmap paper
//! notes optimizing it is open); [`MrBitmap::with_memory`] implements a
//! numerical rule with the same structure: even component sizes, a
//! double-size final component, and the component count chosen so the last
//! component's expected load at `n_max` stays inside linear counting's
//! usable range. See DESIGN.md §3 for the rationale and the validation
//! against the paper's Figure 4 / Tables 3–4 behaviour.

use sbitmap_bitvec::Bitmap;
use sbitmap_core::{DistinctCounter, SBitmapError};
use sbitmap_hash::{Hasher64, SplitMix64Hasher};

/// The multiresolution bitmap sketch.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MrBitmap {
    components: Vec<Bitmap>,
    ones: Vec<usize>,
    hasher: SplitMix64Hasher,
}

impl MrBitmap {
    /// A component is usable for linear counting while its load factor is
    /// below 2 (fill fraction below `1 − e^{−2} ≈ 86.5%`).
    pub const MAX_LOAD: f64 = 2.0;

    /// Build from explicit component sizes (`sizes[i]` bits for component
    /// `i`; the last component is the coarsest).
    ///
    /// # Errors
    ///
    /// Rejects an empty size list or any zero-sized component.
    pub fn from_sizes(sizes: &[usize], seed: u64) -> Result<Self, SBitmapError> {
        if sizes.is_empty() {
            return Err(SBitmapError::invalid(
                "sizes",
                "need at least one component",
            ));
        }
        if sizes.contains(&0) {
            return Err(SBitmapError::invalid(
                "sizes",
                "components must be non-empty",
            ));
        }
        if sizes.len() > 48 {
            return Err(SBitmapError::invalid("sizes", "more than 48 components"));
        }
        Ok(Self {
            components: sizes.iter().map(|&b| Bitmap::new(b)).collect(),
            ones: vec![0; sizes.len()],
            hasher: SplitMix64Hasher::new(seed),
        })
    }

    /// Dimension for a total budget of `m` bits covering cardinalities up
    /// to `n_max`: the smallest component count `K` such that the last
    /// component's expected load at `n_max` is below
    /// [`MrBitmap::MAX_LOAD`], with the budget split evenly and the final
    /// component given a double share.
    ///
    /// # Errors
    ///
    /// Rejects budgets too small to produce ≥ 16-bit components.
    pub fn with_memory(m: usize, n_max: u64, seed: u64) -> Result<Self, SBitmapError> {
        if n_max == 0 {
            return Err(SBitmapError::invalid("n_max", "must be at least 1"));
        }
        let mut k = 1usize;
        loop {
            // Component size with a double-share last component.
            let b = m / (k + 1);
            if b < 16 {
                return Err(SBitmapError::invalid(
                    "m",
                    format!("{m} bits is too small for n_max = {n_max} (needs {k}+ components)"),
                ));
            }
            let last_load = n_max as f64 / 2f64.powi(k as i32 - 1) / (2 * b) as f64;
            if last_load <= Self::MAX_LOAD || k >= 40 {
                let mut sizes = vec![b; k.saturating_sub(1)];
                sizes.push(m - b * (k - 1)); // last takes the remainder (≈ 2b)
                return Self::from_sizes(&sizes, seed);
            }
            k += 1;
        }
    }

    /// Number of components.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Insert a pre-hashed item.
    pub fn insert_hash(&mut self, hash: u64) {
        let k = self.components.len();
        // Low 32 bits: geometric component choice (coverage 2^{-(i+1)},
        // clamped into the last component).
        let t = (hash as u32).trailing_zeros() as usize;
        let comp = t.min(k - 1);
        // High 32 bits: bucket within the component via fastrange.
        let b = self.components[comp].len() as u64;
        let bucket = (((hash >> 32) * b) >> 32) as usize;
        if self.components[comp].set(bucket) {
            self.ones[comp] += 1;
        }
    }

    /// The base component the estimator would use right now (0-based).
    pub fn base_component(&self) -> usize {
        let mut base = 0usize;
        for (i, comp) in self.components.iter().enumerate() {
            let setmax = (comp.len() as f64 * (1.0 - (-Self::MAX_LOAD).exp())).floor() as usize;
            if self.ones[i] > setmax {
                base = i + 1;
            }
        }
        base.min(self.components.len() - 1)
    }
}

impl DistinctCounter for MrBitmap {
    #[inline]
    fn insert_u64(&mut self, item: u64) {
        self.insert_hash(self.hasher.hash_u64(item));
    }

    #[inline]
    fn insert_bytes(&mut self, item: &[u8]) {
        self.insert_hash(self.hasher.hash_bytes(item));
    }

    fn estimate(&self) -> f64 {
        let base = self.base_component();
        let mut sum = 0.0;
        for i in base..self.components.len() {
            let b = self.components[i].len() as f64;
            let zeros = self.components[i].len() - self.ones[i];
            sum += if zeros == 0 {
                b * b.ln() // saturated component: capacity value
            } else {
                b * (b / zeros as f64).ln()
            };
        }
        // Components base..K jointly cover the fraction 2^{-base}.
        sum * 2f64.powi(base as i32)
    }

    fn memory_bits(&self) -> usize {
        self.components.iter().map(Bitmap::memory_bits).sum()
    }

    fn reset(&mut self) {
        for c in &mut self.components {
            c.reset();
        }
        self.ones.fill(0);
    }

    fn name(&self) -> &'static str {
        "mr-bitmap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensioning_covers_range() {
        let mr = MrBitmap::with_memory(40_000, 1 << 20, 1).unwrap();
        assert!(mr.num_components() >= 2);
        assert!(mr.memory_bits() == 40_000);
    }

    #[test]
    fn tracks_small_and_large_cardinalities() {
        for &n in &[100u64, 10_000, 500_000] {
            let mut mr = MrBitmap::with_memory(40_000, 1 << 20, 3).unwrap();
            for i in 0..n {
                mr.insert_u64(i);
            }
            let rel = mr.estimate() / n as f64 - 1.0;
            assert!(rel.abs() < 0.15, "n={n}: rel err {rel}");
        }
    }

    #[test]
    fn duplicates_are_free() {
        let mut mr = MrBitmap::with_memory(8_000, 100_000, 5).unwrap();
        for round in 0..3 {
            for i in 0..5_000u64 {
                mr.insert_u64(i);
            }
            let rel = mr.estimate() / 5_000.0 - 1.0;
            assert!(rel.abs() < 0.2, "round {round}: rel {rel}");
        }
    }

    #[test]
    fn saturates_beyond_design_range() {
        // The boundary failure the paper's Tables 3-4 show: n at or past
        // N makes mr-bitmap unreliable (error ~100%). We only assert the
        // estimate stops tracking (it stays below 3x the capacity-ish
        // value rather than following n).
        let mut mr = MrBitmap::with_memory(2_700, 10_000, 7).unwrap();
        for i in 0..40_000u64 {
            mr.insert_u64(i);
        }
        let est = mr.estimate();
        assert!(est < 120_000.0, "estimate {est} should be bounded");
    }

    #[test]
    fn base_component_advances_with_load() {
        let mut mr = MrBitmap::with_memory(4_000, 1 << 20, 9).unwrap();
        assert_eq!(mr.base_component(), 0);
        for i in 0..200_000u64 {
            mr.insert_u64(i);
        }
        assert!(mr.base_component() > 0);
    }

    #[test]
    fn rejects_tiny_budgets() {
        assert!(MrBitmap::with_memory(20, 1 << 20, 1).is_err());
        assert!(MrBitmap::from_sizes(&[], 1).is_err());
        assert!(MrBitmap::from_sizes(&[64, 0], 1).is_err());
    }

    #[test]
    fn single_component_is_linear_counting_shape() {
        let mr = MrBitmap::with_memory(4_096, 100, 1).unwrap();
        assert_eq!(mr.num_components(), 1);
    }

    #[test]
    fn reset_clears() {
        let mut mr = MrBitmap::with_memory(4_000, 100_000, 2).unwrap();
        for i in 0..1000u64 {
            mr.insert_u64(i);
        }
        mr.reset();
        assert_eq!(mr.estimate(), 0.0);
    }
}
