//! Multiresolution bitmap (Estan, Varghese, Fisk 2006).
//!
//! Several virtual bitmaps with geometrically decreasing sampling rates
//! are packed into one memory budget: component `i` (0-based) receives the
//! fraction `2^{−(i+1)}` of the hash space (the last component receives
//! the leftover `2^{−(K−1)}`), and each component is a small linear
//! counter. At estimation time the algorithm picks the finest component
//! that is not overloaded ("base") and sums the linear-counting estimates
//! of components `base..K`, scaling by the inverse of their combined
//! coverage `2^{−base}`.
//!
//! Estan et al.'s dimensioning is "quasi-optimal" (and the S-bitmap paper
//! notes optimizing it is open); [`MrBitmap::with_memory`] implements a
//! numerical rule with the same structure: even component sizes, a
//! double-size final component, and the component count chosen so the last
//! component's expected load at `n_max` stays inside linear counting's
//! usable range. See DESIGN.md §3 for the rationale and the validation
//! against the paper's Figure 4 / Tables 3–4 behaviour.

use sbitmap_bitvec::Bitmap;
use sbitmap_core::codec::{Checkpoint, CounterKind, PayloadReader, PayloadWriter};
use sbitmap_core::{BatchedCounter, DistinctCounter, MergeableCounter, SBitmapError};
use sbitmap_hash::{Hasher64, SplitMix64Hasher};

/// The multiresolution bitmap sketch.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MrBitmap {
    components: Vec<Bitmap>,
    ones: Vec<usize>,
    hasher: SplitMix64Hasher,
}

impl MrBitmap {
    /// A component is usable for linear counting while its load factor is
    /// below 2 (fill fraction below `1 − e^{−2} ≈ 86.5%`).
    pub const MAX_LOAD: f64 = 2.0;

    /// Build from explicit component sizes (`sizes[i]` bits for component
    /// `i`; the last component is the coarsest).
    ///
    /// # Errors
    ///
    /// Rejects an empty size list or any zero-sized component.
    pub fn from_sizes(sizes: &[usize], seed: u64) -> Result<Self, SBitmapError> {
        if sizes.is_empty() {
            return Err(SBitmapError::invalid(
                "sizes",
                "need at least one component",
            ));
        }
        if sizes.contains(&0) {
            return Err(SBitmapError::invalid(
                "sizes",
                "components must be non-empty",
            ));
        }
        if sizes.len() > 48 {
            return Err(SBitmapError::invalid("sizes", "more than 48 components"));
        }
        Ok(Self {
            components: sizes.iter().map(|&b| Bitmap::new(b)).collect(),
            ones: vec![0; sizes.len()],
            hasher: SplitMix64Hasher::new(seed),
        })
    }

    /// Dimension for a total budget of `m` bits covering cardinalities up
    /// to `n_max`: the smallest component count `K` such that the last
    /// component's expected load at `n_max` is below
    /// [`MrBitmap::MAX_LOAD`], with the budget split evenly and the final
    /// component given a double share.
    ///
    /// # Errors
    ///
    /// Rejects budgets too small to produce ≥ 16-bit components.
    pub fn with_memory(m: usize, n_max: u64, seed: u64) -> Result<Self, SBitmapError> {
        if n_max == 0 {
            return Err(SBitmapError::invalid("n_max", "must be at least 1"));
        }
        let mut k = 1usize;
        loop {
            // Component size with a double-share last component.
            let b = m / (k + 1);
            if b < 16 {
                return Err(SBitmapError::invalid(
                    "m",
                    format!("{m} bits is too small for n_max = {n_max} (needs {k}+ components)"),
                ));
            }
            let last_load = n_max as f64 / 2f64.powi(k as i32 - 1) / (2 * b) as f64;
            if last_load <= Self::MAX_LOAD || k >= 40 {
                let mut sizes = vec![b; k.saturating_sub(1)];
                sizes.push(m - b * (k - 1)); // last takes the remainder (≈ 2b)
                return Self::from_sizes(&sizes, seed);
            }
            k += 1;
        }
    }

    /// Number of components.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Insert a pre-hashed item.
    pub fn insert_hash(&mut self, hash: u64) {
        let k = self.components.len();
        // Low 32 bits: geometric component choice (coverage 2^{-(i+1)},
        // clamped into the last component).
        let t = (hash as u32).trailing_zeros() as usize;
        let comp = t.min(k - 1);
        // High 32 bits: bucket within the component via fastrange.
        let b = self.components[comp].len() as u64;
        let bucket = (((hash >> 32) * b) >> 32) as usize;
        if self.components[comp].set(bucket) {
            self.ones[comp] += 1;
        }
    }

    /// Merge with another multiresolution bitmap of identical
    /// configuration (word-level or, per component): component choice and
    /// bucket depend only on the item's hash, so or-ing each component
    /// yields exactly the sketch of the union stream.
    ///
    /// # Errors
    ///
    /// Errors if the component layouts or seeds differ.
    pub fn merge(&mut self, other: &Self) -> Result<(), SBitmapError> {
        if self.hasher.seed() != other.hasher.seed() {
            return Err(SBitmapError::invalid("seed", "merge requires equal seeds"));
        }
        // Validate the whole layout *before* touching any component, so
        // a rejected merge leaves `self` untouched — never half-merged.
        if self.components.len() != other.components.len()
            || self
                .components
                .iter()
                .zip(other.components.iter())
                .any(|(a, b)| a.len() != b.len())
        {
            return Err(SBitmapError::invalid(
                "sizes",
                "merge requires identical component layouts",
            ));
        }
        for (i, (mine, theirs)) in self
            .components
            .iter_mut()
            .zip(other.components.iter())
            .enumerate()
        {
            self.ones[i] += mine.union_or(theirs).expect("lengths validated above");
        }
        Ok(())
    }

    /// The base component the estimator would use right now (0-based).
    pub fn base_component(&self) -> usize {
        let mut base = 0usize;
        for (i, comp) in self.components.iter().enumerate() {
            let setmax = (comp.len() as f64 * (1.0 - (-Self::MAX_LOAD).exp())).floor() as usize;
            if self.ones[i] > setmax {
                base = i + 1;
            }
        }
        base.min(self.components.len() - 1)
    }
}

impl MergeableCounter for MrBitmap {
    fn merge_from(&mut self, other: &Self) -> Result<(), SBitmapError> {
        self.merge(other)
    }
}

impl BatchedCounter for MrBitmap {
    fn insert_u64_batch(&mut self, items: &[u64]) {
        let hasher = self.hasher;
        sbitmap_hash::for_each_hash_u64(&hasher, items, |h| self.insert_hash(h));
    }
}

/// Payload: seed (u64), component count `K` (u32), then per component its
/// length in bits (u64) followed by its words. Fill counters are
/// recomputed from popcounts on restore.
impl Checkpoint for MrBitmap {
    const KIND: CounterKind = CounterKind::MrBitmap;

    fn write_payload(&self, out: &mut PayloadWriter) {
        out.u64(self.hasher.seed());
        out.u32(self.components.len() as u32);
        for comp in &self.components {
            out.u64(comp.len() as u64);
            out.words(comp.words());
        }
    }

    fn read_payload(r: &mut PayloadReader<'_>) -> Result<Self, SBitmapError> {
        let seed = r.u64()?;
        let k = r.u32()? as usize;
        if k == 0 || k > 48 {
            return Err(SBitmapError::invalid(
                "checkpoint",
                format!("component count {k} out of range 1..=48"),
            ));
        }
        let mut components = Vec::with_capacity(k);
        let mut ones = Vec::with_capacity(k);
        for _ in 0..k {
            let len = r.len_u64()?;
            if len == 0 {
                return Err(SBitmapError::invalid(
                    "checkpoint",
                    "empty component in mr-bitmap checkpoint",
                ));
            }
            let words = r.words(len.div_ceil(64))?;
            let comp = Bitmap::from_words(words, len)
                .map_err(|e| SBitmapError::invalid("checkpoint", e))?;
            ones.push(comp.count_ones());
            components.push(comp);
        }
        Ok(Self {
            components,
            ones,
            hasher: SplitMix64Hasher::new(seed),
        })
    }
}

impl DistinctCounter for MrBitmap {
    #[inline]
    fn insert_u64(&mut self, item: u64) {
        self.insert_hash(self.hasher.hash_u64(item));
    }

    #[inline]
    fn insert_bytes(&mut self, item: &[u8]) {
        self.insert_hash(self.hasher.hash_bytes(item));
    }

    fn estimate(&self) -> f64 {
        let base = self.base_component();
        let mut sum = 0.0;
        for i in base..self.components.len() {
            let b = self.components[i].len() as f64;
            let zeros = self.components[i].len() - self.ones[i];
            sum += if zeros == 0 {
                b * b.ln() // saturated component: capacity value
            } else {
                b * (b / zeros as f64).ln()
            };
        }
        // Components base..K jointly cover the fraction 2^{-base}.
        sum * 2f64.powi(base as i32)
    }

    fn memory_bits(&self) -> usize {
        self.components.iter().map(Bitmap::memory_bits).sum()
    }

    fn reset(&mut self) {
        for c in &mut self.components {
            c.reset();
        }
        self.ones.fill(0);
    }

    fn name(&self) -> &'static str {
        "mr-bitmap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensioning_covers_range() {
        let mr = MrBitmap::with_memory(40_000, 1 << 20, 1).unwrap();
        assert!(mr.num_components() >= 2);
        assert!(mr.memory_bits() == 40_000);
    }

    #[test]
    fn tracks_small_and_large_cardinalities() {
        for &n in &[100u64, 10_000, 500_000] {
            let mut mr = MrBitmap::with_memory(40_000, 1 << 20, 3).unwrap();
            for i in 0..n {
                mr.insert_u64(i);
            }
            let rel = mr.estimate() / n as f64 - 1.0;
            assert!(rel.abs() < 0.15, "n={n}: rel err {rel}");
        }
    }

    #[test]
    fn duplicates_are_free() {
        let mut mr = MrBitmap::with_memory(8_000, 100_000, 5).unwrap();
        for round in 0..3 {
            for i in 0..5_000u64 {
                mr.insert_u64(i);
            }
            let rel = mr.estimate() / 5_000.0 - 1.0;
            assert!(rel.abs() < 0.2, "round {round}: rel {rel}");
        }
    }

    #[test]
    fn saturates_beyond_design_range() {
        // The boundary failure the paper's Tables 3-4 show: n at or past
        // N makes mr-bitmap unreliable (error ~100%). We only assert the
        // estimate stops tracking (it stays below 3x the capacity-ish
        // value rather than following n).
        let mut mr = MrBitmap::with_memory(2_700, 10_000, 7).unwrap();
        for i in 0..40_000u64 {
            mr.insert_u64(i);
        }
        let est = mr.estimate();
        assert!(est < 120_000.0, "estimate {est} should be bounded");
    }

    #[test]
    fn base_component_advances_with_load() {
        let mut mr = MrBitmap::with_memory(4_000, 1 << 20, 9).unwrap();
        assert_eq!(mr.base_component(), 0);
        for i in 0..200_000u64 {
            mr.insert_u64(i);
        }
        assert!(mr.base_component() > 0);
    }

    #[test]
    fn rejects_tiny_budgets() {
        assert!(MrBitmap::with_memory(20, 1 << 20, 1).is_err());
        assert!(MrBitmap::from_sizes(&[], 1).is_err());
        assert!(MrBitmap::from_sizes(&[64, 0], 1).is_err());
    }

    #[test]
    fn single_component_is_linear_counting_shape() {
        let mr = MrBitmap::with_memory(4_096, 100, 1).unwrap();
        assert_eq!(mr.num_components(), 1);
    }

    #[test]
    fn reset_clears() {
        let mut mr = MrBitmap::with_memory(4_000, 100_000, 2).unwrap();
        for i in 0..1000u64 {
            mr.insert_u64(i);
        }
        mr.reset();
        assert_eq!(mr.estimate(), 0.0);
    }

    #[test]
    fn merge_equals_union_stream() {
        let mut a = MrBitmap::with_memory(8_000, 200_000, 4).unwrap();
        let mut b = MrBitmap::with_memory(8_000, 200_000, 4).unwrap();
        let mut u = MrBitmap::with_memory(8_000, 200_000, 4).unwrap();
        for i in 0..40_000u64 {
            a.insert_u64(i);
            u.insert_u64(i);
        }
        for i in 30_000..90_000u64 {
            b.insert_u64(i);
            u.insert_u64(i);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.estimate(), u.estimate());
        assert_eq!(a.ones, u.ones, "per-component fills must match");
    }

    #[test]
    fn merge_rejects_mismatch() {
        let mut a = MrBitmap::with_memory(8_000, 200_000, 1).unwrap();
        let b = MrBitmap::with_memory(8_000, 200_000, 2).unwrap();
        assert!(a.merge(&b).is_err(), "seed mismatch");
        let c = MrBitmap::from_sizes(&[64, 64], 1).unwrap();
        assert!(a.merge(&c).is_err(), "layout mismatch");
    }

    #[test]
    fn rejected_merge_leaves_state_untouched() {
        // Same component *count*, different lengths: the mismatch is in
        // a later component, and the earlier one must not be mutated.
        let mut a = MrBitmap::from_sizes(&[64, 128], 5).unwrap();
        let mut c = MrBitmap::from_sizes(&[64, 64], 5).unwrap();
        for i in 0..200u64 {
            a.insert_u64(i);
            c.insert_u64(i + 1_000_000);
        }
        let before = a.checkpoint();
        assert!(a.merge(&c).is_err());
        assert_eq!(a.checkpoint(), before, "failed merge must not half-apply");
    }

    #[test]
    fn checkpoint_round_trips_exact_state() {
        // Odd component sizes exercise partial-word validation per
        // component.
        let mut mr = MrBitmap::from_sizes(&[333, 97, 1000], 6).unwrap();
        for i in 0..5_000u64 {
            mr.insert_u64(i);
        }
        let restored = MrBitmap::restore(&mr.checkpoint()).unwrap();
        assert_eq!(restored.estimate(), mr.estimate());
        assert_eq!(restored.ones, mr.ones);
        assert_eq!(restored.num_components(), 3);
    }
}
