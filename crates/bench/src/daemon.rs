//! The daemon benchmark: the full loopback TCP pipeline — node agents →
//! framed ingest → bounded absorb queue → windowed ring → drain — clean
//! and under a seeded reconnect storm.
//!
//! Four lanes. The first three time [`sbitmap_daemon::run_loopback`]
//! end to end (daemon start, one TCP agent per shard, drain, join),
//! with `ns/item` measured per **epoch frame** shipped:
//!
//! * **daemon_loopback_ingest** — fault-free transport; the cost of the
//!   networked deployment story itself (connection setup, framing,
//!   checksums, the absorb queue);
//! * **daemon_reconnect_storm** — every shard injects a seeded
//!   [`FaultPlan`] (cuts, stalls, corruption, duplicates, reorders), so
//!   the lane pays for reconnects, backoff and retransmission on top.
//!   The ratio (`reconnect_storm_overhead`) is the recovery tax.
//! * **daemon_journaled_ingest** — the fault-free lane with a
//!   write-ahead journal (`data_dir` set, fresh per iteration): every
//!   absorbed frame is encoded, checksummed and appended before its
//!   ack. The ratio (`journal_overhead`) is the durability tax, gated
//!   in CI via `--assert-max-journal-overhead`.
//! * **daemon_recovery** — no agents at all: a prepared journal segment
//!   is written to a fresh directory, and the lane times
//!   [`Daemon::start`] + replay-to-ready + drain, `ns/item` per record
//!   replayed — the restart-cost half of the crash-safety story.
//! * **daemon_replicated_ingest** — the fault-free lane with a standby
//!   attached ([`sbitmap_daemon::run_loopback_replicated`]): every
//!   acked frame was first streamed to, absorbed by, and acknowledged
//!   from the standby. The ratio (`replication_overhead`) is the
//!   high-availability tax, gated in CI via
//!   `--assert-max-replication-overhead`.
//!
//! Before timing anything, [`run`] proves a clean loopback run
//! reproduces [`run_windowed_pipeline`] exactly — per-link estimates
//! f64-identical and the quantile summary equal — because a benchmark
//! of a divergent collector is worse than no benchmark (same policy as
//! [`crate::window`]). Results serialize to `BENCH_daemon.json`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sbitmap_core::journal::{self, JournalConfig, JournalRecord};
use sbitmap_core::{Checkpoint, FleetArena, RateSchedule};
use sbitmap_daemon::{run_loopback, run_loopback_replicated, Daemon, DaemonConfig};
use sbitmap_stream::{quantile_summary, run_windowed_pipeline, FaultPlan, WindowedPipelineConfig};

use crate::harness::{Bench, Measurement};

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct DaemonBenchConfig {
    /// Backbone links to simulate.
    pub links: usize,
    /// Node shards — one TCP agent each.
    pub shards: usize,
    /// Sliding-window span in epochs.
    pub window: usize,
    /// Epochs each agent ships (one frame per epoch per shard).
    pub epochs: usize,
    /// Wire rounds per epoch for the v3 delta lane (see
    /// [`WindowedPipelineConfig::rounds`]).
    pub rounds: usize,
    /// Per-case wall-clock budget in milliseconds.
    pub budget_ms: u64,
    /// Workload + sketch + fault seed.
    pub seed: u64,
}

impl Default for DaemonBenchConfig {
    fn default() -> Self {
        Self {
            links: 24,
            shards: 3,
            window: 4,
            epochs: 6,
            rounds: 2,
            budget_ms: 300,
            seed: 0xd0e,
        }
    }
}

impl DaemonBenchConfig {
    /// A cheap configuration for CI smoke runs (~1 s wall clock total).
    pub fn smoke() -> Self {
        Self {
            links: 12,
            shards: 2,
            epochs: 4,
            budget_ms: 40,
            ..Self::default()
        }
    }
}

/// Per-key design cardinality — a mid-size §7.2 deployment, small
/// enough that one bench iteration spins the whole TCP pipeline in
/// ~100 ms.
const N_MAX: u64 = 200_000;
/// Per-link bitmap bits per epoch.
const M_BITS: usize = 4_000;

/// The benchmark's outcome: per-lane measurements plus the equivalence
/// verdict.
#[derive(Debug, Clone)]
pub struct DaemonRun {
    /// One measurement per lane.
    pub results: Vec<Measurement>,
    /// `true` when the pre-timing equivalence check passed (it must, or
    /// [`run`] panics instead of timing broken code).
    pub strategies_agree: bool,
    /// Sketch-frame bytes the daemon counted on the wire during the
    /// clean verification run (v3 delta frames).
    pub bytes_on_wire: u64,
    /// Frames the agents sent during that same clean run.
    pub frames_sent: u64,
}

/// Reconnect-storm cost relative to the clean loopback lane —
/// `ns/frame ÷ ns/frame`, the recovery tax of the fault sweep. Returns
/// `0.0` when either lane is missing.
pub fn storm_overhead(results: &[Measurement]) -> f64 {
    let find = |name: &str| results.iter().find(|m| m.name == name);
    match (
        find("daemon_reconnect_storm"),
        find("daemon_loopback_ingest"),
    ) {
        (Some(s), Some(c)) if c.ns_per_item() > 0.0 => s.ns_per_item() / c.ns_per_item(),
        _ => 0.0,
    }
}

/// Write-ahead-journal cost relative to the clean loopback lane — the
/// durability tax every acked frame pays. Returns `0.0` when either
/// lane is missing.
pub fn journal_overhead(results: &[Measurement]) -> f64 {
    let find = |name: &str| results.iter().find(|m| m.name == name);
    match (
        find("daemon_journaled_ingest"),
        find("daemon_loopback_ingest"),
    ) {
        (Some(j), Some(c)) if c.ns_per_item() > 0.0 => j.ns_per_item() / c.ns_per_item(),
        _ => 0.0,
    }
}

/// Primary/standby WAL-shipping cost relative to the clean loopback
/// lane — the high-availability tax every acked frame pays for the
/// semi-synchronous "acked ⇒ replicated" guarantee. Returns `0.0` when
/// either lane is missing.
pub fn replication_overhead(results: &[Measurement]) -> f64 {
    let find = |name: &str| results.iter().find(|m| m.name == name);
    match (
        find("daemon_replicated_ingest"),
        find("daemon_loopback_ingest"),
    ) {
        (Some(r), Some(c)) if c.ns_per_item() > 0.0 => r.ns_per_item() / c.ns_per_item(),
        _ => 0.0,
    }
}

fn pipeline_cfg(cfg: &DaemonBenchConfig) -> WindowedPipelineConfig {
    WindowedPipelineConfig {
        links: cfg.links,
        shards: cfg.shards,
        n_max: N_MAX,
        m_bits: M_BITS,
        window: cfg.window,
        epochs: cfg.epochs,
        rounds: cfg.rounds,
        seed: cfg.seed,
    }
}

/// Tight deadlines keep fault-injected iterations fast: the loopback
/// harness derives its ack timeout from the read deadline, so a lost
/// frame forces a reconnect in ~100 ms instead of seconds.
fn daemon_cfg() -> DaemonConfig {
    DaemonConfig {
        read_deadline: Duration::from_millis(10),
        write_deadline: Duration::from_millis(500),
        idle_limit: Duration::from_secs(3),
        // Every lane gets the same deep credit window. The clean lane is
        // absorber-bound and barely notices; the replicated lane's
        // bandwidth-delay product spans the standby round trip, so the
        // default window of 4 would measure the window, not the path.
        credits: 16,
        ..DaemonConfig::default()
    }
}

/// One seeded plan per shard, derived from the run seed so the storm is
/// deterministic per configuration.
fn storm_plans(cfg: &DaemonBenchConfig) -> Vec<FaultPlan> {
    (0..cfg.shards)
        .map(|shard| FaultPlan::seeded(cfg.seed ^ (shard as u64).wrapping_mul(131) ^ 0x57, 4))
        .collect()
}

/// A scratch directory unique to this process *and* call: the bench
/// harness re-runs its closure many times, and a durable run must start
/// on a directory with no journal history.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("sbitmap-bench-{tag}-{}-{n}", std::process::id()))
}

/// Build one journal segment image for the recovery lane — the bytes a
/// crashed collector would have left behind: one tag-9 fleet frame per
/// (shard, epoch), each touching every link.
fn recovery_segment(cfg: &DaemonBenchConfig) -> (Vec<u8>, u64) {
    let schedule = Arc::new(RateSchedule::from_memory(N_MAX, M_BITS).expect("bench schedule"));
    let jcfg = JournalConfig {
        n_max: N_MAX,
        m: M_BITS as u64,
        sampling_bits: schedule.split().sampling_bits(),
        seed: cfg.seed,
        window: cfg.window as u64,
    };
    let mut bytes = journal::encode_segment_header(&jcfg, 0, 1);
    let mut records = 0u64;
    for epoch in 0..cfg.epochs as u64 {
        for shard in 0..cfg.shards as u64 {
            let mut fleet: FleetArena = FleetArena::with_schedule(schedule.clone(), cfg.seed);
            for link in 0..cfg.links as u64 {
                fleet.touch(link);
                for item in 0..32u64 {
                    fleet.insert_u64(link, (epoch << 40) ^ (shard << 32) ^ (link << 8) ^ item);
                }
            }
            bytes.extend_from_slice(&journal::encode_record(&JournalRecord {
                source: shard + 1,
                epoch,
                payload: fleet.checkpoint(),
            }));
            records += 1;
        }
    }
    (bytes, records)
}

/// Run the daemon loopback comparison.
///
/// # Panics
///
/// Panics if a clean loopback run fails to reproduce the in-process
/// windowed pipeline exactly, or if a loopback run errors outright —
/// either would mean the networked path broke.
pub fn run(cfg: &DaemonBenchConfig) -> DaemonRun {
    let bench = Bench::with_budget_ms(cfg.budget_ms);
    let pcfg = pipeline_cfg(cfg);
    // v3 shipping: one delta frame per (shard, epoch, round).
    let frames = (pcfg.shards * pcfg.epochs * pcfg.rounds) as u64;

    let wire = verify_equivalence(&pcfg);
    let strategies_agree = wire.is_some();
    assert!(
        strategies_agree,
        "the loopback daemon diverged from the in-process pipeline — \
         refusing to benchmark broken code"
    );
    let (bytes_on_wire, frames_sent) = wire.unwrap_or_default();

    let mut results = Vec::new();
    results.push(bench.run("daemon_loopback_ingest", frames, || {
        let out = run_loopback(&pcfg, daemon_cfg(), &[]).expect("clean loopback run");
        out.report.frames_absorbed as usize
    }));
    let plans = storm_plans(cfg);
    results.push(bench.run("daemon_reconnect_storm", frames, || {
        let out = run_loopback(&pcfg, daemon_cfg(), &plans).expect("storm loopback run");
        out.report.frames_absorbed as usize
    }));
    results.push(bench.run("daemon_journaled_ingest", frames, || {
        let dir = scratch_dir("journal");
        let dcfg = DaemonConfig {
            data_dir: Some(dir.clone()),
            ..daemon_cfg()
        };
        let out = run_loopback(&pcfg, dcfg, &[]).expect("journaled loopback run");
        let _ = std::fs::remove_dir_all(&dir);
        out.report.frames_absorbed as usize
    }));
    results.push(bench.run("daemon_replicated_ingest", frames, || {
        let out =
            run_loopback_replicated(&pcfg, daemon_cfg(), &[]).expect("replicated loopback run");
        assert_eq!(
            out.primary.estimates, out.standby.estimates,
            "the standby must track the primary bit for bit"
        );
        out.primary.frames_absorbed as usize
    }));
    let (segment, records) = recovery_segment(cfg);
    results.push(bench.run("daemon_recovery", records, || {
        let dir = scratch_dir("recovery");
        std::fs::create_dir_all(&dir).expect("scratch dir");
        std::fs::write(journal::segment_path(&dir, 0), &segment).expect("write segment");
        let dcfg = DaemonConfig {
            n_max: N_MAX,
            m_bits: M_BITS,
            seed: cfg.seed,
            window: cfg.window,
            data_dir: Some(dir.clone()),
            ..daemon_cfg()
        };
        let daemon = Daemon::start(dcfg).expect("recovery start");
        while daemon.is_recovering() {
            std::thread::yield_now();
        }
        daemon.drain();
        let report = daemon.join().expect("recovery join");
        assert_eq!(
            report.replayed_records, records,
            "every prepared record must replay"
        );
        let _ = std::fs::remove_dir_all(&dir);
        report.replayed_records as usize
    }));

    DaemonRun {
        results,
        strategies_agree,
        bytes_on_wire,
        frames_sent,
    }
}

/// Pre-timing equivalence gate: a clean loopback drain must match the
/// in-process collector bit for bit (estimates and quantile summary).
/// On success, returns the run's `(bytes_on_wire, frames_sent)`.
fn verify_equivalence(pcfg: &WindowedPipelineConfig) -> Option<(u64, u64)> {
    let reference = run_windowed_pipeline(pcfg).expect("pipeline config");
    let out = run_loopback(pcfg, daemon_cfg(), &[]).expect("clean loopback run");
    let expected: Vec<(u64, f64)> = reference
        .links
        .iter()
        .map(|r| (r.link as u64, r.estimate))
        .collect();
    if out.report.estimates != expected {
        return None;
    }
    let mut sample: Vec<f64> = out.report.estimates.iter().map(|&(_, e)| e).collect();
    if !sample.is_empty() && quantile_summary(&mut sample) != reference.estimate_quantiles {
        return None;
    }
    let frames_sent = out.agents.iter().map(|a| a.frames_sent).sum();
    Some((out.report.bytes_on_wire, frames_sent))
}

/// Render a [`DaemonRun`] (plus workload metadata) as the
/// `BENCH_daemon.json` document.
pub fn report_json(cfg: &DaemonBenchConfig, run: &DaemonRun) -> String {
    crate::harness::to_json(
        "daemon",
        &[
            ("generator", "backbone".to_string()),
            ("links", cfg.links.to_string()),
            ("shards", cfg.shards.to_string()),
            ("window", cfg.window.to_string()),
            ("epochs", cfg.epochs.to_string()),
            ("n_max", N_MAX.to_string()),
            ("m_bits", M_BITS.to_string()),
            ("rounds", cfg.rounds.to_string()),
            ("seed", cfg.seed.to_string()),
            (
                "frames_per_run",
                (cfg.shards * cfg.epochs * cfg.rounds).to_string(),
            ),
            ("bytes_on_wire", run.bytes_on_wire.to_string()),
            ("frames_sent", run.frames_sent.to_string()),
            (
                "reconnect_storm_overhead",
                format!("{:.3}", storm_overhead(&run.results)),
            ),
            (
                "journal_overhead",
                format!("{:.3}", journal_overhead(&run.results)),
            ),
            (
                "replication_overhead",
                format!("{:.3}", replication_overhead(&run.results)),
            ),
            ("strategies_agree", run.strategies_agree.to_string()),
        ],
        &run.results,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_both_lanes_and_json() {
        let cfg = DaemonBenchConfig {
            links: 8,
            shards: 2,
            window: 2,
            epochs: 3,
            rounds: 2,
            budget_ms: 1,
            seed: 11,
        };
        let run = run(&cfg);
        assert!(run.strategies_agree);
        let names: Vec<&str> = run.results.iter().map(|m| m.name.as_str()).collect();
        for expect in [
            "daemon_loopback_ingest",
            "daemon_reconnect_storm",
            "daemon_journaled_ingest",
            "daemon_replicated_ingest",
            "daemon_recovery",
        ] {
            assert!(names.contains(&expect), "missing lane {expect}");
        }
        assert!(storm_overhead(&run.results) > 0.0);
        assert!(journal_overhead(&run.results) > 0.0);
        assert!(replication_overhead(&run.results) > 0.0);
        assert!(run.bytes_on_wire > 0, "wire counter must be surfaced");
        assert_eq!(run.frames_sent, 12, "shards × epochs × rounds clean sends");
        let json = report_json(&cfg, &run);
        assert!(json.contains("\"bench\": \"daemon\""));
        assert!(json.contains("reconnect_storm_overhead"));
        assert!(json.contains("journal_overhead"));
        assert!(json.contains("replication_overhead"));
        assert!(json.contains("\"frames_per_run\": 12"));
        assert!(json.contains("\"bytes_on_wire\""));
        assert!(json.contains("\"strategies_agree\": \"true\""));
    }
}
