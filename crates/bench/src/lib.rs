//! Support library for the sbitmap benchmark suite.
//!
//! The benches themselves live in `benches/` and run on the in-tree
//! [`harness`] (this workspace builds offline, so criterion is not a
//! dependency; every bench is `harness = false` with its own `main`):
//!
//! * `update_throughput` — scalar vs batched vs concurrent ingestion on
//!   the backbone/worm generators (see [`mod@ingest`]), emitting
//!   `BENCH_ingest.json`, plus per-item insert cost for every sketch
//!   (the paper's "similar or less computational cost" claim, §3);
//! * `collector` — the sharded node→collector checkpoint pipeline at
//!   1..=T shards (see [`collect`]), emitting `BENCH_collect.json`;
//! * `fleet_storage` — HashMap fleet vs arena fleet vs sharded arena
//!   fleet on the backbone workload (see [`fleet`]), emitting
//!   `BENCH_fleet.json`;
//! * `window_throughput` — windowed fleet ingest at W ∈ {2, 8, 32}
//!   epochs vs the plain arena, plus window query cost (see
//!   [`window`]), emitting `BENCH_window.json`;
//! * `daemon_loopback` — the full networked pipeline on loopback TCP
//!   (agents → `sbitmapd` ingest → drain), clean vs a seeded reconnect
//!   storm (see [`daemon`]), emitting `BENCH_daemon.json`;
//! * `estimate_cost` — cost of producing an estimate at realistic fills;
//! * `hashing` — the four hash families on word and byte inputs;
//! * `construction` — dimensioning solver and schedule precomputation;
//! * `paper_repro` — quick-mode regeneration of every table and figure
//!   (prints the same rows the experiment binaries do).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collect;
pub mod daemon;
pub mod fleet;
pub mod harness;
pub mod ingest;
pub mod window;

use sbitmap_core::DistinctCounter;

/// The standard workload the throughput benches share: `n` distinct
/// 64-bit items, pre-materialized so generation cost stays out of the
/// measurement.
pub fn workload(n: u64) -> Vec<u64> {
    sbitmap_stream::distinct_items(0xbe9c, n).collect()
}

/// Feed a whole workload into a counter (the measured inner loop).
#[inline]
pub fn ingest<C: DistinctCounter>(counter: &mut C, items: &[u64]) {
    for &item in items {
        counter.insert_u64(item);
    }
}

/// Names of the benchmarked sketches, in presentation order.
pub const ROSTER_NAMES: [&str; 11] = [
    "s-bitmap",
    "linear-counting",
    "virtual-bitmap",
    "adaptive-bitmap",
    "mr-bitmap",
    "fm-pcsa",
    "loglog",
    "hyperloglog",
    "adaptive-sampling",
    "distinct-sampling",
    "kmv",
];

/// Build one roster sketch by name (panics on unknown names — bench-only
/// code).
pub fn build_by_name(name: &str, seed: u64) -> Box<dyn DistinctCounter> {
    roster(seed)
        .into_iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("unknown sketch {name}"))
        .1
}

/// The sketch roster benchmarked head-to-head, with the paper's §7.1
/// configuration (`N = 10^6`, `m = 8000` bits).
pub fn roster(seed: u64) -> Vec<(&'static str, Box<dyn DistinctCounter>)> {
    const N_MAX: u64 = 1_000_000;
    const M: usize = 8_000;
    vec![
        (
            "s-bitmap",
            Box::new(sbitmap_core::SBitmap::with_memory(N_MAX, M, seed).unwrap())
                as Box<dyn DistinctCounter>,
        ),
        (
            "linear-counting",
            Box::new(sbitmap_baselines::LinearCounting::new(M, seed).unwrap()),
        ),
        (
            "virtual-bitmap",
            Box::new(sbitmap_baselines::VirtualBitmap::for_cardinality(M, N_MAX, seed).unwrap()),
        ),
        (
            "adaptive-bitmap",
            Box::new(sbitmap_baselines::AdaptiveBitmap::new(M, seed).unwrap()),
        ),
        (
            "mr-bitmap",
            Box::new(sbitmap_baselines::MrBitmap::with_memory(M, N_MAX, seed).unwrap()),
        ),
        (
            "fm-pcsa",
            Box::new(sbitmap_baselines::FmSketch::with_memory(M, seed).unwrap()),
        ),
        (
            "loglog",
            Box::new(sbitmap_baselines::LogLog::with_memory(M, N_MAX, seed).unwrap()),
        ),
        (
            "hyperloglog",
            Box::new(sbitmap_baselines::HyperLogLog::with_memory(M, N_MAX, seed).unwrap()),
        ),
        (
            "adaptive-sampling",
            Box::new(sbitmap_baselines::AdaptiveSampling::with_memory(M, seed).unwrap()),
        ),
        (
            "distinct-sampling",
            Box::new(sbitmap_baselines::DistinctSampling::with_memory(M, seed).unwrap()),
        ),
        (
            "kmv",
            Box::new(sbitmap_baselines::KMinValues::with_memory(M, seed).unwrap()),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_builds_and_counts() {
        let items = workload(10_000);
        for (name, mut counter) in roster(1) {
            ingest(&mut counter, &items);
            let rel = counter.estimate() / 10_000.0 - 1.0;
            assert!(rel.abs() < 0.5, "{name}: rel {rel}");
        }
    }
}
