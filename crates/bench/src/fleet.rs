//! The fleet-storage benchmark: HashMap fleet vs arena fleet vs sharded
//! arena fleet on the §7.2 backbone workload.
//!
//! All lanes ingest the *same* interleaved `(link, flow)` pair sequence
//! ([`crate::ingest::backbone_pairs`], so results are directly comparable
//! to `BENCH_ingest.json`'s `backbone_fleet_*` lanes):
//!
//! * **scalar** — [`SketchFleet::insert_u64`] per pair: one HashMap probe
//!   and one pointer chase per item;
//! * **batched** — [`SketchFleet::insert_batch`]: the legacy grouping
//!   path over reused scratch buckets;
//! * **arena** — [`FleetArena::insert_batch`]: contiguous arena storage
//!   behind the counting-sort radix router, zero steady-state allocation;
//! * **parallel_tK** — [`ParallelFleet::insert_batch`] with K shard
//!   threads over disjoint arenas (expect gains only when
//!   `available_parallelism` in the report header exceeds 1).
//!
//! Every iteration re-ingests from an empty fleet (a fresh build over
//! one pre-built shared [`RateSchedule`] — the schedule is configuration
//! shared fleet-wide in the paper's deployment, so its one-time
//! construction cost is kept out of the per-iteration timing), and
//! [`run`] first proves the lanes agree: arena and parallel estimates
//! must equal the HashMap fleet's exactly, or the bench refuses to
//! report. Results serialize to `BENCH_fleet.json` through
//! [`crate::harness::to_json`].

use std::sync::Arc;

use sbitmap_core::{FleetArena, ParallelFleet, RateSchedule, SketchFleet};

use crate::harness::{Bench, Measurement};
use crate::ingest::{backbone_pairs, IngestConfig};

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Backbone links to simulate.
    pub links: usize,
    /// Cap on total `(link, flow)` pairs fed per iteration.
    pub max_pairs: usize,
    /// Per-case wall-clock budget in milliseconds.
    pub budget_ms: u64,
    /// Largest shard count for the parallel lanes; lanes run 1, 2, 4, …
    pub max_shards: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            links: 150,
            max_pairs: 2_000_000,
            budget_ms: 300,
            max_shards: std::thread::available_parallelism().map_or(4, |p| p.get().min(8)),
            seed: 0xbe9c,
        }
    }
}

impl FleetConfig {
    /// A cheap configuration for CI smoke runs (~1 s wall clock total).
    pub fn smoke() -> Self {
        Self {
            links: 40,
            max_pairs: 200_000,
            budget_ms: 60,
            max_shards: 2,
            ..Self::default()
        }
    }

    fn ingest_cfg(&self) -> IngestConfig {
        IngestConfig {
            links: self.links,
            max_pairs: self.max_pairs,
            budget_ms: self.budget_ms,
            max_threads: self.max_shards,
            seed: self.seed,
        }
    }
}

/// Sketch configuration shared with the ingest bench (§7.2 scenario).
const N_MAX: u64 = 1_500_000;
/// Per-link bitmap bits (≈3% RRMSE at `N_MAX`).
const M_BITS: usize = 8_000;

/// The benchmark's outcome: per-lane measurements plus the cross-lane
/// equivalence verdict.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// One measurement per lane.
    pub results: Vec<Measurement>,
    /// `true` when arena and parallel estimates matched the HashMap
    /// fleet exactly on this workload (checked before timing).
    pub strategies_agree: bool,
}

/// Run the storage-flavor comparison.
///
/// # Panics
///
/// Panics if the fleet flavors disagree on any per-link estimate — a
/// disagreement means the arena or router broke bit-identity, and a
/// benchmark of wrong code is worse than no benchmark.
pub fn run(cfg: &FleetConfig) -> FleetRun {
    let bench = Bench::with_budget_ms(cfg.budget_ms);
    let pairs = backbone_pairs(&cfg.ingest_cfg());
    let n_pairs = pairs.len() as u64;
    let schedule = Arc::new(RateSchedule::from_memory(N_MAX, M_BITS).expect("fleet config"));

    // Cross-flavor equivalence gate: all storage layouts must yield the
    // same per-link estimates before any of them is worth timing.
    let strategies_agree = verify_equivalence(cfg, &pairs);
    assert!(
        strategies_agree,
        "fleet storage flavors disagree — refusing to benchmark broken code"
    );

    let mut results = Vec::new();
    results.push(bench.run("backbone_fleet_scalar", n_pairs, || {
        let mut fleet: SketchFleet = SketchFleet::with_schedule(schedule.clone(), cfg.seed);
        for &(link, flow) in &pairs {
            fleet.insert_u64(link, flow);
        }
        fleet.len()
    }));
    results.push(bench.run("backbone_fleet_batched", n_pairs, || {
        let mut fleet: SketchFleet = SketchFleet::with_schedule(schedule.clone(), cfg.seed);
        fleet.insert_batch(&pairs);
        fleet.len()
    }));
    results.push(bench.run("backbone_fleet_arena", n_pairs, || {
        let mut fleet: FleetArena = FleetArena::with_schedule(schedule.clone(), cfg.seed);
        fleet.insert_batch(&pairs);
        fleet.len()
    }));
    // Steady-state lane: the arena is reused across iterations (reset
    // keeps every allocation), so this measures the zero-allocation
    // regime a long-running collector actually sits in.
    {
        let mut fleet: FleetArena = FleetArena::with_schedule(schedule.clone(), cfg.seed);
        results.push(bench.run("backbone_fleet_arena_steady", n_pairs, || {
            fleet.reset_all();
            fleet.insert_batch(&pairs)
        }));
    }
    let mut shards = 1usize;
    while shards <= cfg.max_shards.max(1) {
        let name = format!("backbone_fleet_parallel_t{shards}");
        results.push(bench.run(&name, n_pairs, || {
            let mut fleet: ParallelFleet =
                ParallelFleet::with_schedule(schedule.clone(), cfg.seed, shards)
                    .expect("at least one shard");
            fleet.insert_batch(&pairs);
            fleet.len()
        }));
        shards *= 2;
    }

    FleetRun {
        results,
        strategies_agree,
    }
}

/// All storage flavors fed the same pairs must report identical per-link
/// estimates (bit-identical sketches ⇒ equal `f64` estimates).
fn verify_equivalence(cfg: &FleetConfig, pairs: &[(u64, u64)]) -> bool {
    let mut hashmap_fleet: SketchFleet =
        SketchFleet::new(N_MAX, M_BITS, cfg.seed).expect("fleet config");
    let mut arena: FleetArena = FleetArena::new(N_MAX, M_BITS, cfg.seed).expect("fleet config");
    let mut parallel: ParallelFleet =
        ParallelFleet::new(N_MAX, M_BITS, cfg.seed, cfg.max_shards.max(2)).expect("fleet config");
    hashmap_fleet.insert_batch(pairs);
    arena.insert_batch(pairs);
    parallel.insert_batch(pairs);
    let reference: Vec<(u64, f64)> = hashmap_fleet.estimates().collect();
    reference == arena.estimates().collect::<Vec<_>>()
        && reference == parallel.estimates().collect::<Vec<_>>()
}

/// Nanoseconds-per-item speedup of lane `num` over lane `den` (how many
/// times faster `num` is), `0.0` when either lane is missing or idle.
fn speedup(results: &[Measurement], num: &str, den: &str) -> f64 {
    let find = |name: &str| results.iter().find(|m| m.name == name);
    match (find(num), find(den)) {
        (Some(n), Some(d)) if n.ns_per_item() > 0.0 => d.ns_per_item() / n.ns_per_item(),
        _ => 0.0,
    }
}

/// The arena-vs-legacy-batched speedup — the headline regression metric
/// (CI asserts it stays ≥ 1).
pub fn arena_speedup(results: &[Measurement]) -> f64 {
    speedup(results, "backbone_fleet_arena", "backbone_fleet_batched")
}

/// Render a [`FleetRun`] (plus workload metadata) as the
/// `BENCH_fleet.json` document.
pub fn report_json(cfg: &FleetConfig, run: &FleetRun) -> String {
    let results = &run.results;
    let best_parallel = results
        .iter()
        .filter(|m| m.name.starts_with("backbone_fleet_parallel_t"))
        .max_by(|a, b| a.items_per_sec().total_cmp(&b.items_per_sec()))
        .map(|m| m.name.clone())
        .unwrap_or_default();
    crate::harness::to_json(
        "fleet",
        &[
            ("generator", "backbone".to_string()),
            ("links", cfg.links.to_string()),
            ("n_max", N_MAX.to_string()),
            ("m_bits", M_BITS.to_string()),
            ("seed", cfg.seed.to_string()),
            (
                "arena_vs_batched_speedup",
                format!("{:.3}", arena_speedup(results)),
            ),
            (
                "arena_vs_scalar_speedup",
                format!(
                    "{:.3}",
                    speedup(results, "backbone_fleet_arena", "backbone_fleet_scalar")
                ),
            ),
            ("best_parallel_lane", best_parallel.clone()),
            (
                "parallel_vs_arena_speedup",
                format!(
                    "{:.3}",
                    speedup(results, &best_parallel, "backbone_fleet_arena")
                ),
            ),
            ("strategies_agree", run.strategies_agree.to_string()),
        ],
        results,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_lanes_and_json() {
        let cfg = FleetConfig {
            links: 6,
            max_pairs: 10_000,
            budget_ms: 5,
            max_shards: 2,
            ..FleetConfig::smoke()
        };
        let run = run(&cfg);
        assert!(run.strategies_agree);
        let names: Vec<&str> = run.results.iter().map(|m| m.name.as_str()).collect();
        for expect in [
            "backbone_fleet_scalar",
            "backbone_fleet_batched",
            "backbone_fleet_arena",
            "backbone_fleet_arena_steady",
            "backbone_fleet_parallel_t1",
            "backbone_fleet_parallel_t2",
        ] {
            assert!(names.contains(&expect), "missing lane {expect}");
        }
        let json = report_json(&cfg, &run);
        assert!(json.contains("\"bench\": \"fleet\""));
        assert!(json.contains("arena_vs_batched_speedup"));
        assert!(json.contains("\"strategies_agree\": \"true\""));
        assert!(json.contains("available_parallelism"));
        assert!(arena_speedup(&run.results) > 0.0);
    }
}
