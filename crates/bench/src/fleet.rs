//! The fleet-storage benchmark: HashMap fleet vs arena fleet vs sharded
//! arena fleet on the §7.2 backbone workload, plus the sparse-vs-dense
//! memory lane on a million-key Zipf per-flow workload.
//!
//! The **backbone** lanes ingest the *same* interleaved `(link, flow)`
//! pair sequence ([`crate::ingest::backbone_pairs`], so results are
//! directly comparable to `BENCH_ingest.json`'s `backbone_fleet_*`
//! lanes):
//!
//! * **scalar** — [`SketchFleet::insert_u64`] per pair: one HashMap probe
//!   and one pointer chase per item;
//! * **batched** — [`SketchFleet::insert_batch`]: the legacy grouping
//!   path over reused scratch buckets;
//! * **arena** — [`FleetArena::insert_batch`]: contiguous arena storage
//!   behind the counting-sort radix router, zero steady-state allocation;
//! * **parallel_tK** — [`ParallelFleet::insert_batch`] with K shard
//!   threads over disjoint arenas (expect gains only when
//!   `available_parallelism` in the report header exceeds 1).
//!
//! The **zipf** lanes model the paper's per-flow scenarios (§7): ≥1M
//! keys drawn Zipf(1.1), most of them cold, fed to the size-classed
//! [`SparseFleet`] and the dense [`FleetArena`]:
//!
//! * **zipf_fleet_sparse** / **zipf_fleet_arena** — identical batched
//!   ingest, sparse slab storage vs full-stride arena;
//! * peak-RSS deltas (`VmHWM`, via [`crate::harness::peak_rss_bytes`])
//!   are taken around one build of each flavor *before* any timing, and
//!   the report gates `rss_ratio` (sparse/dense, expected ≤ 0.25) and
//!   `sparse_vs_arena_slowdown` (ns/item, expected ≤ 1.5).
//!
//! Every iteration re-ingests from an empty fleet (a fresh build over
//! one pre-built shared [`RateSchedule`] — the schedule is configuration
//! shared fleet-wide in the paper's deployment, so its one-time
//! construction cost is kept out of the per-iteration timing), and
//! [`run`] first proves the lanes agree: every storage flavor's
//! estimates must equal its reference exactly, or the bench refuses to
//! report (`strategies_agree`). Results serialize to `BENCH_fleet.json`
//! through [`crate::harness::to_json`].

use std::sync::Arc;

use sbitmap_core::{FleetArena, ParallelFleet, RateSchedule, SketchFleet, SparseFleet};
use sbitmap_stream::{distinct_items, zipf_stream};

use crate::harness::{peak_rss_bytes, Bench, Measurement};
use crate::ingest::{backbone_pairs, IngestConfig};

/// Which workload generator(s) a fleet bench invocation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetGenerator {
    /// The §7.2 backbone lanes only (the historical default).
    Backbone,
    /// The Zipf per-flow sparse-vs-dense lanes only.
    Zipf,
    /// Both: zipf lanes first (their RSS deltas need a clean high-water
    /// mark), then the backbone lanes.
    All,
}

impl FleetGenerator {
    /// The flag spelling (`backbone` / `zipf` / `all`).
    pub fn name(self) -> &'static str {
        match self {
            Self::Backbone => "backbone",
            Self::Zipf => "zipf",
            Self::All => "all",
        }
    }

    /// Parse a `--generator` flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "backbone" => Some(Self::Backbone),
            "zipf" => Some(Self::Zipf),
            "all" => Some(Self::All),
            _ => None,
        }
    }

    fn runs_backbone(self) -> bool {
        matches!(self, Self::Backbone | Self::All)
    }

    fn runs_zipf(self) -> bool {
        matches!(self, Self::Zipf | Self::All)
    }
}

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Backbone links to simulate.
    pub links: usize,
    /// Cap on total `(link, flow)` pairs fed per iteration.
    pub max_pairs: usize,
    /// Per-case wall-clock budget in milliseconds.
    pub budget_ms: u64,
    /// Largest shard count for the parallel lanes; lanes run 1, 2, 4, …
    pub max_shards: usize,
    /// Workload seed.
    pub seed: u64,
    /// Which workload generator(s) to run.
    pub generator: FleetGenerator,
    /// Distinct keys in the Zipf lanes (the full report runs ≥ 1M).
    pub zipf_keys: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            links: 150,
            max_pairs: 2_000_000,
            budget_ms: 300,
            max_shards: std::thread::available_parallelism().map_or(4, |p| p.get().min(8)),
            seed: 0xbe9c,
            generator: FleetGenerator::Backbone,
            zipf_keys: 1_200_000,
        }
    }
}

impl FleetConfig {
    /// A cheap configuration for CI smoke runs (~1 s wall clock total).
    pub fn smoke() -> Self {
        Self {
            links: 40,
            max_pairs: 200_000,
            budget_ms: 60,
            max_shards: 2,
            zipf_keys: 40_000,
            ..Self::default()
        }
    }

    fn ingest_cfg(&self) -> IngestConfig {
        IngestConfig {
            links: self.links,
            max_pairs: self.max_pairs,
            budget_ms: self.budget_ms,
            max_threads: self.max_shards,
            seed: self.seed,
        }
    }
}

/// Sketch configuration shared with the ingest bench (§7.2 scenario).
const N_MAX: u64 = 1_500_000;
/// Per-link bitmap bits (≈3% RRMSE at `N_MAX`).
const M_BITS: usize = 8_000;

/// Zipf-lane sketch ceiling: per-flow counts are small, keys are many.
const ZIPF_N_MAX: u64 = 100_000;
/// Zipf-lane bitmap bits (63-word stride — ~504 B/key at full stride).
const ZIPF_M_BITS: usize = 4_000;
/// The Zipf exponent the ISSUE's RSS gate is stated at.
const ZIPF_ALPHA: f64 = 1.1;

/// The benchmark's outcome: per-lane measurements plus the cross-lane
/// equivalence verdict and the Zipf lanes' peak-RSS attribution.
#[derive(Debug, Clone)]
pub struct FleetRun {
    /// One measurement per lane.
    pub results: Vec<Measurement>,
    /// `true` when every storage flavor's estimates matched its
    /// reference exactly on this workload (checked before timing).
    pub strategies_agree: bool,
    /// Peak-RSS delta attributed to one sparse-fleet build of the Zipf
    /// workload; 0 when the zipf lanes did not run.
    pub sparse_rss_bytes: u64,
    /// Peak-RSS delta attributed to one dense-arena build of the Zipf
    /// workload; 0 when the zipf lanes did not run.
    pub dense_rss_bytes: u64,
}

/// Run the configured storage-flavor comparison.
///
/// # Panics
///
/// Panics if the fleet flavors disagree on any per-key estimate — a
/// disagreement means a storage layout or router broke bit-identity,
/// and a benchmark of wrong code is worse than no benchmark.
pub fn run(cfg: &FleetConfig) -> FleetRun {
    let mut results = Vec::new();
    let (mut sparse_rss_bytes, mut dense_rss_bytes) = (0u64, 0u64);
    // Zipf first: its RSS deltas difference the VmHWM high-water mark,
    // so nothing larger may have run in this process yet.
    if cfg.generator.runs_zipf() {
        let (lanes, sparse_rss, dense_rss) = run_zipf_lanes(cfg);
        results.extend(lanes);
        sparse_rss_bytes = sparse_rss;
        dense_rss_bytes = dense_rss;
    }
    if cfg.generator.runs_backbone() {
        results.extend(run_backbone_lanes(cfg));
    }
    FleetRun {
        results,
        strategies_agree: true, // every lane group asserts before timing
        sparse_rss_bytes,
        dense_rss_bytes,
    }
}

/// The §7.2 backbone lanes (HashMap scalar/batched, arena, parallel).
fn run_backbone_lanes(cfg: &FleetConfig) -> Vec<Measurement> {
    let bench = Bench::with_budget_ms(cfg.budget_ms);
    let pairs = backbone_pairs(&cfg.ingest_cfg());
    let n_pairs = pairs.len() as u64;
    let schedule = Arc::new(RateSchedule::from_memory(N_MAX, M_BITS).expect("fleet config"));

    // Cross-flavor equivalence gate: all storage layouts must yield the
    // same per-link estimates before any of them is worth timing.
    assert!(
        verify_equivalence(cfg, &pairs),
        "fleet storage flavors disagree — refusing to benchmark broken code"
    );

    let mut results = Vec::new();
    results.push(bench.run("backbone_fleet_scalar", n_pairs, || {
        let mut fleet: SketchFleet = SketchFleet::with_schedule(schedule.clone(), cfg.seed);
        for &(link, flow) in &pairs {
            fleet.insert_u64(link, flow);
        }
        fleet.len()
    }));
    results.push(bench.run("backbone_fleet_batched", n_pairs, || {
        let mut fleet: SketchFleet = SketchFleet::with_schedule(schedule.clone(), cfg.seed);
        fleet.insert_batch(&pairs);
        fleet.len()
    }));
    results.push(bench.run("backbone_fleet_arena", n_pairs, || {
        let mut fleet: FleetArena = FleetArena::with_schedule(schedule.clone(), cfg.seed);
        fleet.insert_batch(&pairs);
        fleet.len()
    }));
    // Steady-state lane: the arena is reused across iterations (reset
    // keeps every allocation), so this measures the zero-allocation
    // regime a long-running collector actually sits in.
    {
        let mut fleet: FleetArena = FleetArena::with_schedule(schedule.clone(), cfg.seed);
        results.push(bench.run("backbone_fleet_arena_steady", n_pairs, || {
            fleet.reset_all();
            fleet.insert_batch(&pairs)
        }));
    }
    let mut shards = 1usize;
    while shards <= cfg.max_shards.max(1) {
        let name = format!("backbone_fleet_parallel_t{shards}");
        results.push(bench.run(&name, n_pairs, || {
            let mut fleet: ParallelFleet =
                ParallelFleet::with_schedule(schedule.clone(), cfg.seed, shards)
                    .expect("at least one shard");
            fleet.insert_batch(&pairs);
            fleet.len()
        }));
        shards *= 2;
    }
    results
}

/// The Zipf per-flow pair stream: a coverage pass (one pair per key, so
/// both flavors hold exactly `zipf_keys` keys) followed by Zipf(1.1)
/// key draws with a running item counter — hot keys accumulate many
/// distinct items, the tail stays at a handful of bits.
fn zipf_pairs(cfg: &FleetConfig) -> Vec<(u64, u64)> {
    let keys = cfg.zipf_keys.max(1) as u64;
    let extra = keys * 7 / 3;
    let (draws, _) = zipf_stream(cfg.seed, keys, extra, ZIPF_ALPHA);
    let mut pairs = Vec::with_capacity((keys + extra) as usize);
    pairs.extend(distinct_items(cfg.seed, keys).zip(0u64..));
    let mut item = keys;
    pairs.extend(draws.into_iter().map(|key| {
        item += 1;
        (key, item)
    }));
    pairs
}

/// The sparse-vs-dense Zipf lanes, with peak-RSS attribution.
fn run_zipf_lanes(cfg: &FleetConfig) -> (Vec<Measurement>, u64, u64) {
    let bench = Bench::with_budget_ms(cfg.budget_ms);
    let pairs = zipf_pairs(cfg);
    let n_pairs = pairs.len() as u64;
    let schedule =
        Arc::new(RateSchedule::from_memory(ZIPF_N_MAX, ZIPF_M_BITS).expect("zipf fleet config"));

    // Peak-RSS attribution, before anything else builds a fleet at this
    // scale: VmHWM is monotone, so each flavor's delta is only
    // meaningful while its build is the largest thing the process has
    // done. Sparse goes first (it is the smaller peak); the dense delta
    // is measured from the same baseline.
    let h0 = peak_rss_bytes();
    let sparse_len = {
        let mut fleet: SparseFleet = SparseFleet::with_schedule(schedule.clone(), cfg.seed);
        fleet.insert_batch(&pairs);
        fleet.len()
    };
    let h1 = peak_rss_bytes();
    let dense_len = {
        let mut fleet: FleetArena = FleetArena::with_schedule(schedule.clone(), cfg.seed);
        fleet.insert_batch(&pairs);
        fleet.len()
    };
    let h2 = peak_rss_bytes();
    assert_eq!(sparse_len, cfg.zipf_keys.max(1), "coverage pass holds");
    assert_eq!(sparse_len, dense_len, "flavors saw the same key set");
    let sparse_rss = h1.saturating_sub(h0);
    let dense_rss = h2.saturating_sub(h0);

    // Equivalence gate before timing: sparse and dense estimates must
    // match exactly (bit-identical sketches ⇒ equal `f64` estimates).
    assert!(
        verify_zipf_equivalence(cfg, &schedule, &pairs),
        "sparse and dense fleets disagree — refusing to benchmark broken code"
    );

    let mut results = Vec::new();
    results.push(bench.run("zipf_fleet_sparse", n_pairs, || {
        let mut fleet: SparseFleet = SparseFleet::with_schedule(schedule.clone(), cfg.seed);
        fleet.insert_batch(&pairs);
        fleet.len()
    }));
    results.push(bench.run("zipf_fleet_arena", n_pairs, || {
        let mut fleet: FleetArena = FleetArena::with_schedule(schedule.clone(), cfg.seed);
        fleet.insert_batch(&pairs);
        fleet.len()
    }));
    (results, sparse_rss, dense_rss)
}

/// Sparse and dense fed the same Zipf pairs must report identical
/// per-key estimates over identical key sets.
fn verify_zipf_equivalence(
    cfg: &FleetConfig,
    schedule: &Arc<RateSchedule>,
    pairs: &[(u64, u64)],
) -> bool {
    let mut sparse: SparseFleet = SparseFleet::with_schedule(schedule.clone(), cfg.seed);
    let mut dense: FleetArena = FleetArena::with_schedule(schedule.clone(), cfg.seed);
    sparse.insert_batch(pairs);
    dense.insert_batch(pairs);
    sparse.estimates().eq(dense.estimates())
}

/// All storage flavors fed the same pairs must report identical per-link
/// estimates (bit-identical sketches ⇒ equal `f64` estimates).
fn verify_equivalence(cfg: &FleetConfig, pairs: &[(u64, u64)]) -> bool {
    let mut hashmap_fleet: SketchFleet =
        SketchFleet::new(N_MAX, M_BITS, cfg.seed).expect("fleet config");
    let mut arena: FleetArena = FleetArena::new(N_MAX, M_BITS, cfg.seed).expect("fleet config");
    let mut parallel: ParallelFleet =
        ParallelFleet::new(N_MAX, M_BITS, cfg.seed, cfg.max_shards.max(2)).expect("fleet config");
    hashmap_fleet.insert_batch(pairs);
    arena.insert_batch(pairs);
    parallel.insert_batch(pairs);
    let reference: Vec<(u64, f64)> = hashmap_fleet.estimates().collect();
    reference == arena.estimates().collect::<Vec<_>>()
        && reference == parallel.estimates().collect::<Vec<_>>()
}

/// Nanoseconds-per-item speedup of lane `num` over lane `den` (how many
/// times faster `num` is), `0.0` when either lane is missing or idle.
fn speedup(results: &[Measurement], num: &str, den: &str) -> f64 {
    let find = |name: &str| results.iter().find(|m| m.name == name);
    match (find(num), find(den)) {
        (Some(n), Some(d)) if n.ns_per_item() > 0.0 => d.ns_per_item() / n.ns_per_item(),
        _ => 0.0,
    }
}

/// The arena-vs-legacy-batched speedup — the headline regression metric
/// (CI asserts it stays ≥ 1).
pub fn arena_speedup(results: &[Measurement]) -> f64 {
    speedup(results, "backbone_fleet_arena", "backbone_fleet_batched")
}

/// The sparse-vs-arena ns/item slowdown on the Zipf lanes (how many
/// times *slower* sparse is; the ISSUE gates ≤ 1.5). `0.0` when either
/// lane is missing or idle.
pub fn zipf_slowdown(results: &[Measurement]) -> f64 {
    let s = speedup(results, "zipf_fleet_sparse", "zipf_fleet_arena");
    if s > 0.0 {
        1.0 / s
    } else {
        0.0
    }
}

/// Sparse peak RSS as a fraction of dense peak RSS on the Zipf workload
/// (the ISSUE gates ≤ 0.25); `0.0` when the zipf lanes did not run.
pub fn rss_ratio(run: &FleetRun) -> f64 {
    if run.dense_rss_bytes == 0 {
        0.0
    } else {
        run.sparse_rss_bytes as f64 / run.dense_rss_bytes as f64
    }
}

/// Render a [`FleetRun`] (plus workload metadata) as the
/// `BENCH_fleet.json` document. Metadata keys appear only for the lane
/// groups that actually ran.
pub fn report_json(cfg: &FleetConfig, run: &FleetRun) -> String {
    let results = &run.results;
    let mut meta: Vec<(&str, String)> = vec![
        ("generator", cfg.generator.name().to_string()),
        ("seed", cfg.seed.to_string()),
        ("strategies_agree", run.strategies_agree.to_string()),
    ];
    if cfg.generator.runs_zipf() {
        meta.extend([
            ("zipf_keys", cfg.zipf_keys.to_string()),
            ("zipf_n_max", ZIPF_N_MAX.to_string()),
            ("zipf_m_bits", ZIPF_M_BITS.to_string()),
            ("zipf_alpha", ZIPF_ALPHA.to_string()),
            ("sparse_rss_bytes", run.sparse_rss_bytes.to_string()),
            ("dense_rss_bytes", run.dense_rss_bytes.to_string()),
            ("rss_ratio", format!("{:.4}", rss_ratio(run))),
            (
                "sparse_vs_arena_slowdown",
                format!("{:.3}", zipf_slowdown(results)),
            ),
        ]);
    }
    if cfg.generator.runs_backbone() {
        let best_parallel = results
            .iter()
            .filter(|m| m.name.starts_with("backbone_fleet_parallel_t"))
            .max_by(|a, b| a.items_per_sec().total_cmp(&b.items_per_sec()))
            .map(|m| m.name.clone())
            .unwrap_or_default();
        meta.extend([
            ("links", cfg.links.to_string()),
            ("n_max", N_MAX.to_string()),
            ("m_bits", M_BITS.to_string()),
            (
                "arena_vs_batched_speedup",
                format!("{:.3}", arena_speedup(results)),
            ),
            (
                "arena_vs_scalar_speedup",
                format!(
                    "{:.3}",
                    speedup(results, "backbone_fleet_arena", "backbone_fleet_scalar")
                ),
            ),
            ("best_parallel_lane", best_parallel.clone()),
            (
                "parallel_vs_arena_speedup",
                format!(
                    "{:.3}",
                    speedup(results, &best_parallel, "backbone_fleet_arena")
                ),
            ),
        ]);
    }
    crate::harness::to_json("fleet", &meta, results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_lanes_and_json() {
        let cfg = FleetConfig {
            links: 6,
            max_pairs: 10_000,
            budget_ms: 5,
            max_shards: 2,
            ..FleetConfig::smoke()
        };
        let run = run(&cfg);
        assert!(run.strategies_agree);
        let names: Vec<&str> = run.results.iter().map(|m| m.name.as_str()).collect();
        for expect in [
            "backbone_fleet_scalar",
            "backbone_fleet_batched",
            "backbone_fleet_arena",
            "backbone_fleet_arena_steady",
            "backbone_fleet_parallel_t1",
            "backbone_fleet_parallel_t2",
        ] {
            assert!(names.contains(&expect), "missing lane {expect}");
        }
        let json = report_json(&cfg, &run);
        assert!(json.contains("\"bench\": \"fleet\""));
        assert!(json.contains("arena_vs_batched_speedup"));
        assert!(json.contains("\"strategies_agree\": \"true\""));
        assert!(json.contains("available_parallelism"));
        assert!(json.contains("\"peak_rss_bytes\": "));
        assert!(arena_speedup(&run.results) > 0.0);
        // Backbone-only runs carry no zipf metadata or lanes.
        assert!(!json.contains("rss_ratio"));
        assert!(!names.iter().any(|n| n.starts_with("zipf_")));
    }

    #[test]
    fn zipf_smoke_produces_lanes_gates_and_json() {
        let cfg = FleetConfig {
            generator: FleetGenerator::Zipf,
            zipf_keys: 4_000,
            budget_ms: 5,
            ..FleetConfig::smoke()
        };
        let run = run(&cfg);
        assert!(run.strategies_agree);
        let names: Vec<&str> = run.results.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["zipf_fleet_sparse", "zipf_fleet_arena"]);
        assert!(zipf_slowdown(&run.results) > 0.0);
        // VmHWM deltas are only attributable in a fresh process (the
        // test binary's other tests may have raised the mark already),
        // so the ratio is not asserted here — the CI smoke gate runs the
        // bench binary alone and asserts it there.
        let json = report_json(&cfg, &run);
        assert!(json.contains("\"generator\": \"zipf\""));
        assert!(json.contains("\"zipf_alpha\": 1.1"));
        assert!(json.contains("\"sparse_rss_bytes\": "));
        assert!(json.contains("\"dense_rss_bytes\": "));
        assert!(json.contains("\"rss_ratio\": "));
        assert!(json.contains("\"sparse_vs_arena_slowdown\": "));
        assert!(!json.contains("arena_vs_batched_speedup"));
    }

    #[test]
    fn generator_parse_round_trips() {
        for g in [
            FleetGenerator::Backbone,
            FleetGenerator::Zipf,
            FleetGenerator::All,
        ] {
            assert_eq!(FleetGenerator::parse(g.name()), Some(g));
        }
        assert_eq!(FleetGenerator::parse("uniform"), None);
    }
}
