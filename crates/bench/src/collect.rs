//! The collector-pipeline benchmark: node→collector throughput as the
//! shard count scales.
//!
//! Each lane runs [`sbitmap_stream::collector::run_pipeline`] end-to-end
//! — per-link sketch builds, checkpoint encode, channel transfer,
//! checksum verify + decode, and the mergeable-sketch fold — over the
//! same [`sbitmap_stream::BackboneSnapshot`] workload, with 1, 2, 4, …
//! node shards. Items/second counts the *flows ingested*, so the lanes
//! are directly comparable to the ingest bench (`BENCH_ingest.json`);
//! results serialize to `BENCH_collect.json`.

use sbitmap_stream::collector::{run_pipeline, PipelineConfig};
use sbitmap_stream::BackboneSnapshot;

use crate::harness::{Bench, Measurement};

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct CollectConfig {
    /// Backbone links to simulate.
    pub links: usize,
    /// Largest shard count; lanes run 1, 2, 4, … up to this.
    pub max_shards: usize,
    /// Per-case wall-clock budget in milliseconds.
    pub budget_ms: u64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for CollectConfig {
    fn default() -> Self {
        Self {
            links: 150,
            max_shards: std::thread::available_parallelism().map_or(4, |p| p.get().min(8)),
            budget_ms: 300,
            seed: 0xc011,
        }
    }
}

impl CollectConfig {
    /// A cheap configuration for CI smoke runs (~1 s wall clock total).
    pub fn smoke() -> Self {
        Self {
            links: 20,
            max_shards: 2,
            budget_ms: 60,
            ..Self::default()
        }
    }

    fn pipeline(&self, shards: usize) -> PipelineConfig {
        PipelineConfig {
            links: self.links.max(1),
            shards,
            seed: self.seed,
            ..PipelineConfig::default()
        }
    }
}

/// Run the shard-scaling comparison; one [`Measurement`] per shard count.
pub fn run(cfg: &CollectConfig) -> Vec<Measurement> {
    let bench = Bench::with_budget_ms(cfg.budget_ms);
    // The flow total is a property of (links, seed): read it off the
    // snapshot directly so every lane can convert time to items/sec
    // without paying for a warm-up pipeline run.
    let total_flows: u64 = BackboneSnapshot::with_links(cfg.links.max(1), cfg.seed)
        .counts()
        .iter()
        .sum();
    let mut results = Vec::new();
    let mut shards = 1usize;
    while shards <= cfg.max_shards.max(1) {
        let name = format!("collect_s{shards}");
        let pipeline_cfg = cfg.pipeline(shards);
        results.push(bench.run(&name, total_flows, || {
            run_pipeline(&pipeline_cfg).expect("pipeline").checkpoints
        }));
        shards *= 2;
    }
    results
}

/// Render `results` (plus workload metadata) as the `BENCH_collect.json`
/// document.
pub fn report_json(cfg: &CollectConfig, results: &[Measurement]) -> String {
    let single = results.iter().find(|m| m.name == "collect_s1");
    let best = results
        .iter()
        .max_by(|a, b| a.items_per_sec().total_cmp(&b.items_per_sec()));
    let speedup = match (single, best) {
        (Some(s), Some(b)) if s.items_per_sec() > 0.0 => b.items_per_sec() / s.items_per_sec(),
        _ => 0.0,
    };
    let defaults = PipelineConfig::default();
    crate::harness::to_json(
        "collect",
        &[
            ("generator", "backbone".to_string()),
            ("links", cfg.links.to_string()),
            ("n_max", defaults.n_max.to_string()),
            ("m_bits", defaults.m_bits.to_string()),
            ("hll_registers", defaults.hll_registers.to_string()),
            ("seed", cfg.seed.to_string()),
            ("multi_shard_vs_single_speedup", format!("{speedup:.3}")),
        ],
        results,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_lanes_and_json() {
        let cfg = CollectConfig {
            links: 8,
            max_shards: 2,
            budget_ms: 5,
            seed: 3,
        };
        let results = run(&cfg);
        let names: Vec<&str> = results.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["collect_s1", "collect_s2"]);
        assert!(results.iter().all(|m| m.items > 0));
        let json = report_json(&cfg, &results);
        assert!(json.contains("\"bench\": \"collect\""));
        assert!(json.contains("multi_shard_vs_single_speedup"));
        assert!(json.contains("collect_s2"));
    }
}
