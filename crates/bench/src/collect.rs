//! The collector-pipeline benchmark: node→collector throughput as the
//! shard count scales, plus the windowed wire-cost comparison.
//!
//! The shard lanes run [`sbitmap_stream::collector::run_pipeline`]
//! end-to-end — per-link sketch builds, checkpoint encode, channel
//! transfer, checksum verify + decode, and the mergeable-sketch fold —
//! over the same [`sbitmap_stream::BackboneSnapshot`] workload, with
//! 1, 2, 4, … node shards. Items/second counts the *flows ingested*, so
//! the lanes are directly comparable to the ingest bench.
//!
//! The windowed lanes race the same sliding-window workload over both
//! wire encodings at the same per-round cadence: `windowed_full` ships
//! a full v2 checkpoint per round, `windowed_delta` ships the v3
//! delta-chain frames. Before any timing, both pipelines run once and
//! their per-link estimates, truths and quantile summaries must be
//! **bit-identical** — the bench refuses to time a compressed lane that
//! changes answers. The measured byte counts land in the report header
//! (`bytes_on_wire_full` / `bytes_on_wire_v3` / `wire_reduction`);
//! results serialize to `BENCH_collect.json`.

use sbitmap_stream::collector::{run_pipeline, PipelineConfig};
use sbitmap_stream::{
    run_windowed_pipeline_rounds, run_windowed_pipeline_v3, BackboneSnapshot,
    WindowedPipelineConfig,
};

use crate::harness::{Bench, Measurement};

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct CollectConfig {
    /// Backbone links to simulate.
    pub links: usize,
    /// Largest shard count; lanes run 1, 2, 4, … up to this.
    pub max_shards: usize,
    /// Per-case wall-clock budget in milliseconds.
    pub budget_ms: u64,
    /// Workload seed.
    pub seed: u64,
    /// Sliding-window width (epochs) for the wire-cost lanes.
    pub window: usize,
    /// Epochs the windowed lanes run.
    pub epochs: usize,
    /// Wire rounds per epoch for the windowed lanes — both encodings
    /// ship at this cadence, so the comparison is byte-for-byte fair.
    pub rounds: usize,
}

impl Default for CollectConfig {
    fn default() -> Self {
        Self {
            links: 150,
            max_shards: std::thread::available_parallelism().map_or(4, |p| p.get().min(8)),
            budget_ms: 300,
            seed: 0xc011,
            window: 4,
            epochs: 6,
            rounds: 8,
        }
    }
}

impl CollectConfig {
    /// A cheap configuration for CI smoke runs (~1 s wall clock total).
    pub fn smoke() -> Self {
        Self {
            links: 20,
            max_shards: 2,
            budget_ms: 60,
            epochs: 4,
            ..Self::default()
        }
    }

    fn pipeline(&self, shards: usize) -> PipelineConfig {
        PipelineConfig {
            links: self.links.max(1),
            shards,
            seed: self.seed,
            ..PipelineConfig::default()
        }
    }

    fn windowed(&self) -> WindowedPipelineConfig {
        let defaults = PipelineConfig::default();
        WindowedPipelineConfig {
            links: self.links.max(1),
            shards: 2,
            n_max: defaults.n_max,
            m_bits: defaults.m_bits,
            window: self.window.max(2),
            epochs: self.epochs.max(1),
            rounds: self.rounds.max(1),
            seed: self.seed,
        }
    }
}

/// Wire-cost figures from the windowed full-vs-delta comparison.
#[derive(Debug, Clone)]
pub struct WireStats {
    /// Bytes shipped by the uncompressed lane (full v2 checkpoint per
    /// round).
    pub bytes_full: usize,
    /// Bytes shipped by the v3 delta lane at the same cadence.
    pub bytes_v3: usize,
    /// Frames each lane shipped (`shards × epochs × rounds`).
    pub frames: usize,
    /// `bytes_full / bytes_v3`.
    pub reduction: f64,
}

/// Everything one collect-bench invocation produced.
#[derive(Debug, Clone)]
pub struct CollectRun {
    /// Timed lanes: shard scaling plus the two windowed wire lanes.
    pub results: Vec<Measurement>,
    /// Byte counts from the verified full-vs-delta comparison.
    pub wire: WireStats,
}

/// Run the shard-scaling comparison and the windowed wire-cost lanes.
///
/// # Panics
///
/// If the v3 delta lane's estimates, truths or quantile summaries
/// diverge from the uncompressed lane — the bench refuses to time an
/// encoding that changes answers.
pub fn run(cfg: &CollectConfig) -> CollectRun {
    let bench = Bench::with_budget_ms(cfg.budget_ms);
    // The flow total is a property of (links, seed): read it off the
    // snapshot directly so every lane can convert time to items/sec
    // without paying for a warm-up pipeline run.
    let total_flows: u64 = BackboneSnapshot::with_links(cfg.links.max(1), cfg.seed)
        .counts()
        .iter()
        .sum();
    let mut results = Vec::new();
    let mut shards = 1usize;
    while shards <= cfg.max_shards.max(1) {
        let name = format!("collect_s{shards}");
        let pipeline_cfg = cfg.pipeline(shards);
        results.push(bench.run(&name, total_flows, || {
            run_pipeline(&pipeline_cfg).expect("pipeline").checkpoints
        }));
        shards *= 2;
    }

    // Equivalence gate before timing the wire lanes.
    let wcfg = cfg.windowed();
    let full = run_windowed_pipeline_rounds(&wcfg).expect("windowed full lane");
    let v3 = run_windowed_pipeline_v3(&wcfg).expect("windowed delta lane");
    for (f, d) in full.links.iter().zip(&v3.links) {
        assert!(
            f.link == d.link && f.truth == d.truth && f.estimate == d.estimate,
            "refusing to benchmark: link {} diverges between full \
             ({} / {}) and delta ({} / {}) lanes",
            f.link,
            f.truth,
            f.estimate,
            d.truth,
            d.estimate
        );
    }
    assert_eq!(
        full.estimate_quantiles, v3.estimate_quantiles,
        "refusing to benchmark: quantile summaries diverge between encodings"
    );
    assert_eq!(full.checkpoints, v3.checkpoints, "frame cadence mismatch");
    let wire = WireStats {
        bytes_full: full.bytes_shipped,
        bytes_v3: v3.bytes_shipped,
        frames: v3.checkpoints,
        reduction: full.bytes_shipped as f64 / (v3.bytes_shipped.max(1)) as f64,
    };

    let frames = wire.frames as u64;
    results.push(bench.run("windowed_full", frames, || {
        run_windowed_pipeline_rounds(&wcfg)
            .expect("windowed full lane")
            .checkpoints
    }));
    results.push(bench.run("windowed_delta", frames, || {
        run_windowed_pipeline_v3(&wcfg)
            .expect("windowed delta lane")
            .checkpoints
    }));
    CollectRun { results, wire }
}

/// Render a [`CollectRun`] (plus workload metadata) as the
/// `BENCH_collect.json` document.
pub fn report_json(cfg: &CollectConfig, run: &CollectRun) -> String {
    let results = &run.results;
    let single = results.iter().find(|m| m.name == "collect_s1");
    let best = results
        .iter()
        .filter(|m| m.name.starts_with("collect_s"))
        .max_by(|a, b| a.items_per_sec().total_cmp(&b.items_per_sec()));
    let speedup = match (single, best) {
        (Some(s), Some(b)) if s.items_per_sec() > 0.0 => b.items_per_sec() / s.items_per_sec(),
        _ => 0.0,
    };
    let defaults = PipelineConfig::default();
    crate::harness::to_json(
        "collect",
        &[
            ("generator", "backbone".to_string()),
            ("links", cfg.links.to_string()),
            ("n_max", defaults.n_max.to_string()),
            ("m_bits", defaults.m_bits.to_string()),
            ("hll_registers", defaults.hll_registers.to_string()),
            ("seed", cfg.seed.to_string()),
            ("window", cfg.window.to_string()),
            ("epochs", cfg.epochs.to_string()),
            ("rounds", cfg.rounds.to_string()),
            ("frames_on_wire", run.wire.frames.to_string()),
            ("bytes_on_wire_full", run.wire.bytes_full.to_string()),
            ("bytes_on_wire_v3", run.wire.bytes_v3.to_string()),
            ("wire_reduction", format!("{:.3}", run.wire.reduction)),
            ("multi_shard_vs_single_speedup", format!("{speedup:.3}")),
        ],
        results,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_lanes_and_json() {
        let cfg = CollectConfig {
            links: 8,
            max_shards: 2,
            budget_ms: 5,
            seed: 3,
            window: 3,
            epochs: 3,
            rounds: 2,
        };
        let run = run(&cfg);
        let names: Vec<&str> = run.results.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "collect_s1",
                "collect_s2",
                "windowed_full",
                "windowed_delta"
            ]
        );
        assert!(run.results.iter().all(|m| m.items > 0));
        assert!(
            run.wire.bytes_v3 < run.wire.bytes_full,
            "delta lane must ship fewer bytes ({} vs {})",
            run.wire.bytes_v3,
            run.wire.bytes_full
        );
        assert_eq!(run.wire.frames, 2 * cfg.epochs * cfg.rounds);
        let json = report_json(&cfg, &run);
        assert!(json.contains("\"bench\": \"collect\""));
        assert!(json.contains("multi_shard_vs_single_speedup"));
        assert!(json.contains("bytes_on_wire_v3"));
        assert!(json.contains("wire_reduction"));
        assert!(json.contains("windowed_delta"));
    }
}
