//! The sliding-window benchmark: windowed fleet ingest at several
//! window spans vs the plain arena, plus the window query cost.
//!
//! All ingest lanes consume the *same* interleaved `(link, flow)` pair
//! sequence as `BENCH_fleet.json` ([`crate::ingest::backbone_pairs`]),
//! so `backbone_window_w8` is directly comparable to
//! `backbone_fleet_arena`:
//!
//! * **arena** — [`FleetArena::insert_batch`], the no-window baseline;
//! * **w2 / w8 / w32** — [`WindowedFleet::insert_batch`] with a
//!   count-driven [`sbitmap_core::EpochClock`] that rotates
//!   [`WindowConfig::rotations`] times over the workload, at window
//!   spans of 2, 8 and 32 epochs. The epoch budget (hence the rotation
//!   count) is the same in every lane, so the spans differ only in ring
//!   size — which is the point: ingest always lands in *one* epoch
//!   arena, so the cost should be flat in `W`;
//! * **query_w8** — a full [`WindowedFleet::estimates`] sweep over a
//!   populated 8-epoch ring; `ns/item` here is nanoseconds per queried
//!   key (the fused single-pass union merge on the dispatched
//!   [`sbitmap_bitvec::kernels`] path);
//! * **query_naive_w8** — the same sweep through
//!   [`WindowedFleet::estimate_naive`], the pre-kernel three-pass
//!   reference (zero scratch → per-epoch scalar OR → separate
//!   popcount). Because both lanes run in the *same* process on the
//!   *same* ring, their ratio (`query_fused_vs_naive_speedup`) is a
//!   host-independent measure of what the fused kernel path buys — CI
//!   gates it with `--assert-min-query-speedup`.
//!
//! Before timing anything, [`run`] proves the windowed fleet agrees
//! with the plain arena at `W = 1`, that batched windowed ingest is
//! bit-identical to a scalar feed across epoch boundaries, and that the
//! fused and naive query paths return identical fills and estimates for
//! every key of the query ring — a benchmark of wrong code is worse
//! than no benchmark (same policy as [`crate::fleet`]). Results
//! serialize to `BENCH_window.json`; CI gates `w8_vs_arena_overhead`
//! (the acceptance bound is ≤ 1.5×) and the query speedup.

use std::sync::Arc;

use sbitmap_core::{FleetArena, RateSchedule, WindowedFleet};

use crate::harness::{Bench, Measurement};
use crate::ingest::{backbone_pairs, IngestConfig};

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct WindowConfig {
    /// Backbone links to simulate.
    pub links: usize,
    /// Cap on total `(link, flow)` pairs fed per iteration.
    pub max_pairs: usize,
    /// Per-case wall-clock budget in milliseconds.
    pub budget_ms: u64,
    /// Epoch rotations each windowed lane performs over the workload
    /// (the count-driven budget is `pairs / rotations`).
    pub rotations: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self {
            links: 150,
            max_pairs: 2_000_000,
            budget_ms: 300,
            rotations: 16,
            seed: 0xbe9c,
        }
    }
}

impl WindowConfig {
    /// A cheap configuration for CI smoke runs (~1 s wall clock total).
    pub fn smoke() -> Self {
        Self {
            links: 40,
            max_pairs: 200_000,
            budget_ms: 60,
            ..Self::default()
        }
    }

    fn ingest_cfg(&self) -> IngestConfig {
        IngestConfig {
            links: self.links,
            max_pairs: self.max_pairs,
            budget_ms: self.budget_ms,
            max_threads: 1,
            seed: self.seed,
        }
    }
}

/// Window spans benchmarked (the `W` of each `backbone_window_wW` lane).
pub const WINDOW_SPANS: [usize; 3] = [2, 8, 32];

/// Sketch configuration shared with the fleet bench (§7.2 scenario).
const N_MAX: u64 = 1_500_000;
/// Per-link bitmap bits (≈3% RRMSE at `N_MAX`).
const M_BITS: usize = 8_000;

/// The benchmark's outcome: per-lane measurements plus the headline
/// overhead ratio.
#[derive(Debug, Clone)]
pub struct WindowRun {
    /// One measurement per lane.
    pub results: Vec<Measurement>,
    /// `true` when the pre-timing equivalence checks passed (they must,
    /// or [`run`] panics instead of timing broken code).
    pub strategies_agree: bool,
}

/// Windowed-ingest cost at `W = 8` relative to the plain arena —
/// `ns/item ÷ ns/item`, the number CI gates at ≤ 1.5. Returns `0.0`
/// when either lane is missing.
pub fn w8_overhead(results: &[Measurement]) -> f64 {
    let find = |name: &str| results.iter().find(|m| m.name == name);
    match (find("backbone_window_w8"), find("backbone_window_arena")) {
        (Some(w), Some(a)) if a.ns_per_item() > 0.0 => w.ns_per_item() / a.ns_per_item(),
        _ => 0.0,
    }
}

/// Fused window-query speedup over the in-run naive three-pass
/// reference — `naive ns/key ÷ fused ns/key`, the number CI gates with
/// `--assert-min-query-speedup`. Returns `0.0` when either lane is
/// missing.
pub fn query_speedup(results: &[Measurement]) -> f64 {
    let find = |name: &str| results.iter().find(|m| m.name == name);
    match (find("window_query_naive_w8"), find("window_query_w8")) {
        (Some(n), Some(f)) if f.ns_per_item() > 0.0 => n.ns_per_item() / f.ns_per_item(),
        _ => 0.0,
    }
}

/// The per-epoch item budget: `rotations` rotations over the workload.
fn epoch_budget(cfg: &WindowConfig, n_pairs: usize) -> u64 {
    (n_pairs as u64 / cfg.rotations.max(1) as u64).max(1)
}

/// Run the sliding-window comparison.
///
/// # Panics
///
/// Panics if the windowed fleet disagrees with the plain arena at
/// `W = 1`, or if batched windowed ingest diverges from a scalar feed —
/// either would mean the ring or the epoch clock broke bit-identity.
pub fn run(cfg: &WindowConfig) -> WindowRun {
    let bench = Bench::with_budget_ms(cfg.budget_ms);
    let pairs = backbone_pairs(&cfg.ingest_cfg());
    let n_pairs = pairs.len() as u64;
    let budget = epoch_budget(cfg, pairs.len());
    let schedule = Arc::new(RateSchedule::from_memory(N_MAX, M_BITS).expect("window config"));

    let strategies_agree = verify_equivalence(cfg, &pairs);
    assert!(
        strategies_agree,
        "windowed fleet diverged from the arena — refusing to benchmark broken code"
    );

    let mut results = Vec::new();
    results.push(bench.run("backbone_window_arena", n_pairs, || {
        let mut fleet: FleetArena = FleetArena::with_schedule(schedule.clone(), cfg.seed);
        fleet.insert_batch(&pairs);
        fleet.len()
    }));
    for w in WINDOW_SPANS {
        let name = format!("backbone_window_w{w}");
        results.push(bench.run(&name, n_pairs, || {
            let mut fleet: WindowedFleet =
                WindowedFleet::with_schedule(schedule.clone(), cfg.seed, w)
                    .expect("window >= 1")
                    .with_epoch_items(budget)
                    .expect("budget >= 1");
            fleet.insert_batch(&pairs);
            fleet.len()
        }));
    }
    // Query lanes: a populated 8-epoch ring, full estimates sweep —
    // fused kernel path vs the in-run naive three-pass reference. The
    // two must agree key-for-key before either is timed.
    {
        let mut fleet: WindowedFleet = WindowedFleet::with_schedule(schedule.clone(), cfg.seed, 8)
            .expect("window >= 1")
            .with_epoch_items(budget)
            .expect("budget >= 1");
        fleet.insert_batch(&pairs);
        for key in fleet.keys_sorted() {
            assert_eq!(
                fleet.window_fill(key),
                fleet.window_fill_naive(key),
                "fused window fill diverged from the naive reference for key {key} \
                 — refusing to benchmark broken code"
            );
            assert_eq!(
                fleet.estimate(key),
                fleet.estimate_naive(key),
                "fused window estimate diverged from the naive reference for key {key} \
                 — refusing to benchmark broken code"
            );
        }
        let keys = fleet.len() as u64;
        results.push(bench.run("window_query_w8", keys, || {
            let estimates = fleet.estimates();
            estimates.len()
        }));
        results.push(bench.run("window_query_naive_w8", keys, || {
            // The same sweep shape as `estimates()` (sorted key list,
            // one estimate per key), on the naive union path.
            fleet
                .keys_sorted()
                .into_iter()
                .map(|k| fleet.estimate_naive(k).expect("key is live"))
                .fold(0.0f64, |acc, e| acc + e)
                .to_bits() as usize
        }));
    }

    WindowRun {
        results,
        strategies_agree,
    }
}

/// Pre-timing equivalence gate: `W = 1` windowed state must match the
/// plain arena, and batched windowed ingest must match a scalar feed
/// across epoch boundaries (both checked on a workload prefix).
fn verify_equivalence(cfg: &WindowConfig, pairs: &[(u64, u64)]) -> bool {
    let prefix = &pairs[..pairs.len().min(50_000)];
    let mut arena: FleetArena = FleetArena::new(N_MAX, M_BITS, cfg.seed).expect("window config");
    let mut single: WindowedFleet =
        WindowedFleet::new(N_MAX, M_BITS, cfg.seed, 1).expect("window config");
    arena.insert_batch(prefix);
    single.insert_batch(prefix);
    let arena_ok = arena.estimates().collect::<Vec<_>>() == single.estimates();

    let budget = epoch_budget(cfg, prefix.len());
    let mut batched: WindowedFleet = WindowedFleet::new(N_MAX, M_BITS, cfg.seed, 4)
        .expect("window config")
        .with_epoch_items(budget)
        .expect("budget >= 1");
    let mut scalar = batched.clone();
    batched.insert_batch(prefix);
    for &(k, item) in prefix {
        scalar.insert_u64(k, item);
    }
    arena_ok && batched.estimates() == scalar.estimates()
}

/// Render a [`WindowRun`] (plus workload metadata) as the
/// `BENCH_window.json` document.
pub fn report_json(cfg: &WindowConfig, run: &WindowRun) -> String {
    let query_ns = run
        .results
        .iter()
        .find(|m| m.name == "window_query_w8")
        .map_or(0.0, Measurement::ns_per_item);
    let naive_ns = run
        .results
        .iter()
        .find(|m| m.name == "window_query_naive_w8")
        .map_or(0.0, Measurement::ns_per_item);
    crate::harness::to_json(
        "window",
        &[
            ("generator", "backbone".to_string()),
            ("links", cfg.links.to_string()),
            ("n_max", N_MAX.to_string()),
            ("m_bits", M_BITS.to_string()),
            ("seed", cfg.seed.to_string()),
            ("rotations", cfg.rotations.to_string()),
            (
                "window_spans",
                format!("{:?}", WINDOW_SPANS.map(|w| w as u64)),
            ),
            (
                "w8_vs_arena_overhead",
                format!("{:.3}", w8_overhead(&run.results)),
            ),
            ("query_ns_per_key_w8", format!("{query_ns:.1}")),
            ("query_naive_ns_per_key_w8", format!("{naive_ns:.1}")),
            (
                "query_fused_vs_naive_speedup",
                format!("{:.3}", query_speedup(&run.results)),
            ),
            ("strategies_agree", run.strategies_agree.to_string()),
        ],
        &run.results,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_lanes_and_json() {
        let cfg = WindowConfig {
            links: 6,
            max_pairs: 10_000,
            budget_ms: 5,
            rotations: 4,
            ..WindowConfig::smoke()
        };
        let run = run(&cfg);
        assert!(run.strategies_agree);
        let names: Vec<&str> = run.results.iter().map(|m| m.name.as_str()).collect();
        for expect in [
            "backbone_window_arena",
            "backbone_window_w2",
            "backbone_window_w8",
            "backbone_window_w32",
            "window_query_w8",
            "window_query_naive_w8",
        ] {
            assert!(names.contains(&expect), "missing lane {expect}");
        }
        assert!(w8_overhead(&run.results) > 0.0);
        assert!(query_speedup(&run.results) > 0.0);
        let json = report_json(&cfg, &run);
        assert!(json.contains("\"bench\": \"window\""));
        assert!(json.contains("w8_vs_arena_overhead"));
        assert!(json.contains("query_ns_per_key_w8"));
        assert!(json.contains("query_naive_ns_per_key_w8"));
        assert!(json.contains("query_fused_vs_naive_speedup"));
        assert!(json.contains("\"simd\": "));
        assert!(json.contains("\"strategies_agree\": \"true\""));
    }
}
