//! A dependency-free measurement harness.
//!
//! This workspace builds in offline environments where criterion cannot
//! be fetched, so the benches ship their own tiny harness: warm up,
//! run timed iterations until a wall-clock budget is spent, report the
//! *median* iteration (robust to scheduler noise), and serialize results
//! as JSON with no serde.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark case's result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Case name (stable key in the JSON output).
    pub name: String,
    /// Timed iterations executed.
    pub iters: usize,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: f64,
    /// Items processed per iteration (for throughput reporting).
    pub items: u64,
}

impl Measurement {
    /// Nanoseconds per item at the median iteration.
    pub fn ns_per_item(&self) -> f64 {
        if self.items == 0 {
            return 0.0;
        }
        self.median_ns / self.items as f64
    }

    /// Items per second at the median iteration.
    pub fn items_per_sec(&self) -> f64 {
        if self.median_ns == 0.0 {
            return 0.0;
        }
        self.items as f64 * 1e9 / self.median_ns
    }

    /// One human-readable summary row.
    pub fn row(&self) -> String {
        format!(
            "{:<28} {:>10.2} ns/item {:>12.2} Mitems/s  ({} iters)",
            self.name,
            self.ns_per_item(),
            self.items_per_sec() / 1e6,
            self.iters
        )
    }
}

/// Wall-clock-budgeted bench runner.
#[derive(Debug, Clone)]
pub struct Bench {
    budget: Duration,
    min_iters: usize,
    max_iters: usize,
}

impl Default for Bench {
    fn default() -> Self {
        Self {
            budget: Duration::from_millis(300),
            min_iters: 3,
            max_iters: 1000,
        }
    }
}

impl Bench {
    /// A runner with an explicit per-case time budget in milliseconds.
    pub fn with_budget_ms(ms: u64) -> Self {
        Self {
            budget: Duration::from_millis(ms.max(1)),
            ..Self::default()
        }
    }

    /// Budget from `SBITMAP_BENCH_MS` (default 300 ms per case) — the CI
    /// smoke run sets a small value to catch perf-path bitrot cheaply.
    pub fn from_env() -> Self {
        let ms = std::env::var("SBITMAP_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Self::with_budget_ms(ms)
    }

    /// Measure `f`, which processes `items` items per call and returns a
    /// value the optimizer must not discard (folded into `black_box`).
    ///
    /// `f` runs once for warmup, then repeatedly until the budget is
    /// spent (bounded by min/max iteration counts).
    pub fn run<T>(&self, name: &str, items: u64, mut f: impl FnMut() -> T) -> Measurement {
        black_box(f()); // warmup: touch caches, JIT the branch predictors
        let mut samples = Vec::new();
        let started = Instant::now();
        while (samples.len() < self.min_iters
            || (started.elapsed() < self.budget && samples.len() < self.max_iters))
            && samples.len() < self.max_iters
        {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed().as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        let median = samples[samples.len() / 2];
        Measurement {
            name: name.to_string(),
            iters: samples.len(),
            median_ns: median,
            items,
        }
    }
}

/// Peak resident set size of this process in bytes — `VmHWM` from
/// `/proc/self/status` — or 0 where the proc file is unavailable
/// (non-Linux hosts).
///
/// `VmHWM` is a high-water mark: it only ever grows, so a caller that
/// wants to attribute memory to a phase must difference two readings
/// *and* run the phases smallest-first (a later, smaller phase under an
/// already-raised mark reads as a zero delta).
pub fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("VmHWM:"))
                .and_then(|line| line.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .map_or(0, |kb| kb * 1024)
}

/// Serialize measurements as a JSON document (no external JSON crate;
/// the format is flat and the strings are controlled identifiers).
///
/// Every document records the host's `available_parallelism`, the
/// dispatched word-kernel path (`"simd"`) and the process's peak RSS
/// (`"peak_rss_bytes"`, see [`peak_rss_bytes`]) alongside the caller's
/// metadata: flat multi-thread lanes are meaningless without knowing how
/// many cores the run actually had (a 1-CPU CI container *should* show a
/// 1.0x shard speedup), single-thread numbers are meaningless without
/// knowing whether the AVX2 or the scalar kernels ran, and a
/// memory-bound lane is meaningless without knowing what the run
/// actually held resident.
pub fn to_json(bench_name: &str, metadata: &[(&str, String)], results: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", escape(bench_name)));
    out.push_str(&format!(
        "  \"available_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get)
    ));
    out.push_str(&format!(
        "  \"simd\": \"{}\",\n",
        sbitmap_bitvec::kernels::active_path()
    ));
    out.push_str(&format!("  \"peak_rss_bytes\": {},\n", peak_rss_bytes()));
    for (k, v) in metadata {
        out.push_str(&format!("  \"{}\": {},\n", escape(k), json_value(v)));
    }
    out.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"items\": {}, \"median_ns_per_iter\": {:.1}, \"ns_per_item\": {:.4}, \"items_per_sec\": {:.1}}}{}\n",
            escape(&m.name),
            m.iters,
            m.items,
            m.median_ns,
            m.ns_per_item(),
            m.items_per_sec(),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Quote a metadata value: strings that are valid *JSON* numbers pass
/// through bare, everything else is a JSON string. Rust's `f64` parser
/// is laxer than JSON (accepts `inf`, `NaN`, `+5`, `.5`), so gate on
/// both a finite parse and JSON-compatible syntax.
fn json_value(v: &str) -> String {
    let unsigned = v.strip_prefix('-').unwrap_or(v);
    let json_number_shape = unsigned.chars().next().is_some_and(|c| c.is_ascii_digit())
        && v.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        // JSON requires a digit after the decimal point ("5." is invalid).
        && !v.split(['e', 'E']).any(|part| part.ends_with('.'));
    match v.parse::<f64>() {
        Ok(n) if n.is_finite() && json_number_shape => v.to_string(),
        _ => format!("\"{}\"", escape(v)),
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_measures_and_reports() {
        let b = Bench::with_budget_ms(10);
        let m = b.run("spin", 1000, || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(m.iters >= 3);
        assert!(m.median_ns > 0.0);
        assert!(m.items_per_sec() > 0.0);
        assert!(m.row().contains("spin"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let m = Measurement {
            name: "case-\"a\"".into(),
            iters: 5,
            median_ns: 123.0,
            items: 10,
        };
        let j = to_json(
            "ingest",
            &[("links", "600".into()), ("gen", "backbone".into())],
            &[m],
        );
        assert!(j.contains("\"bench\": \"ingest\""));
        assert!(j.contains("\"available_parallelism\": "));
        assert!(j.contains("\"simd\": \"avx2\"") || j.contains("\"simd\": \"scalar\""));
        assert!(j.contains("\"peak_rss_bytes\": "));
        assert!(j.contains("\"links\": 600"));
        assert!(j.contains("\"gen\": \"backbone\""));
        assert!(j.contains("case-\\\"a\\\""));
        assert!(j.trim_end().ends_with('}'));
        // Balanced braces/brackets as a cheap structural check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn non_json_numbers_are_quoted() {
        // Rust's f64 parser accepts these; JSON does not — they must be
        // emitted as strings, not bare tokens.
        for v in ["NaN", "inf", "-inf", "+5", ".5", "5.", "infinity"] {
            let j = to_json("b", &[("k", v.to_string())], &[]);
            assert!(
                j.contains(&format!("\"k\": \"{v}\"")),
                "{v} not quoted: {j}"
            );
        }
        for v in ["5", "-5", "1.798", "1e6", "0.02"] {
            let j = to_json("b", &[("k", v.to_string())], &[]);
            assert!(
                j.contains(&format!("\"k\": {v}")),
                "{v} wrongly quoted: {j}"
            );
        }
    }

    #[test]
    fn peak_rss_is_positive_and_kb_granular_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes();
            assert!(rss > 0, "VmHWM should be readable on Linux");
            assert_eq!(rss % 1024, 0, "VmHWM is reported in kB");
        }
    }

    #[test]
    fn zero_items_does_not_divide_by_zero() {
        let m = Measurement {
            name: "empty".into(),
            iters: 1,
            median_ns: 100.0,
            items: 0,
        };
        assert_eq!(m.ns_per_item(), 0.0);
    }
}
