//! Collector-pipeline throughput: the sharded node→collector checkpoint
//! pipeline of `sbitmap_stream::collector` at 1..=T shards, written to
//! `BENCH_collect.json` so the distributed-path perf trajectory is
//! tracked across PRs.
//!
//! Environment knobs: `SBITMAP_BENCH_MS` (per-case budget),
//! `SBITMAP_BENCH_LINKS`, `SBITMAP_BENCH_SHARDS`.

use sbitmap_bench::collect::{self, CollectConfig};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    if std::env::args().any(|a| a == "--list") {
        println!("collector: bench");
        return;
    }

    let mut cfg = CollectConfig::default();
    cfg.links = env_usize("SBITMAP_BENCH_LINKS", cfg.links);
    cfg.max_shards = env_usize("SBITMAP_BENCH_SHARDS", cfg.max_shards);
    if let Ok(ms) = std::env::var("SBITMAP_BENCH_MS") {
        if let Ok(ms) = ms.parse() {
            cfg.budget_ms = ms;
        }
    }

    println!(
        "=== collect: sharded node→collector pipeline ({} links, ≤{} shards) ===",
        cfg.links, cfg.max_shards
    );
    let run = collect::run(&cfg);
    for m in &run.results {
        println!("{}", m.row());
    }
    println!(
        "wire: {} bytes full vs {} bytes v3 ({:.2}x reduction over {} frames)",
        run.wire.bytes_full, run.wire.bytes_v3, run.wire.reduction, run.wire.frames
    );
    let json = collect::report_json(&cfg, &run);
    let path = std::env::var("SBITMAP_BENCH_JSON").unwrap_or_else(|_| "BENCH_collect.json".into());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
