//! Cost of producing an estimate at a realistic fill level.
//!
//! Bitmap-family estimators are O(1) given their maintained counters;
//! the loglog family re-scans its registers; adaptive sampling and KMV
//! read their collections. The S-bitmap estimate is a closed-form
//! evaluation of `t_B` — constant time.

use sbitmap_bench::harness::Bench;
use sbitmap_bench::{build_by_name, ingest, workload, ROSTER_NAMES};
use std::hint::black_box;

fn main() {
    if std::env::args().any(|a| a == "--list") {
        println!("estimate_cost: bench");
        return;
    }
    let items = workload(100_000);
    let bench = Bench::from_env();
    println!("=== estimate cost at n = 100k ===");
    for name in ROSTER_NAMES {
        let mut counter = build_by_name(name, 11);
        ingest(&mut counter, &items);
        // 1000 estimates per iteration so per-call cost is resolvable.
        let m = bench.run(name, 1000, || {
            let mut acc = 0.0f64;
            for _ in 0..1000 {
                acc += black_box(counter.estimate());
            }
            acc
        });
        println!(
            "{:<22} {:>10.1} ns/estimate ({} iters)",
            m.name,
            m.ns_per_item(),
            m.iters
        );
    }
}
