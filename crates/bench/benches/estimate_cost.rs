//! Cost of producing an estimate at a realistic fill level.
//!
//! Bitmap-family estimators are O(1) given their maintained counters;
//! the loglog family re-scans its registers; adaptive sampling and KMV
//! read their collections. The S-bitmap estimate is a closed-form
//! evaluation of `t_B` — constant time.

use criterion::{criterion_group, criterion_main, Criterion};
use sbitmap_bench::{build_by_name, ingest, workload, ROSTER_NAMES};
use std::hint::black_box;

fn bench_estimates(c: &mut Criterion) {
    let items = workload(100_000);
    let mut group = c.benchmark_group("estimate_cost");
    for name in ROSTER_NAMES {
        let mut counter = build_by_name(name, 11);
        ingest(&mut counter, &items);
        group.bench_function(name, |b| b.iter(|| black_box(counter.estimate())));
    }
    group.finish();
}

criterion_group!(benches, bench_estimates);
criterion_main!(benches);
