//! One-time costs: the dimensioning solver (bisection on eq. (7)) and the
//! sampling-rate schedule precomputation. These matter for deployments
//! that spin up many sketch configurations dynamically.

use sbitmap_bench::harness::Bench;
use sbitmap_core::{Dimensioning, RateSchedule};
use std::hint::black_box;

fn main() {
    if std::env::args().any(|a| a == "--list") {
        println!("construction: bench");
        return;
    }
    let bench = Bench::from_env();
    type Case = (&'static str, fn() -> bool);
    let cases: [Case; 4] = [
        ("dimensioning_from_memory", || {
            black_box(Dimensioning::from_memory(
                black_box(1 << 20),
                black_box(8_000),
            ))
            .is_ok()
        }),
        ("dimensioning_from_error", || {
            black_box(Dimensioning::from_error(
                black_box(1 << 20),
                black_box(0.02),
            ))
            .is_ok()
        }),
        ("schedule_m8000", || {
            black_box(RateSchedule::from_memory(1 << 20, 8_000)).is_ok()
        }),
        ("schedule_m40000", || {
            black_box(RateSchedule::from_memory(1 << 20, 40_000)).is_ok()
        }),
    ];
    for (name, f) in cases {
        let m = bench.run(name, 1, f);
        println!(
            "{:<26} {:>12.0} ns/op ({} iters)",
            m.name, m.median_ns, m.iters
        );
    }
}
