//! One-time costs: the dimensioning solver (bisection on eq. (7)) and the
//! sampling-rate schedule precomputation. These matter for deployments
//! that spin up many sketch configurations dynamically.

use criterion::{criterion_group, criterion_main, Criterion};
use sbitmap_core::{Dimensioning, RateSchedule};
use std::hint::black_box;

fn bench_construction(c: &mut Criterion) {
    c.bench_function("dimensioning_from_memory", |b| {
        b.iter(|| black_box(Dimensioning::from_memory(black_box(1 << 20), black_box(8_000))))
    });
    c.bench_function("dimensioning_from_error", |b| {
        b.iter(|| black_box(Dimensioning::from_error(black_box(1 << 20), black_box(0.02))))
    });
    c.bench_function("schedule_m8000", |b| {
        b.iter(|| black_box(RateSchedule::from_memory(1 << 20, 8_000)))
    });
    c.bench_function("schedule_m40000", |b| {
        b.iter(|| black_box(RateSchedule::from_memory(1 << 20, 40_000)))
    });
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
