//! Loopback daemon throughput: the full networked pipeline (TCP agents
//! → `sbitmapd` ingest → bounded absorb → drain), clean vs a seeded
//! reconnect storm, written to `BENCH_daemon.json` so the deployment
//! path's perf trajectory is tracked across PRs.
//!
//! Environment knobs: `SBITMAP_BENCH_MS` (per-case budget),
//! `SBITMAP_BENCH_LINKS`, `SBITMAP_BENCH_SHARDS`,
//! `SBITMAP_BENCH_EPOCHS`.

use sbitmap_bench::daemon::{self, DaemonBenchConfig};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    if std::env::args().any(|a| a == "--list") {
        println!("daemon_loopback: bench");
        return;
    }

    let mut cfg = DaemonBenchConfig::default();
    cfg.links = env_usize("SBITMAP_BENCH_LINKS", cfg.links);
    cfg.shards = env_usize("SBITMAP_BENCH_SHARDS", cfg.shards);
    cfg.epochs = env_usize("SBITMAP_BENCH_EPOCHS", cfg.epochs);
    if let Ok(ms) = std::env::var("SBITMAP_BENCH_MS") {
        if let Ok(ms) = ms.parse() {
            cfg.budget_ms = ms;
        }
    }

    println!(
        "=== daemon: loopback TCP pipeline ({} links over {} agents, {}-epoch window, {} epochs) ===",
        cfg.links, cfg.shards, cfg.window, cfg.epochs
    );
    let run = daemon::run(&cfg);
    for m in &run.results {
        println!("{}", m.row());
    }
    println!(
        "reconnect storm vs clean loopback: {:.2}x",
        daemon::storm_overhead(&run.results)
    );
    let json = daemon::report_json(&cfg, &run);
    std::fs::write("BENCH_daemon.json", &json).expect("write BENCH_daemon.json");
    println!("wrote BENCH_daemon.json");
}
