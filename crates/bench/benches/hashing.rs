//! Hash-family cost on word and byte-string inputs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sbitmap_hash::{HashKind, Hasher64};
use std::hint::black_box;

fn bench_hashing(c: &mut Criterion) {
    let words: Vec<u64> = (0..10_000u64).collect();
    let flows: Vec<Vec<u8>> = (0..1_000)
        .map(|i| format!("10.0.{}.{}:{} -> 192.0.2.1:443 tcp", i / 256, i % 256, 1024 + i).into_bytes())
        .collect();

    let mut group = c.benchmark_group("hash_u64");
    group.throughput(Throughput::Elements(words.len() as u64));
    for kind in HashKind::ALL {
        let hasher = kind.build(42);
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for &w in &words {
                    acc ^= hasher.hash_u64(w);
                }
                black_box(acc)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("hash_bytes_flow_keys");
    group.throughput(Throughput::Elements(flows.len() as u64));
    for kind in HashKind::ALL {
        let hasher = kind.build(42);
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for f in &flows {
                    acc ^= hasher.hash_bytes(f);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hashing);
criterion_main!(benches);
