//! Hash-family cost on word and byte-string inputs, scalar and batched.

use sbitmap_bench::harness::Bench;
use sbitmap_hash::{HashKind, Hasher64};
use std::hint::black_box;

fn main() {
    if std::env::args().any(|a| a == "--list") {
        println!("hashing: bench");
        return;
    }
    let words: Vec<u64> = (0..10_000u64).collect();
    let flows: Vec<Vec<u8>> = (0..1_000)
        .map(|i| {
            format!(
                "10.0.{}.{}:{} -> 192.0.2.1:443 tcp",
                i / 256,
                i % 256,
                1024 + i
            )
            .into_bytes()
        })
        .collect();
    let flow_refs: Vec<&[u8]> = flows.iter().map(Vec::as_slice).collect();
    let bench = Bench::from_env();

    println!("=== hash_u64 (scalar loop) ===");
    for kind in HashKind::ALL {
        let hasher = kind.build(42);
        let m = bench.run(kind.name(), words.len() as u64, || {
            let mut acc = 0u64;
            for &w in &words {
                acc ^= hasher.hash_u64(w);
            }
            black_box(acc)
        });
        println!("{}", m.row());
    }

    println!("\n=== hash_u64_batch (batched into a buffer) ===");
    let mut out = vec![0u64; words.len()];
    for kind in HashKind::ALL {
        let hasher = kind.build(42);
        let m = bench.run(kind.name(), words.len() as u64, || {
            hasher.hash_u64_batch(&words, &mut out);
            black_box(out[out.len() - 1])
        });
        println!("{}", m.row());
    }

    println!("\n=== hash_bytes on flow keys ===");
    for kind in HashKind::ALL {
        let hasher = kind.build(42);
        let m = bench.run(kind.name(), flow_refs.len() as u64, || {
            let mut acc = 0u64;
            for &f in &flow_refs {
                acc ^= hasher.hash_bytes(f);
            }
            black_box(acc)
        });
        println!("{}", m.row());
    }
}
