//! Sliding-window throughput: windowed fleet ingest at W ∈ {2, 8, 32}
//! epochs vs the plain arena, plus window query cost, written to
//! `BENCH_window.json` so the window subsystem's perf trajectory is
//! tracked across PRs.
//!
//! Environment knobs: `SBITMAP_BENCH_MS` (per-case budget),
//! `SBITMAP_BENCH_LINKS`, `SBITMAP_BENCH_PAIRS`,
//! `SBITMAP_BENCH_ROTATIONS`.

use sbitmap_bench::window::{self, WindowConfig};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    if std::env::args().any(|a| a == "--list") {
        println!("window_throughput: bench");
        return;
    }

    let mut cfg = WindowConfig::default();
    cfg.links = env_usize("SBITMAP_BENCH_LINKS", cfg.links);
    cfg.max_pairs = env_usize("SBITMAP_BENCH_PAIRS", cfg.max_pairs);
    cfg.rotations = env_usize("SBITMAP_BENCH_ROTATIONS", cfg.rotations);
    if let Ok(ms) = std::env::var("SBITMAP_BENCH_MS") {
        if let Ok(ms) = ms.parse() {
            cfg.budget_ms = ms;
        }
    }

    println!(
        "=== window: sliding-window fleet on the backbone workload ({} links, ≤{} pairs, {} rotations) ===",
        cfg.links, cfg.max_pairs, cfg.rotations
    );
    let run = window::run(&cfg);
    for m in &run.results {
        println!("{}", m.row());
    }
    println!(
        "w8 ingest vs plain arena: {:.2}x",
        window::w8_overhead(&run.results)
    );
    let json = window::report_json(&cfg, &run);
    std::fs::write("BENCH_window.json", &json).expect("write BENCH_window.json");
    println!("wrote BENCH_window.json");
}
