//! Fleet-storage throughput: HashMap fleet vs arena fleet vs sharded
//! arena fleet on the §7.2 backbone workload, written to
//! `BENCH_fleet.json` so the hottest-path perf trajectory is tracked
//! across PRs.
//!
//! Environment knobs: `SBITMAP_BENCH_MS` (per-case budget),
//! `SBITMAP_BENCH_LINKS`, `SBITMAP_BENCH_PAIRS`, `SBITMAP_BENCH_SHARDS`.

use sbitmap_bench::fleet::{self, FleetConfig};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    if std::env::args().any(|a| a == "--list") {
        println!("fleet_storage: bench");
        return;
    }

    let mut cfg = FleetConfig::default();
    cfg.links = env_usize("SBITMAP_BENCH_LINKS", cfg.links);
    cfg.max_pairs = env_usize("SBITMAP_BENCH_PAIRS", cfg.max_pairs);
    cfg.max_shards = env_usize("SBITMAP_BENCH_SHARDS", cfg.max_shards);
    if let Ok(ms) = std::env::var("SBITMAP_BENCH_MS") {
        if let Ok(ms) = ms.parse() {
            cfg.budget_ms = ms;
        }
    }

    println!(
        "=== fleet: storage flavors on the backbone workload ({} links, ≤{} pairs, ≤{} shards) ===",
        cfg.links, cfg.max_pairs, cfg.max_shards
    );
    let run = fleet::run(&cfg);
    for m in &run.results {
        println!("{}", m.row());
    }
    println!(
        "arena vs legacy batched: {:.2}x",
        fleet::arena_speedup(&run.results)
    );
    let json = fleet::report_json(&cfg, &run);
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!("wrote BENCH_fleet.json");
}
