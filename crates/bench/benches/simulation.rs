//! Cost of the Lemma-1 fast simulator vs feeding the real sketch — the
//! speedup that makes 1000-replicate accuracy sweeps cheap.

use sbitmap_bench::harness::Bench;
use sbitmap_core::{simulate, DistinctCounter, RateSchedule, SBitmap};
use sbitmap_hash::rng::Xoshiro256StarStar;
use sbitmap_hash::SplitMix64Hasher;
use std::hint::black_box;
use std::sync::Arc;

fn main() {
    if std::env::args().any(|a| a == "--list") {
        println!("simulation: bench");
        return;
    }
    let schedule = Arc::new(RateSchedule::from_memory(1 << 20, 8_000).unwrap());
    let bench = Bench::from_env();
    for &n in &[10_000u64, 100_000, 1_000_000] {
        let mut rng = Xoshiro256StarStar::new(1);
        let m = bench.run(&format!("fast_sim_n{n}"), n, || {
            black_box(simulate::simulate_fill(&schedule, n, &mut rng))
        });
        println!("{}", m.row());
        let m = bench.run(&format!("real_sketch_n{n}"), n, || {
            let mut s = SBitmap::with_shared_schedule(schedule.clone(), SplitMix64Hasher::new(7));
            for item in sbitmap_stream::distinct_items(3, n) {
                s.insert_u64(item);
            }
            black_box(s.estimate())
        });
        println!("{}", m.row());
    }
}
