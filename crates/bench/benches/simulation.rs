//! Cost of the Lemma-1 fast simulator vs feeding the real sketch — the
//! speedup that makes 1000-replicate accuracy sweeps cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sbitmap_core::{simulate, DistinctCounter, RateSchedule, SBitmap};
use sbitmap_hash::rng::Xoshiro256StarStar;
use sbitmap_hash::SplitMix64Hasher;
use std::hint::black_box;
use std::sync::Arc;

fn bench_simulation(c: &mut Criterion) {
    let schedule = Arc::new(RateSchedule::from_memory(1 << 20, 8_000).unwrap());
    let mut group = c.benchmark_group("fill_sampling");
    group.sample_size(20);
    for &n in &[10_000u64, 100_000, 1_000_000] {
        group.bench_with_input(BenchmarkId::new("fast_sim", n), &n, |b, &n| {
            let mut rng = Xoshiro256StarStar::new(1);
            b.iter(|| black_box(simulate::simulate_fill(&schedule, n, &mut rng)));
        });
        group.bench_with_input(BenchmarkId::new("real_sketch", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = SBitmap::with_shared_schedule(
                    schedule.clone(),
                    SplitMix64Hasher::new(7),
                );
                for item in sbitmap_stream::distinct_items(3, n) {
                    s.insert_u64(item);
                }
                black_box(s.estimate())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
