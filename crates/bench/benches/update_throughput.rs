//! Ingestion throughput: the headline bench of this workspace.
//!
//! Part 1 — scalar vs batched vs concurrent S-bitmap ingestion on the
//! backbone/worm workloads (`sbitmap_bench::ingest`), written to
//! `BENCH_ingest.json` so the perf trajectory is tracked across PRs.
//!
//! Part 2 — per-item insert cost for every sketch in the roster (the
//! paper's §3 "similar or less computational cost" claim).
//!
//! Environment knobs: `SBITMAP_BENCH_MS` (per-case budget),
//! `SBITMAP_BENCH_LINKS`, `SBITMAP_BENCH_PAIRS`.

use sbitmap_bench::harness::Bench;
use sbitmap_bench::ingest::{self, IngestConfig};
use sbitmap_bench::{build_by_name, workload, ROSTER_NAMES};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    if std::env::args().any(|a| a == "--list") {
        println!("update_throughput: bench");
        return;
    }

    let mut cfg = IngestConfig::default();
    cfg.links = env_usize("SBITMAP_BENCH_LINKS", cfg.links);
    cfg.max_pairs = env_usize("SBITMAP_BENCH_PAIRS", cfg.max_pairs);
    if let Ok(ms) = std::env::var("SBITMAP_BENCH_MS") {
        if let Ok(ms) = ms.parse() {
            cfg.budget_ms = ms;
        }
    }

    println!(
        "=== ingest: scalar vs batched vs concurrent ({} links, ≤{} pairs) ===",
        cfg.links, cfg.max_pairs
    );
    let results = ingest::run(&cfg);
    for m in &results {
        println!("{}", m.row());
    }
    let json = ingest::report_json(&cfg, &results);
    let path = std::env::var("SBITMAP_BENCH_JSON").unwrap_or_else(|_| "BENCH_ingest.json".into());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }

    println!("\n=== per-item insert cost, full roster ===");
    let bench = Bench::from_env();
    let items = workload(100_000);
    for name in ROSTER_NAMES {
        let m = bench.run(name, items.len() as u64, || {
            let mut counter = build_by_name(name, 7);
            sbitmap_bench::ingest(&mut counter, &items);
            counter.estimate()
        });
        println!("{}", m.row());
    }
}
