//! Per-item insert cost for every sketch in the workspace (paper §3:
//! S-bitmap's update cost is "similar to or lower than" the benchmarks).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use sbitmap_bench::{build_by_name, ingest, workload, ROSTER_NAMES};

fn bench_updates(c: &mut Criterion) {
    let items = workload(100_000);
    let mut group = c.benchmark_group("update_throughput");
    group.throughput(Throughput::Elements(items.len() as u64));
    group.sample_size(20);
    for name in ROSTER_NAMES {
        group.bench_function(name, |b| {
            b.iter_batched_ref(
                || build_by_name(name, 7),
                |counter| ingest(counter, &items),
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
