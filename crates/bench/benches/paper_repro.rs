//! Quick-mode regeneration of every table and figure in the paper, so
//! that `cargo bench --workspace` emits the full result series alongside
//! the criterion timings. Uses a reduced replicate count (100) unless
//! `SBITMAP_REPS` overrides it; the standalone experiment binaries (or
//! `--features`-free `cargo run -p sbitmap-experiments --bin repro --release -- --full`)
//! are the full-fidelity path documented in EXPERIMENTS.md.

fn main() {
    // Respect `cargo bench -- --list`-style probing by ignoring unknown
    // arguments; criterion isn't used here.
    if std::env::args().any(|a| a == "--list") {
        println!("paper_repro: bench");
        return;
    }
    let mut cfg = sbitmap_experiments::RunConfig::from_env();
    if std::env::var("SBITMAP_REPS").is_err() {
        cfg.replicates = 100;
    }
    let t0 = std::time::Instant::now();
    println!(
        "=== paper tables & figures (quick mode: {} replicates) ===\n",
        cfg.replicates
    );
    sbitmap_experiments::fig2::main_with(&cfg);
    sbitmap_experiments::table2::main_with(&cfg);
    sbitmap_experiments::fig3::main_with(&cfg);
    sbitmap_experiments::fig4::main_with(&cfg);
    sbitmap_experiments::table34::main_table3(&cfg);
    sbitmap_experiments::table34::main_table4(&cfg);
    sbitmap_experiments::fig5::main_with(&cfg);
    sbitmap_experiments::fig6::main_with(&cfg);
    sbitmap_experiments::fig7::main_with(&cfg);
    sbitmap_experiments::fig8::main_with(&cfg);
    sbitmap_experiments::ablations::main_with(&cfg);
    println!(
        "=== paper repro done in {:.1}s ===",
        t0.elapsed().as_secs_f64()
    );
}
