//! A sharded arena fleet: keys distributed across `std::thread` workers,
//! each owning a disjoint arena region — no atomics on the per-key path.
//!
//! The paper's §7.2 deployment updates hundreds of per-link sketches
//! from one interleaved stream. Keys are independent (each has its own
//! bitmap, fill and derived hash seed), so the fleet partitions them by
//! a fixed hash of the key into `shards` disjoint [`FleetArena`]s; a
//! batch is routed shard-by-shard and every shard ingests its partition
//! on its own thread through plain (non-atomic) loads and stores. This
//! is the opposite trade from [`crate::ConcurrentSBitmap`], which lets
//! many threads feed *one* sketch through atomic RMWs: here threads
//! never share a cache line of sketch state, so per-link ingest runs at
//! the single-writer speed of the arena and total throughput scales with
//! cores.
//!
//! Because the key→shard map is a pure function of the key alone, and a
//! key's sketch state depends only on its own stream and
//! [`crate::fleet::sketch_seed`], every per-key estimate is invariant in
//! the shard count — `ParallelFleet::new(.., 1)` and `::new(.., 8)` fed
//! the same pairs hold bit-identical per-key sketches, and both
//! checkpoint to exactly the bytes a [`crate::SketchFleet`] would
//! produce. The property tests in `tests/fleet_arena.rs` lock this in.

use std::sync::Arc;

use sbitmap_hash::{FromSeed, Hasher64, SplitMix64Hasher};

use crate::arena::FleetArena;
use crate::codec::{Checkpoint, CounterKind, PayloadReader, PayloadWriter};
use crate::counter::KeyedEstimates;
use crate::schedule::RateSchedule;
use crate::sketch::SBitmap;
use crate::SBitmapError;

/// An arena fleet sharded across worker threads.
///
/// ```
/// use sbitmap_core::ParallelFleet;
///
/// let mut fleet: ParallelFleet = ParallelFleet::new(100_000, 4_000, 7, 4).unwrap();
/// let pairs: Vec<(u64, u64)> = (0..8_000u64).map(|i| (i % 8, i / 8)).collect();
/// fleet.insert_batch(&pairs);
/// assert_eq!(fleet.len(), 8);
/// for (_key, estimate) in fleet.estimates() {
///     assert!((estimate / 1_000.0 - 1.0).abs() < 0.3);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ParallelFleet<H: Hasher64 + FromSeed = SplitMix64Hasher> {
    shards: Vec<FleetArena<H>>,
    /// Reused per-shard pair partitions for `insert_batch`.
    scratch: Vec<Vec<(u64, u64)>>,
}

impl<H: Hasher64 + FromSeed> ParallelFleet<H> {
    /// Create an empty sharded fleet for cardinalities in `[1, n_max]`
    /// with `m` bits per key, split across `shards` workers.
    ///
    /// # Errors
    ///
    /// Zero shards, or an invalid `(n_max, m)` (see
    /// [`crate::Dimensioning::from_memory`]).
    pub fn new(n_max: u64, m: usize, seed: u64, shards: usize) -> Result<Self, SBitmapError> {
        Self::with_schedule(Arc::new(RateSchedule::from_memory(n_max, m)?), seed, shards)
    }

    /// Create a sharded fleet over an existing shared schedule.
    ///
    /// # Errors
    ///
    /// Zero shards.
    pub fn with_schedule(
        schedule: Arc<RateSchedule>,
        seed: u64,
        shards: usize,
    ) -> Result<Self, SBitmapError> {
        if shards == 0 {
            return Err(SBitmapError::invalid("shards", "must be at least 1"));
        }
        Ok(Self {
            shards: (0..shards)
                .map(|_| FleetArena::with_schedule(schedule.clone(), seed))
                .collect(),
            scratch: vec![Vec::new(); shards],
        })
    }

    /// The shard owning `key` — a pure function of the key, so per-key
    /// state never depends on the shard count.
    #[inline]
    fn shard_of(&self, key: u64) -> usize {
        (sbitmap_hash::mix64(key) % self.shards.len() as u64) as usize
    }

    /// Insert `item` into the sketch for `key` (created if absent).
    /// Returns `true` if the update set a new bit.
    pub fn insert_u64(&mut self, key: u64, item: u64) -> bool {
        let shard = self.shard_of(key);
        self.shards[shard].insert_u64(key, item)
    }

    /// Batched per-key ingest; see [`FleetArena::insert_u64s`].
    pub fn insert_u64s(&mut self, key: u64, items: &[u64]) -> u64 {
        let shard = self.shard_of(key);
        self.shards[shard].insert_u64s(key, items)
    }

    /// Ingest a batch of `(key, item)` pairs, returning how many bits
    /// were newly set across the fleet.
    ///
    /// Pairs are partitioned by shard into reused scratch buffers
    /// (arrival order preserved within a shard, hence within a key),
    /// then every non-empty shard ingests its partition through the
    /// arena's radix router on its own scoped thread. With one shard the
    /// call degenerates to [`FleetArena::insert_batch`] inline.
    pub fn insert_batch(&mut self, pairs: &[(u64, u64)]) -> u64 {
        if pairs.is_empty() {
            return 0;
        }
        if self.shards.len() == 1 {
            return self.shards[0].insert_batch(pairs);
        }
        let n = self.shards.len() as u64;
        for buf in &mut self.scratch {
            buf.clear();
        }
        for &(key, item) in pairs {
            let shard = (sbitmap_hash::mix64(key) % n) as usize;
            self.scratch[shard].push((key, item));
        }
        let mut newly = 0u64;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(&self.scratch)
                .filter(|(_, part)| !part.is_empty())
                .map(|(arena, part)| scope.spawn(move || arena.insert_batch(part)))
                .collect();
            for handle in handles {
                newly += handle.join().expect("fleet shard worker panicked");
            }
        });
        newly
    }

    /// Estimate for one key; `None` if the key has never been inserted.
    pub fn estimate(&self, key: u64) -> Option<f64> {
        self.shards[self.shard_of(key)].estimate(key)
    }

    /// Fill counter for one key; `None` if the key has never been
    /// inserted.
    pub fn fill(&self, key: u64) -> Option<usize> {
        self.shards[self.shard_of(key)].fill(key)
    }

    /// Materialize one key's sketch as a standalone [`SBitmap`]; see
    /// [`FleetArena::export_sketch`].
    pub fn export_sketch(&self, key: u64) -> Option<SBitmap<H>> {
        self.shards[self.shard_of(key)].export_sketch(key)
    }

    /// Keys with a sketch, in ascending order across all shards.
    pub fn keys_sorted(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .shards
            .iter()
            .flat_map(FleetArena::keys_sorted)
            .collect();
        keys.sort_unstable();
        keys
    }

    /// All `(key, estimate)` pairs, in ascending key order across all
    /// shards.
    pub fn estimates(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.keys_sorted()
            .into_iter()
            .map(move |key| (key, self.estimate(key).expect("key listed")))
    }

    /// Number of tracked keys across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(FleetArena::len).sum()
    }

    /// `true` when no key has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(FleetArena::is_empty)
    }

    /// Keys whose sketches have saturated, ascending across all shards.
    pub fn saturated_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .shards
            .iter()
            .flat_map(FleetArena::saturated_keys)
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Total sketch payload across the fleet, in bits.
    pub fn memory_bits(&self) -> usize {
        self.shards.iter().map(FleetArena::memory_bits).sum()
    }

    /// Reset every sketch, keeping keys and allocations.
    pub fn reset_all(&mut self) {
        for shard in &mut self.shards {
            shard.reset_all();
        }
    }

    /// Drop all keys, keeping allocations.
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
    }

    /// The shared schedule.
    pub fn schedule(&self) -> &Arc<RateSchedule> {
        self.shards[0].schedule()
    }

    /// The fleet seed per-key hashers are derived from.
    pub fn seed(&self) -> u64 {
        self.shards[0].seed()
    }

    /// Number of shards (worker threads used by
    /// [`ParallelFleet::insert_batch`]).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Redistribute every key across a new shard count. Per-key state is
    /// moved verbatim (words and fill), so estimates are unchanged —
    /// sharding is an execution detail, not a statistical one.
    ///
    /// # Errors
    ///
    /// Zero shards.
    pub fn reshard(&mut self, shards: usize) -> Result<(), SBitmapError> {
        if shards == 0 {
            return Err(SBitmapError::invalid("shards", "must be at least 1"));
        }
        if shards == self.shards.len() {
            return Ok(());
        }
        let mut next = Self::with_schedule(self.schedule().clone(), self.seed(), shards)?;
        for shard in &self.shards {
            for key in shard.keys_sorted() {
                let (fill, words) = shard.slot_record(key).expect("key listed");
                let target_shard = next.shard_of(key);
                next.shards[target_shard]
                    .restore_slot(key, fill, words.to_vec())
                    .expect("moving a valid sketch cannot fail");
            }
        }
        *self = next;
        Ok(())
    }
}

impl<H: Hasher64 + FromSeed> KeyedEstimates for ParallelFleet<H> {
    fn keys_sorted(&self) -> Vec<u64> {
        ParallelFleet::keys_sorted(self)
    }

    fn estimate(&self, key: u64) -> Option<f64> {
        ParallelFleet::estimate(self, key)
    }
}

/// Sharded fleets serialize exactly like [`crate::SketchFleet`] and
/// [`FleetArena`] — the shard layout is an execution detail and is not
/// recorded. Restoring yields a single-shard fleet; call
/// [`ParallelFleet::reshard`] to fan back out.
impl<H: Hasher64 + FromSeed> Checkpoint for ParallelFleet<H> {
    const KIND: CounterKind = CounterKind::SketchFleet;

    fn write_payload(&self, out: &mut PayloadWriter) {
        // Merge all shards into the canonical sorted-by-key record list,
        // reading each record straight out of its shard's arena.
        let dims = self.schedule().dims();
        out.u64(dims.n_max());
        out.u64(dims.m() as u64);
        out.u32(self.schedule().split().sampling_bits());
        out.u64(self.seed());
        out.u64(self.len() as u64);
        for key in self.keys_sorted() {
            let (fill, words) = self.shards[self.shard_of(key)]
                .slot_record(key)
                .expect("key listed");
            out.u64(key);
            out.u64(fill as u64);
            out.words(words);
        }
    }

    fn read_payload(r: &mut PayloadReader<'_>) -> Result<Self, SBitmapError> {
        let arena = FleetArena::<H>::read_payload(r)?;
        let mut fleet = Self::with_schedule(arena.schedule().clone(), arena.seed(), 1)?;
        fleet.shards[0] = arena;
        Ok(fleet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs() -> Vec<(u64, u64)> {
        (0..24_000u64).map(|i| (i % 13, i / 13 % 1_700)).collect()
    }

    #[test]
    fn shard_count_is_invisible_in_estimates() {
        let mut single: ParallelFleet = ParallelFleet::new(100_000, 4_000, 9, 1).unwrap();
        let mut quad: ParallelFleet = ParallelFleet::new(100_000, 4_000, 9, 4).unwrap();
        let mut many: ParallelFleet = ParallelFleet::new(100_000, 4_000, 9, 32).unwrap();
        let p = pairs();
        let a = single.insert_batch(&p);
        let b = quad.insert_batch(&p);
        let c = many.insert_batch(&p);
        assert_eq!(a, b);
        assert_eq!(a, c);
        let se: Vec<_> = single.estimates().collect();
        let qe: Vec<_> = quad.estimates().collect();
        let me: Vec<_> = many.estimates().collect();
        assert_eq!(se, qe);
        assert_eq!(se, me);
        assert_eq!(single.checkpoint(), quad.checkpoint());
        assert_eq!(single.checkpoint(), many.checkpoint());
    }

    #[test]
    fn matches_the_arena_fleet_bit_for_bit() {
        let mut sharded: ParallelFleet = ParallelFleet::new(100_000, 4_000, 9, 3).unwrap();
        let mut arena: FleetArena = FleetArena::new(100_000, 4_000, 9).unwrap();
        let p = pairs();
        sharded.insert_batch(&p);
        arena.insert_batch(&p);
        assert_eq!(sharded.len(), arena.len());
        for key in arena.keys_sorted() {
            assert_eq!(sharded.fill(key), arena.fill(key), "key {key}");
            assert_eq!(
                sharded.export_sketch(key).unwrap().bitmap(),
                arena.export_sketch(key).unwrap().bitmap(),
                "key {key}"
            );
        }
        assert_eq!(sharded.checkpoint(), arena.checkpoint());
    }

    #[test]
    fn scalar_and_batched_agree() {
        let mut scalar: ParallelFleet = ParallelFleet::new(100_000, 4_000, 9, 4).unwrap();
        let mut batched: ParallelFleet = ParallelFleet::new(100_000, 4_000, 9, 4).unwrap();
        let p = pairs();
        for &(k, item) in &p {
            scalar.insert_u64(k, item);
        }
        batched.insert_batch(&p);
        assert_eq!(
            scalar.estimates().collect::<Vec<_>>(),
            batched.estimates().collect::<Vec<_>>()
        );
    }

    #[test]
    fn restore_and_reshard_round_trip() {
        let mut fleet: ParallelFleet = ParallelFleet::new(100_000, 4_000, 9, 4).unwrap();
        fleet.insert_batch(&pairs());
        let bytes = fleet.checkpoint();
        let mut restored: ParallelFleet = Checkpoint::restore(&bytes).unwrap();
        assert_eq!(restored.shard_count(), 1);
        restored.reshard(6).unwrap();
        assert_eq!(restored.shard_count(), 6);
        assert_eq!(
            restored.estimates().collect::<Vec<_>>(),
            fleet.estimates().collect::<Vec<_>>()
        );
        assert_eq!(
            restored.checkpoint(),
            bytes,
            "reshard must not change state"
        );
        // Restored fleets keep counting identically to the original.
        restored.insert_u64(3, 999_999_999);
        fleet.insert_u64(3, 999_999_999);
        assert_eq!(restored.estimate(3), fleet.estimate(3));
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(ParallelFleet::<SplitMix64Hasher>::new(100_000, 4_000, 9, 0).is_err());
        let mut ok: ParallelFleet = ParallelFleet::new(100_000, 4_000, 9, 2).unwrap();
        assert!(ok.reshard(0).is_err());
    }

    #[test]
    fn empty_batch_and_bookkeeping() {
        let mut fleet: ParallelFleet = ParallelFleet::new(100_000, 4_000, 9, 4).unwrap();
        assert_eq!(fleet.insert_batch(&[]), 0);
        assert!(fleet.is_empty());
        fleet.insert_u64(8, 1);
        assert_eq!(fleet.len(), 1);
        assert_eq!(fleet.memory_bits(), 4_000);
        fleet.reset_all();
        assert_eq!(fleet.estimate(8), Some(0.0));
        fleet.clear();
        assert!(fleet.is_empty());
    }

    #[test]
    fn saturation_aggregates_across_shards() {
        let mut fleet: ParallelFleet = ParallelFleet::new(1_000, 120, 1, 4).unwrap();
        for i in 0..10_000u64 {
            fleet.insert_u64(42, i);
            fleet.insert_u64(17, i);
        }
        fleet.insert_u64(7, 1);
        assert_eq!(fleet.saturated_keys(), vec![17, 42]);
    }
}
