//! Write-ahead journal for durable collectors: checksummed,
//! length-prefixed records of absorbed wire frames, grouped into
//! config-stamped segment files, plus the atomic snapshot write both
//! sides of the crash-safety story share.
//!
//! The daemon in `sbitmap-daemon` appends one record per absorbed frame
//! *before* acknowledging it, periodically writes a tag-10 ring
//! checkpoint as an atomic snapshot, and on restart replays the journal
//! tail on top of the newest snapshot. This module owns the byte
//! formats and the filesystem discipline; the replay policy (what a
//! record *means* for a ring) stays with the daemon. The complete
//! grammar is documented in `docs/recovery.md`.
//!
//! ## Record layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SBJR"
//! 4       8     source (LE u64) — the agent id the frame came from
//! 12      8     epoch  (LE u64) — the ring epoch the frame landed in
//! 20      4     payload length P (LE u32)
//! 24      P     payload — one complete SBMP frame (tag-9 full fleet
//!               checkpoint or tag-11 fleet-delta frame), checksum and
//!               all
//! 24+P    8     XXH64 of bytes [0, 24+P) with seed 0
//! ```
//!
//! The payload reuses the v2/v3 checkpoint codec verbatim, so a journal
//! record is *doubly* checksummed: the outer XXH64 detects torn or
//! bit-flipped records, and the payload's own frame checksum detects a
//! record whose outer checksum was recomputed over a corrupted payload
//! (a "resealed" record — skipped at replay when the inner frame fails
//! to decode).
//!
//! ## Segment layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SBJS"
//! 4       1     segment version (2)
//! 5       8     n_max          (LE u64) ┐
//! 13      8     m              (LE u64) │ the sketch configuration
//! 21      4     sampling bits  (LE u32) │ every record in the segment
//! 25      8     seed           (LE u64) │ was absorbed under
//! 33      8     window         (LE u64) ┘
//! 41      8     segment sequence number (LE u64)
//! 49      8     replication fencing term (LE u64)
//! 57      8     XXH64 of bytes [0, 57) with seed 0
//! 65      …     records, back to back
//! ```
//!
//! Version 2 added the fencing term (see `docs/replication.md`): a
//! restarted collector resumes at the highest term stamped on any
//! surviving segment, so a promoted standby cannot forget its promotion
//! across a crash while it has journal state.
//!
//! Segments are named `journal-<seq as %016x>.sbj` and rotate when a
//! snapshot is written: the snapshot covers every record in segments
//! `≤ seq`, so those files can be deleted — and because ring absorption
//! is an idempotent OR, a crash that leaves covered segments behind
//! merely replays no-ops on the next recovery.
//!
//! ## Tail discipline
//!
//! A crash mid-append leaves a torn final record; [`scan_segment_bytes`]
//! stops at the first record that is truncated or fails its outer
//! checksum and reports the discarded byte count. Nothing after an
//! invalid record can be trusted (the stream is length-delimited), so a
//! scan never resynchronizes past one.

use std::fs::{self, File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

use sbitmap_hash::xxh64;

/// Magic prefix of every journal record.
const RECORD_MAGIC: &[u8; 4] = b"SBJR";
/// Magic prefix of every segment file.
const SEGMENT_MAGIC: &[u8; 4] = b"SBJS";
/// Current segment header version (2 = fencing term added).
const SEGMENT_VERSION: u8 = 2;
/// Fixed record header length: magic + source + epoch + payload length.
const RECORD_HEADER_LEN: usize = 4 + 8 + 8 + 4;
/// Trailing XXH64 length (records and segment headers alike).
const CHECKSUM_LEN: usize = 8;
/// Fixed segment header length, checksum included.
pub const SEGMENT_HEADER_LEN: usize = 4 + 1 + 36 + 8 + 8 + CHECKSUM_LEN;
/// Largest record payload a scan will accept — matches the net layer's
/// frame bound, so a corrupted length field cannot demand an absurd
/// allocation.
pub const MAX_RECORD_PAYLOAD: usize = 1 << 26;
/// File name of the ring snapshot inside a journal data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.sbmp";
/// Extension of journal segment files.
const SEGMENT_EXT: &str = "sbj";

/// The sketch configuration a journal was written under — the same five
/// fields the net handshake echoes. Recovery refuses a journal whose
/// configuration differs from the collector's, because frames
/// dimensioned differently would be absorbed into garbage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// Per-key design maximum cardinality.
    pub n_max: u64,
    /// Bits per key per epoch.
    pub m: u64,
    /// Sampling-prefix bits of the dimensioned schedule.
    pub sampling_bits: u32,
    /// Fleet seed.
    pub seed: u64,
    /// Window span in epochs.
    pub window: u64,
}

/// One journal entry: the wire frame exactly as it was absorbed, plus
/// the `(source, epoch)` identity replay needs before decoding it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Agent id the frame arrived from (drives the absorb guard).
    pub source: u64,
    /// Ring epoch the frame was absorbed into.
    pub epoch: u64,
    /// The complete SBMP frame bytes (tag-9 full or tag-11 delta).
    pub payload: Vec<u8>,
}

/// Errors raised by journal encode/decode and filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// A filesystem operation failed.
    Io(String),
    /// A segment header or snapshot that cannot be parsed at all (bad
    /// magic, truncated header, checksum mismatch on the header).
    Corrupt(String),
    /// The journal was written under a different sketch configuration
    /// than the collector expects — replaying it would corrupt the ring,
    /// so recovery must refuse.
    ConfigMismatch {
        /// The configuration the collector runs with.
        expected: JournalConfig,
        /// The configuration stamped on the segment.
        found: JournalConfig,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(msg) => write!(f, "journal io: {msg}"),
            JournalError::Corrupt(msg) => write!(f, "corrupt journal: {msg}"),
            JournalError::ConfigMismatch { expected, found } => write!(
                f,
                "journal config mismatch: collector runs {expected:?}, journal was written \
                 under {found:?}"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

fn io_err(context: &str, e: &std::io::Error) -> JournalError {
    JournalError::Io(format!("{context}: {e}"))
}

// ---------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------

/// Encode one record: header, payload, trailing XXH64.
pub fn encode_record(rec: &JournalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + rec.payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(RECORD_MAGIC);
    out.extend_from_slice(&rec.source.to_le_bytes());
    out.extend_from_slice(&rec.epoch.to_le_bytes());
    out.extend_from_slice(
        &u32::try_from(rec.payload.len())
            .expect("payload < 4 GiB")
            .to_le_bytes(),
    );
    out.extend_from_slice(&rec.payload);
    let checksum = xxh64(&out, 0);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Try to decode one record at the front of `bytes`. Returns the record
/// and the bytes it consumed, or `None` when the front of `bytes` is not
/// a complete valid record (truncated, bad magic, absurd length, or
/// checksum mismatch) — the scan-stopping condition.
fn decode_record_front(bytes: &[u8]) -> Option<(JournalRecord, usize)> {
    if bytes.len() < RECORD_HEADER_LEN + CHECKSUM_LEN || &bytes[0..4] != RECORD_MAGIC {
        return None;
    }
    let source = u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
    let epoch = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes")) as usize;
    if len > MAX_RECORD_PAYLOAD {
        return None;
    }
    let total = RECORD_HEADER_LEN + len + CHECKSUM_LEN;
    if bytes.len() < total {
        return None;
    }
    let body = &bytes[..RECORD_HEADER_LEN + len];
    let expect = u64::from_le_bytes(
        bytes[RECORD_HEADER_LEN + len..total]
            .try_into()
            .expect("8 bytes"),
    );
    if xxh64(body, 0) != expect {
        return None;
    }
    Some((
        JournalRecord {
            source,
            epoch,
            payload: bytes[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len].to_vec(),
        },
        total,
    ))
}

/// Decode exactly one encoded record — the unit the replication stream
/// ships (a [`encode_record`] image with nothing after it).
///
/// # Errors
///
/// [`JournalError::Corrupt`] when the bytes are not a single complete
/// valid record (truncated, bad magic, checksum mismatch, or trailing
/// garbage).
pub fn decode_record(bytes: &[u8]) -> Result<JournalRecord, JournalError> {
    match decode_record_front(bytes) {
        Some((rec, used)) if used == bytes.len() => Ok(rec),
        _ => Err(JournalError::Corrupt(
            "invalid replication record image".into(),
        )),
    }
}

// ---------------------------------------------------------------------
// Segment codec
// ---------------------------------------------------------------------

/// Encode a segment header for `cfg` with sequence number `seq`,
/// stamped with the fencing `term` the collector held when the segment
/// was opened.
pub fn encode_segment_header(cfg: &JournalConfig, seq: u64, term: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEGMENT_HEADER_LEN);
    out.extend_from_slice(SEGMENT_MAGIC);
    out.push(SEGMENT_VERSION);
    out.extend_from_slice(&cfg.n_max.to_le_bytes());
    out.extend_from_slice(&cfg.m.to_le_bytes());
    out.extend_from_slice(&cfg.sampling_bits.to_le_bytes());
    out.extend_from_slice(&cfg.seed.to_le_bytes());
    out.extend_from_slice(&cfg.window.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&term.to_le_bytes());
    let checksum = xxh64(&out, 0);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decode and verify a segment header (the first
/// [`SEGMENT_HEADER_LEN`] bytes of a segment file).
///
/// # Errors
///
/// [`JournalError::Corrupt`] on truncation, bad magic, an unknown
/// version, or a header checksum mismatch.
pub fn decode_segment_header(bytes: &[u8]) -> Result<(JournalConfig, u64, u64), JournalError> {
    if bytes.len() < SEGMENT_HEADER_LEN {
        return Err(JournalError::Corrupt("segment header truncated".into()));
    }
    let header = &bytes[..SEGMENT_HEADER_LEN];
    let (body, checksum_bytes) = header.split_at(SEGMENT_HEADER_LEN - CHECKSUM_LEN);
    let expect = u64::from_le_bytes(checksum_bytes.try_into().expect("8 bytes"));
    if xxh64(body, 0) != expect {
        return Err(JournalError::Corrupt(
            "segment header checksum mismatch".into(),
        ));
    }
    if &body[0..4] != SEGMENT_MAGIC {
        return Err(JournalError::Corrupt("bad segment magic".into()));
    }
    if body[4] != SEGMENT_VERSION {
        return Err(JournalError::Corrupt(format!(
            "unsupported segment version {}",
            body[4]
        )));
    }
    let cfg = JournalConfig {
        n_max: u64::from_le_bytes(body[5..13].try_into().expect("8 bytes")),
        m: u64::from_le_bytes(body[13..21].try_into().expect("8 bytes")),
        sampling_bits: u32::from_le_bytes(body[21..25].try_into().expect("4 bytes")),
        seed: u64::from_le_bytes(body[25..33].try_into().expect("8 bytes")),
        window: u64::from_le_bytes(body[33..41].try_into().expect("8 bytes")),
    };
    let seq = u64::from_le_bytes(body[41..49].try_into().expect("8 bytes"));
    let term = u64::from_le_bytes(body[49..57].try_into().expect("8 bytes"));
    Ok((cfg, seq, term))
}

/// What scanning one segment produced: its identity plus every record
/// up to (not including) the first invalid one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentScan {
    /// The sequence number stamped in the header.
    pub seq: u64,
    /// The fencing term stamped in the header.
    pub term: u64,
    /// The sketch configuration stamped in the header.
    pub config: JournalConfig,
    /// Valid records in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes after the last valid record that were discarded — nonzero
    /// means a torn tail (crash mid-append) or a corrupted record; the
    /// scan cannot resynchronize past either.
    pub trailing_discarded: usize,
}

/// Scan a whole segment image: verify the header, then decode records
/// until the bytes run out or a record fails validation.
///
/// # Errors
///
/// [`JournalError::Corrupt`] when the *header* is invalid — a segment
/// whose identity cannot be established has no replayable prefix. Torn
/// or corrupt records are not errors; they end the scan and are
/// reported via [`SegmentScan::trailing_discarded`].
pub fn scan_segment_bytes(bytes: &[u8]) -> Result<SegmentScan, JournalError> {
    let (config, seq, term) = decode_segment_header(bytes)?;
    let mut rest = &bytes[SEGMENT_HEADER_LEN..];
    let mut records = Vec::new();
    while !rest.is_empty() {
        match decode_record_front(rest) {
            Some((rec, used)) => {
                records.push(rec);
                rest = &rest[used..];
            }
            None => break,
        }
    }
    Ok(SegmentScan {
        seq,
        term,
        config,
        records,
        trailing_discarded: rest.len(),
    })
}

/// Read and scan one segment file.
///
/// # Errors
///
/// [`JournalError::Io`] on read failure, [`JournalError::Corrupt`] on
/// an invalid header.
pub fn read_segment(path: &Path) -> Result<SegmentScan, JournalError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err(&format!("read {}", path.display()), &e))?;
    scan_segment_bytes(&bytes)
}

// ---------------------------------------------------------------------
// Directory layout
// ---------------------------------------------------------------------

/// The path of segment `seq` inside `dir`.
pub fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("journal-{seq:016x}.{SEGMENT_EXT}"))
}

/// List the segment files in `dir` as `(seq, path)` pairs in ascending
/// sequence order. Sequence numbers are parsed from file names; files
/// that do not match the `journal-<hex>.sbj` pattern are ignored.
///
/// # Errors
///
/// [`JournalError::Io`] when the directory cannot be read.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, JournalError> {
    let mut out = Vec::new();
    let entries =
        fs::read_dir(dir).map_err(|e| io_err(&format!("read dir {}", dir.display()), &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read dir entry", &e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("journal-")
            .and_then(|s| s.strip_suffix(&format!(".{SEGMENT_EXT}")))
        else {
            continue;
        };
        let Ok(seq) = u64::from_str_radix(stem, 16) else {
            continue;
        };
        out.push((seq, entry.path()));
    }
    out.sort_by_key(|&(seq, _)| seq);
    Ok(out)
}

/// The sequence number the next fresh segment in `dir` should use: one
/// past the highest existing segment, or 0 in an empty directory.
///
/// # Errors
///
/// [`JournalError::Io`] when the directory cannot be read.
pub fn next_segment_seq(dir: &Path) -> Result<u64, JournalError> {
    Ok(list_segments(dir)?
        .last()
        .map_or(0, |&(seq, _)| seq.saturating_add(1)))
}

/// Read the snapshot file from `dir`, if one exists. The returned bytes
/// are a complete self-checksummed SBMP frame; validation belongs to
/// the checkpoint codec that restores it. A leftover `*.tmp` from a
/// crash mid-snapshot is never read — only the atomically renamed name
/// counts.
///
/// # Errors
///
/// [`JournalError::Io`] on a read failure other than the file being
/// absent.
pub fn read_snapshot(dir: &Path) -> Result<Option<Vec<u8>>, JournalError> {
    let path = dir.join(SNAPSHOT_FILE);
    match fs::read(&path) {
        Ok(bytes) => Ok(Some(bytes)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(io_err(&format!("read {}", path.display()), &e)),
    }
}

/// Write `bytes` to `path` atomically: write to a sibling `.tmp` file,
/// fsync it, rename it over `path`, then fsync the parent directory so
/// the rename itself is durable. A reader never observes a partial
/// file — it sees either the old content or the new.
///
/// # Errors
///
/// Any underlying filesystem failure (the `.tmp` file may be left
/// behind; it is ignored by every reader and overwritten by the next
/// attempt).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), JournalError> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp).map_err(|e| io_err(&format!("create {}", tmp.display()), &e))?;
    f.write_all(bytes)
        .map_err(|e| io_err(&format!("write {}", tmp.display()), &e))?;
    f.sync_all()
        .map_err(|e| io_err(&format!("fsync {}", tmp.display()), &e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| {
        io_err(
            &format!("rename {} -> {}", tmp.display(), path.display()),
            &e,
        )
    })?;
    // Make the rename durable. Directory fsync is a Unix-ism; where the
    // open fails (or the platform has no such notion) the rename is
    // still atomic, just not power-loss durable — so errors here are
    // not fatal.
    if let Some(parent) = path.parent() {
        if let Ok(d) = File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// An open journal segment being appended to by a single writer (the
/// daemon's absorber thread).
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    seq: u64,
    term: u64,
    fsync: bool,
}

impl JournalWriter {
    /// Create segment `seq` in `dir` and write its header, stamped with
    /// the collector's current fencing `term`. Fails if the segment
    /// file already exists — sequence numbers are never reused.
    ///
    /// When `fsync` is true every append is fsynced before returning
    /// (power-loss durability); when false appends reach the OS page
    /// cache only, which still survives a process crash — the level the
    /// kill-and-recover harness proves.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on create or header-write failure.
    pub fn create(
        dir: &Path,
        cfg: &JournalConfig,
        seq: u64,
        term: u64,
        fsync: bool,
    ) -> Result<Self, JournalError> {
        let path = segment_path(dir, seq);
        let file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| io_err(&format!("create {}", path.display()), &e))?;
        let mut writer = Self {
            file,
            path,
            seq,
            term,
            fsync,
        };
        writer.append_bytes(&encode_segment_header(cfg, seq, term))?;
        Ok(writer)
    }

    /// The segment's sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The fencing term stamped in the segment header.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one encoded record.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on write (or fsync) failure.
    pub fn append(&mut self, rec: &JournalRecord) -> Result<(), JournalError> {
        self.append_bytes(&encode_record(rec))
    }

    /// Append raw bytes. Exists so the crash harness can write a
    /// deliberately torn prefix of a record; production code always
    /// goes through [`JournalWriter::append`].
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on write (or fsync) failure.
    pub fn append_bytes(&mut self, bytes: &[u8]) -> Result<(), JournalError> {
        self.file
            .write_all(bytes)
            .map_err(|e| io_err(&format!("append {}", self.path.display()), &e))?;
        if self.fsync {
            self.file
                .sync_data()
                .map_err(|e| io_err(&format!("fsync {}", self.path.display()), &e))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> JournalConfig {
        JournalConfig {
            n_max: 50_000,
            m: 2_000,
            sampling_bits: 4,
            seed: 7,
            window: 3,
        }
    }

    fn rec(source: u64, epoch: u64, fill: u8) -> JournalRecord {
        JournalRecord {
            source,
            epoch,
            payload: vec![fill; 16 + fill as usize],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sbj-{tag}-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn record_and_segment_round_trip() {
        let mut bytes = encode_segment_header(&cfg(), 3, 2);
        let records = vec![rec(1, 0, 4), rec(2, 0, 9), rec(1, 1, 2)];
        for r in &records {
            bytes.extend_from_slice(&encode_record(r));
        }
        let scan = scan_segment_bytes(&bytes).unwrap();
        assert_eq!(scan.seq, 3);
        assert_eq!(scan.term, 2);
        assert_eq!(scan.config, cfg());
        assert_eq!(scan.records, records);
        assert_eq!(scan.trailing_discarded, 0);
    }

    #[test]
    fn torn_tail_is_discarded_and_counted() {
        let mut bytes = encode_segment_header(&cfg(), 0, 1);
        bytes.extend_from_slice(&encode_record(&rec(1, 0, 4)));
        let torn = encode_record(&rec(2, 0, 9));
        let keep = torn.len() / 2;
        bytes.extend_from_slice(&torn[..keep]);
        let scan = scan_segment_bytes(&bytes).unwrap();
        assert_eq!(scan.records, vec![rec(1, 0, 4)]);
        assert_eq!(scan.trailing_discarded, keep);
    }

    #[test]
    fn bit_flip_stops_the_scan_before_the_flipped_record() {
        let mut bytes = encode_segment_header(&cfg(), 0, 1);
        bytes.extend_from_slice(&encode_record(&rec(1, 0, 4)));
        let start = bytes.len();
        bytes.extend_from_slice(&encode_record(&rec(2, 0, 9)));
        bytes.extend_from_slice(&encode_record(&rec(3, 1, 5)));
        bytes[start + RECORD_HEADER_LEN + 3] ^= 0x40; // flip a payload bit
        let scan = scan_segment_bytes(&bytes).unwrap();
        assert_eq!(scan.records, vec![rec(1, 0, 4)]);
        assert!(scan.trailing_discarded > 0);
    }

    #[test]
    fn hostile_length_field_is_bounded() {
        let mut bytes = encode_segment_header(&cfg(), 0, 1);
        let mut r = encode_record(&rec(1, 0, 4));
        r[20..24].copy_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&r);
        let scan = scan_segment_bytes(&bytes).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.trailing_discarded, r.len());
    }

    #[test]
    fn corrupt_header_is_a_typed_error() {
        let mut bytes = encode_segment_header(&cfg(), 0, 1);
        bytes[6] ^= 0x01;
        assert!(matches!(
            scan_segment_bytes(&bytes),
            Err(JournalError::Corrupt(_))
        ));
        assert!(matches!(
            decode_segment_header(&bytes[..10]),
            Err(JournalError::Corrupt(_))
        ));
    }

    #[test]
    fn writer_listing_and_rotation() {
        let dir = tmp_dir("rotate");
        assert_eq!(next_segment_seq(&dir).unwrap(), 0);
        let mut w = JournalWriter::create(&dir, &cfg(), 0, 1, false).unwrap();
        w.append(&rec(1, 0, 4)).unwrap();
        w.append(&rec(2, 0, 9)).unwrap();
        drop(w);
        let mut w = JournalWriter::create(&dir, &cfg(), 1, 3, true).unwrap();
        w.append(&rec(1, 1, 2)).unwrap();
        drop(w);
        let segments = list_segments(&dir).unwrap();
        assert_eq!(
            segments.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(next_segment_seq(&dir).unwrap(), 2);
        let scan0 = read_segment(&segments[0].1).unwrap();
        assert_eq!(scan0.records.len(), 2);
        let scan1 = read_segment(&segments[1].1).unwrap();
        assert_eq!(scan1.records, vec![rec(1, 1, 2)]);
        assert_eq!(scan0.term, 1);
        assert_eq!(scan1.term, 3);
        // Sequence numbers are never reused.
        assert!(JournalWriter::create(&dir, &cfg(), 1, 3, false).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_replaces_and_ignores_tmp() {
        let dir = tmp_dir("atomic");
        let path = dir.join(SNAPSHOT_FILE);
        assert_eq!(read_snapshot(&dir).unwrap(), None);
        write_atomic(&path, b"first").unwrap();
        assert_eq!(read_snapshot(&dir).unwrap().unwrap(), b"first");
        write_atomic(&path, b"second").unwrap();
        assert_eq!(read_snapshot(&dir).unwrap().unwrap(), b"second");
        // A stale tmp from a crashed writer is invisible to readers.
        fs::write(path.with_extension("tmp"), b"torn").unwrap();
        assert_eq!(read_snapshot(&dir).unwrap().unwrap(), b"second");
        fs::remove_dir_all(&dir).unwrap();
    }
}
