//! Exact fast simulation of the S-bitmap fill process via Lemma 1.
//!
//! Lemma 1 shows the fill times are a sum of independent geometric
//! variables: `T_k − T_{k−1} ~ Geom(q_k)`. The observed fill after `n`
//! distinct items is therefore `B = max{b : T_b ≤ n}`, which can be
//! sampled in O(b_max) time instead of O(n) sketch updates — a large
//! speedup for the replicated accuracy experiments where `n` reaches
//! `2^20` (and where the stream content is irrelevant, only its distinct
//! count matters).
//!
//! The simulation uses the *achieved* (quantized) rates from the
//! [`RateSchedule`], so it reproduces the distribution of the real sketch
//! under the uniform-hashing idealization; the `ablation_fastsim`
//! experiment and the tests below check the agreement empirically.

use crate::estimator;
use crate::schedule::RateSchedule;
use sbitmap_hash::rng::Rng;

/// Sample the fill level `B` after `n` distinct items.
pub fn simulate_fill<R: Rng>(schedule: &RateSchedule, n: u64, rng: &mut R) -> usize {
    let b_max = schedule.dims().b_max();
    let mut arrivals: u64 = 0;
    for k in 1..=b_max {
        let q = schedule.q(k);
        debug_assert!(q > 0.0 && q <= 1.0, "q_{k} = {q} out of range");
        arrivals = arrivals.saturating_add(rng.geometric(q));
        if arrivals > n {
            return k - 1;
        }
    }
    // All b_max bits set within the design range: saturated.
    b_max
}

/// Sample one S-bitmap estimate `n̂ = t_B` for a stream of `n` distinct
/// items.
pub fn simulate_estimate<R: Rng>(schedule: &RateSchedule, n: u64, rng: &mut R) -> f64 {
    let b = simulate_fill(schedule, n, rng);
    estimator::estimate_from_fill(schedule.dims(), b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theory;
    use sbitmap_hash::rng::Xoshiro256StarStar;

    #[test]
    fn zero_items_zero_fill() {
        let s = RateSchedule::from_memory(1 << 20, 4000).unwrap();
        let mut rng = Xoshiro256StarStar::new(1);
        assert_eq!(simulate_fill(&s, 0, &mut rng), 0);
        assert_eq!(simulate_estimate(&s, 0, &mut rng), 0.0);
    }

    #[test]
    fn fill_is_monotone_in_n_on_average() {
        let s = RateSchedule::from_memory(1 << 20, 4000).unwrap();
        let mut rng = Xoshiro256StarStar::new(2);
        let mean_fill = |n: u64, rng: &mut Xoshiro256StarStar| -> f64 {
            (0..200)
                .map(|_| simulate_fill(&s, n, rng) as f64)
                .sum::<f64>()
                / 200.0
        };
        let f1 = mean_fill(1_000, &mut rng);
        let f2 = mean_fill(10_000, &mut rng);
        let f3 = mean_fill(100_000, &mut rng);
        assert!(f1 < f2 && f2 < f3, "{f1} {f2} {f3}");
    }

    #[test]
    fn mean_fill_matches_theory() {
        let s = RateSchedule::from_memory(1 << 20, 4000).unwrap();
        let mut rng = Xoshiro256StarStar::new(3);
        let n = 50_000u64;
        let reps = 2_000;
        let mean: f64 = (0..reps)
            .map(|_| simulate_fill(&s, n, &mut rng) as f64)
            .sum::<f64>()
            / reps as f64;
        let expect = theory::expected_fill(s.dims(), n);
        assert!(
            (mean / expect - 1.0).abs() < 0.01,
            "mean fill {mean}, expected {expect}"
        );
    }

    #[test]
    fn estimator_is_unbiased_in_simulation() {
        // Monte-Carlo check of Theorem 3 (E n̂ = n) via the fast path.
        let s = RateSchedule::from_memory(1 << 20, 1800).unwrap();
        let mut rng = Xoshiro256StarStar::new(4);
        let n = 20_000u64;
        let reps = 5_000;
        let mean: f64 = (0..reps)
            .map(|_| simulate_estimate(&s, n, &mut rng))
            .sum::<f64>()
            / reps as f64;
        let eps = s.dims().epsilon();
        // Standard error of the mean ≈ eps·n/sqrt(reps).
        let tol = 4.0 * eps * n as f64 / (reps as f64).sqrt();
        assert!(
            (mean - n as f64).abs() < tol,
            "mean estimate {mean} vs n {n} (tol {tol})"
        );
    }

    #[test]
    fn rrmse_matches_theory() {
        let s = RateSchedule::from_memory(1 << 20, 4000).unwrap();
        let eps = s.dims().epsilon();
        let mut rng = Xoshiro256StarStar::new(5);
        let n = 65_536u64;
        let reps = 4_000;
        let mse: f64 = (0..reps)
            .map(|_| (simulate_estimate(&s, n, &mut rng) / n as f64 - 1.0).powi(2))
            .sum::<f64>()
            / reps as f64;
        let rrmse = mse.sqrt();
        assert!(
            (rrmse / eps - 1.0).abs() < 0.10,
            "empirical rrmse {rrmse} vs theory {eps}"
        );
    }

    #[test]
    fn saturates_at_b_max_for_huge_n() {
        let s = RateSchedule::from_memory(10_000, 1200).unwrap();
        let mut rng = Xoshiro256StarStar::new(6);
        let b = simulate_fill(&s, 10_000_000, &mut rng);
        assert_eq!(b, s.dims().b_max());
    }
}
