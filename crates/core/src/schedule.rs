//! The sequential sampling-rate schedule of Theorem 2, plus the
//! quantized thresholds used by the sketch's hot path.
//!
//! With `r = 1 − 2/(C+1)`:
//!
//! ```text
//! q_k = (1 + 1/C) · r^k                    (success rate of step k)
//! p_k = q_k · m / (m + 1 − k)              (sampling rate of step k)
//! t_b = Σ_{k≤b} 1/q_k = (C/2)(r^{−b} − 1)  (expected stream position)
//! ```
//!
//! Rates are clamped to `p_{b_max}` for `k > b_max = ⌊m − C/2⌋`, which
//! restores the monotonicity Lemma 1 requires (the paper's remark after
//! eq. (7)).
//!
//! The schedule is immutable and shareable: a fleet of sketches with the
//! same `(N, m, d)` configuration (e.g. one per router link) can hold an
//! `Arc<RateSchedule>` and pay the precomputed tables once — `m × 8`
//! bytes of sampling thresholds plus `(m + 1) × 8` bytes of estimator
//! curve (`t_b`, see [`RateSchedule::estimate_at`]), ≈ `2m × 8` bytes
//! total.

use crate::dimensioning::Dimensioning;
use crate::SBitmapError;
use sbitmap_hash::HashSplit;

/// Precomputed sampling schedule: the `d`-bit integer thresholds
/// `⌈p_k · 2^d⌉` for `k = 1..=m`, plus the constants needed by the
/// estimator and the simulator.
#[derive(Debug, Clone)]
pub struct RateSchedule {
    dims: Dimensioning,
    split: HashSplit,
    /// `thresholds[k-1] = ⌈p_k · 2^d⌉` (clamped beyond `b_max`).
    thresholds: Box<[u64]>,
    /// `estimates[b] = t_{min(b, b_max)}` for `b = 0..=m` — the entire
    /// estimator curve, precomputed so a query is one table load
    /// instead of an `ln_1p` + `exp` pair. Values are exactly
    /// [`crate::estimator::estimate_from_fill`] at every fill (same
    /// f64 computation, evaluated once), so estimates cannot depend on
    /// which path produced them.
    estimates: Box<[f64]>,
}

impl RateSchedule {
    /// Default width of the sampling word (the paper's `d`). The paper
    /// suggests `d = 30` is ample for `N` in the millions; we default to
    /// the full 32 bits our hash split provides.
    pub const DEFAULT_SAMPLING_BITS: u32 = 32;

    /// Build the schedule for a solved [`Dimensioning`] with `d` sampling
    /// bits.
    ///
    /// # Errors
    ///
    /// Propagates invalid `(m, d)` combinations from [`HashSplit`].
    pub fn new(dims: Dimensioning, sampling_bits: u32) -> Result<Self, SBitmapError> {
        let split = HashSplit::new(dims.m(), sampling_bits)
            .map_err(|e| SBitmapError::invalid("sampling_bits", e))?;
        let m = dims.m();
        let b_max = dims.b_max();
        let mut thresholds = Vec::with_capacity(m);
        let mut clamp = u64::MAX;
        for k in 1..=m {
            let k_eff = k.min(b_max);
            let p = raw_rate(&dims, k_eff);
            let t = if k <= b_max {
                split.threshold(p)
            } else {
                clamp
            };
            if k == b_max {
                clamp = t;
            }
            // Enforce monotone non-increasing thresholds even under
            // quantization, so the duplicate-filtering argument holds
            // bit-exactly.
            let t = t.min(*thresholds.last().unwrap_or(&u64::MAX));
            thresholds.push(t);
        }
        let estimates: Vec<f64> = (0..=m)
            .map(|b| crate::theory::t(&dims, b.min(b_max)))
            .collect();
        Ok(Self {
            dims,
            split,
            thresholds: thresholds.into_boxed_slice(),
            estimates: estimates.into_boxed_slice(),
        })
    }

    /// Convenience: schedule from `(n_max, m)` with default `d`.
    pub fn from_memory(n_max: u64, m: usize) -> Result<Self, SBitmapError> {
        Self::new(
            Dimensioning::from_memory(n_max, m)?,
            Self::DEFAULT_SAMPLING_BITS,
        )
    }

    /// Convenience: schedule from `(n_max, epsilon)` with default `d`.
    pub fn from_error(n_max: u64, epsilon: f64) -> Result<Self, SBitmapError> {
        Self::new(
            Dimensioning::from_error(n_max, epsilon)?,
            Self::DEFAULT_SAMPLING_BITS,
        )
    }

    /// The dimensioning this schedule was built from.
    #[inline]
    pub fn dims(&self) -> &Dimensioning {
        &self.dims
    }

    /// The hash splitter (bucket count `m`, sampling width `d`).
    #[inline]
    pub fn split(&self) -> &HashSplit {
        &self.split
    }

    /// Quantized threshold for step `k` (`1 ≤ k ≤ m`): the update fires
    /// when the `d`-bit sampling word is below this.
    #[inline]
    pub fn threshold(&self, k: usize) -> u64 {
        self.thresholds[k - 1]
    }

    /// The estimator value `t_{min(fill, b_max)}` from the precomputed
    /// curve: one bounds check and one load on the query hot path,
    /// bit-identical to [`crate::estimator::estimate_from_fill`] on this
    /// schedule's dimensioning (locked by this module's tests). Fills
    /// beyond `m` (impossible for a well-formed sketch) clamp to the
    /// truncated maximum.
    #[inline]
    pub fn estimate_at(&self, fill: usize) -> f64 {
        self.estimates[fill.min(self.estimates.len() - 1)]
    }

    /// The *achieved* sampling rate at step `k` after quantization,
    /// `⌈p_k·2^d⌉ / 2^d`.
    #[inline]
    pub fn p(&self, k: usize) -> f64 {
        self.thresholds[k - 1] as f64 / self.split.sampling_range() as f64
    }

    /// The success probability `q_k = (1 − (k−1)/m)·p_k` of the fill
    /// process at step `k`, using the achieved (quantized) `p_k`.
    #[inline]
    pub fn q(&self, k: usize) -> f64 {
        (1.0 - (k as f64 - 1.0) / self.dims.m() as f64) * self.p(k)
    }

    /// Exact (unquantized) `p_k` from Theorem 2, clamped at `b_max`.
    #[inline]
    pub fn p_exact(&self, k: usize) -> f64 {
        raw_rate(&self.dims, k.min(self.dims.b_max()))
    }

    /// Number of schedule steps (= `m`).
    #[inline]
    pub fn len(&self) -> usize {
        self.thresholds.len()
    }

    /// `true` when the schedule is empty (never: `m ≥ 1`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.thresholds.is_empty()
    }
}

/// Theorem 2's `p_k = m/(m+1−k) · (1 + 1/C) · r^k`, un-clamped, capped
/// at 1.
fn raw_rate(dims: &Dimensioning, k: usize) -> f64 {
    let m = dims.m() as f64;
    let c = dims.c();
    let r = dims.r();
    let p = m / (m + 1.0 - k as f64) * (1.0 + 1.0 / c) * r.powi(k as i32);
    p.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> RateSchedule {
        RateSchedule::from_memory(1 << 20, 4000).unwrap()
    }

    #[test]
    fn estimate_table_matches_the_direct_estimator_bit_for_bit() {
        let s = sched();
        for fill in 0..=s.len() {
            assert_eq!(
                s.estimate_at(fill).to_bits(),
                crate::estimator::estimate_from_fill(s.dims(), fill).to_bits(),
                "fill {fill}"
            );
        }
        // Out-of-range fills clamp to the truncated maximum.
        assert_eq!(s.estimate_at(s.len() + 100), s.estimate_at(s.len()));
        assert_eq!(s.estimate_at(0), 0.0);
    }

    #[test]
    fn thresholds_are_monotone_non_increasing() {
        let s = sched();
        for k in 2..=s.len() {
            assert!(
                s.threshold(k) <= s.threshold(k - 1),
                "threshold rose at k={k}"
            );
        }
    }

    #[test]
    fn p1_below_one_and_positive_everywhere() {
        let s = sched();
        assert!(s.p(1) < 1.0);
        // p_1 = (C−1)/C.
        let c = s.dims().c();
        assert!((s.p_exact(1) - (c - 1.0) / c).abs() < 1e-9);
        for k in 1..=s.len() {
            assert!(s.p(k) > 0.0, "p_{k} quantized to zero");
        }
    }

    #[test]
    fn rates_strictly_decreasing_up_to_b_max() {
        let s = sched();
        let b_max = s.dims().b_max();
        for k in 2..=b_max {
            assert!(
                s.p_exact(k) < s.p_exact(k - 1),
                "p not strictly decreasing at k={k}"
            );
        }
    }

    #[test]
    fn rates_clamped_beyond_b_max() {
        let s = sched();
        let b_max = s.dims().b_max();
        let clamp = s.threshold(b_max);
        for k in b_max..=s.len() {
            assert_eq!(s.threshold(k), clamp);
        }
    }

    #[test]
    fn quantization_error_is_negligible_at_32_bits() {
        let s = sched();
        for k in (1..=s.dims().b_max()).step_by(97) {
            let exact = s.p_exact(k);
            let achieved = s.p(k);
            assert!(
                (achieved - exact).abs() <= 1.0 / (1u64 << 32) as f64 + 1e-15,
                "k={k}: quantized {achieved} vs exact {exact}"
            );
        }
    }

    #[test]
    fn q_includes_occupancy_factor() {
        let s = sched();
        let k = 100;
        let expect = (1.0 - 99.0 / s.dims().m() as f64) * s.p(k);
        assert!((s.q(k) - expect).abs() < 1e-15);
    }

    #[test]
    fn coarse_sampling_bits_still_monotone() {
        // d = 8 quantizes hard; monotonicity must survive.
        let dims = Dimensioning::from_memory(10_000, 1200).unwrap();
        let s = RateSchedule::new(dims, 8).unwrap();
        for k in 2..=s.len() {
            assert!(s.threshold(k) <= s.threshold(k - 1));
        }
        assert!(s.threshold(s.len()) >= 1, "tail rate must stay positive");
    }

    #[test]
    fn paper_d30_configuration_builds() {
        let dims = Dimensioning::from_memory(1 << 20, 4000).unwrap();
        let s = RateSchedule::new(dims, 30).unwrap();
        assert_eq!(s.split().sampling_bits(), 30);
    }

    #[test]
    fn invalid_sampling_bits_rejected() {
        let dims = Dimensioning::from_memory(1 << 20, 4000).unwrap();
        assert!(RateSchedule::new(dims, 0).is_err());
        assert!(RateSchedule::new(dims, 33).is_err());
    }

    #[test]
    fn schedule_len_is_m() {
        let s = sched();
        assert_eq!(s.len(), 4000);
        assert!(!s.is_empty());
    }
}
