//! The S-bitmap sketch: Algorithm 2 of the paper.

use std::sync::Arc;

use sbitmap_bitvec::Bitmap;
use sbitmap_hash::{FromSeed, Hasher64, SplitMix64Hasher};

use crate::counter::{BatchedCounter, DistinctCounter};
use crate::dimensioning::Dimensioning;
use crate::schedule::RateSchedule;
use crate::SBitmapError;

/// Stack-buffer size for the batched ingest paths: hashes for one chunk
/// live in a 2 KiB stack array, so batching allocates nothing and the
/// hash buffer stays L1-resident.
pub(crate) const BATCH_CHUNK: usize = 256;

/// The branchless batched probe kernel shared by [`SBitmap::insert_hashes`]
/// and the arena fleet's per-slot ingest.
///
/// Semantically identical to running [`SBitmap::insert_hash`] per element
/// — same `(words, fill)` state afterwards, bit for bit — but with the
/// data-dependent branches compiled out: whether a probed bucket is
/// occupied and whether the sampling word clears the threshold are both
/// coin flips on real streams, so the branchy loop pays a pipeline flush
/// every few items. Here the word update is masked arithmetic
/// (`word | (mask & -take)`), the fill advances by `take as usize`, and
/// the only branch left is the loop itself; measured on the §7.2 fleet
/// workload this is ~1.6x the branchy loop. The bitmap word for hash
/// `i + 8` is software-prefetched while hash `i` is probed, so bitmap
/// cache misses overlap with useful work once the working set outgrows
/// L1 (fleets, cold sketches).
///
/// Caller contract: `words` spans exactly the schedule's `m` bits (the
/// split maps buckets into `0..m`, so derived masks never touch bits
/// beyond `m`), and `*fill` is the popcount of `words`.
pub(crate) fn probe_hashes(
    schedule: &RateSchedule,
    words: &mut [u64],
    fill: &mut usize,
    hashes: &[u64],
) -> u64 {
    /// Probe-ahead distance: far enough to cover an L2 hit, close
    /// enough that the prefetched line is still resident when probed.
    const LOOKAHEAD: usize = 8;
    let split = *schedule.split();
    let top = schedule.len() - 1;
    let mut f = *fill;
    let mut newly = 0u64;
    for (i, &hash) in hashes.iter().enumerate() {
        if let Some(&ahead) = hashes.get(i + LOOKAHEAD) {
            sbitmap_bitvec::prefetch_word(words, split.split(ahead).0 >> 6);
        }
        let (bucket, u) = split.split(hash);
        let wi = bucket >> 6;
        let mask = 1u64 << (bucket & 63);
        let word = words[wi];
        let empty = word & mask == 0;
        // `f` can only reach `m` when every bucket is occupied, in which
        // case `empty` is false and the (clamped) threshold is dead.
        let threshold = schedule.threshold(f.min(top) + 1);
        let take = empty & (u < threshold);
        words[wi] = word | (mask & (take as u64).wrapping_neg());
        f += take as usize;
        newly += u64::from(take);
    }
    *fill = f;
    newly
}

/// The self-learning bitmap.
///
/// State is exactly the paper's: an `m`-bit bitmap `V` plus the fill
/// counter `L` (which is redundant — it equals `V`'s popcount — but keeps
/// the update O(1)). The rate schedule and hasher are configuration, not
/// sketch state, and can be shared across instances via
/// [`SBitmap::with_shared_schedule`].
///
/// The update path per item is: one 64-bit hash, one bitmap probe, and —
/// only when the probed bucket is empty — one integer threshold compare.
/// This matches the paper's cost argument (§3): the sampling rate is
/// looked up, not recomputed, and changes only when a bit is set.
///
/// **Not mergeable.** Two S-bitmaps over different substreams cannot be
/// combined into the sketch of the union: whether an item was sampled
/// depends on the sketch-local fill level at its arrival time. Use a
/// mergeable sketch (e.g. HyperLogLog from `sbitmap-baselines`) if you
/// need distributed unions; the price is the paper's Table 2 memory gap.
///
/// ```
/// use sbitmap_core::{DistinctCounter, SBitmap};
///
/// // 8000 bits for cardinalities up to 1.5M — the paper's §7.2 sizing.
/// let mut sketch = SBitmap::with_memory(1_500_000, 8_000, 42).unwrap();
/// for flow in 0..40_000u64 {
///     sketch.insert_u64(flow);
///     sketch.insert_u64(flow); // duplicates never advance the sketch
/// }
/// assert!((sketch.estimate() / 40_000.0 - 1.0).abs() < 0.1);
/// assert_eq!(sketch.memory_bits(), 8_000);
/// ```
#[derive(Debug, Clone)]
pub struct SBitmap<H: Hasher64 = SplitMix64Hasher> {
    bitmap: Bitmap,
    fill: usize,
    schedule: Arc<RateSchedule>,
    hasher: H,
}

impl SBitmap {
    /// Build a sketch for cardinalities in `[1, n_max]` using `m` bits of
    /// bitmap, hashing with the default seeded hasher.
    ///
    /// # Errors
    ///
    /// See [`Dimensioning::from_memory`].
    pub fn with_memory(n_max: u64, m: usize, seed: u64) -> Result<Self, SBitmapError> {
        Self::with_memory_and_hasher(n_max, m, seed)
    }

    /// Build a sketch targeting RRMSE `epsilon` over `[1, n_max]` with the
    /// default seeded hasher; the bitmap size is chosen by the dimensioning
    /// rule (eq. (7)).
    ///
    /// # Errors
    ///
    /// See [`Dimensioning::from_error`].
    pub fn with_error(n_max: u64, epsilon: f64, seed: u64) -> Result<Self, SBitmapError> {
        Self::with_error_and_hasher(n_max, epsilon, seed)
    }
}

impl<H: Hasher64 + FromSeed> SBitmap<H> {
    /// [`SBitmap::with_memory`] with a caller-chosen hash family.
    ///
    /// # Errors
    ///
    /// See [`Dimensioning::from_memory`].
    pub fn with_memory_and_hasher(n_max: u64, m: usize, seed: u64) -> Result<Self, SBitmapError> {
        let schedule = Arc::new(RateSchedule::from_memory(n_max, m)?);
        Ok(Self::with_shared_schedule(schedule, H::from_seed(seed)))
    }

    /// [`SBitmap::with_error`] with a caller-chosen hash family.
    ///
    /// # Errors
    ///
    /// See [`Dimensioning::from_error`].
    pub fn with_error_and_hasher(
        n_max: u64,
        epsilon: f64,
        seed: u64,
    ) -> Result<Self, SBitmapError> {
        let schedule = Arc::new(RateSchedule::from_error(n_max, epsilon)?);
        Ok(Self::with_shared_schedule(schedule, H::from_seed(seed)))
    }
}

impl<H: Hasher64> SBitmap<H> {
    /// Build a sketch over a shared schedule. A monitoring deployment with
    /// thousands of per-link sketches of identical configuration should
    /// build one [`RateSchedule`] and clone the `Arc`.
    pub fn with_shared_schedule(schedule: Arc<RateSchedule>, hasher: H) -> Self {
        Self {
            bitmap: Bitmap::new(schedule.dims().m()),
            fill: 0,
            schedule,
            hasher,
        }
    }

    /// Feed a pre-hashed item. Returns `true` if the update set a new bit
    /// (the event `I_t = 1` of the paper's Markov chain).
    ///
    /// Exposed so callers that already hash their keys (or replay hash
    /// logs) can skip the internal hasher; [`DistinctCounter::insert_u64`]
    /// and [`DistinctCounter::insert_bytes`] are the normal entry points.
    #[inline]
    pub fn insert_hash(&mut self, hash: u64) -> bool {
        let (bucket, u) = self.schedule.split().split(hash);
        // `split` maps into `0..m` structurally, so the hot path takes
        // the unchecked (debug_assert-only) bitmap accessors.
        if self.bitmap.get_unchecked(bucket) {
            return false; // case 1 of Fig. 1: occupied, skip
        }
        // Bucket empty: sample with rate p_{L+1} (case 2 of Fig. 1).
        debug_assert!(self.fill < self.schedule.len());
        if u < self.schedule.threshold(self.fill + 1) {
            self.bitmap.set_unchecked(bucket);
            self.fill += 1;
            true
        } else {
            false
        }
    }

    /// Feed a slice of pre-hashed items, returning how many bits this
    /// call newly set.
    ///
    /// Equivalent to calling [`SBitmap::insert_hash`] on each element in
    /// order — the resulting `(bitmap, fill)` state is bit-identical —
    /// but routed through the branchless, prefetch-pipelined
    /// `probe_hashes` kernel: no data-dependent branches, and the
    /// bitmap word for hash `i + k` is software-prefetched while hash
    /// `i` is probed, so bitmap cache misses overlap with useful work
    /// once `m` outgrows the caches (fleets of large sketches, cold
    /// working sets).
    pub fn insert_hashes(&mut self, hashes: &[u64]) -> u64 {
        probe_hashes(
            &self.schedule,
            self.bitmap.words_mut(),
            &mut self.fill,
            hashes,
        )
    }

    /// Batched [`DistinctCounter::insert_u64`]: hash a whole slice
    /// through [`Hasher64::hash_u64_batch`] (one tight, pipelineable
    /// loop), then ingest via [`SBitmap::insert_hashes`]. State after the
    /// call is bit-identical to inserting the items one at a time in
    /// order. Returns how many bits were newly set.
    pub fn insert_u64s(&mut self, items: &[u64]) -> u64 {
        let mut buf = [0u64; BATCH_CHUNK];
        let mut newly = 0u64;
        for chunk in items.chunks(BATCH_CHUNK) {
            let out = &mut buf[..chunk.len()];
            self.hasher.hash_u64_batch(chunk, out);
            newly += self.insert_hashes(out);
        }
        newly
    }

    /// Batched [`DistinctCounter::insert_bytes`]; see
    /// [`SBitmap::insert_u64s`]. Returns how many bits were newly set.
    pub fn insert_bytes_batch(&mut self, items: &[&[u8]]) -> u64 {
        let mut buf = [0u64; BATCH_CHUNK];
        let mut newly = 0u64;
        for chunk in items.chunks(BATCH_CHUNK) {
            let out = &mut buf[..chunk.len()];
            self.hasher.hash_bytes_batch(chunk, out);
            newly += self.insert_hashes(out);
        }
        newly
    }

    /// Current number of set bits (the paper's `L`).
    #[inline]
    pub fn fill(&self) -> usize {
        self.fill
    }

    /// `true` once the fill has reached the truncation point `b_max`:
    /// estimates are pinned at ≈ `n_max` and the configured error
    /// guarantee no longer extends to larger cardinalities.
    #[inline]
    pub fn is_saturated(&self) -> bool {
        self.fill >= self.schedule.dims().b_max()
    }

    /// The schedule this sketch runs on.
    #[inline]
    pub fn schedule(&self) -> &RateSchedule {
        &self.schedule
    }

    /// The dimensioning (`N`, `m`, `C`) this sketch was built with.
    #[inline]
    pub fn dims(&self) -> &Dimensioning {
        self.schedule.dims()
    }

    /// Theoretical RRMSE of this sketch's estimates, `(C−1)^{−1/2}`.
    #[inline]
    pub fn theoretical_rrmse(&self) -> f64 {
        self.schedule.dims().epsilon()
    }

    /// Estimate with a two-sided confidence interval (normal
    /// approximation on the scale-invariant relative error; see
    /// [`crate::theory::confidence_interval`]).
    ///
    /// ```
    /// use sbitmap_core::{DistinctCounter, SBitmap};
    /// let mut s = SBitmap::with_memory(1 << 20, 4000, 1).unwrap();
    /// for i in 0..10_000u64 { s.insert_u64(i); }
    /// let est = s.estimate_with_ci(0.95);
    /// assert!(est.lo <= est.value && est.value <= est.hi);
    /// ```
    pub fn estimate_with_ci(&self, confidence: f64) -> crate::theory::Estimate {
        crate::theory::confidence_interval(
            self.schedule.dims(),
            self.schedule.estimate_at(self.fill),
            confidence,
        )
    }

    /// Replace the sketch state wholesale (binary-codec restore path).
    /// The caller guarantees `fill == bitmap.count_ones()` and that the
    /// bitmap length matches the schedule's `m`.
    pub(crate) fn restore_state(&mut self, bitmap: Bitmap, fill: usize) {
        debug_assert_eq!(bitmap.len(), self.schedule.dims().m());
        debug_assert_eq!(bitmap.count_ones(), fill);
        self.bitmap = bitmap;
        self.fill = fill;
    }

    /// Read-only view of the bitmap (diagnostics, tests).
    #[inline]
    pub fn bitmap(&self) -> &Bitmap {
        &self.bitmap
    }

    /// The hasher's seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.hasher.seed()
    }
}

impl<H: Hasher64> DistinctCounter for SBitmap<H> {
    #[inline]
    fn insert_u64(&mut self, item: u64) {
        self.insert_hash(self.hasher.hash_u64(item));
    }

    #[inline]
    fn insert_bytes(&mut self, item: &[u8]) {
        self.insert_hash(self.hasher.hash_bytes(item));
    }

    fn estimate(&self) -> f64 {
        self.schedule.estimate_at(self.fill)
    }

    fn memory_bits(&self) -> usize {
        self.bitmap.memory_bits()
    }

    fn reset(&mut self) {
        self.bitmap.reset();
        self.fill = 0;
    }

    fn name(&self) -> &'static str {
        "s-bitmap"
    }
}

impl<H: Hasher64> BatchedCounter for SBitmap<H> {
    /// The prefetch-pipelined batch path ([`SBitmap::insert_u64s`]).
    fn insert_u64_batch(&mut self, items: &[u64]) {
        self.insert_u64s(items);
    }

    /// The batch-hashed path ([`SBitmap::insert_bytes_batch`]).
    fn insert_bytes_batch(&mut self, items: &[&[u8]]) {
        SBitmap::insert_bytes_batch(self, items);
    }
}

#[cfg(feature = "serde")]
mod serde_impl {
    //! Serialization stores the *configuration key* `(n_max, m, d, seed)`
    //! plus the sketch state `(bitmap, fill)`; the schedule is a pure
    //! function of the key and is rebuilt on deserialization.

    use super::*;
    use serde::de::Error as DeError;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    #[derive(Serialize, Deserialize)]
    struct Repr {
        n_max: u64,
        m: usize,
        sampling_bits: u32,
        seed: u64,
        fill: usize,
        bitmap: Bitmap,
    }

    impl<H: Hasher64> Serialize for SBitmap<H> {
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            Repr {
                n_max: self.schedule.dims().n_max(),
                m: self.schedule.dims().m(),
                sampling_bits: self.schedule.split().sampling_bits(),
                seed: self.hasher.seed(),
                fill: self.fill,
                bitmap: self.bitmap.clone(),
            }
            .serialize(serializer)
        }
    }

    impl<'de, H: Hasher64 + FromSeed> Deserialize<'de> for SBitmap<H> {
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
            let repr = Repr::deserialize(deserializer)?;
            let dims = Dimensioning::from_memory(repr.n_max, repr.m)
                .map_err(|e| D::Error::custom(e.to_string()))?;
            let schedule = RateSchedule::new(dims, repr.sampling_bits)
                .map_err(|e| D::Error::custom(e.to_string()))?;
            if repr.bitmap.len() != repr.m {
                return Err(D::Error::custom(format!(
                    "bitmap length {} does not match m = {}",
                    repr.bitmap.len(),
                    repr.m
                )));
            }
            if repr.fill != repr.bitmap.count_ones() {
                return Err(D::Error::custom("fill counter disagrees with bitmap"));
            }
            Ok(Self {
                bitmap: repr.bitmap,
                fill: repr.fill,
                schedule: Arc::new(schedule),
                hasher: H::from_seed(repr.seed),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch() -> SBitmap {
        SBitmap::with_memory(1 << 20, 4000, 7).unwrap()
    }

    #[test]
    fn empty_sketch_estimates_zero() {
        let s = sketch();
        assert_eq!(s.estimate(), 0.0);
        assert_eq!(s.fill(), 0);
        assert!(!s.is_saturated());
    }

    #[test]
    fn duplicates_never_change_state() {
        let mut s = sketch();
        for i in 0..10_000u64 {
            s.insert_u64(i);
        }
        let fill = s.fill();
        let est = s.estimate();
        // Replay the exact same items, multiple times, in different order.
        for round in 0..3 {
            for i in (0..10_000u64).rev() {
                s.insert_u64(i);
            }
            assert_eq!(s.fill(), fill, "round {round} changed the fill");
        }
        assert_eq!(s.estimate(), est);
    }

    #[test]
    fn insert_hashes_is_bit_identical_to_item_at_a_time() {
        let mut batched = sketch();
        let mut scalar = sketch();
        let hasher = SplitMix64Hasher::new(99);
        let hashes: Vec<u64> = (0..30_000u64).map(|i| hasher.hash_u64(i)).collect();
        let mut scalar_newly = 0u64;
        for &h in &hashes {
            scalar_newly += u64::from(scalar.insert_hash(h));
        }
        let batched_newly = batched.insert_hashes(&hashes);
        assert_eq!(batched_newly, scalar_newly);
        assert_eq!(batched.fill(), scalar.fill());
        assert_eq!(
            batched.bitmap(),
            scalar.bitmap(),
            "bitmaps must be bit-identical"
        );
    }

    #[test]
    fn insert_u64s_is_bit_identical_to_insert_u64() {
        let mut batched = sketch();
        let mut scalar = sketch();
        // Odd length exercises the chunk remainder (256-item chunks).
        let items: Vec<u64> = (0..10_007u64).collect();
        for &i in &items {
            scalar.insert_u64(i);
        }
        let newly = batched.insert_u64s(&items);
        assert_eq!(newly, scalar.fill() as u64);
        assert_eq!(batched.fill(), scalar.fill());
        assert_eq!(batched.bitmap(), scalar.bitmap());
    }

    #[test]
    fn insert_bytes_batch_is_bit_identical_to_insert_bytes() {
        let mut batched = sketch();
        let mut scalar = sketch();
        let owned: Vec<Vec<u8>> = (0..3_000u32)
            .map(|i| format!("flow-{i}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
        for r in &refs {
            scalar.insert_bytes(r);
        }
        batched.insert_bytes_batch(&refs);
        assert_eq!(batched.fill(), scalar.fill());
        assert_eq!(batched.bitmap(), scalar.bitmap());
    }

    #[test]
    fn fill_equals_bitmap_popcount() {
        let mut s = sketch();
        for i in 0..50_000u64 {
            s.insert_u64(i);
        }
        assert_eq!(s.fill(), s.bitmap().count_ones());
    }

    #[test]
    fn estimate_tracks_cardinality_within_tolerance() {
        // Single replicate: allow 6 theoretical standard deviations.
        let mut s = sketch();
        let eps = s.theoretical_rrmse();
        for &n in &[100u64, 1_000, 10_000, 100_000] {
            s.reset();
            for i in 0..n {
                s.insert_u64(i);
            }
            let rel = s.estimate() / n as f64 - 1.0;
            assert!(
                rel.abs() < 6.0 * eps + 0.2,
                "n={n}: relative error {rel}, eps={eps}"
            );
        }
    }

    #[test]
    fn insert_bytes_and_u64_are_independent_namespaces() {
        // Same logical value through the two entry points hashes
        // differently — callers pick one representation per stream.
        let mut a = sketch();
        let mut b = sketch();
        a.insert_u64(1234);
        b.insert_bytes(&1234u64.to_le_bytes());
        // Both are single-item streams; estimates agree even though the
        // touched buckets may differ.
        assert_eq!(a.fill(), 1);
        assert_eq!(b.fill(), 1);
    }

    #[test]
    fn saturation_pins_estimate_near_n_max() {
        let mut s = SBitmap::with_memory(1_000, 120, 3).unwrap();
        for i in 0..5_000u64 {
            s.insert_u64(i);
        }
        assert!(s.is_saturated());
        let est = s.estimate();
        assert!(
            est <= 1_000.0 * 1.02,
            "estimate {est} must be truncated near N"
        );
    }

    #[test]
    fn reset_restores_empty_state() {
        let mut s = sketch();
        for i in 0..1000u64 {
            s.insert_u64(i);
        }
        s.reset();
        assert_eq!(s.fill(), 0);
        assert_eq!(s.estimate(), 0.0);
        assert_eq!(s.bitmap().count_ones(), 0);
    }

    #[test]
    fn different_seeds_fill_different_buckets() {
        let mut a = SBitmap::with_memory(1 << 20, 4000, 1).unwrap();
        let mut b = SBitmap::with_memory(1 << 20, 4000, 2).unwrap();
        for i in 0..5_000u64 {
            a.insert_u64(i);
            b.insert_u64(i);
        }
        let ones_a: Vec<usize> = a.bitmap().iter_ones().collect();
        let ones_b: Vec<usize> = b.bitmap().iter_ones().collect();
        assert_ne!(ones_a, ones_b);
    }

    #[test]
    fn shared_schedule_is_actually_shared() {
        let schedule = Arc::new(RateSchedule::from_memory(1 << 20, 4000).unwrap());
        let a = SBitmap::with_shared_schedule(schedule.clone(), SplitMix64Hasher::new(1));
        let _b = SBitmap::with_shared_schedule(schedule.clone(), SplitMix64Hasher::new(2));
        assert!(Arc::strong_count(&schedule) >= 3);
        assert_eq!(a.memory_bits(), 4000);
    }

    #[test]
    fn memory_bits_counts_only_the_bitmap() {
        let s = sketch();
        assert_eq!(s.memory_bits(), 4000);
    }

    #[test]
    fn one_distinct_item_estimates_about_one() {
        // t_1 ≈ 1 and p_1 ≈ 1, so a single item is almost surely counted.
        let mut hits = 0;
        for seed in 0..200 {
            let mut s = SBitmap::with_memory(1 << 20, 4000, seed).unwrap();
            s.insert_u64(42);
            if s.fill() == 1 {
                hits += 1;
            }
        }
        // p_1 = (C−1)/C ≈ 0.9989 — allow a couple of misses.
        assert!(hits >= 195, "only {hits}/200 single items were sampled");
    }
}
