//! Lock-free concurrent S-bitmap over the atomic bitmap backend.
//!
//! The paper's fleet scenario (§7.2: hundreds of links, one shared
//! schedule) wants ingestion to scale with cores. [`ConcurrentSBitmap`]
//! keeps the exact update shape of Algorithm 2 — one hash, one bitmap
//! probe, rarely one threshold compare — but over
//! [`sbitmap_bitvec::AtomicBitmap`], so every method takes `&self` and
//! the sketch can sit behind an `Arc` with no mutex.
//!
//! ## Concurrency semantics
//!
//! * **Fill counter.** `L` is a relaxed `AtomicUsize`, incremented only
//!   by the thread whose `fetch_or` actually flipped the bit — so after
//!   all writers synchronize (e.g. `join`), `fill() ==
//!   bitmap.count_ones()` exactly. During ingestion it is a live
//!   lower-bound hint.
//! * **Sampling rate.** The threshold lookup uses the current fill hint.
//!   Under concurrency a thread may read a hint that is a few increments
//!   stale and sample with `p_{L+1-δ}` instead of `p_{L+1}`; the schedule
//!   is monotone non-increasing, so stale reads sample *slightly too
//!   eagerly*. The perturbation is bounded by the number of in-flight
//!   updates (≤ threads) against a schedule that changes by `O(1/m)` per
//!   step — far below the sketch's design error; the
//!   `concurrent_matches_sequential_accuracy` test pins this.
//! * **Estimates.** [`ConcurrentSBitmap::estimate`] reads the bitmap
//!   popcount, not the hint, so a quiescent estimate is exactly the
//!   estimate the sequential sketch would produce from the same bitmap.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sbitmap_bitvec::AtomicBitmap;
use sbitmap_hash::{Hasher64, SplitMix64Hasher};

use crate::counter::DistinctCounter;
use crate::dimensioning::Dimensioning;
use crate::schedule::RateSchedule;
use crate::sketch::{SBitmap, BATCH_CHUNK};
use crate::SBitmapError;

/// A thread-shareable S-bitmap: all updates through `&self`.
///
/// ```
/// use std::sync::Arc;
/// use sbitmap_core::ConcurrentSBitmap;
///
/// let sketch = Arc::new(ConcurrentSBitmap::with_memory(1 << 20, 4000, 7).unwrap());
/// std::thread::scope(|s| {
///     for t in 0..4u64 {
///         let sketch = Arc::clone(&sketch);
///         s.spawn(move || {
///             for i in 0..25_000u64 {
///                 sketch.insert_u64(t * 25_000 + i);
///             }
///         });
///     }
/// });
/// assert_eq!(sketch.fill(), sketch.bitmap().count_ones());
/// assert!((sketch.estimate() / 100_000.0 - 1.0).abs() < 0.2);
/// ```
#[derive(Debug)]
pub struct ConcurrentSBitmap<H: Hasher64 = SplitMix64Hasher> {
    bitmap: AtomicBitmap,
    fill: AtomicUsize,
    schedule: Arc<RateSchedule>,
    hasher: H,
}

impl ConcurrentSBitmap {
    /// Build a sketch for cardinalities in `[1, n_max]` using `m` bits of
    /// bitmap, hashing with the default seeded hasher.
    ///
    /// # Errors
    ///
    /// See [`Dimensioning::from_memory`].
    pub fn with_memory(n_max: u64, m: usize, seed: u64) -> Result<Self, SBitmapError> {
        let schedule = Arc::new(RateSchedule::from_memory(n_max, m)?);
        Ok(Self::with_shared_schedule(
            schedule,
            SplitMix64Hasher::new(seed),
        ))
    }

    /// Build a sketch targeting RRMSE `epsilon` over `[1, n_max]`.
    ///
    /// # Errors
    ///
    /// See [`Dimensioning::from_error`].
    pub fn with_error(n_max: u64, epsilon: f64, seed: u64) -> Result<Self, SBitmapError> {
        let schedule = Arc::new(RateSchedule::from_error(n_max, epsilon)?);
        Ok(Self::with_shared_schedule(
            schedule,
            SplitMix64Hasher::new(seed),
        ))
    }
}

impl<H: Hasher64> ConcurrentSBitmap<H> {
    /// Build a sketch over a shared schedule with a caller-chosen hasher.
    pub fn with_shared_schedule(schedule: Arc<RateSchedule>, hasher: H) -> Self {
        Self {
            bitmap: AtomicBitmap::new(schedule.dims().m()),
            fill: AtomicUsize::new(0),
            schedule,
            hasher,
        }
    }

    /// Feed a pre-hashed item; lock-free. Returns `true` iff this call
    /// set a new bit.
    #[inline]
    pub fn insert_hash(&self, hash: u64) -> bool {
        let (bucket, u) = self.schedule.split().split(hash);
        if self.bitmap.get_unchecked(bucket) {
            return false;
        }
        // `fill` can momentarily read as `m` if every bit is set; clamp
        // so the threshold lookup stays in range (the rate is flat past
        // `b_max` anyway).
        let k = (self.fill.load(Ordering::Relaxed) + 1).min(self.schedule.len());
        if u < self.schedule.threshold(k) {
            // Only the thread that wins the zero→one race counts the bit.
            if self.bitmap.set_unchecked(bucket) {
                self.fill.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Insert a `u64` item; lock-free.
    #[inline]
    pub fn insert_u64(&self, item: u64) -> bool {
        self.insert_hash(self.hasher.hash_u64(item))
    }

    /// Insert a byte-string item; lock-free.
    #[inline]
    pub fn insert_bytes(&self, item: &[u8]) -> bool {
        self.insert_hash(self.hasher.hash_bytes(item))
    }

    /// Feed a slice of pre-hashed items with the prefetch pipeline of
    /// [`SBitmap::insert_hashes`]; lock-free. Returns how many bits this
    /// call newly set.
    pub fn insert_hashes(&self, hashes: &[u64]) -> u64 {
        const LOOKAHEAD: usize = 8;
        let split = *self.schedule.split();
        let mut newly = 0u64;
        for (i, &hash) in hashes.iter().enumerate() {
            if let Some(&ahead) = hashes.get(i + LOOKAHEAD) {
                self.bitmap.prefetch(split.split(ahead).0);
            }
            if self.insert_hash(hash) {
                newly += 1;
            }
        }
        newly
    }

    /// Batch-hash and ingest a slice of `u64` items; lock-free. Returns
    /// how many bits this call newly set.
    pub fn insert_u64s(&self, items: &[u64]) -> u64 {
        let mut buf = [0u64; BATCH_CHUNK];
        let mut newly = 0u64;
        for chunk in items.chunks(BATCH_CHUNK) {
            let out = &mut buf[..chunk.len()];
            self.hasher.hash_u64_batch(chunk, out);
            newly += self.insert_hashes(out);
        }
        newly
    }

    /// Exact number of set bits by popcount — equals the fill counter
    /// once all writers have synchronized with this thread.
    pub fn fill(&self) -> usize {
        self.bitmap.count_ones()
    }

    /// The relaxed fill counter: free to read, momentarily a lower bound
    /// during concurrent ingestion.
    #[inline]
    pub fn fill_hint(&self) -> usize {
        self.fill.load(Ordering::Relaxed)
    }

    /// Estimate from the exact popcount (see module docs).
    pub fn estimate(&self) -> f64 {
        self.schedule.estimate_at(self.fill())
    }

    /// `true` once the fill hint has reached the truncation point.
    pub fn is_saturated(&self) -> bool {
        self.fill_hint() >= self.schedule.dims().b_max()
    }

    /// The schedule this sketch runs on.
    #[inline]
    pub fn schedule(&self) -> &RateSchedule {
        &self.schedule
    }

    /// The dimensioning (`N`, `m`, `C`) this sketch was built with.
    #[inline]
    pub fn dims(&self) -> &Dimensioning {
        self.schedule.dims()
    }

    /// Read-only view of the atomic bitmap.
    #[inline]
    pub fn bitmap(&self) -> &AtomicBitmap {
        &self.bitmap
    }

    /// Sketch payload in bits (paper accounting).
    pub fn memory_bits(&self) -> usize {
        self.bitmap.memory_bits()
    }

    /// Reset to empty. Takes `&mut self`: a reset concurrent with writers
    /// would not be a clean point in time.
    pub fn reset(&mut self) {
        self.bitmap.reset();
        self.fill.store(0, Ordering::Relaxed);
    }

    /// Snapshot into a sequential [`SBitmap`] sharing the same schedule,
    /// e.g. to checkpoint through the binary codec. Call at quiescence:
    /// the fill is recomputed from the snapshot popcount.
    pub fn to_sbitmap(&self) -> SBitmap<H>
    where
        H: Clone,
    {
        let bitmap = self.bitmap.to_bitmap();
        let fill = bitmap.count_ones();
        let mut s = SBitmap::with_shared_schedule(self.schedule.clone(), self.hasher.clone());
        s.restore_state(bitmap, fill);
        s
    }
}

impl<H: Hasher64> crate::counter::BatchedCounter for ConcurrentSBitmap<H> {
    /// The prefetch-pipelined batch path ([`ConcurrentSBitmap::insert_u64s`]).
    fn insert_u64_batch(&mut self, items: &[u64]) {
        ConcurrentSBitmap::insert_u64s(self, items);
    }
}

impl<H: Hasher64> DistinctCounter for ConcurrentSBitmap<H> {
    fn insert_u64(&mut self, item: u64) {
        ConcurrentSBitmap::insert_u64(self, item);
    }

    fn insert_bytes(&mut self, item: &[u8]) {
        ConcurrentSBitmap::insert_bytes(self, item);
    }

    fn estimate(&self) -> f64 {
        ConcurrentSBitmap::estimate(self)
    }

    fn memory_bits(&self) -> usize {
        ConcurrentSBitmap::memory_bits(self)
    }

    fn reset(&mut self) {
        ConcurrentSBitmap::reset(self);
    }

    fn name(&self) -> &'static str {
        "s-bitmap-concurrent"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_matches_popcount_and_tracks_cardinality() {
        let s = ConcurrentSBitmap::with_memory(1 << 20, 4000, 7).unwrap();
        for i in 0..50_000u64 {
            s.insert_u64(i);
        }
        assert_eq!(s.fill(), s.fill_hint());
        let rel = s.estimate() / 50_000.0 - 1.0;
        assert!(rel.abs() < 0.3, "rel {rel}");
    }

    #[test]
    fn duplicates_never_change_state() {
        let s = ConcurrentSBitmap::with_memory(1 << 20, 4000, 3).unwrap();
        for i in 0..10_000u64 {
            s.insert_u64(i);
        }
        let fill = s.fill();
        for i in 0..10_000u64 {
            assert!(!s.insert_u64(i), "duplicate {i} set a bit");
        }
        assert_eq!(s.fill(), fill);
    }

    #[test]
    fn threads_over_disjoint_ranges_keep_fill_exact() {
        let s = std::sync::Arc::new(ConcurrentSBitmap::with_memory(1 << 20, 4000, 11).unwrap());
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let s = std::sync::Arc::clone(&s);
                scope.spawn(move || {
                    s.insert_u64s(&(t * 10_000..(t + 1) * 10_000).collect::<Vec<u64>>());
                });
            }
        });
        assert_eq!(s.fill(), s.bitmap().count_ones());
        assert_eq!(s.fill(), s.fill_hint(), "hint must converge at join");
        let rel = s.estimate() / 80_000.0 - 1.0;
        assert!(rel.abs() < 0.3, "rel {rel}");
    }

    #[test]
    fn concurrent_matches_sequential_accuracy() {
        // Same stream, same seed: the concurrent sketch over one thread
        // is bit-identical to the sequential sketch.
        let c = ConcurrentSBitmap::with_memory(100_000, 2000, 5).unwrap();
        let mut s = SBitmap::with_memory(100_000, 2000, 5).unwrap();
        for i in 0..20_000u64 {
            c.insert_u64(i);
            crate::counter::DistinctCounter::insert_u64(&mut s, i);
        }
        assert_eq!(c.fill(), s.fill());
        assert_eq!(c.estimate(), crate::counter::DistinctCounter::estimate(&s));
    }

    #[test]
    fn snapshot_round_trip() {
        let c = ConcurrentSBitmap::with_memory(100_000, 2000, 9).unwrap();
        c.insert_u64s(&(0..5_000u64).collect::<Vec<u64>>());
        let s = c.to_sbitmap();
        assert_eq!(s.fill(), c.fill());
        assert_eq!(crate::counter::DistinctCounter::estimate(&s), c.estimate());
    }

    #[test]
    fn saturation_and_reset() {
        let mut s = ConcurrentSBitmap::with_memory(1_000, 120, 3).unwrap();
        s.insert_u64s(&(0..5_000u64).collect::<Vec<u64>>());
        assert!(s.is_saturated());
        s.reset();
        assert_eq!(s.fill(), 0);
        assert_eq!(s.estimate(), 0.0);
    }
}
