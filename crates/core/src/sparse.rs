//! Size-classed sparse slab storage for million-key fleets.
//!
//! [`crate::FleetArena`] packs every key at the full `⌈m/64⌉`-word
//! stride — perfect for 150 dense backbone links, hopeless for the
//! paper's per-flow scenarios (§7), where millions of mostly-cold keys
//! each set a handful of bits and the Zipf tail never fills a sketch.
//! [`SparseFleet`] keeps the same *logical* state — per-key `(bitmap,
//! fill)` over one shared [`RateSchedule`], per-key hashers derived by
//! [`crate::fleet::sketch_seed`] — but stores each key's bitmap in the
//! smallest **size class** that holds its live words:
//!
//! * a **sparse class** of capacity `c` stores the bitmap's non-zero
//!   words compacted into a `c`-word prefix, addressed through a
//!   word-occupancy mask ([`sbitmap_bitvec::masked`]): because S-bitmap
//!   buckets are only ever *set*, a word the mask does not list is
//!   exactly the dense bitmap's all-zero word, so reads never need the
//!   missing words and the truncated record is bit-equivalent to the
//!   full stride;
//! * the final class is a **full-stride slab** with the dense arena's
//!   flat layout, ingested by the same prefetch-pipelined
//!   `probe_hashes` kernel (`sketch.rs`).
//!
//! Records live in bump-allocated **slabs** (fixed-size extents per
//! class, never reallocated, so growth never copies the whole fleet).
//! When an insert must set a bit in a word the record's class cannot
//! hold — fill pressure crossing the class boundary — the record is
//! **promoted**: live words are copied into a freshly bumped slot of the
//! next class and the old slot becomes a tombstone. A key→(class, slab,
//! slot) handle table sits where the dense arena's index sits (the same
//! open-addressed `SlotIndex` + direct dense-key table, now mapping to
//! an ordinal whose handle encodes the storage address), and the same
//! radix batch router runs unchanged on top: route first, then resolve
//! the class per run — a promotion mid-run simply resumes the run in the
//! new class.
//!
//! Promotion preserves bit-identity by construction, so estimates,
//! exports and [`CounterKind::SketchFleet`] checkpoint bytes match the
//! dense [`crate::FleetArena`] byte for byte — sparse is a storage
//! strategy, not a wire format — which `tests/sparse_fleet.rs` locks in
//! differentially on both SIMD dispatch paths.

use std::sync::Arc;

use sbitmap_bitvec::masked::{rank_before, scatter_masked};
use sbitmap_bitvec::Bitmap;
use sbitmap_hash::{FromSeed, Hasher64, SplitMix64Hasher};

use crate::arena::{shift_to_cursors, RouterScratch, SlotIndex, EMPTY};
use crate::codec::{Checkpoint, CounterKind, PayloadReader, PayloadWriter};
use crate::counter::KeyedEstimates;
use crate::fleet::sketch_seed;
use crate::schedule::RateSchedule;
use crate::sketch::{probe_hashes, SBitmap, BATCH_CHUNK};
use crate::{FleetArena, SBitmapError};

/// One size class's record geometry, fixed at construction from the
/// shared stride.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ClassSpec {
    /// Packed data-word capacity (the full stride for the dense class).
    cap: usize,
    /// Word-occupancy mask words per record (0 marks the dense class).
    mask_words: usize,
    /// Total words per record: mask + data.
    record_words: usize,
}

impl ClassSpec {
    #[inline]
    fn is_dense(&self) -> bool {
        self.mask_words == 0
    }
}

/// The class ladder for a given stride: sparse capacities grow
/// geometrically (×4 from 2) while a record stays worth its mask — at
/// most half the full stride — and the ladder always ends in the dense
/// full-stride class. Tiny strides (`m ≤ ~384` bits) get no sparse class
/// at all: every key starts directly in the largest class, which is the
/// right call for dense key spaces whose sketches are expected to fill.
fn class_table(stride: usize) -> Vec<ClassSpec> {
    let mask_words = stride.div_ceil(64);
    let mut classes = Vec::new();
    let mut cap = 2usize;
    while mask_words + cap <= stride / 2 {
        classes.push(ClassSpec {
            cap,
            mask_words,
            record_words: mask_words + cap,
        });
        cap *= 4;
    }
    classes.push(ClassSpec {
        cap: stride,
        mask_words: 0,
        record_words: stride,
    });
    classes
}

/// Bump-allocated slab storage for one size class: fixed-size extents of
/// zeroed records, a cursor into the newest one, and tombstone
/// accounting for records abandoned by promotion. Slabs are never
/// reallocated or compacted — a promotion costs one record copy, not a
/// fleet copy, and outstanding record addresses stay stable.
#[derive(Debug, Clone)]
struct ClassStore {
    spec: ClassSpec,
    /// Records per slab (~256 KiB extents, at least one record).
    slab_records: usize,
    slabs: Vec<Box<[u64]>>,
    /// Records handed out in the newest slab.
    used_in_last: usize,
    /// Records abandoned by promotion out of this class.
    tombstones: usize,
}

impl ClassStore {
    const SLAB_TARGET_WORDS: usize = 32 * 1024;

    fn new(spec: ClassSpec) -> Self {
        Self {
            spec,
            slab_records: (Self::SLAB_TARGET_WORDS / spec.record_words).max(1),
            slabs: Vec::new(),
            used_in_last: 0,
            tombstones: 0,
        }
    }

    /// Bump-allocate one zeroed record, opening a new slab when the
    /// current one is exhausted. Returns the `(slab, slot)` address.
    fn alloc(&mut self) -> (u32, u32) {
        if self.slabs.is_empty() || self.used_in_last == self.slab_records {
            assert!(
                self.slabs.len() < (1 << 24),
                "sparse fleet slab count overflow"
            );
            self.slabs
                .push(vec![0u64; self.slab_records * self.spec.record_words].into_boxed_slice());
            self.used_in_last = 0;
        }
        let slab = (self.slabs.len() - 1) as u32;
        let slot = self.used_in_last as u32;
        self.used_in_last += 1;
        (slab, slot)
    }

    #[inline]
    fn record(&self, slab: u32, slot: u32) -> &[u64] {
        let r = self.spec.record_words;
        let base = slot as usize * r;
        &self.slabs[slab as usize][base..base + r]
    }

    #[inline]
    fn record_mut(&mut self, slab: u32, slot: u32) -> &mut [u64] {
        let r = self.spec.record_words;
        let base = slot as usize * r;
        &mut self.slabs[slab as usize][base..base + r]
    }

    fn allocated_bytes(&self) -> usize {
        self.slabs.iter().map(|s| s.len() * 8).sum()
    }
}

/// Pack a storage address into the ordinal→handle table entry.
#[inline]
fn pack_handle(class: usize, slab: u32, slot: u32) -> u64 {
    debug_assert!(class < 256 && slab < (1 << 24));
    ((class as u64) << 56) | ((slab as u64) << 32) | slot as u64
}

/// `(class, slab, slot)` of a packed handle.
#[inline]
fn unpack_handle(handle: u64) -> (usize, u32, u32) {
    (
        (handle >> 56) as usize,
        ((handle >> 32) & 0x00ff_ffff) as u32,
        handle as u32,
    )
}

/// Outcome of a sparse-class probe run.
enum SparseProbe {
    /// Run complete; newly set bits.
    Done(u64),
    /// The hash at the carried index needs a word the class cannot hold:
    /// promote, then resume the run there. Carries the bits set so far.
    Promote(u64, usize),
}

/// The sparse-class twin of [`probe_hashes`]: same per-hash decision
/// procedure (occupancy test, then the fill-indexed threshold), same
/// fill evolution, but over a masked compacted word set. A bit landing
/// in an absent word reads as zero — the class invariant guarantees the
/// dense bitmap is zero there — and materializes the word on a
/// successful take, shifting the packed tail to keep ascending word
/// order. Returns [`SparseProbe::Promote`] *before* consuming the hash
/// that needs an unaffordable word, so the caller can promote and resume
/// bit-identically.
fn probe_sparse_class(
    schedule: &RateSchedule,
    spec: ClassSpec,
    record: &mut [u64],
    live: &mut usize,
    fill: &mut usize,
    hashes: &[u64],
) -> SparseProbe {
    let split = *schedule.split();
    let top = schedule.len() - 1;
    let mut f = *fill;
    let mut newly = 0u64;
    let (mask, data) = record.split_at_mut(spec.mask_words);
    for (i, &hash) in hashes.iter().enumerate() {
        let (bucket, u) = split.split(hash);
        let wi = bucket >> 6;
        let bit = 1u64 << (bucket & 63);
        let threshold = schedule.threshold(f.min(top) + 1);
        let gbit = 1u64 << (wi & 63);
        if mask[wi >> 6] & gbit != 0 {
            let pos = rank_before(mask, wi);
            let word = data[pos];
            let take = (word & bit == 0) & (u < threshold);
            data[pos] = word | (bit & (take as u64).wrapping_neg());
            f += take as usize;
            newly += u64::from(take);
        } else if u < threshold {
            if *live == spec.cap {
                *fill = f;
                return SparseProbe::Promote(newly, i);
            }
            let pos = rank_before(mask, wi);
            data.copy_within(pos..*live, pos + 1);
            data[pos] = bit;
            mask[wi >> 6] |= gbit;
            *live += 1;
            f += 1;
            newly += 1;
        }
    }
    *fill = f;
    SparseProbe::Done(newly)
}

/// A keyed fleet of S-bitmaps in size-classed sparse slab storage.
///
/// Drop-in sibling of [`crate::FleetArena`] for key spaces where most
/// sketches stay nearly empty: same constructors, same per-key seed
/// derivation, bit-identical per-key sketch state and byte-identical
/// [`CounterKind::SketchFleet`] checkpoints — at a fraction of the
/// resident memory when the key distribution is heavy-tailed (the
/// `BENCH_fleet.json` Zipf lane gates sparse peak RSS at ≤ 0.25× the
/// dense arena's on a million-key Zipf(1.1) workload).
///
/// ```
/// use sbitmap_core::SparseFleet;
///
/// let mut fleet: SparseFleet = SparseFleet::new(100_000, 4_000, 7).unwrap();
/// let pairs: Vec<(u64, u64)> = (0..9_000u64).map(|i| (i % 3, i / 3)).collect();
/// fleet.insert_batch(&pairs);
/// assert_eq!(fleet.len(), 3);
/// let (key, estimate) = fleet.estimates().next().unwrap();
/// assert_eq!(key, 0);
/// assert!((estimate / 3_000.0 - 1.0).abs() < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct SparseFleet<H: Hasher64 + FromSeed = SplitMix64Hasher> {
    schedule: Arc<RateSchedule>,
    seed: u64,
    /// Words per full-stride bitmap: `⌈m/64⌉`.
    stride: usize,
    /// The size-class ladder; the last entry is always the dense class.
    classes: Vec<ClassStore>,
    /// Per-ordinal keys, in ordinal (= first-insert) order.
    keys: Vec<u64>,
    /// Per-ordinal fill counters (the paper's `L`).
    fills: Vec<usize>,
    /// Per-ordinal hashers, seeded by `sketch_seed(fleet seed, key)`.
    hashers: Vec<H>,
    /// Per-ordinal packed `(class, slab, slot)` storage addresses — the
    /// one indirection a promotion rewrites.
    handles: Vec<u64>,
    index: SlotIndex,
    /// Direct `key → ordinal` table for keys below
    /// [`FleetArena::DENSE_KEY_CACHE`], exactly as in the dense arena.
    dense_slots: Vec<u32>,
    router: RouterScratch,
}

impl<H: Hasher64 + FromSeed> SparseFleet<H> {
    /// Create an empty sparse fleet for cardinalities in `[1, n_max]`
    /// with `m` bits per key.
    ///
    /// # Errors
    ///
    /// See [`crate::Dimensioning::from_memory`].
    pub fn new(n_max: u64, m: usize, seed: u64) -> Result<Self, SBitmapError> {
        Ok(Self::with_schedule(
            Arc::new(RateSchedule::from_memory(n_max, m)?),
            seed,
        ))
    }

    /// Create a sparse fleet over an existing shared schedule.
    pub fn with_schedule(schedule: Arc<RateSchedule>, seed: u64) -> Self {
        let stride = schedule.dims().m().div_ceil(64);
        let classes = class_table(stride)
            .into_iter()
            .map(ClassStore::new)
            .collect();
        Self {
            schedule,
            seed,
            stride,
            classes,
            keys: Vec::new(),
            fills: Vec::new(),
            hashers: Vec::new(),
            handles: Vec::new(),
            index: SlotIndex::new(),
            dense_slots: Vec::new(),
            router: RouterScratch::default(),
        }
    }

    /// The ordinal for `key`, if present: one load for dense keys, a
    /// hash probe for sparse ones.
    #[inline]
    fn lookup_ordinal(&self, key: u64) -> Option<u32> {
        if key < FleetArena::<H>::DENSE_KEY_CACHE {
            let k = key as usize;
            if k < self.dense_slots.len() {
                let ordinal = self.dense_slots[k];
                return (ordinal != EMPTY).then_some(ordinal);
            }
            return None;
        }
        self.index.get(key)
    }

    /// The ordinal for `key`, creating it (smallest-class record, derived
    /// hasher) if absent.
    fn ordinal_for(&mut self, key: u64) -> u32 {
        if let Some(ordinal) = self.lookup_ordinal(key) {
            return ordinal;
        }
        let ordinal = self.keys.len();
        assert!(ordinal < EMPTY as usize, "sparse fleet ordinal overflow");
        self.keys.push(key);
        self.fills.push(0);
        self.hashers.push(H::from_seed(sketch_seed(self.seed, key)));
        let (slab, slot) = self.classes[0].alloc();
        self.handles.push(pack_handle(0, slab, slot));
        self.index.insert(key, ordinal as u32);
        if key < FleetArena::<H>::DENSE_KEY_CACHE {
            let k = key as usize;
            if k >= self.dense_slots.len() {
                self.dense_slots.resize(k + 1, EMPTY);
            }
            self.dense_slots[k] = ordinal as u32;
        }
        ordinal as u32
    }

    /// Ensure `key` has a (possibly empty) sketch, as a first insert
    /// would.
    pub fn touch(&mut self, key: u64) {
        self.ordinal_for(key);
    }

    /// Copy `ordinal`'s record into a freshly bumped slot of the next
    /// class up (ultimately the full-stride dense class), leaving a
    /// tombstone behind and rewriting the handle. The ×4 capacity ladder
    /// guarantees the next class fits the current live words plus the
    /// one that forced the promotion.
    fn promote(&mut self, ordinal: u32) {
        let (k, slab, slot) = unpack_handle(self.handles[ordinal as usize]);
        debug_assert!(k + 1 < self.classes.len(), "dense class never promotes");
        let (head, tail) = self.classes.split_at_mut(k + 1);
        let from = &mut head[k];
        let to = &mut tail[0];
        let (nslab, nslot) = to.alloc();
        let old = from.record(slab, slot);
        let mw = from.spec.mask_words;
        let live = sbitmap_bitvec::kernels::popcount_slice(&old[..mw]);
        let dense = to.spec.is_dense();
        let new = to.record_mut(nslab, nslot);
        if dense {
            scatter_masked(&old[..mw], &old[mw..mw + live], new);
        } else {
            new[..mw].copy_from_slice(&old[..mw]);
            new[mw..mw + live].copy_from_slice(&old[mw..mw + live]);
        }
        from.tombstones += 1;
        self.handles[ordinal as usize] = pack_handle(k + 1, nslab, nslot);
    }

    /// Feed a run of pre-split hashes (already per-key hashed, arrival
    /// order) into `ordinal`'s record, promoting across class boundaries
    /// as the run demands — the per-run half of the batch router, also
    /// the scalar path with a one-hash run.
    fn ingest_ordinal_hashes(&mut self, ordinal: u32, hashes: &[u64]) -> u64 {
        let mut newly = 0u64;
        let mut rest = hashes;
        loop {
            let (k, slab, slot) = unpack_handle(self.handles[ordinal as usize]);
            let spec = self.classes[k].spec;
            let outcome = {
                let Self {
                    ref schedule,
                    ref mut classes,
                    ref mut fills,
                    ..
                } = *self;
                let record = classes[k].record_mut(slab, slot);
                if spec.is_dense() {
                    return newly
                        + probe_hashes(schedule, record, &mut fills[ordinal as usize], rest);
                }
                let mut live = sbitmap_bitvec::kernels::popcount_slice(&record[..spec.mask_words]);
                probe_sparse_class(
                    schedule,
                    spec,
                    record,
                    &mut live,
                    &mut fills[ordinal as usize],
                    rest,
                )
            };
            match outcome {
                SparseProbe::Done(n) => return newly + n,
                SparseProbe::Promote(n, at) => {
                    newly += n;
                    rest = &rest[at..];
                    self.promote(ordinal);
                }
            }
        }
    }

    /// Insert `item` into the sketch for `key` (created if absent).
    /// Returns `true` if the update set a new bit.
    pub fn insert_u64(&mut self, key: u64, item: u64) -> bool {
        let ordinal = self.ordinal_for(key);
        let hash = self.hashers[ordinal as usize].hash_u64(item);
        self.ingest_ordinal_hashes(ordinal, &[hash]) == 1
    }

    /// Insert a byte-string item into the sketch for `key`.
    pub fn insert_bytes(&mut self, key: u64, item: &[u8]) -> bool {
        let ordinal = self.ordinal_for(key);
        let hash = self.hashers[ordinal as usize].hash_bytes(item);
        self.ingest_ordinal_hashes(ordinal, &[hash]) == 1
    }

    /// Batched per-key ingest: feed `items` to `key`'s sketch in order,
    /// returning how many bits were newly set. Bit-identical to calling
    /// [`SparseFleet::insert_u64`] per item.
    pub fn insert_u64s(&mut self, key: u64, items: &[u64]) -> u64 {
        let ordinal = self.ordinal_for(key);
        let mut buf = [0u64; BATCH_CHUNK];
        let mut newly = 0u64;
        for chunk in items.chunks(BATCH_CHUNK) {
            let hashes = &mut buf[..chunk.len()];
            self.hashers[ordinal as usize].hash_u64_batch(chunk, hashes);
            newly += self.ingest_ordinal_hashes(ordinal, hashes);
        }
        newly
    }

    /// Ingest a batch of `(key, item)` pairs through the radix router,
    /// returning how many bits were newly set across the fleet.
    ///
    /// The router is the dense arena's two-pass counting sort verbatim —
    /// route first (key → ordinal, count, prefix-sum, hash-and-scatter),
    /// then resolve each run's storage class at ingest time. A run that
    /// crosses its class boundary mid-stream promotes and resumes, so
    /// per-key sketch state is bit-identical to the pair-by-pair feed.
    pub fn insert_batch(&mut self, pairs: &[(u64, u64)]) -> u64 {
        if pairs.is_empty() {
            return 0;
        }
        assert!(
            pairs.len() < u32::MAX as usize,
            "batch too large for u32 offsets"
        );
        const BLOCK: usize = 32 * 1024;
        let mut newly = 0u64;
        for block in pairs.chunks(BLOCK) {
            newly += self.insert_batch_dense(block);
        }
        newly
    }

    /// Dense-key router block (see [`FleetArena`]'s twin for the play by
    /// play): counts land in a key-indexed table, falling back to the
    /// general router the moment a key exceeds the dense bound.
    fn insert_batch_dense(&mut self, pairs: &[(u64, u64)]) -> u64 {
        let mut r = std::mem::take(&mut self.router);
        let bound =
            FleetArena::<H>::DENSE_KEY_CACHE.min(pairs.len().saturating_mul(4).max(64) as u64);
        r.offsets.clear();
        let mut dense = true;
        for &(key, _) in pairs {
            let k = key as usize;
            if k.saturating_add(2) > r.offsets.len() {
                if key >= bound {
                    dense = false;
                    break;
                }
                r.offsets.resize(k + 2, 0);
            }
            r.offsets[k + 1] += 1;
        }
        if !dense {
            self.router = r;
            return self.insert_batch_general(pairs);
        }
        let buckets = r.offsets.len() - 1;
        for k in 1..=buckets {
            r.offsets[k] += r.offsets[k - 1];
        }
        debug_assert_eq!(r.offsets[buckets] as usize, pairs.len());
        r.run_slots.clear();
        r.run_slots.resize(buckets, EMPTY);
        for key in 0..buckets {
            if r.offsets[key + 1] > r.offsets[key] {
                r.run_slots[key] = self.ordinal_for(key as u64);
            }
        }
        shift_to_cursors(&mut r.offsets);

        if r.grouped.len() < pairs.len() {
            r.grouped.resize(pairs.len(), 0);
        }
        for &(key, item) in pairs {
            let ordinal = r.run_slots[key as usize] as usize;
            let cursor = &mut r.offsets[key as usize + 1];
            r.grouped[*cursor as usize] = self.hashers[ordinal].hash_u64(item);
            *cursor += 1;
        }

        let newly = self.ingest_runs(&r.offsets, &r.run_slots, &r.grouped);
        self.router = r;
        newly
    }

    /// General router block for arbitrary keys: pass 1 maps every pair
    /// to its ordinal, the rest is the same counting sort over ordinals.
    fn insert_batch_general(&mut self, pairs: &[(u64, u64)]) -> u64 {
        let mut r = std::mem::take(&mut self.router);

        r.pair_slots.clear();
        r.pair_slots
            .extend(pairs.iter().map(|&(key, _)| self.ordinal_for(key)));
        let n_ordinals = self.keys.len();
        r.offsets.clear();
        r.offsets.resize(n_ordinals + 1, 0);
        for &ordinal in &r.pair_slots {
            r.offsets[ordinal as usize + 1] += 1;
        }
        for s in 1..=n_ordinals {
            r.offsets[s] += r.offsets[s - 1];
        }
        debug_assert_eq!(r.offsets[n_ordinals] as usize, pairs.len());
        shift_to_cursors(&mut r.offsets);
        r.run_slots.clear();
        r.run_slots.extend(0..n_ordinals as u32);

        if r.grouped.len() < pairs.len() {
            r.grouped.resize(pairs.len(), 0);
        }
        for (&(_, item), &ordinal) in pairs.iter().zip(&r.pair_slots) {
            let cursor = &mut r.offsets[ordinal as usize + 1];
            r.grouped[*cursor as usize] = self.hashers[ordinal as usize].hash_u64(item);
            *cursor += 1;
        }

        let newly = self.ingest_runs(&r.offsets, &r.run_slots, &r.grouped);
        self.router = r;
        newly
    }

    /// Pass 3 of the router: ingest each bucket's contiguous hash run
    /// into its ordinal's record, warming the next occupied record one
    /// run ahead.
    fn ingest_runs(&mut self, offsets: &[u32], run_slots: &[u32], grouped: &[u64]) -> u64 {
        let mut newly = 0u64;
        let mut pending: Option<(u32, u32, u32)> = None;
        for bucket in 0..run_slots.len() {
            let start = offsets[bucket];
            let end = offsets[bucket + 1];
            if end == start {
                continue;
            }
            let ordinal = run_slots[bucket];
            if let Some((prev, ps, pe)) = pending.replace((ordinal, start, end)) {
                self.prefetch_record(ordinal);
                newly += self.ingest_ordinal_hashes(prev, &grouped[ps as usize..pe as usize]);
            }
        }
        if let Some((last, ps, pe)) = pending {
            newly += self.ingest_ordinal_hashes(last, &grouped[ps as usize..pe as usize]);
        }
        newly
    }

    /// Warm the leading cache lines of `ordinal`'s record.
    #[inline]
    fn prefetch_record(&self, ordinal: u32) {
        let (k, slab, slot) = unpack_handle(self.handles[ordinal as usize]);
        let store = &self.classes[k];
        let base = slot as usize * store.spec.record_words;
        let words = &store.slabs[slab as usize];
        for line in 0..store.spec.record_words.div_ceil(8).min(4) {
            sbitmap_bitvec::prefetch_word(words, base + line * 8);
        }
    }

    /// Expand `ordinal`'s record into its full-stride dense word image.
    pub(crate) fn copy_full_words(&self, ordinal: u32, out: &mut Vec<u64>) {
        out.clear();
        out.resize(self.stride, 0);
        let (k, slab, slot) = unpack_handle(self.handles[ordinal as usize]);
        let store = &self.classes[k];
        let record = store.record(slab, slot);
        if store.spec.is_dense() {
            out.copy_from_slice(record);
        } else {
            let mw = store.spec.mask_words;
            let live = sbitmap_bitvec::kernels::popcount_slice(&record[..mw]);
            scatter_masked(&record[..mw], &record[mw..mw + live], out);
        }
    }

    /// `(key, ordinal)` pairs in ascending key order — the canonical
    /// iteration order shared with the dense flavors.
    pub(crate) fn ordinals_by_key(&self) -> Vec<(u64, u32)> {
        let mut pairs: Vec<(u64, u32)> = self
            .keys
            .iter()
            .enumerate()
            .map(|(o, &k)| (k, o as u32))
            .collect();
        pairs.sort_unstable_by_key(|&(k, _)| k);
        pairs
    }

    /// Estimate for one key; `None` if the key has never been inserted.
    pub fn estimate(&self, key: u64) -> Option<f64> {
        let ordinal = self.lookup_ordinal(key)? as usize;
        Some(self.schedule.estimate_at(self.fills[ordinal]))
    }

    /// Fill counter for one key; `None` if the key has never been
    /// inserted.
    pub fn fill(&self, key: u64) -> Option<usize> {
        Some(self.fills[self.lookup_ordinal(key)? as usize])
    }

    /// Keys with a sketch, in ascending order.
    pub fn keys_sorted(&self) -> Vec<u64> {
        let mut keys = self.keys.clone();
        keys.sort_unstable();
        keys
    }

    /// Keys with a sketch, in ordinal (= first-insert) order — the raw
    /// backing list, no copy, no sort.
    #[inline]
    pub fn keys_unsorted(&self) -> &[u64] {
        &self.keys
    }

    /// All `(key, estimate)` pairs, in ascending key order.
    pub fn estimates(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.ordinals_by_key()
            .into_iter()
            .map(|(key, o)| (key, self.schedule.estimate_at(self.fills[o as usize])))
    }

    /// Materialize one key's sketch as a standalone [`SBitmap`]; `None`
    /// if the key has never been inserted. Bit-identical to the dense
    /// flavors' exports for the same stream.
    pub fn export_sketch(&self, key: u64) -> Option<SBitmap<H>> {
        let ordinal = self.lookup_ordinal(key)?;
        let m = self.schedule.dims().m();
        let mut words = Vec::new();
        self.copy_full_words(ordinal, &mut words);
        let bitmap = Bitmap::from_words(words, m).expect("sparse record is a valid bitmap");
        let mut sketch = SBitmap::with_shared_schedule(
            self.schedule.clone(),
            H::from_seed(sketch_seed(self.seed, key)),
        );
        sketch.restore_state(bitmap, self.fills[ordinal as usize]);
        Some(sketch)
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when no key has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Keys whose sketches have saturated — the re-dimensioning signal.
    /// Ascending key order.
    pub fn saturated_keys(&self) -> Vec<u64> {
        let b_max = self.schedule.dims().b_max();
        let mut keys: Vec<u64> = self
            .keys
            .iter()
            .zip(&self.fills)
            .filter(|&(_, &fill)| fill >= b_max)
            .map(|(&k, _)| k)
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Total *logical* sketch payload across the fleet, in bits — the
    /// paper's accounting, identical to the dense arena's for the same
    /// key set. For the physical footprint the storage actually pays,
    /// see [`SparseFleet::allocated_bytes`].
    pub fn memory_bits(&self) -> usize {
        self.keys.len() * self.schedule.dims().m()
    }

    /// Physically allocated bytes across slabs, handle/key/fill/hasher
    /// tables, the index and the router scratch — what the Zipf bench's
    /// RSS gate is about.
    pub fn allocated_bytes(&self) -> usize {
        let slabs: usize = self.classes.iter().map(ClassStore::allocated_bytes).sum();
        slabs
            + self.keys.capacity() * 8
            + self.fills.capacity() * std::mem::size_of::<usize>()
            + self.hashers.capacity() * std::mem::size_of::<H>()
            + self.handles.capacity() * 8
            + self.index.allocated_bytes()
            + self.dense_slots.capacity() * 4
            + self.router.allocated_bytes()
    }

    /// Live records per class, smallest class first (the dense class is
    /// last) — the class table a capacity report prints.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut histogram = vec![0usize; self.classes.len()];
        for &handle in &self.handles {
            histogram[unpack_handle(handle).0] += 1;
        }
        histogram
    }

    /// The class index `key`'s record currently lives in (0 = smallest;
    /// `class_count() - 1` = the dense full-stride class); `None` if the
    /// key has never been inserted.
    pub fn class_of(&self, key: u64) -> Option<usize> {
        let ordinal = self.lookup_ordinal(key)?;
        Some(unpack_handle(self.handles[ordinal as usize]).0)
    }

    /// Number of size classes in the ladder (≥ 1; exactly 1 when the
    /// stride is too small for any sparse class to pay for its mask, in
    /// which case every key starts directly in the full-stride class).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Records abandoned by promotion, summed across classes — the
    /// fragmentation the bump allocator trades for stable addresses.
    pub fn tombstones(&self) -> usize {
        self.classes.iter().map(|c| c.tombstones).sum()
    }

    /// Longest probe chain in the open-addressed key index — bounded by
    /// the 7/8 load factor; the million-key stress test asserts it.
    pub fn index_max_probe(&self) -> usize {
        self.index.max_probe_len()
    }

    /// Reset every sketch to empty, keeping keys, class assignments and
    /// all allocations.
    pub fn reset_all(&mut self) {
        for class in &mut self.classes {
            for slab in &mut class.slabs {
                slab.fill(0);
            }
        }
        self.fills.fill(0);
    }

    /// Drop all keys and slabs, keeping table allocations for reuse.
    pub fn clear(&mut self) {
        for class in &mut self.classes {
            class.slabs.clear();
            class.used_in_last = 0;
            class.tombstones = 0;
        }
        self.keys.clear();
        self.fills.clear();
        self.hashers.clear();
        self.handles.clear();
        self.index.clear();
        self.dense_slots.clear();
    }

    /// The shared schedule.
    pub fn schedule(&self) -> &Arc<RateSchedule> {
        &self.schedule
    }

    /// The fleet seed per-key hashers are derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Materialize the whole fleet as a dense [`FleetArena`] with
    /// identical logical state (bit-identical sketches, byte-identical
    /// checkpoints) — the bridge into dense-only consumers.
    pub fn to_arena(&self) -> FleetArena<H> {
        let mut arena = FleetArena::with_schedule(self.schedule.clone(), self.seed);
        let mut words = Vec::new();
        for (o, &key) in self.keys.iter().enumerate() {
            self.copy_full_words(o as u32, &mut words);
            arena
                .restore_slot(key, self.fills[o], std::mem::take(&mut words))
                .expect("sparse records are valid dense slots");
        }
        arena
    }

    /// Adopt one key's restored state (checkpoint path): full-stride
    /// bitmap words and the matching fill counter, landed directly in
    /// the smallest class that holds the live words — no promotion
    /// chain, no tombstones.
    pub(crate) fn restore_record(
        &mut self,
        key: u64,
        fill: usize,
        words: Vec<u64>,
    ) -> Result<(), SBitmapError> {
        let fail = |msg: &str| SBitmapError::invalid("checkpoint", msg.to_string());
        let m = self.schedule.dims().m();
        let bitmap =
            Bitmap::from_words(words, m).map_err(|e| SBitmapError::invalid("checkpoint", e))?;
        if bitmap.count_ones() != fill {
            return Err(fail("fill counter disagrees with bitmap"));
        }
        if self.lookup_ordinal(key).is_some() {
            return Err(fail("duplicate key in fleet checkpoint"));
        }
        let live = bitmap.words().iter().filter(|&&w| w != 0).count();
        let class = self
            .classes
            .iter()
            .position(|c| c.spec.cap >= live)
            .expect("the dense class holds any full stride");
        let ordinal = self.ordinal_for(key) as usize;
        // `ordinal_for` parked the key in class 0; move the handle to the
        // right class directly (the class-0 record it bumped stays zero —
        // it is only a tombstone when the right class differs).
        if class != 0 {
            self.classes[0].tombstones += 1;
            let (slab, slot) = self.classes[class].alloc();
            self.handles[ordinal] = pack_handle(class, slab, slot);
        }
        let (k, slab, slot) = unpack_handle(self.handles[ordinal]);
        let store = &mut self.classes[k];
        let spec = store.spec;
        let record = store.record_mut(slab, slot);
        if spec.is_dense() {
            record.copy_from_slice(bitmap.words());
        } else {
            let (mask, data) = record.split_at_mut(spec.mask_words);
            let placed = sbitmap_bitvec::masked::gather_masked(bitmap.words(), mask, data);
            debug_assert_eq!(placed, live);
        }
        self.fills[ordinal] = fill;
        Ok(())
    }
}

impl<H: Hasher64 + FromSeed> KeyedEstimates for SparseFleet<H> {
    fn keys_sorted(&self) -> Vec<u64> {
        SparseFleet::keys_sorted(self)
    }

    fn estimate(&self, key: u64) -> Option<f64> {
        SparseFleet::estimate(self, key)
    }
}

/// Sparse fleets serialize exactly like [`crate::FleetArena`] and
/// [`crate::SketchFleet`] — same [`CounterKind::SketchFleet`] tag, same
/// payload (config header, then `(key, fill, full-stride words)` records
/// sorted by key) — so all three flavors' checkpoints are
/// interchangeable. The size classes are a storage strategy: nothing
/// about them reaches the wire, and restore re-derives each record's
/// class from its live word count.
impl<H: Hasher64 + FromSeed> Checkpoint for SparseFleet<H> {
    const KIND: CounterKind = CounterKind::SketchFleet;

    fn write_payload(&self, out: &mut PayloadWriter) {
        let dims = self.schedule.dims();
        out.u64(dims.n_max());
        out.u64(dims.m() as u64);
        out.u32(self.schedule.split().sampling_bits());
        out.u64(self.seed);
        out.u64(self.keys.len() as u64);
        let mut words = Vec::new();
        for (key, ordinal) in self.ordinals_by_key() {
            out.u64(key);
            out.u64(self.fills[ordinal as usize] as u64);
            self.copy_full_words(ordinal, &mut words);
            out.words(&words);
        }
    }

    fn read_payload(r: &mut PayloadReader<'_>) -> Result<Self, SBitmapError> {
        let n_max = r.u64()?;
        let m = r.len_u64()?;
        // Same restore-side geometry caps as the dense arena: the
        // schedule rebuild is O(m) and the per-record word reads are
        // m-sized, so `m` is bounded before any allocation keyed on it
        // (class specs, slab extents and record sizes all derive from
        // the stride, hence from this checked `m`).
        crate::codec::check_wire_m(m)?;
        let sampling_bits = r.u32()?;
        let seed = r.u64()?;
        let count = r.len_u64()?;
        let dims = crate::dimensioning::Dimensioning::from_memory(n_max, m)?;
        let schedule = Arc::new(RateSchedule::new(dims, sampling_bits)?);
        let mut fleet = SparseFleet::with_schedule(schedule, seed);
        for _ in 0..count {
            let key = r.u64()?;
            let fill = r.len_u64()?;
            let words = r.words(m.div_ceil(64))?;
            fleet.restore_record(key, fill, words)?;
        }
        Ok(fleet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse() -> SparseFleet {
        SparseFleet::new(100_000, 4_000, 9).unwrap()
    }

    fn arena() -> FleetArena {
        FleetArena::new(100_000, 4_000, 9).unwrap()
    }

    /// First item whose hash lands in word `word` of `key`'s bitmap (and
    /// is accepted at fill+1 — early fills accept almost everything, so
    /// search only the landing word).
    fn item_in_word(fleet: &SparseFleet, key: u64, word: usize, skip: u64) -> u64 {
        let hasher = sbitmap_hash::SplitMix64Hasher::from_seed(sketch_seed(fleet.seed(), key));
        let split = *fleet.schedule().split();
        let mut skipped = 0u64;
        for item in 0..u64::MAX {
            let (bucket, _) = split.split(hasher.hash_u64(item));
            if bucket >> 6 == word {
                if skipped == skip {
                    return item;
                }
                skipped += 1;
            }
        }
        unreachable!("some item lands in every word");
    }

    #[test]
    fn class_table_shape() {
        // m = 4000 → stride 63, mask 1: sparse caps 2 and 8, then dense.
        let f = sparse();
        assert_eq!(f.class_count(), 3);
        // m = 120 → stride 2: no sparse class pays for its mask; every
        // key starts directly in the largest (dense) class.
        let tiny: SparseFleet = SparseFleet::new(1_000, 120, 1).unwrap();
        assert_eq!(tiny.class_count(), 1);
        tiny.classes
            .iter()
            .for_each(|c| assert!(c.spec.is_dense() == (c.spec.mask_words == 0)));
    }

    #[test]
    fn start_in_largest_for_tiny_strides() {
        let mut tiny: SparseFleet = SparseFleet::new(1_000, 120, 1).unwrap();
        tiny.insert_u64(5, 1);
        assert_eq!(tiny.class_of(5), Some(0));
        assert_eq!(tiny.class_count(), 1);
        // And it still matches the dense arena bit for bit.
        let mut dense: FleetArena = FleetArena::new(1_000, 120, 1).unwrap();
        for i in 0..5_000u64 {
            tiny.insert_u64(5, i);
            dense.insert_u64(5, i);
        }
        assert_eq!(tiny.fill(5), dense.fill(5));
        assert_eq!(tiny.checkpoint(), dense.checkpoint());
    }

    #[test]
    fn fill_to_exact_class_boundary_does_not_promote() {
        let mut f = sparse();
        let cap0 = f.classes[0].spec.cap;
        // Set one bit in each of exactly `cap0` distinct words.
        for w in 0..cap0 {
            assert!(f.insert_u64(7, item_in_word(&f, 7, w, 0)));
        }
        assert_eq!(f.class_of(7), Some(0), "at the boundary, not past it");
        assert_eq!(f.fill(7), Some(cap0));
        assert_eq!(f.tombstones(), 0);
    }

    #[test]
    fn one_bit_below_boundary_stays_one_bit_above_promotes() {
        let mut below = sparse();
        let cap0 = below.classes[0].spec.cap;
        for w in 0..cap0 - 1 {
            below.insert_u64(7, item_in_word(&below, 7, w, 0));
        }
        assert_eq!(below.class_of(7), Some(0), "one word below the boundary");

        let mut above = sparse();
        for w in 0..cap0 + 1 {
            above.insert_u64(7, item_in_word(&above, 7, w, 0));
        }
        assert_eq!(above.class_of(7), Some(1), "one word above promotes");
        assert_eq!(above.tombstones(), 1);
        assert_eq!(above.fill(7), Some(cap0 + 1));
        // A second bit in an already-live word never promotes.
        above.insert_u64(7, item_in_word(&above, 7, 0, 1));
        assert_eq!(above.class_of(7), Some(1));
        assert_eq!(above.tombstones(), 1);
    }

    #[test]
    fn every_class_is_reachable_and_stays_bit_identical() {
        let mut f = sparse();
        let mut d = arena();
        // Walk one key through every class boundary: one bit per word
        // until the record has been forced dense.
        let last = f.class_count() - 1;
        let mut w = 0usize;
        let mut seen = vec![false; f.class_count()];
        while f.class_of(42) != Some(last) {
            let item = item_in_word(&f, 42, w, 0);
            assert_eq!(f.insert_u64(42, item), d.insert_u64(42, item));
            seen[f.class_of(42).unwrap()] = true;
            w += 1;
        }
        assert!(seen.iter().all(|&s| s), "every class visited: {seen:?}");
        assert_eq!(f.tombstones(), last);
        assert_eq!(f.fill(42), d.fill(42));
        assert_eq!(
            f.export_sketch(42).unwrap().bitmap(),
            d.export_sketch(42).unwrap().bitmap()
        );
        assert_eq!(f.checkpoint(), d.checkpoint());
    }

    #[test]
    fn promote_under_batch_crosses_boundary_mid_run() {
        // One router run whose hashes cross the class-0 boundary in the
        // middle: the run must promote and resume bit-identically to the
        // scalar feed.
        let mut batched = sparse();
        let mut scalar = sparse();
        let mut dense = arena();
        let cap0 = batched.classes[0].spec.cap;
        let items: Vec<u64> = (0..3 * cap0)
            .map(|w| item_in_word(&batched, 9, w, 0))
            .collect();
        let pairs: Vec<(u64, u64)> = items.iter().map(|&i| (9u64, i)).collect();
        let newly = batched.insert_batch(&pairs);
        for &(k, item) in &pairs {
            scalar.insert_u64(k, item);
            dense.insert_u64(k, item);
        }
        assert_eq!(newly, 3 * cap0 as u64);
        assert!(batched.class_of(9).unwrap() >= 1, "promoted mid-run");
        assert_eq!(batched.fill(9), scalar.fill(9));
        assert_eq!(batched.checkpoint(), scalar.checkpoint());
        assert_eq!(batched.checkpoint(), dense.checkpoint());
    }

    #[test]
    fn cold_keys_stay_in_the_smallest_class() {
        let mut f = sparse();
        for key in 0..10_000u64 {
            f.insert_u64(key, key);
        }
        let histogram = f.class_histogram();
        assert_eq!(
            histogram[0], 10_000,
            "one bit each → class 0: {histogram:?}"
        );
        assert_eq!(f.tombstones(), 0);
        // Physical storage is a small fraction of the logical payload.
        assert!(f.allocated_bytes() < f.memory_bits() / 8 / 4);
    }

    #[test]
    fn checkpoint_restores_into_the_right_classes() {
        let mut f = sparse();
        for key in 0..50u64 {
            f.insert_u64(key, 1);
        }
        for i in 0..200_000u64 {
            f.insert_u64(3, i); // key 3 goes dense (saturates)
        }
        let bytes = f.checkpoint();
        let restored: SparseFleet = Checkpoint::restore(&bytes).unwrap();
        assert_eq!(restored.class_of(7), Some(0));
        assert_eq!(restored.class_of(3), Some(f.class_count() - 1));
        assert_eq!(restored.tombstones(), 1, "one parked class-0 record");
        assert_eq!(restored.checkpoint(), bytes, "restore round-trips");
        // Restored fleets keep counting identically to the original.
        let mut a = f.clone();
        let mut b = restored;
        a.insert_u64(7, 999);
        b.insert_u64(7, 999);
        assert_eq!(a.checkpoint(), b.checkpoint());
    }

    #[test]
    fn reset_and_clear_semantics() {
        let mut f = sparse();
        f.insert_u64(5, 1);
        f.insert_u64(6, 2);
        assert_eq!(f.memory_bits(), 8_000);
        f.reset_all();
        assert_eq!(f.len(), 2);
        assert_eq!(f.estimate(5), Some(0.0));
        assert_eq!(f.fill(5), Some(0));
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.estimate(5), None);
        f.insert_u64(5, 1);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn to_arena_is_bit_identical() {
        let mut f = sparse();
        let pairs: Vec<(u64, u64)> = (0..30_000u64).map(|i| (i % 97, i / 7)).collect();
        f.insert_batch(&pairs);
        let arena = f.to_arena();
        assert_eq!(arena.len(), f.len());
        assert_eq!(arena.checkpoint(), f.checkpoint());
        for key in f.keys_sorted() {
            assert_eq!(arena.fill(key), f.fill(key), "key {key}");
        }
    }

    #[test]
    fn handle_packing_round_trips() {
        for &(c, slab, slot) in &[
            (0usize, 0u32, 0u32),
            (3, 77, 12345),
            (255, (1 << 24) - 1, u32::MAX),
        ] {
            assert_eq!(unpack_handle(pack_handle(c, slab, slot)), (c, slab, slot));
        }
    }
}
