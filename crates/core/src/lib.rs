//! # sbitmap-core — the Self-learning Bitmap
//!
//! Implementation of the distinct-counting sketch of Chen, Cao, Shepp and
//! Nguyen, *Distinct Counting with a Self-Learning Bitmap* (ICDE 2009;
//! full version arXiv:1107.1697).
//!
//! The S-bitmap estimates the number of distinct items `n` in a stream
//! using an `m`-bit bitmap updated through an adaptive sampling process.
//! Its defining property is **scale-invariance**: with the dimensioning
//! rule of the paper's Theorem 2, the relative root mean square error
//! (RRMSE) of the estimator equals `(C − 1)^{−1/2}` for *every*
//! `n ∈ [1, N]` — it does not drift with the unknown cardinality the way
//! linear counting, LogLog or HyperLogLog errors do.
//!
//! ## Module map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`dimensioning`] | §5.1, eq. (7) | solve `(N, m) → C`, `(N, ε) → m` |
//! | [`schedule`] | Thm. 2 | sampling rates `p_k`, `q_k`, thresholds |
//! | [`sketch`] | §3, Alg. 2 | the [`SBitmap`] update path |
//! | [`estimator`] | §4, eq. (2)/(8) | `n̂ = t_B` with truncation |
//! | [`theory`] | §4–§5 | closed forms: `t_b`, `var(T_b)`, RRMSE |
//! | [`simulate`] | Lemma 1 | exact O(m) Monte-Carlo of the fill process |
//! | [`counter`] | — | the layered trait family: [`DistinctCounter`], [`BatchedCounter`], [`MergeableCounter`] |
//! | [`fleet`] | §7.2 | many keyed sketches over one shared schedule |
//! | [`arena`] | §7.2 | the same fleet packed into one contiguous arena, with an allocation-free radix batch router |
//! | [`sparse`] | §7 | the same fleet in size-classed sparse slab storage for million-key Zipf workloads |
//! | [`parallel`] | §7.2 | arena fleet sharded across `std::thread` workers |
//! | [`concurrent`] | §7.2 | lock-free sketch over the atomic bitmap backend |
//! | [`rotating`] | §7.1 | per-interval counting with bounded history |
//! | [`window`] | §7.1–7.2 | sliding-window distinct counting: a ring of epoch arenas on the [`window::EpochClock`] |
//! | [`sync`] | — | cloneable locked handle for multi-threaded feeds |
//! | [`codec`] | — | dependency-free versioned binary checkpoints: the [`Checkpoint`] trait and the tagged v2 wire format |
//! | [`journal`] | §7.2 | write-ahead delta journal + atomic snapshots: the durability substrate of the collector daemon |
//!
//! ## Quick start
//!
//! ```
//! use sbitmap_core::{DistinctCounter, SBitmap};
//!
//! // Count up to one million distinct flows with ~3% RRMSE.
//! let mut sketch = SBitmap::with_error(1_000_000, 0.03, 42).unwrap();
//! for flow_id in 0..50_000u64 {
//!     sketch.insert_u64(flow_id);
//!     sketch.insert_u64(flow_id); // duplicates are filtered by design
//! }
//! let estimate = sketch.estimate();
//! assert!((estimate / 50_000.0 - 1.0).abs() < 0.15);
//! // The sketch itself is just the bitmap: ~5.1 kbit here.
//! assert!(sketch.memory_bits() < 6_000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arena;
pub mod codec;
pub mod concurrent;
pub mod counter;
pub mod dimensioning;
mod error;
pub mod estimator;
pub mod fleet;
pub mod journal;
pub mod parallel;
pub mod rotating;
pub mod schedule;
pub mod simulate;
pub mod sketch;
pub mod sparse;
pub mod sync;
pub mod theory;
pub mod window;

pub use arena::FleetArena;
pub use codec::{Checkpoint, CounterKind, DeltaBody, DeltaRecord, DeltaRun, FleetDeltaFrame};
pub use concurrent::ConcurrentSBitmap;
pub use counter::{BatchedCounter, DistinctCounter, KeyedEstimates, MergeableCounter};
pub use dimensioning::Dimensioning;
pub use error::SBitmapError;
pub use fleet::SketchFleet;
pub use journal::{JournalConfig, JournalError, JournalRecord, JournalWriter, SegmentScan};
pub use parallel::ParallelFleet;
pub use rotating::RotatingCounter;
pub use schedule::RateSchedule;
pub use sketch::SBitmap;
pub use sparse::SparseFleet;
pub use sync::SharedCounter;
pub use window::{AbsorbOutcome, EpochClock, WindowedFleet};
