//! The S-bitmap estimator: `n̂ = t_B` with the truncation of eq. (8).

use crate::dimensioning::Dimensioning;
use crate::theory;

/// Estimate the cardinality from the observed fill `L` (number of set
/// bits): `n̂ = t_B` with `B = min(L, b_max)` (equations (2) and (8)).
///
/// `t_B` is unbiased for the cardinality by Theorem 3; the truncation at
/// `b_max = ⌊m − C/2⌋` removes the one-sided bias that appears when `n`
/// approaches the design maximum `N` (and can only reduce the RRMSE, as
/// the paper argues after Theorem 3).
#[inline]
pub fn estimate_from_fill(dims: &Dimensioning, fill: usize) -> f64 {
    theory::t(dims, fill.min(dims.b_max()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> Dimensioning {
        Dimensioning::from_memory(1 << 20, 4000).unwrap()
    }

    #[test]
    fn zero_fill_estimates_zero() {
        assert_eq!(estimate_from_fill(&dims(), 0), 0.0);
    }

    #[test]
    fn estimate_is_monotone_in_fill() {
        let d = dims();
        let mut last = -1.0;
        for b in 0..=d.b_max() {
            let e = estimate_from_fill(&d, b);
            assert!(e > last);
            last = e;
        }
    }

    #[test]
    fn truncation_caps_at_b_max() {
        let d = dims();
        let at_cap = estimate_from_fill(&d, d.b_max());
        assert_eq!(estimate_from_fill(&d, d.b_max() + 100), at_cap);
        assert_eq!(estimate_from_fill(&d, d.m()), at_cap);
        // And the cap is ~N by eq. (6).
        assert!((at_cap / d.n_max() as f64 - 1.0).abs() < 0.01);
    }

    #[test]
    fn small_fills_give_small_estimates() {
        let d = dims();
        // t_1 = C/(C−1) ≈ 1: one set bit ≈ one distinct item.
        assert!((estimate_from_fill(&d, 1) - 1.0).abs() < 0.01);
    }
}
