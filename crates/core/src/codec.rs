//! Compact, versioned binary serialization for S-bitmap checkpoints.
//!
//! Unlike the (optional, feature-gated) serde support, this codec has no
//! dependencies and a stable wire format, sized for the sketch's intended
//! deployments: shipping per-link sketches from measurement nodes to a
//! collector. A checkpoint is `41 + ⌈m/64⌉·8 + 8` bytes — e.g. 1057
//! bytes for the paper's `m = 8000` configuration.
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SBMP"
//! 4       1     version (1)
//! 5       8     n_max        (LE u64)
//! 13      8     m            (LE u64)
//! 21      4     sampling d   (LE u32)
//! 25      8     hash seed    (LE u64)
//! 33      8     fill L       (LE u64)
//! 41      8·W   bitmap words (LE u64 × ⌈m/64⌉)
//! 41+8W   8     XXH64 of bytes [0, 41+8W) with seed 0
//! ```

use std::sync::Arc;

use sbitmap_bitvec::Bitmap;
use sbitmap_hash::{xxh64, FromSeed, Hasher64};

use crate::dimensioning::Dimensioning;
use crate::schedule::RateSchedule;
use crate::sketch::SBitmap;
use crate::SBitmapError;

const MAGIC: &[u8; 4] = b"SBMP";
const VERSION: u8 = 1;
const HEADER_LEN: usize = 41;

/// Serialize a sketch checkpoint.
pub fn encode<H: Hasher64>(sketch: &SBitmap<H>) -> Vec<u8> {
    let dims = sketch.dims();
    let words = sketch.bitmap().words();
    let mut out = Vec::with_capacity(HEADER_LEN + words.len() * 8 + 8);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&dims.n_max().to_le_bytes());
    out.extend_from_slice(&(dims.m() as u64).to_le_bytes());
    out.extend_from_slice(&sketch.schedule().split().sampling_bits().to_le_bytes());
    out.extend_from_slice(&sketch.seed().to_le_bytes());
    out.extend_from_slice(&(sketch.fill() as u64).to_le_bytes());
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    let checksum = xxh64(&out, 0);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Deserialize a checkpoint, rebuilding the schedule from the embedded
/// configuration key and the hasher from the embedded seed.
///
/// # Errors
///
/// Corrupt or truncated input (magic/version/checksum/length mismatch),
/// a fill counter inconsistent with the bitmap, or a configuration that
/// no longer dimensions (all reported as [`SBitmapError`]).
pub fn decode<H: Hasher64 + FromSeed>(bytes: &[u8]) -> Result<SBitmap<H>, SBitmapError> {
    let fail = |msg: &str| SBitmapError::invalid("checkpoint", msg.to_string());
    if bytes.len() < HEADER_LEN + 8 {
        return Err(fail("truncated"));
    }
    let (body, checksum_bytes) = bytes.split_at(bytes.len() - 8);
    let expect = u64::from_le_bytes(checksum_bytes.try_into().expect("8 bytes"));
    if xxh64(body, 0) != expect {
        return Err(fail("checksum mismatch"));
    }
    if &body[0..4] != MAGIC {
        return Err(fail("bad magic"));
    }
    if body[4] != VERSION {
        return Err(fail("unsupported version"));
    }
    let u64_at = |off: usize| u64::from_le_bytes(body[off..off + 8].try_into().expect("8 bytes"));
    let n_max = u64_at(5);
    let m = u64_at(13) as usize;
    let sampling_bits = u32::from_le_bytes(body[21..25].try_into().expect("4 bytes"));
    let seed = u64_at(25);
    let fill = u64_at(33) as usize;

    let expected_words = m.div_ceil(64);
    if body.len() != HEADER_LEN + expected_words * 8 {
        return Err(fail("length does not match m"));
    }
    let words: Vec<u64> = body[HEADER_LEN..]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    let bitmap =
        Bitmap::from_words(words, m).map_err(|e| SBitmapError::invalid("checkpoint", e))?;
    if bitmap.count_ones() != fill {
        return Err(fail("fill counter disagrees with bitmap"));
    }

    let dims = Dimensioning::from_memory(n_max, m)?;
    let schedule = RateSchedule::new(dims, sampling_bits)?;
    let mut sketch = SBitmap::with_shared_schedule(Arc::new(schedule), H::from_seed(seed));
    sketch.restore_state(bitmap, fill);
    Ok(sketch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::DistinctCounter;
    use sbitmap_hash::SplitMix64Hasher;

    fn checkpointed() -> (SBitmap, Vec<u8>) {
        let mut s = SBitmap::with_memory(1_000_000, 8_000, 42).unwrap();
        for i in 0..30_000u64 {
            s.insert_u64(i);
        }
        let bytes = encode(&s);
        (s, bytes)
    }

    #[test]
    fn round_trip_preserves_state_and_behaviour() {
        let (mut original, bytes) = checkpointed();
        let mut restored: SBitmap<SplitMix64Hasher> = decode(&bytes).unwrap();
        assert_eq!(restored.fill(), original.fill());
        assert_eq!(restored.estimate(), original.estimate());
        // Resume identically.
        for i in 30_000..60_000u64 {
            original.insert_u64(i);
            restored.insert_u64(i);
        }
        assert_eq!(restored.fill(), original.fill());
    }

    #[test]
    fn size_is_as_documented() {
        let (_, bytes) = checkpointed();
        assert_eq!(bytes.len(), 41 + 8_000usize.div_ceil(64) * 8 + 8);
    }

    #[test]
    fn detects_corruption_everywhere() {
        let (_, bytes) = checkpointed();
        // Flip one bit at a sample of positions: every one must fail
        // (checksum covers the whole body).
        for pos in [0usize, 4, 9, 20, 50, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[pos] ^= 1;
            assert!(
                decode::<SplitMix64Hasher>(&bad).is_err(),
                "corruption at {pos} accepted"
            );
        }
    }

    #[test]
    fn detects_truncation() {
        let (_, bytes) = checkpointed();
        assert!(decode::<SplitMix64Hasher>(&bytes[..10]).is_err());
        assert!(decode::<SplitMix64Hasher>(&[]).is_err());
        assert!(decode::<SplitMix64Hasher>(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn rejects_consistent_checksum_with_bad_fill() {
        // Re-encode with a tampered fill *and* a fixed-up checksum: the
        // structural validation must still catch it.
        let (_, mut bytes) = checkpointed();
        let len = bytes.len();
        bytes.truncate(len - 8);
        bytes[33..41].copy_from_slice(&7u64.to_le_bytes());
        let checksum = xxh64(&bytes, 0);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        let err = decode::<SplitMix64Hasher>(&bytes).unwrap_err();
        assert!(err.to_string().contains("fill"), "{err}");
    }

    #[test]
    fn empty_sketch_round_trips() {
        let s = SBitmap::with_memory(10_000, 1_200, 7).unwrap();
        let restored: SBitmap<SplitMix64Hasher> = decode(&encode(&s)).unwrap();
        assert_eq!(restored.fill(), 0);
        assert_eq!(restored.estimate(), 0.0);
    }
}
