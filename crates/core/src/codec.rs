//! Compact, versioned binary serialization for sketch checkpoints — the
//! wire format measurement nodes use to ship per-link sketches to a
//! collector.
//!
//! Unlike the (optional, feature-gated) serde support, this codec has no
//! dependencies and a stable wire format. Version 2 generalizes the
//! original S-bitmap-only format to the whole estimator family through
//! the [`Checkpoint`] trait: a common frame carries a counter-kind tag
//! and a checksum, and each counter serializes its configuration key plus
//! state as the payload.
//!
//! The complete byte-level specification — frame layout, every kind tag,
//! every per-kind payload, and the v1 compatibility rules — lives in
//! `docs/wire-format.md` at the repository root. That document is the
//! human-readable source of truth the golden vectors in
//! `tests/checkpoint_golden.rs` are written against; the summary below
//! covers the frame and the S-bitmap payload only.
//!
//! ## v2 frame (current)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SBMP"
//! 4       1     version (2)
//! 5       1     counter kind tag (see `CounterKind`)
//! 6       P     kind-specific payload
//! 6+P     8     XXH64 of bytes [0, 6+P) with seed 0
//! ```
//!
//! The S-bitmap payload is the v1 body unchanged — `n_max` (u64), `m`
//! (u64), sampling `d` (u32), hash seed (u64), fill `L` (u64), bitmap
//! words (u64 × ⌈m/64⌉), all little-endian — so an `m = 8000` checkpoint
//! is `42 + ⌈m/64⌉·8 + 8` bytes ≈ 1 KiB. Payload layouts for the
//! baseline estimators are documented on their `Checkpoint` impls in
//! `sbitmap-baselines`.
//!
//! ## v1 frame (decoded forever, no longer emitted)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SBMP"
//! 4       1     version (1)
//! 5       8     n_max        (LE u64)
//! 13      8     m            (LE u64)
//! 21      4     sampling d   (LE u32)
//! 25      8     hash seed    (LE u64)
//! 33      8     fill L       (LE u64)
//! 41      8·W   bitmap words (LE u64 × ⌈m/64⌉)
//! 41+8W   8     XXH64 of bytes [0, 41+8W) with seed 0
//! ```
//!
//! v1 carried no kind tag — it could only describe an S-bitmap — so
//! [`unframe`] maps it to [`CounterKind::SBitmap`] and the golden-vector
//! test in `tests/checkpoint_golden.rs` locks the byte-level
//! compatibility.
//!
//! Checkpoints do not record the *hash family*: a sketch restores with
//! the hasher type the caller names (defaulting to `SplitMix64Hasher`
//! everywhere in this workspace), reseeded from the embedded seed.

use std::sync::Arc;

use sbitmap_bitvec::Bitmap;
use sbitmap_hash::{xxh64, FromSeed, Hasher64};

use crate::dimensioning::Dimensioning;
use crate::schedule::RateSchedule;
use crate::sketch::SBitmap;
use crate::SBitmapError;

const MAGIC: &[u8; 4] = b"SBMP";
const VERSION_1: u8 = 1;
const VERSION_2: u8 = 2;
/// v2: magic + version + kind tag.
const V2_HEADER_LEN: usize = 6;
/// Trailing XXH64 checksum.
const CHECKSUM_LEN: usize = 8;

fn fail(msg: impl Into<String>) -> SBitmapError {
    SBitmapError::invalid("checkpoint", msg.into())
}

/// The counter-kind tag stored in every v2 frame.
///
/// Tags are append-only wire constants: never renumber or reuse them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CounterKind {
    /// [`SBitmap`] — the self-learning bitmap (not mergeable).
    SBitmap = 1,
    /// `LinearCounting` from `sbitmap-baselines`.
    LinearCounting = 2,
    /// `VirtualBitmap` from `sbitmap-baselines`.
    VirtualBitmap = 3,
    /// `MrBitmap` from `sbitmap-baselines`.
    MrBitmap = 4,
    /// `FmSketch` (PCSA) from `sbitmap-baselines`.
    FmSketch = 5,
    /// `LogLog` from `sbitmap-baselines`.
    LogLog = 6,
    /// `HyperLogLog` from `sbitmap-baselines`.
    HyperLogLog = 7,
    /// `KMinValues` from `sbitmap-baselines`.
    KMinValues = 8,
    /// [`crate::SketchFleet`] — a keyed collection of S-bitmaps over one
    /// shared schedule.
    SketchFleet = 9,
    /// [`crate::WindowedFleet`] — a ring of per-epoch fleets answering
    /// sliding-window queries.
    WindowedFleet = 10,
}

impl CounterKind {
    /// All kinds, in tag order.
    pub const ALL: [CounterKind; 10] = [
        CounterKind::SBitmap,
        CounterKind::LinearCounting,
        CounterKind::VirtualBitmap,
        CounterKind::MrBitmap,
        CounterKind::FmSketch,
        CounterKind::LogLog,
        CounterKind::HyperLogLog,
        CounterKind::KMinValues,
        CounterKind::SketchFleet,
        CounterKind::WindowedFleet,
    ];

    /// The wire tag.
    #[inline]
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Parse a wire tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.tag() == tag)
    }

    /// Stable human-readable name (matches `DistinctCounter::name` where
    /// a counter exists).
    pub fn name(self) -> &'static str {
        match self {
            CounterKind::SBitmap => "s-bitmap",
            CounterKind::LinearCounting => "linear-counting",
            CounterKind::VirtualBitmap => "virtual-bitmap",
            CounterKind::MrBitmap => "mr-bitmap",
            CounterKind::FmSketch => "fm-pcsa",
            CounterKind::LogLog => "loglog",
            CounterKind::HyperLogLog => "hyperloglog",
            CounterKind::KMinValues => "kmv",
            CounterKind::SketchFleet => "sketch-fleet",
            CounterKind::WindowedFleet => "windowed-fleet",
        }
    }

    /// Whether checkpoints of this kind can be merged (union semantics).
    /// The S-bitmap family cannot — the paper's non-mergeable case.
    pub fn is_mergeable(self) -> bool {
        !matches!(
            self,
            CounterKind::SBitmap | CounterKind::SketchFleet | CounterKind::WindowedFleet
        )
    }
}

impl std::fmt::Display for CounterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------
// Payload cursor helpers
// ---------------------------------------------------------------------

/// Little-endian payload writer used by [`Checkpoint`] implementations.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// Append a byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a slice of `u64` words, little-endian, without a length
    /// prefix (the reader derives the count from configuration fields).
    pub fn words(&mut self, words: &[u64]) {
        self.buf.reserve(words.len() * 8);
        for w in words {
            self.buf.extend_from_slice(&w.to_le_bytes());
        }
    }

    pub(crate) fn into_inner(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian payload reader; every read fails loudly
/// on truncation instead of panicking.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SBitmapError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| fail("payload truncated"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Read one byte.
    ///
    /// # Errors
    ///
    /// Truncated payload.
    pub fn u8(&mut self) -> Result<u8, SBitmapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`, little-endian.
    ///
    /// # Errors
    ///
    /// Truncated payload.
    pub fn u32(&mut self) -> Result<u32, SBitmapError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a `u64`, little-endian.
    ///
    /// # Errors
    ///
    /// Truncated payload.
    pub fn u64(&mut self) -> Result<u64, SBitmapError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a `u64` that must fit in `usize` (counts, sizes).
    ///
    /// # Errors
    ///
    /// Truncated payload or a value beyond `usize::MAX`.
    pub fn len_u64(&mut self) -> Result<usize, SBitmapError> {
        usize::try_from(self.u64()?).map_err(|_| fail("length field overflows usize"))
    }

    /// Read exactly `n` `u64` words.
    ///
    /// # Errors
    ///
    /// Truncated payload.
    pub fn words(&mut self, n: usize) -> Result<Vec<u64>, SBitmapError> {
        let raw = self.take(
            n.checked_mul(8)
                .ok_or_else(|| fail("word count overflow"))?,
        )?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Assert the payload was fully consumed — trailing garbage is a
    /// corruption signal, not padding.
    ///
    /// # Errors
    ///
    /// Unconsumed trailing bytes.
    pub fn finish(self) -> Result<(), SBitmapError> {
        if self.remaining() != 0 {
            return Err(fail(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// A verified checkpoint frame: magic, version and checksum have been
/// checked; `payload` is the kind-specific body.
#[derive(Debug)]
pub struct Frame<'a> {
    /// Wire version the frame was encoded with (1 or 2).
    pub version: u8,
    /// The counter kind (v1 frames are always [`CounterKind::SBitmap`]).
    pub kind: CounterKind,
    /// Kind-specific payload bytes.
    pub payload: &'a [u8],
}

/// Wrap `payload` in a v2 frame (magic, version, kind tag, checksum).
pub fn frame(kind: CounterKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(V2_HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(MAGIC);
    out.push(VERSION_2);
    out.push(kind.tag());
    out.extend_from_slice(payload);
    let checksum = xxh64(&out, 0);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Verify and open a checkpoint frame (v1 or v2).
///
/// # Errors
///
/// Truncated input, bad magic, unsupported version, unknown kind tag, or
/// checksum mismatch.
pub fn unframe(bytes: &[u8]) -> Result<Frame<'_>, SBitmapError> {
    if bytes.len() < V2_HEADER_LEN + CHECKSUM_LEN {
        return Err(fail("truncated"));
    }
    let (body, checksum_bytes) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
    let expect = u64::from_le_bytes(checksum_bytes.try_into().expect("8 bytes"));
    if xxh64(body, 0) != expect {
        return Err(fail("checksum mismatch"));
    }
    if &body[0..4] != MAGIC {
        return Err(fail("bad magic"));
    }
    match body[4] {
        // v1 carried no kind tag: the whole post-version body is an
        // S-bitmap payload (same field layout as the v2 payload).
        VERSION_1 => Ok(Frame {
            version: VERSION_1,
            kind: CounterKind::SBitmap,
            payload: &body[5..],
        }),
        VERSION_2 => {
            let kind = CounterKind::from_tag(body[5])
                .ok_or_else(|| fail(format!("unknown counter kind tag {}", body[5])))?;
            Ok(Frame {
                version: VERSION_2,
                kind,
                payload: &body[V2_HEADER_LEN..],
            })
        }
        v => Err(fail(format!("unsupported version {v}"))),
    }
}

/// Read just the `(version, kind)` of a checkpoint, verifying the frame.
///
/// # Errors
///
/// See [`unframe`].
pub fn peek_kind(bytes: &[u8]) -> Result<(u8, CounterKind), SBitmapError> {
    let f = unframe(bytes)?;
    Ok((f.version, f.kind))
}

// ---------------------------------------------------------------------
// The Checkpoint trait
// ---------------------------------------------------------------------

/// Versioned, dependency-free binary encode/decode.
///
/// Implementations serialize their *configuration key* plus state into a
/// payload; the framing (magic, version, kind tag, checksum) is shared.
/// A restored sketch must be behaviourally identical to the original:
/// same estimate now, and the same state evolution under further inserts.
///
/// ```
/// use sbitmap_core::{Checkpoint, DistinctCounter, SBitmap};
///
/// let mut sketch = SBitmap::with_memory(100_000, 4_000, 7).unwrap();
/// for flow in 0..2_000u64 {
///     sketch.insert_u64(flow);
/// }
/// // ~0.5 KiB on the wire: framed, tagged, checksummed.
/// let bytes = sketch.checkpoint();
/// let mut restored: SBitmap = Checkpoint::restore(&bytes).unwrap();
/// assert_eq!(restored.estimate(), sketch.estimate());
/// // The restored sketch evolves identically.
/// sketch.insert_u64(999_999);
/// restored.insert_u64(999_999);
/// assert_eq!(restored.checkpoint(), sketch.checkpoint());
/// ```
pub trait Checkpoint: Sized {
    /// The kind tag this type serializes under.
    const KIND: CounterKind;

    /// Serialize configuration + state into `out`.
    fn write_payload(&self, out: &mut PayloadWriter);

    /// Rebuild from a payload produced by [`Checkpoint::write_payload`].
    ///
    /// # Errors
    ///
    /// Structurally invalid payloads (truncation, inconsistent fields,
    /// configurations that no longer dimension).
    fn read_payload(r: &mut PayloadReader<'_>) -> Result<Self, SBitmapError>;

    /// Serialize into a framed, checksummed v2 checkpoint.
    fn checkpoint(&self) -> Vec<u8> {
        let mut w = PayloadWriter::default();
        self.write_payload(&mut w);
        frame(Self::KIND, &w.into_inner())
    }

    /// Restore from a framed checkpoint (v2, or v1 where the format
    /// predates v2 — today that is only the S-bitmap).
    ///
    /// # Errors
    ///
    /// Corrupt frames (see [`unframe`]), a kind tag that does not match
    /// `Self`, or invalid payloads.
    fn restore(bytes: &[u8]) -> Result<Self, SBitmapError> {
        let f = unframe(bytes)?;
        if f.kind != Self::KIND {
            return Err(fail(format!(
                "checkpoint holds a {}, expected a {}",
                f.kind,
                Self::KIND
            )));
        }
        let mut r = PayloadReader::new(f.payload);
        let decoded = Self::read_payload(&mut r)?;
        r.finish()?;
        Ok(decoded)
    }
}

/// Largest `m` (bits per sketch) a checkpoint is allowed to declare.
///
/// The in-memory API has no such cap, but rebuilding a [`RateSchedule`]
/// is O(m) time and memory, and the fleet decoders must do it *before*
/// the first byte-backed record can bound `m` against the payload
/// length. Without this limit a 16-byte hostile frame with a repaired
/// checksum can demand minutes of threshold computation and gigabytes
/// of allocation. 2²² bits (512 KiB per sketch) is ~500× the paper's
/// largest configuration. Recorded in `docs/wire-format.md`.
pub const MAX_WIRE_M: usize = 1 << 22;

/// Shared guard for the config header of every schedule-bearing payload.
pub(crate) fn check_wire_m(m: usize) -> Result<(), SBitmapError> {
    if m > MAX_WIRE_M {
        return Err(fail(format!(
            "checkpoint declares m = {m} bits, above the wire limit {MAX_WIRE_M}"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// S-bitmap payload (shared by v1 bodies and v2 payloads)
// ---------------------------------------------------------------------

impl<H: Hasher64 + FromSeed> Checkpoint for SBitmap<H> {
    const KIND: CounterKind = CounterKind::SBitmap;

    fn write_payload(&self, out: &mut PayloadWriter) {
        let dims = self.dims();
        out.u64(dims.n_max());
        out.u64(dims.m() as u64);
        out.u32(self.schedule().split().sampling_bits());
        out.u64(self.seed());
        out.u64(self.fill() as u64);
        out.words(self.bitmap().words());
    }

    fn read_payload(r: &mut PayloadReader<'_>) -> Result<Self, SBitmapError> {
        let n_max = r.u64()?;
        let m = r.len_u64()?;
        check_wire_m(m)?;
        let sampling_bits = r.u32()?;
        let seed = r.u64()?;
        let fill = r.len_u64()?;
        let words = r.words(m.div_ceil(64))?;
        let bitmap = Bitmap::from_words(words, m).map_err(fail)?;
        if bitmap.count_ones() != fill {
            return Err(fail("fill counter disagrees with bitmap"));
        }
        let dims = Dimensioning::from_memory(n_max, m)?;
        let schedule = RateSchedule::new(dims, sampling_bits)?;
        let mut sketch = SBitmap::with_shared_schedule(Arc::new(schedule), H::from_seed(seed));
        sketch.restore_state(bitmap, fill);
        Ok(sketch)
    }
}

/// Serialize a sketch checkpoint (v2 frame).
///
/// Alias for [`Checkpoint::checkpoint`], kept as the codec's original
/// free-function entry point.
pub fn encode<H: Hasher64 + FromSeed>(sketch: &SBitmap<H>) -> Vec<u8> {
    sketch.checkpoint()
}

/// Deserialize a checkpoint (v1 or v2), rebuilding the schedule from the
/// embedded configuration key and the hasher from the embedded seed.
///
/// # Errors
///
/// Corrupt or truncated input (magic/version/kind/checksum/length
/// mismatch), a fill counter inconsistent with the bitmap, or a
/// configuration that no longer dimensions (all reported as
/// [`SBitmapError`]).
pub fn decode<H: Hasher64 + FromSeed>(bytes: &[u8]) -> Result<SBitmap<H>, SBitmapError> {
    SBitmap::restore(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::DistinctCounter;
    use sbitmap_hash::SplitMix64Hasher;

    fn checkpointed() -> (SBitmap, Vec<u8>) {
        let mut s = SBitmap::with_memory(1_000_000, 8_000, 42).unwrap();
        for i in 0..30_000u64 {
            s.insert_u64(i);
        }
        let bytes = encode(&s);
        (s, bytes)
    }

    #[test]
    fn round_trip_preserves_state_and_behaviour() {
        let (mut original, bytes) = checkpointed();
        let mut restored: SBitmap<SplitMix64Hasher> = decode(&bytes).unwrap();
        assert_eq!(restored.fill(), original.fill());
        assert_eq!(restored.estimate(), original.estimate());
        // Resume identically.
        for i in 30_000..60_000u64 {
            original.insert_u64(i);
            restored.insert_u64(i);
        }
        assert_eq!(restored.fill(), original.fill());
    }

    #[test]
    fn size_is_as_documented() {
        let (_, bytes) = checkpointed();
        assert_eq!(bytes.len(), 42 + 8_000usize.div_ceil(64) * 8 + 8);
    }

    #[test]
    fn round_trips_non_word_multiple_m() {
        // m = 8000 (word multiple), 8001 (one bit into a fresh word) and
        // 63 (sub-word) all round-trip with exact state.
        for (n_max, m) in [(1_000_000u64, 8_000usize), (1_000_000, 8_001), (1_000, 63)] {
            let mut s = SBitmap::with_memory(n_max, m, 9).unwrap();
            for i in 0..(n_max / 10) {
                s.insert_u64(i);
            }
            let restored: SBitmap<SplitMix64Hasher> = decode(&encode(&s)).unwrap();
            assert_eq!(restored.fill(), s.fill(), "m={m}");
            assert_eq!(restored.bitmap(), s.bitmap(), "m={m}");
            assert_eq!(restored.estimate(), s.estimate(), "m={m}");
        }
    }

    #[test]
    fn detects_corruption_everywhere() {
        let (_, bytes) = checkpointed();
        // Flip one bit at a sample of positions: every one must fail
        // (checksum covers the whole body).
        for pos in [0usize, 4, 5, 9, 20, 50, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[pos] ^= 1;
            assert!(
                decode::<SplitMix64Hasher>(&bad).is_err(),
                "corruption at {pos} accepted"
            );
        }
    }

    #[test]
    fn detects_truncation() {
        let (_, bytes) = checkpointed();
        assert!(decode::<SplitMix64Hasher>(&bytes[..10]).is_err());
        assert!(decode::<SplitMix64Hasher>(&[]).is_err());
        assert!(decode::<SplitMix64Hasher>(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn rejects_consistent_checksum_with_bad_fill() {
        // Re-encode with a tampered fill *and* a fixed-up checksum: the
        // structural validation must still catch it.
        let (_, mut bytes) = checkpointed();
        let len = bytes.len();
        bytes.truncate(len - 8);
        // Fill field: v2 payload offset 28 within the payload, +6 header.
        bytes[34..42].copy_from_slice(&7u64.to_le_bytes());
        let checksum = xxh64(&bytes, 0);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        let err = decode::<SplitMix64Hasher>(&bytes).unwrap_err();
        assert!(err.to_string().contains("fill"), "{err}");
    }

    #[test]
    fn rejects_trailing_garbage_with_fixed_checksum() {
        let (_, mut bytes) = checkpointed();
        let len = bytes.len();
        bytes.truncate(len - 8);
        bytes.extend_from_slice(&[0u8; 3]);
        let checksum = xxh64(&bytes, 0);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        let err = decode::<SplitMix64Hasher>(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn empty_sketch_round_trips() {
        let s = SBitmap::with_memory(10_000, 1_200, 7).unwrap();
        let restored: SBitmap<SplitMix64Hasher> = decode(&encode(&s)).unwrap();
        assert_eq!(restored.fill(), 0);
        assert_eq!(restored.estimate(), 0.0);
    }

    #[test]
    fn frame_reports_version_and_kind() {
        let (_, bytes) = checkpointed();
        let (version, kind) = peek_kind(&bytes).unwrap();
        assert_eq!(version, 2);
        assert_eq!(kind, CounterKind::SBitmap);
        assert!(!kind.is_mergeable());
    }

    #[test]
    fn kind_tags_are_stable_and_unique() {
        let tags: Vec<u8> = CounterKind::ALL.iter().map(|k| k.tag()).collect();
        assert_eq!(tags, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        for k in CounterKind::ALL {
            assert_eq!(CounterKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(CounterKind::from_tag(0), None);
        assert_eq!(CounterKind::from_tag(200), None);
    }

    #[test]
    fn rejects_unknown_kind_and_version() {
        // Hand-build frames with a bad kind tag / version and a valid
        // checksum: the frame parser must reject them by field, not by
        // checksum accident.
        let mut body = Vec::new();
        body.extend_from_slice(MAGIC);
        body.push(VERSION_2);
        body.push(250); // unknown tag
        let checksum = xxh64(&body, 0);
        body.extend_from_slice(&checksum.to_le_bytes());
        assert!(unframe(&body).unwrap_err().to_string().contains("kind"));

        let mut body = Vec::new();
        body.extend_from_slice(MAGIC);
        body.push(7); // unsupported version
        body.push(CounterKind::SBitmap.tag());
        let checksum = xxh64(&body, 0);
        body.extend_from_slice(&checksum.to_le_bytes());
        assert!(unframe(&body).unwrap_err().to_string().contains("version"));
    }

    #[test]
    fn reader_is_bounds_checked() {
        let mut r = PayloadReader::new(&[1, 2, 3]);
        assert_eq!(r.u8().unwrap(), 1);
        assert!(r.u64().is_err(), "overlong read must fail, not panic");
        assert_eq!(r.remaining(), 2);
        assert!(r.words(usize::MAX / 4).is_err(), "size overflow guarded");
    }
}
