//! Compact, versioned binary serialization for sketch checkpoints — the
//! wire format measurement nodes use to ship per-link sketches to a
//! collector.
//!
//! Unlike the (optional, feature-gated) serde support, this codec has no
//! dependencies and a stable wire format. Version 2 generalizes the
//! original S-bitmap-only format to the whole estimator family through
//! the [`Checkpoint`] trait: a common frame carries a counter-kind tag
//! and a checksum, and each counter serializes its configuration key plus
//! state as the payload.
//!
//! The complete byte-level specification — frame layout, every kind tag,
//! every per-kind payload, and the v1 compatibility rules — lives in
//! `docs/wire-format.md` at the repository root. That document is the
//! human-readable source of truth the golden vectors in
//! `tests/checkpoint_golden.rs` are written against; the summary below
//! covers the frame and the S-bitmap payload only.
//!
//! ## v2 frame (current)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SBMP"
//! 4       1     version (2)
//! 5       1     counter kind tag (see `CounterKind`)
//! 6       P     kind-specific payload
//! 6+P     8     XXH64 of bytes [0, 6+P) with seed 0
//! ```
//!
//! The S-bitmap payload is the v1 body unchanged — `n_max` (u64), `m`
//! (u64), sampling `d` (u32), hash seed (u64), fill `L` (u64), bitmap
//! words (u64 × ⌈m/64⌉), all little-endian — so an `m = 8000` checkpoint
//! is `42 + ⌈m/64⌉·8 + 8` bytes ≈ 1 KiB. Payload layouts for the
//! baseline estimators are documented on their `Checkpoint` impls in
//! `sbitmap-baselines`.
//!
//! ## v1 frame (decoded forever, no longer emitted)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SBMP"
//! 4       1     version (1)
//! 5       8     n_max        (LE u64)
//! 13      8     m            (LE u64)
//! 21      4     sampling d   (LE u32)
//! 25      8     hash seed    (LE u64)
//! 33      8     fill L       (LE u64)
//! 41      8·W   bitmap words (LE u64 × ⌈m/64⌉)
//! 41+8W   8     XXH64 of bytes [0, 41+8W) with seed 0
//! ```
//!
//! v1 carried no kind tag — it could only describe an S-bitmap — so
//! [`unframe`] maps it to [`CounterKind::SBitmap`] and the golden-vector
//! test in `tests/checkpoint_golden.rs` locks the byte-level
//! compatibility.
//!
//! Checkpoints do not record the *hash family*: a sketch restores with
//! the hasher type the caller names (defaulting to `SplitMix64Hasher`
//! everywhere in this workspace), reseeded from the embedded seed.

use std::sync::Arc;

use sbitmap_bitvec::Bitmap;
use sbitmap_hash::{xxh64, FromSeed, Hasher64};

use crate::dimensioning::Dimensioning;
use crate::schedule::RateSchedule;
use crate::sketch::SBitmap;
use crate::SBitmapError;

const MAGIC: &[u8; 4] = b"SBMP";
const VERSION_1: u8 = 1;
const VERSION_2: u8 = 2;
/// v3: the fleet-delta frame ([`FleetDeltaFrame`]) — same outer layout
/// as v2 (magic, version, kind tag, payload, checksum) but the version
/// byte is 3 and the only legal kind is [`CounterKind::FleetDelta`].
/// Kept a distinct version so v2-only decoders reject v3 frames at the
/// header instead of misreading a delta as a checkpoint.
const VERSION_3: u8 = 3;
/// v2: magic + version + kind tag.
const V2_HEADER_LEN: usize = 6;
/// Trailing XXH64 checksum.
const CHECKSUM_LEN: usize = 8;

fn fail(msg: impl Into<String>) -> SBitmapError {
    SBitmapError::invalid("checkpoint", msg.into())
}

/// The counter-kind tag stored in every v2 frame.
///
/// Tags are append-only wire constants: never renumber or reuse them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CounterKind {
    /// [`SBitmap`] — the self-learning bitmap (not mergeable).
    SBitmap = 1,
    /// `LinearCounting` from `sbitmap-baselines`.
    LinearCounting = 2,
    /// `VirtualBitmap` from `sbitmap-baselines`.
    VirtualBitmap = 3,
    /// `MrBitmap` from `sbitmap-baselines`.
    MrBitmap = 4,
    /// `FmSketch` (PCSA) from `sbitmap-baselines`.
    FmSketch = 5,
    /// `LogLog` from `sbitmap-baselines`.
    LogLog = 6,
    /// `HyperLogLog` from `sbitmap-baselines`.
    HyperLogLog = 7,
    /// `KMinValues` from `sbitmap-baselines`.
    KMinValues = 8,
    /// [`crate::SketchFleet`] — a keyed collection of S-bitmaps over one
    /// shared schedule.
    SketchFleet = 9,
    /// [`crate::WindowedFleet`] — a ring of per-epoch fleets answering
    /// sliding-window queries.
    WindowedFleet = 10,
    /// [`FleetDeltaFrame`] — a wire-v3 incremental fleet frame: per-key
    /// newly-set-bit deltas (run-length or sparse-varint coded) a
    /// collector OR-applies onto its ring arena. Not a checkpoint — it
    /// only makes sense against an absorbed round-0 baseline.
    FleetDelta = 11,
}

impl CounterKind {
    /// All kinds, in tag order.
    pub const ALL: [CounterKind; 11] = [
        CounterKind::SBitmap,
        CounterKind::LinearCounting,
        CounterKind::VirtualBitmap,
        CounterKind::MrBitmap,
        CounterKind::FmSketch,
        CounterKind::LogLog,
        CounterKind::HyperLogLog,
        CounterKind::KMinValues,
        CounterKind::SketchFleet,
        CounterKind::WindowedFleet,
        CounterKind::FleetDelta,
    ];

    /// The wire tag.
    #[inline]
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Parse a wire tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.tag() == tag)
    }

    /// Stable human-readable name (matches `DistinctCounter::name` where
    /// a counter exists).
    pub fn name(self) -> &'static str {
        match self {
            CounterKind::SBitmap => "s-bitmap",
            CounterKind::LinearCounting => "linear-counting",
            CounterKind::VirtualBitmap => "virtual-bitmap",
            CounterKind::MrBitmap => "mr-bitmap",
            CounterKind::FmSketch => "fm-pcsa",
            CounterKind::LogLog => "loglog",
            CounterKind::HyperLogLog => "hyperloglog",
            CounterKind::KMinValues => "kmv",
            CounterKind::SketchFleet => "sketch-fleet",
            CounterKind::WindowedFleet => "windowed-fleet",
            CounterKind::FleetDelta => "fleet-delta",
        }
    }

    /// Whether checkpoints of this kind can be merged (union semantics).
    /// The S-bitmap family cannot — the paper's non-mergeable case.
    pub fn is_mergeable(self) -> bool {
        !matches!(
            self,
            CounterKind::SBitmap
                | CounterKind::SketchFleet
                | CounterKind::WindowedFleet
                | CounterKind::FleetDelta
        )
    }
}

impl std::fmt::Display for CounterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------
// Payload cursor helpers
// ---------------------------------------------------------------------

/// Little-endian payload writer used by [`Checkpoint`] implementations.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: Vec<u8>,
}

impl PayloadWriter {
    /// Append a byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a LEB128 varint (7 value bits per byte, high bit =
    /// continuation) — the v3 sparse-record position coding.
    pub fn varint(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.push((v as u8) | 0x80);
            v >>= 7;
        }
        self.buf.push(v as u8);
    }

    /// Append a slice of `u64` words, little-endian, without a length
    /// prefix (the reader derives the count from configuration fields).
    pub fn words(&mut self, words: &[u64]) {
        self.buf.reserve(words.len() * 8);
        for w in words {
            self.buf.extend_from_slice(&w.to_le_bytes());
        }
    }

    pub(crate) fn into_inner(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian payload reader; every read fails loudly
/// on truncation instead of panicking.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SBitmapError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| fail("payload truncated"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Read one byte.
    ///
    /// # Errors
    ///
    /// Truncated payload.
    pub fn u8(&mut self) -> Result<u8, SBitmapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u32`, little-endian.
    ///
    /// # Errors
    ///
    /// Truncated payload.
    pub fn u32(&mut self) -> Result<u32, SBitmapError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a `u64`, little-endian.
    ///
    /// # Errors
    ///
    /// Truncated payload.
    pub fn u64(&mut self) -> Result<u64, SBitmapError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a LEB128 varint (see [`PayloadWriter::varint`]).
    ///
    /// # Errors
    ///
    /// Truncated payload, or an encoding longer than 10 bytes / wider
    /// than 64 bits.
    pub fn varint(&mut self) -> Result<u64, SBitmapError> {
        let mut v = 0u64;
        for shift in (0..=63).step_by(7) {
            let b = self.u8()?;
            let chunk = u64::from(b & 0x7f);
            if shift == 63 && chunk > 1 {
                return Err(fail("varint overflows 64 bits"));
            }
            v |= chunk << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(fail("varint longer than 10 bytes"))
    }

    /// Read a `u64` that must fit in `usize` (counts, sizes).
    ///
    /// # Errors
    ///
    /// Truncated payload or a value beyond `usize::MAX`.
    pub fn len_u64(&mut self) -> Result<usize, SBitmapError> {
        usize::try_from(self.u64()?).map_err(|_| fail("length field overflows usize"))
    }

    /// Read exactly `n` `u64` words.
    ///
    /// # Errors
    ///
    /// Truncated payload.
    pub fn words(&mut self, n: usize) -> Result<Vec<u64>, SBitmapError> {
        let raw = self.take(
            n.checked_mul(8)
                .ok_or_else(|| fail("word count overflow"))?,
        )?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Assert the payload was fully consumed — trailing garbage is a
    /// corruption signal, not padding.
    ///
    /// # Errors
    ///
    /// Unconsumed trailing bytes.
    pub fn finish(self) -> Result<(), SBitmapError> {
        if self.remaining() != 0 {
            return Err(fail(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// A verified checkpoint frame: magic, version and checksum have been
/// checked; `payload` is the kind-specific body.
#[derive(Debug)]
pub struct Frame<'a> {
    /// Wire version the frame was encoded with (1, 2 or 3).
    pub version: u8,
    /// The counter kind (v1 frames are always [`CounterKind::SBitmap`]).
    pub kind: CounterKind,
    /// Kind-specific payload bytes.
    pub payload: &'a [u8],
}

/// Wrap `payload` in a v2 frame (magic, version, kind tag, checksum).
pub fn frame(kind: CounterKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(V2_HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(MAGIC);
    out.push(VERSION_2);
    out.push(kind.tag());
    out.extend_from_slice(payload);
    let checksum = xxh64(&out, 0);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Wrap a fleet-delta payload in a v3 frame (version 3, fleet-delta
/// kind tag, checksum). The outer layout matches [`frame`]; only the
/// version byte differs, so v2-only peers reject it at the header.
fn frame_v3(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(V2_HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(MAGIC);
    out.push(VERSION_3);
    out.push(CounterKind::FleetDelta.tag());
    out.extend_from_slice(payload);
    let checksum = xxh64(&out, 0);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Verify and open a checkpoint frame (v1, v2 or v3).
///
/// # Errors
///
/// Truncated input, bad magic, unsupported version, unknown kind tag, a
/// version/kind pairing that is not legal on the wire (fleet-delta is
/// v3-only, every checkpoint kind is v1/v2-only), or checksum mismatch.
pub fn unframe(bytes: &[u8]) -> Result<Frame<'_>, SBitmapError> {
    if bytes.len() < V2_HEADER_LEN + CHECKSUM_LEN {
        return Err(fail("truncated"));
    }
    let (body, checksum_bytes) = bytes.split_at(bytes.len() - CHECKSUM_LEN);
    let expect = u64::from_le_bytes(checksum_bytes.try_into().expect("8 bytes"));
    if xxh64(body, 0) != expect {
        return Err(fail("checksum mismatch"));
    }
    if &body[0..4] != MAGIC {
        return Err(fail("bad magic"));
    }
    match body[4] {
        // v1 carried no kind tag: the whole post-version body is an
        // S-bitmap payload (same field layout as the v2 payload).
        VERSION_1 => Ok(Frame {
            version: VERSION_1,
            kind: CounterKind::SBitmap,
            payload: &body[5..],
        }),
        VERSION_2 => {
            let kind = CounterKind::from_tag(body[5])
                .ok_or_else(|| fail(format!("unknown counter kind tag {}", body[5])))?;
            if kind == CounterKind::FleetDelta {
                return Err(fail("fleet-delta frames require version 3"));
            }
            Ok(Frame {
                version: VERSION_2,
                kind,
                payload: &body[V2_HEADER_LEN..],
            })
        }
        VERSION_3 => {
            let kind = CounterKind::from_tag(body[5])
                .ok_or_else(|| fail(format!("unknown counter kind tag {}", body[5])))?;
            if kind != CounterKind::FleetDelta {
                return Err(fail("version 3 carries only fleet-delta frames"));
            }
            Ok(Frame {
                version: VERSION_3,
                kind,
                payload: &body[V2_HEADER_LEN..],
            })
        }
        v => Err(fail(format!("unsupported version {v}"))),
    }
}

/// Read just the `(version, kind)` of a checkpoint, verifying the frame.
///
/// # Errors
///
/// See [`unframe`].
pub fn peek_kind(bytes: &[u8]) -> Result<(u8, CounterKind), SBitmapError> {
    let f = unframe(bytes)?;
    Ok((f.version, f.kind))
}

// ---------------------------------------------------------------------
// The Checkpoint trait
// ---------------------------------------------------------------------

/// Versioned, dependency-free binary encode/decode.
///
/// Implementations serialize their *configuration key* plus state into a
/// payload; the framing (magic, version, kind tag, checksum) is shared.
/// A restored sketch must be behaviourally identical to the original:
/// same estimate now, and the same state evolution under further inserts.
///
/// ```
/// use sbitmap_core::{Checkpoint, DistinctCounter, SBitmap};
///
/// let mut sketch = SBitmap::with_memory(100_000, 4_000, 7).unwrap();
/// for flow in 0..2_000u64 {
///     sketch.insert_u64(flow);
/// }
/// // ~0.5 KiB on the wire: framed, tagged, checksummed.
/// let bytes = sketch.checkpoint();
/// let mut restored: SBitmap = Checkpoint::restore(&bytes).unwrap();
/// assert_eq!(restored.estimate(), sketch.estimate());
/// // The restored sketch evolves identically.
/// sketch.insert_u64(999_999);
/// restored.insert_u64(999_999);
/// assert_eq!(restored.checkpoint(), sketch.checkpoint());
/// ```
pub trait Checkpoint: Sized {
    /// The kind tag this type serializes under.
    const KIND: CounterKind;

    /// Serialize configuration + state into `out`.
    fn write_payload(&self, out: &mut PayloadWriter);

    /// Rebuild from a payload produced by [`Checkpoint::write_payload`].
    ///
    /// # Errors
    ///
    /// Structurally invalid payloads (truncation, inconsistent fields,
    /// configurations that no longer dimension).
    fn read_payload(r: &mut PayloadReader<'_>) -> Result<Self, SBitmapError>;

    /// Serialize into a framed, checksummed v2 checkpoint.
    fn checkpoint(&self) -> Vec<u8> {
        let mut w = PayloadWriter::default();
        self.write_payload(&mut w);
        frame(Self::KIND, &w.into_inner())
    }

    /// Restore from a framed checkpoint (v2, or v1 where the format
    /// predates v2 — today that is only the S-bitmap).
    ///
    /// # Errors
    ///
    /// Corrupt frames (see [`unframe`]), a kind tag that does not match
    /// `Self`, or invalid payloads.
    fn restore(bytes: &[u8]) -> Result<Self, SBitmapError> {
        let f = unframe(bytes)?;
        if f.kind != Self::KIND {
            return Err(fail(format!(
                "checkpoint holds a {}, expected a {}",
                f.kind,
                Self::KIND
            )));
        }
        let mut r = PayloadReader::new(f.payload);
        let decoded = Self::read_payload(&mut r)?;
        r.finish()?;
        Ok(decoded)
    }
}

/// Largest `m` (bits per sketch) a checkpoint is allowed to declare.
///
/// The in-memory API has no such cap, but rebuilding a [`RateSchedule`]
/// is O(m) time and memory, and the fleet decoders must do it *before*
/// the first byte-backed record can bound `m` against the payload
/// length. Without this limit a 16-byte hostile frame with a repaired
/// checksum can demand minutes of threshold computation and gigabytes
/// of allocation. 2²² bits (512 KiB per sketch) is ~500× the paper's
/// largest configuration. Recorded in `docs/wire-format.md`.
pub const MAX_WIRE_M: usize = 1 << 22;

/// Shared guard for the config header of every schedule-bearing payload.
pub(crate) fn check_wire_m(m: usize) -> Result<(), SBitmapError> {
    if m > MAX_WIRE_M {
        return Err(fail(format!(
            "checkpoint declares m = {m} bits, above the wire limit {MAX_WIRE_M}"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// v3 fleet-delta frames (tag 11)
// ---------------------------------------------------------------------

/// Encoded length of a LEB128 varint, in bytes.
fn varint_len(v: u64) -> usize {
    let bits = 64 - v.leading_zeros().min(63) as usize;
    bits.div_ceil(7)
}

/// Record body mode: word-level run coding.
const DELTA_MODE_RUNS: u8 = 0;
/// Record body mode: sparse varint-gap bit positions.
const DELTA_MODE_SPARSE: u8 = 1;

/// One run of consecutive bitmap words inside a [`DeltaBody::Runs`]
/// record: `words` covers word indices `start .. start + words.len()`
/// of the key's bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaRun {
    /// First word index the run covers.
    pub start: u32,
    /// The run's word values (at least one).
    pub words: Vec<u64>,
}

/// The payload of one per-key delta record — the bits newly set since
/// the previous round, in whichever of the two codings was smaller on
/// the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaBody {
    /// Word-level runs: zero words between runs are elided (the RLE
    /// side of the coding — dense late-epoch deltas).
    Runs(Vec<DeltaRun>),
    /// Strictly increasing bit positions, varint-gap coded on the wire
    /// (sparse early-epoch deltas).
    Sparse(Vec<u32>),
}

/// One key's delta record inside a [`FleetDeltaFrame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaRecord {
    /// The fleet key (link id).
    pub key: u64,
    /// Total set bits the body carries (validated against the decoded
    /// body, so a forged header cannot skew fill accounting).
    pub bits: u32,
    /// The coded bits.
    pub body: DeltaBody,
}

impl DeltaRecord {
    /// Build the record for `delta_words` (the key's newly-set bits as
    /// a full-stride word image), choosing whichever coding is smaller:
    /// word runs for dense deltas, varint positions for sparse ones.
    pub fn from_delta_words(key: u64, delta_words: &[u64]) -> Self {
        let mut bits = 0u32;
        // Run coding cost: 8 bytes (start + len) per run, 8 per word.
        let mut run_cost = 0usize;
        let mut in_run = false;
        for &w in delta_words {
            bits += w.count_ones();
            if w != 0 {
                if !in_run {
                    run_cost += 8;
                    in_run = true;
                }
                run_cost += 8;
            } else {
                in_run = false;
            }
        }
        // Sparse coding cost: one varint per set bit (gap coded).
        let mut sparse_cost = 0usize;
        let mut last = 0u64;
        let mut first = true;
        for (wi, &w) in delta_words.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                let pos = (wi as u64) * 64 + u64::from(w.trailing_zeros());
                let gap = if first { pos } else { pos - last };
                sparse_cost += varint_len(gap);
                last = pos;
                first = false;
                w &= w - 1;
            }
        }
        let body = if sparse_cost <= run_cost + 4 {
            // +4: the runs mode also pays its run-count field.
            let mut positions = Vec::with_capacity(bits as usize);
            for (wi, &w) in delta_words.iter().enumerate() {
                let mut w = w;
                while w != 0 {
                    positions.push(wi as u32 * 64 + w.trailing_zeros());
                    w &= w - 1;
                }
            }
            DeltaBody::Sparse(positions)
        } else {
            let mut runs: Vec<DeltaRun> = Vec::new();
            for (wi, &w) in delta_words.iter().enumerate() {
                if w == 0 {
                    continue;
                }
                match runs.last_mut() {
                    Some(run) if run.start as usize + run.words.len() == wi => {
                        run.words.push(w);
                    }
                    _ => runs.push(DeltaRun {
                        start: wi as u32,
                        words: vec![w],
                    }),
                }
            }
            DeltaBody::Runs(runs)
        };
        Self { key, bits, body }
    }
}

/// A wire-v3 incremental fleet frame: the bits one shard newly set for
/// its keys during one *round* of one epoch, delta-coded against the
/// round before.
///
/// Within an epoch the S-bitmap only ever **sets** bits, so round `r`'s
/// state is a superset of round `r-1`'s and the XOR delta between them
/// is exactly the newly-set bits — OR-applying every round of an epoch
/// onto a zeroed slot reproduces the epoch's final bitmap bit for bit,
/// in any arrival order, idempotently. That is what makes the frame
/// safe under at-least-once delivery and reordering: the receiver
/// ([`crate::WindowedFleet::absorb_delta_from`]) ORs records straight
/// onto its ring arena, no full-frame materialization.
///
/// Round 0 is the **baseline reset**: a self-contained image of the
/// shard's state at the end of the first round, carrying a record for
/// *every* key the shard owns (even still-empty ones), so the receiver
/// creates the slots a later round's delta will land in. Rounds > 0
/// require the same `(source, epoch)`'s baseline to have been absorbed
/// first and are rejected with [`SBitmapError::MissingBaseline`]
/// otherwise — before any O(m) work.
///
/// Byte layout (payload; the outer v3 frame adds magic/version/tag and
/// the trailing XXH64) — see `docs/wire-format.md` for the normative
/// spec:
///
/// ```text
/// n_max u64 · m u64 · d u32 · seed u64 · epoch u64 · round u32 ·
/// count u64 · count × record
/// record  = key u64 · bits u32 · mode u8 · body
/// body(0) = runs u32 · runs × (start u32 · len u32 · words u64×len)
/// body(1) = bits × varint   (first absolute position, then gaps)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FleetDeltaFrame {
    /// Dimensioning `n_max` of the shard's schedule.
    pub n_max: u64,
    /// Bits per key (`m` of the shared dimensioning).
    pub m: usize,
    /// Sampling split bits (`d`).
    pub sampling_bits: u32,
    /// The fleet seed per-key hashers derive from.
    pub seed: u64,
    /// Absolute epoch the frame belongs to.
    pub epoch: u64,
    /// Round within the epoch: 0 = baseline reset, > 0 = delta.
    /// `u32::MAX` is reserved (the receiver's full-frame sentinel) and
    /// rejected on the wire.
    pub round: u32,
    /// Per-key records, strictly ascending by key.
    pub records: Vec<DeltaRecord>,
}

impl FleetDeltaFrame {
    /// An empty frame with the given configuration key and position in
    /// the round chain; fill in records via [`FleetDeltaFrame::push`].
    pub fn new(
        n_max: u64,
        m: usize,
        sampling_bits: u32,
        seed: u64,
        epoch: u64,
        round: u32,
    ) -> Self {
        Self {
            n_max,
            m,
            sampling_bits,
            seed,
            epoch,
            round,
            records: Vec::new(),
        }
    }

    /// `true` for a round-0 baseline-reset frame.
    pub fn is_baseline(&self) -> bool {
        self.round == 0
    }

    /// Append the record for `key`'s newly-set bits (callers push keys
    /// in ascending order — encode asserts it).
    pub fn push(&mut self, key: u64, delta_words: &[u64]) {
        self.records
            .push(DeltaRecord::from_delta_words(key, delta_words));
    }

    /// Serialize into a framed, checksummed v3 frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::default();
        w.u64(self.n_max);
        w.u64(self.m as u64);
        w.u32(self.sampling_bits);
        w.u64(self.seed);
        w.u64(self.epoch);
        w.u32(self.round);
        w.u64(self.records.len() as u64);
        let mut last: Option<u64> = None;
        for rec in &self.records {
            assert!(
                last.is_none_or(|l| rec.key > l),
                "delta records must be strictly ascending by key"
            );
            last = Some(rec.key);
            w.u64(rec.key);
            w.u32(rec.bits);
            match &rec.body {
                DeltaBody::Runs(runs) => {
                    w.u8(DELTA_MODE_RUNS);
                    w.u32(runs.len() as u32);
                    for run in runs {
                        w.u32(run.start);
                        w.u32(run.words.len() as u32);
                        w.words(&run.words);
                    }
                }
                DeltaBody::Sparse(positions) => {
                    w.u8(DELTA_MODE_SPARSE);
                    let mut last_pos = 0u64;
                    let mut first = true;
                    for &pos in positions {
                        let pos = u64::from(pos);
                        w.varint(if first { pos } else { pos - last_pos });
                        last_pos = pos;
                        first = false;
                    }
                }
            }
        }
        frame_v3(&w.into_inner())
    }

    /// Verify and decode a v3 frame.
    ///
    /// Every structural lie is rejected *before* the work it would
    /// drive: `m` is capped at [`MAX_WIRE_M`] ahead of any stride math,
    /// record/run counts are bounded by the bytes actually remaining,
    /// runs must be ascending and non-overlapping within the stride,
    /// sparse positions strictly increasing below `m`, no run word may
    /// set a bit at or beyond `m`, and the per-record `bits` header
    /// must equal the popcount of the decoded body. Decode allocates
    /// proportional to the wire size, never to a claimed length.
    ///
    /// # Errors
    ///
    /// Corrupt frames (see [`unframe`]), a non-v3 frame, or any payload
    /// violation above.
    pub fn decode(bytes: &[u8]) -> Result<Self, SBitmapError> {
        let f = unframe(bytes)?;
        if f.kind != CounterKind::FleetDelta {
            return Err(fail(format!(
                "frame holds a {}, expected a fleet-delta",
                f.kind
            )));
        }
        let mut r = PayloadReader::new(f.payload);
        let n_max = r.u64()?;
        let m = r.len_u64()?;
        check_wire_m(m)?;
        if m == 0 {
            return Err(fail("delta frame declares m = 0"));
        }
        let stride = m.div_ceil(64);
        let sampling_bits = r.u32()?;
        let seed = r.u64()?;
        let epoch = r.u64()?;
        let round = r.u32()?;
        if round == u32::MAX {
            return Err(fail("round index u32::MAX is reserved"));
        }
        let count = r.len_u64()?;
        // Every record is at least key + bits + mode = 13 bytes.
        if count > r.remaining() / 13 {
            return Err(fail("record count exceeds the payload"));
        }
        let mut records = Vec::with_capacity(count);
        let mut last_key: Option<u64> = None;
        for _ in 0..count {
            let key = r.u64()?;
            if last_key.is_some_and(|l| key <= l) {
                return Err(fail("delta record keys must be strictly increasing"));
            }
            last_key = Some(key);
            let bits = r.u32()?;
            if bits as usize > m {
                return Err(fail("record declares more set bits than m"));
            }
            let mode = r.u8()?;
            let body = match mode {
                DELTA_MODE_RUNS => {
                    let runs = r.u32()? as usize;
                    // Every run is at least start + len + one word.
                    if runs > r.remaining() / 16 {
                        return Err(fail("run count exceeds the payload"));
                    }
                    let mut out = Vec::with_capacity(runs);
                    let mut cursor = 0usize;
                    let mut pop = 0u64;
                    for _ in 0..runs {
                        let start = r.u32()? as usize;
                        let len = r.u32()? as usize;
                        if len == 0 {
                            return Err(fail("empty run"));
                        }
                        if start < cursor {
                            return Err(fail("runs must be ascending and non-overlapping"));
                        }
                        let end = start
                            .checked_add(len)
                            .filter(|&e| e <= stride)
                            .ok_or_else(|| fail("run extends past the bitmap"))?;
                        if len > r.remaining() / 8 {
                            return Err(fail("run length exceeds the payload"));
                        }
                        let words = r.words(len)?;
                        if end == stride && m % 64 != 0 {
                            let tail_mask = !((1u64 << (m % 64)) - 1);
                            if words[len - 1] & tail_mask != 0 {
                                return Err(fail("run sets bits at or beyond m"));
                            }
                        }
                        pop += words.iter().map(|w| u64::from(w.count_ones())).sum::<u64>();
                        cursor = end;
                        out.push(DeltaRun {
                            start: start as u32,
                            words,
                        });
                    }
                    if pop != u64::from(bits) {
                        return Err(fail("bits header disagrees with run payload"));
                    }
                    DeltaBody::Runs(out)
                }
                DELTA_MODE_SPARSE => {
                    // Every position is at least one varint byte.
                    if bits as usize > r.remaining() {
                        return Err(fail("position count exceeds the payload"));
                    }
                    let mut positions = Vec::with_capacity(bits as usize);
                    let mut pos = 0u64;
                    for i in 0..bits {
                        let gap = r.varint()?;
                        if i > 0 && gap == 0 {
                            return Err(fail("sparse positions must be strictly increasing"));
                        }
                        pos = pos
                            .checked_add(gap)
                            .ok_or_else(|| fail("sparse position overflows"))?;
                        if pos >= m as u64 {
                            return Err(fail("sparse position at or beyond m"));
                        }
                        positions.push(pos as u32);
                    }
                    DeltaBody::Sparse(positions)
                }
                other => return Err(fail(format!("unknown delta body mode {other}"))),
            };
            records.push(DeltaRecord { key, bits, body });
        }
        r.finish()?;
        Ok(Self {
            n_max,
            m,
            sampling_bits,
            seed,
            epoch,
            round,
            records,
        })
    }
}

// ---------------------------------------------------------------------
// S-bitmap payload (shared by v1 bodies and v2 payloads)
// ---------------------------------------------------------------------

impl<H: Hasher64 + FromSeed> Checkpoint for SBitmap<H> {
    const KIND: CounterKind = CounterKind::SBitmap;

    fn write_payload(&self, out: &mut PayloadWriter) {
        let dims = self.dims();
        out.u64(dims.n_max());
        out.u64(dims.m() as u64);
        out.u32(self.schedule().split().sampling_bits());
        out.u64(self.seed());
        out.u64(self.fill() as u64);
        out.words(self.bitmap().words());
    }

    fn read_payload(r: &mut PayloadReader<'_>) -> Result<Self, SBitmapError> {
        let n_max = r.u64()?;
        let m = r.len_u64()?;
        check_wire_m(m)?;
        let sampling_bits = r.u32()?;
        let seed = r.u64()?;
        let fill = r.len_u64()?;
        let words = r.words(m.div_ceil(64))?;
        let bitmap = Bitmap::from_words(words, m).map_err(fail)?;
        if bitmap.count_ones() != fill {
            return Err(fail("fill counter disagrees with bitmap"));
        }
        let dims = Dimensioning::from_memory(n_max, m)?;
        let schedule = RateSchedule::new(dims, sampling_bits)?;
        let mut sketch = SBitmap::with_shared_schedule(Arc::new(schedule), H::from_seed(seed));
        sketch.restore_state(bitmap, fill);
        Ok(sketch)
    }
}

/// Serialize a sketch checkpoint (v2 frame).
///
/// Alias for [`Checkpoint::checkpoint`], kept as the codec's original
/// free-function entry point.
pub fn encode<H: Hasher64 + FromSeed>(sketch: &SBitmap<H>) -> Vec<u8> {
    sketch.checkpoint()
}

/// Deserialize a checkpoint (v1 or v2), rebuilding the schedule from the
/// embedded configuration key and the hasher from the embedded seed.
///
/// # Errors
///
/// Corrupt or truncated input (magic/version/kind/checksum/length
/// mismatch), a fill counter inconsistent with the bitmap, or a
/// configuration that no longer dimensions (all reported as
/// [`SBitmapError`]).
pub fn decode<H: Hasher64 + FromSeed>(bytes: &[u8]) -> Result<SBitmap<H>, SBitmapError> {
    SBitmap::restore(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::DistinctCounter;
    use sbitmap_hash::SplitMix64Hasher;

    fn checkpointed() -> (SBitmap, Vec<u8>) {
        let mut s = SBitmap::with_memory(1_000_000, 8_000, 42).unwrap();
        for i in 0..30_000u64 {
            s.insert_u64(i);
        }
        let bytes = encode(&s);
        (s, bytes)
    }

    #[test]
    fn round_trip_preserves_state_and_behaviour() {
        let (mut original, bytes) = checkpointed();
        let mut restored: SBitmap<SplitMix64Hasher> = decode(&bytes).unwrap();
        assert_eq!(restored.fill(), original.fill());
        assert_eq!(restored.estimate(), original.estimate());
        // Resume identically.
        for i in 30_000..60_000u64 {
            original.insert_u64(i);
            restored.insert_u64(i);
        }
        assert_eq!(restored.fill(), original.fill());
    }

    #[test]
    fn size_is_as_documented() {
        let (_, bytes) = checkpointed();
        assert_eq!(bytes.len(), 42 + 8_000usize.div_ceil(64) * 8 + 8);
    }

    #[test]
    fn round_trips_non_word_multiple_m() {
        // m = 8000 (word multiple), 8001 (one bit into a fresh word) and
        // 63 (sub-word) all round-trip with exact state.
        for (n_max, m) in [(1_000_000u64, 8_000usize), (1_000_000, 8_001), (1_000, 63)] {
            let mut s = SBitmap::with_memory(n_max, m, 9).unwrap();
            for i in 0..(n_max / 10) {
                s.insert_u64(i);
            }
            let restored: SBitmap<SplitMix64Hasher> = decode(&encode(&s)).unwrap();
            assert_eq!(restored.fill(), s.fill(), "m={m}");
            assert_eq!(restored.bitmap(), s.bitmap(), "m={m}");
            assert_eq!(restored.estimate(), s.estimate(), "m={m}");
        }
    }

    #[test]
    fn detects_corruption_everywhere() {
        let (_, bytes) = checkpointed();
        // Flip one bit at a sample of positions: every one must fail
        // (checksum covers the whole body).
        for pos in [0usize, 4, 5, 9, 20, 50, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[pos] ^= 1;
            assert!(
                decode::<SplitMix64Hasher>(&bad).is_err(),
                "corruption at {pos} accepted"
            );
        }
    }

    #[test]
    fn detects_truncation() {
        let (_, bytes) = checkpointed();
        assert!(decode::<SplitMix64Hasher>(&bytes[..10]).is_err());
        assert!(decode::<SplitMix64Hasher>(&[]).is_err());
        assert!(decode::<SplitMix64Hasher>(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn rejects_consistent_checksum_with_bad_fill() {
        // Re-encode with a tampered fill *and* a fixed-up checksum: the
        // structural validation must still catch it.
        let (_, mut bytes) = checkpointed();
        let len = bytes.len();
        bytes.truncate(len - 8);
        // Fill field: v2 payload offset 28 within the payload, +6 header.
        bytes[34..42].copy_from_slice(&7u64.to_le_bytes());
        let checksum = xxh64(&bytes, 0);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        let err = decode::<SplitMix64Hasher>(&bytes).unwrap_err();
        assert!(err.to_string().contains("fill"), "{err}");
    }

    #[test]
    fn rejects_trailing_garbage_with_fixed_checksum() {
        let (_, mut bytes) = checkpointed();
        let len = bytes.len();
        bytes.truncate(len - 8);
        bytes.extend_from_slice(&[0u8; 3]);
        let checksum = xxh64(&bytes, 0);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        let err = decode::<SplitMix64Hasher>(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn empty_sketch_round_trips() {
        let s = SBitmap::with_memory(10_000, 1_200, 7).unwrap();
        let restored: SBitmap<SplitMix64Hasher> = decode(&encode(&s)).unwrap();
        assert_eq!(restored.fill(), 0);
        assert_eq!(restored.estimate(), 0.0);
    }

    #[test]
    fn frame_reports_version_and_kind() {
        let (_, bytes) = checkpointed();
        let (version, kind) = peek_kind(&bytes).unwrap();
        assert_eq!(version, 2);
        assert_eq!(kind, CounterKind::SBitmap);
        assert!(!kind.is_mergeable());
    }

    #[test]
    fn kind_tags_are_stable_and_unique() {
        let tags: Vec<u8> = CounterKind::ALL.iter().map(|k| k.tag()).collect();
        assert_eq!(tags, vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        for k in CounterKind::ALL {
            assert_eq!(CounterKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(CounterKind::from_tag(0), None);
        assert_eq!(CounterKind::from_tag(200), None);
    }

    #[test]
    fn rejects_unknown_kind_and_version() {
        // Hand-build frames with a bad kind tag / version and a valid
        // checksum: the frame parser must reject them by field, not by
        // checksum accident.
        let mut body = Vec::new();
        body.extend_from_slice(MAGIC);
        body.push(VERSION_2);
        body.push(250); // unknown tag
        let checksum = xxh64(&body, 0);
        body.extend_from_slice(&checksum.to_le_bytes());
        assert!(unframe(&body).unwrap_err().to_string().contains("kind"));

        let mut body = Vec::new();
        body.extend_from_slice(MAGIC);
        body.push(7); // unsupported version
        body.push(CounterKind::SBitmap.tag());
        let checksum = xxh64(&body, 0);
        body.extend_from_slice(&checksum.to_le_bytes());
        assert!(unframe(&body).unwrap_err().to_string().contains("version"));
    }

    #[test]
    fn reader_is_bounds_checked() {
        let mut r = PayloadReader::new(&[1, 2, 3]);
        assert_eq!(r.u8().unwrap(), 1);
        assert!(r.u64().is_err(), "overlong read must fail, not panic");
        assert_eq!(r.remaining(), 2);
        assert!(r.words(usize::MAX / 4).is_err(), "size overflow guarded");
    }

    #[test]
    fn varints_round_trip_and_reject_overwide() {
        let mut w = PayloadWriter::default();
        let values = [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX - 1, u64::MAX];
        for &v in &values {
            w.varint(v);
        }
        let buf = w.into_inner();
        let mut r = PayloadReader::new(&buf);
        for &v in &values {
            assert_eq!(r.varint().unwrap(), v);
        }
        r.finish().unwrap();
        // 10 continuation bytes = wider than 64 bits.
        let evil = [0xffu8; 11];
        assert!(PayloadReader::new(&evil).varint().is_err());
        // A 10th byte above 1 overflows bit 63.
        let evil = [0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02];
        assert!(PayloadReader::new(&evil).varint().is_err());
        // Truncated mid-varint.
        assert!(PayloadReader::new(&[0x80]).varint().is_err());
    }

    /// A delta frame over two keys: one sparse-shaped, one dense-shaped.
    fn delta_frame() -> FleetDeltaFrame {
        let mut f = FleetDeltaFrame::new(100_000, 256, 32, 9, 4, 1);
        // Key 3: a handful of scattered bits → sparse wins.
        let mut sparse = vec![0u64; 4];
        for pos in [1usize, 64, 70, 200] {
            sparse[pos / 64] |= 1 << (pos % 64);
        }
        f.push(3, &sparse);
        // Key 7: dense contiguous words → runs win.
        let dense = vec![u64::MAX, u64::MAX, u64::MAX, u64::MAX >> 1];
        f.push(7, &dense);
        f
    }

    #[test]
    fn delta_frame_round_trips() {
        let f = delta_frame();
        assert!(matches!(f.records[0].body, DeltaBody::Sparse(_)));
        assert!(matches!(f.records[1].body, DeltaBody::Runs(_)));
        assert_eq!(f.records[0].bits, 4);
        assert_eq!(f.records[1].bits, 255);
        let bytes = f.encode();
        let (version, kind) = peek_kind(&bytes).unwrap();
        assert_eq!(version, 3);
        assert_eq!(kind, CounterKind::FleetDelta);
        assert!(!kind.is_mergeable());
        let back = FleetDeltaFrame::decode(&bytes).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.encode(), bytes, "canonical re-encode");
    }

    #[test]
    fn empty_and_baseline_delta_frames_round_trip() {
        // An all-empty round frame (no records) is legal — it keeps the
        // per-round frame count deterministic.
        let f = FleetDeltaFrame::new(1_000, 63, 32, 1, 0, 3);
        let back = FleetDeltaFrame::decode(&f.encode()).unwrap();
        assert!(back.records.is_empty());
        assert!(!back.is_baseline());
        // A baseline with an empty record (key touched, no bits yet).
        let mut f = FleetDeltaFrame::new(1_000, 63, 32, 1, 0, 0);
        f.push(42, &[0]);
        let back = FleetDeltaFrame::decode(&f.encode()).unwrap();
        assert!(back.is_baseline());
        assert_eq!(back.records[0].bits, 0);
        assert_eq!(back.records[0].body, DeltaBody::Sparse(vec![]));
    }

    #[test]
    fn delta_frame_is_not_a_checkpoint_and_vice_versa() {
        // A v3 frame must not restore as any checkpoint kind.
        let bytes = delta_frame().encode();
        assert!(<SBitmap as Checkpoint>::restore(&bytes).is_err());
        // A v2 frame carrying tag 11 is illegal on the wire.
        let evil = frame(CounterKind::FleetDelta, &[]);
        let err = unframe(&evil).unwrap_err();
        assert!(err.to_string().contains("version 3"), "{err}");
        // A v3 frame carrying a checkpoint tag is illegal too.
        let mut body = Vec::new();
        body.extend_from_slice(MAGIC);
        body.push(VERSION_3);
        body.push(CounterKind::SketchFleet.tag());
        let checksum = xxh64(&body, 0);
        body.extend_from_slice(&checksum.to_le_bytes());
        let err = unframe(&body).unwrap_err();
        assert!(err.to_string().contains("fleet-delta"), "{err}");
        // And a checkpoint must not decode as a delta frame.
        let (_, ckpt) = checkpointed();
        assert!(FleetDeltaFrame::decode(&ckpt).is_err());
    }

    /// Re-frame a mutated v3 payload with a fresh checksum so the bytes
    /// reach the payload validators.
    fn reseal_v3(bytes: &[u8], mutate: impl FnOnce(&mut [u8])) -> Vec<u8> {
        let mut body = bytes[..bytes.len() - CHECKSUM_LEN].to_vec();
        mutate(&mut body);
        let checksum = xxh64(&body, 0);
        body.extend_from_slice(&checksum.to_le_bytes());
        body
    }

    #[test]
    fn delta_decode_rejects_structural_lies() {
        let bytes = delta_frame().encode();
        // Payload offsets (after the 6-byte header): n_max@6 m@14 d@22
        // seed@26 epoch@34 round@42 count@46, first record key@54
        // bits@62 mode@66.
        type Mutator = Box<dyn FnOnce(&mut [u8])>;
        let cases: Vec<(&str, Mutator)> = vec![
            (
                "m above the wire cap",
                Box::new(|b: &mut [u8]| {
                    b[14..22].copy_from_slice(&(MAX_WIRE_M as u64 + 1).to_le_bytes())
                }),
            ),
            (
                "m = 0",
                Box::new(|b: &mut [u8]| b[14..22].copy_from_slice(&0u64.to_le_bytes())),
            ),
            (
                "reserved round",
                Box::new(|b: &mut [u8]| b[42..46].copy_from_slice(&u32::MAX.to_le_bytes())),
            ),
            (
                "record count beyond payload",
                Box::new(|b: &mut [u8]| b[46..54].copy_from_slice(&u64::MAX.to_le_bytes())),
            ),
            (
                "bits header above m",
                Box::new(|b: &mut [u8]| b[62..66].copy_from_slice(&300u32.to_le_bytes())),
            ),
            (
                "bits header off by one",
                Box::new(|b: &mut [u8]| b[62..66].copy_from_slice(&5u32.to_le_bytes())),
            ),
            ("unknown body mode", Box::new(|b: &mut [u8]| b[66] = 9)),
        ];
        for (what, mutate) in cases {
            let evil = reseal_v3(&bytes, mutate);
            assert!(FleetDeltaFrame::decode(&evil).is_err(), "{what} accepted");
        }
        // Truncation at every byte.
        for cut in 0..bytes.len() {
            assert!(
                FleetDeltaFrame::decode(&bytes[..cut]).is_err(),
                "truncation to {cut} accepted"
            );
        }
    }

    #[test]
    fn delta_decode_rejects_hostile_runs_and_positions() {
        // Hand-build payloads around a single mode-0 record.
        let build = |runs: &[(u32, u32, &[u64])], bits: u32| {
            let mut w = PayloadWriter::default();
            w.u64(1_000); // n_max
            w.u64(256); // m → stride 4
            w.u32(32);
            w.u64(9);
            w.u64(0); // epoch
            w.u32(0); // round
            w.u64(1); // one record
            w.u64(5); // key
            w.u32(bits);
            w.u8(DELTA_MODE_RUNS);
            w.u32(runs.len() as u32);
            for &(start, len, words) in runs {
                w.u32(start);
                w.u32(len);
                w.words(words);
            }
            frame_v3(&w.into_inner())
        };
        // Overlapping runs.
        let evil = build(&[(0, 2, &[1, 1]), (1, 1, &[1])], 3);
        assert!(FleetDeltaFrame::decode(&evil).is_err(), "overlap accepted");
        // Run past the stride.
        let evil = build(&[(3, 2, &[1, 1])], 2);
        assert!(FleetDeltaFrame::decode(&evil).is_err(), "overrun accepted");
        // Zero-length run.
        let evil = build(&[(0, 0, &[])], 0);
        assert!(
            FleetDeltaFrame::decode(&evil).is_err(),
            "empty run accepted"
        );
        // start + len overflowing u32 arithmetic must not wrap.
        let evil = build(&[(u32::MAX, 2, &[1, 1])], 2);
        assert!(
            FleetDeltaFrame::decode(&evil).is_err(),
            "wraparound accepted"
        );
        // A valid one for contrast.
        let ok = build(&[(0, 1, &[0b1011]), (3, 1, &[2])], 4);
        assert!(FleetDeltaFrame::decode(&ok).is_ok());

        // Tail-bit discipline on a sub-word m: m = 63, bit 63 illegal.
        let tail = |word: u64, bits: u32| {
            let mut w = PayloadWriter::default();
            w.u64(1_000);
            w.u64(63);
            w.u32(32);
            w.u64(9);
            w.u64(0);
            w.u32(0);
            w.u64(1);
            w.u64(5);
            w.u32(bits);
            w.u8(DELTA_MODE_RUNS);
            w.u32(1);
            w.u32(0);
            w.u32(1);
            w.words(&[word]);
            frame_v3(&w.into_inner())
        };
        assert!(FleetDeltaFrame::decode(&tail(1 << 63, 1)).is_err());
        assert!(FleetDeltaFrame::decode(&tail(1 << 62, 1)).is_ok());

        // Sparse lies: position at m, non-increasing position, overflow.
        let sparse = |m: u64, bits: u32, payload: &[u8]| {
            let mut w = PayloadWriter::default();
            w.u64(1_000);
            w.u64(m);
            w.u32(32);
            w.u64(9);
            w.u64(0);
            w.u32(0);
            w.u64(1);
            w.u64(5);
            w.u32(bits);
            w.u8(DELTA_MODE_SPARSE);
            let mut bytes = w.into_inner();
            bytes.extend_from_slice(payload);
            frame_v3(&bytes)
        };
        // First position = m (one varint byte value 63 on m=63).
        assert!(FleetDeltaFrame::decode(&sparse(63, 1, &[63])).is_err());
        assert!(FleetDeltaFrame::decode(&sparse(63, 1, &[62])).is_ok());
        // Zero gap after the first position.
        assert!(FleetDeltaFrame::decode(&sparse(63, 2, &[5, 0])).is_err());
        // Cumulative position overflowing u64.
        let huge = {
            let mut w = PayloadWriter::default();
            w.varint(u64::MAX);
            w.varint(u64::MAX);
            w.into_inner()
        };
        assert!(FleetDeltaFrame::decode(&sparse(63, 2, &huge)).is_err());
        // Declared positions beyond the bytes present.
        assert!(FleetDeltaFrame::decode(&sparse(63, 40, &[1, 1])).is_err());
    }
}
