//! Arena-backed fleet storage: every per-key bitmap packed into one
//! contiguous word buffer, plus an allocation-free radix batch router.
//!
//! [`crate::SketchFleet`] stores each key's [`SBitmap`] behind its own
//! heap allocation inside a `HashMap`, so fleet-scale ingestion (the
//! paper's §7.2: hundreds of identically-dimensioned per-link sketches
//! fed from one interleaved packet stream) is dominated by pointer
//! chasing and allocator traffic rather than the constant-time update
//! the paper promises. [`FleetArena`] keeps the same *logical* state —
//! per-key `(bitmap, fill)` over one shared [`RateSchedule`], per-key
//! hash seeds derived by [`crate::fleet::sketch_seed`] — in a flat
//! layout:
//!
//! * all bitmaps live in **one** `Vec<u64>` at a fixed stride of
//!   `⌈m/64⌉` words (the shared dimensioning fixes `m`), viewed through
//!   [`sbitmap_bitvec::SliceBitmap`] during ingest;
//! * fill counters sit in a parallel dense array;
//! * key→slot lookup goes through a small open-addressed table instead
//!   of a `HashMap<u64, SBitmap>`.
//!
//! Batches route through a two-pass counting sort (`key → slot`, count,
//! prefix-sum, scatter) into scratch buffers **owned by the arena**, so
//! the steady state allocates nothing: after warm-up, an
//! [`FleetArena::insert_batch`] call touches only the arena, the scratch
//! and the stack. Behavior is bit-identical to the HashMap fleet — same
//! per-key bitmap words and fills for the same `(key, item)` stream —
//! and checkpoints are byte-identical (both serialize as
//! [`CounterKind::SketchFleet`]), which the property tests in
//! `tests/fleet_arena.rs` lock in.

use std::sync::Arc;

use sbitmap_bitvec::{Bitmap, SliceBitmap};
use sbitmap_hash::{FromSeed, Hasher64, SplitMix64Hasher};

use crate::codec::{Checkpoint, CounterKind, PayloadReader, PayloadWriter};
use crate::counter::KeyedEstimates;
use crate::fleet::sketch_seed;
use crate::schedule::RateSchedule;
use crate::sketch::{probe_hashes, SBitmap, BATCH_CHUNK};
use crate::SBitmapError;

/// Empty-slot sentinel in the open-addressed index.
pub(crate) const EMPTY: u32 = u32::MAX;

/// Open-addressed `key → slot` table with linear probing.
///
/// Capacity is a power of two, grown at 7/8 load. Slots are dense arena
/// indices (`u32`), so a probe touches one cache line of keys and the
/// matching line of slot ids — no per-entry heap boxes, no hasher state.
/// Shared with [`crate::sparse::SparseFleet`], whose key→(class, slab,
/// slot) lookup routes through the same table (the `u32` payload there
/// is an ordinal into a handle array).
#[derive(Debug, Clone)]
pub(crate) struct SlotIndex {
    keys: Box<[u64]>,
    slots: Box<[u32]>,
    len: usize,
}

impl SlotIndex {
    fn with_capacity_pow2(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two());
        Self {
            keys: vec![0u64; cap].into_boxed_slice(),
            slots: vec![EMPTY; cap].into_boxed_slice(),
            len: 0,
        }
    }

    pub(crate) fn new() -> Self {
        Self::with_capacity_pow2(16)
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// The slot for `key`, if present.
    #[inline]
    pub(crate) fn get(&self, key: u64) -> Option<u32> {
        let mask = self.mask();
        let mut i = sbitmap_hash::mix64(key) as usize & mask;
        loop {
            let slot = self.slots[i];
            if slot == EMPTY {
                return None;
            }
            if self.keys[i] == key {
                return Some(slot);
            }
            i = (i + 1) & mask;
        }
    }

    /// Insert a key known to be absent.
    pub(crate) fn insert(&mut self, key: u64, slot: u32) {
        debug_assert_eq!(self.get(key), None, "duplicate key in slot index");
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.mask();
        let mut i = sbitmap_hash::mix64(key) as usize & mask;
        while self.slots[i] != EMPTY {
            i = (i + 1) & mask;
        }
        self.keys[i] = key;
        self.slots[i] = slot;
        self.len += 1;
    }

    fn grow(&mut self) {
        let next = Self::with_capacity_pow2(self.slots.len() * 2);
        let old = std::mem::replace(self, next);
        for (i, &slot) in old.slots.iter().enumerate() {
            if slot != EMPTY {
                self.insert(old.keys[i], slot);
            }
        }
    }

    pub(crate) fn clear(&mut self) {
        self.slots.fill(EMPTY);
        self.len = 0;
    }

    /// Longest probe chain in the table: the worst-case distance (in
    /// entries, wrap-aware) between any occupied entry and its home
    /// bucket. A diagnostic — the 7/8 load bound keeps this small with
    /// overwhelming probability, and the million-key stress test in
    /// `tests/sparse_fleet.rs` asserts it stays bounded.
    pub(crate) fn max_probe_len(&self) -> usize {
        let mask = self.mask();
        let mut worst = 0usize;
        for (i, &slot) in self.slots.iter().enumerate() {
            if slot == EMPTY {
                continue;
            }
            let home = sbitmap_hash::mix64(self.keys[i]) as usize & mask;
            worst = worst.max(i.wrapping_sub(home) & mask);
        }
        worst
    }

    /// Allocated table bytes (keys + slots) — storage accounting for the
    /// sparse fleet's RSS bookkeeping.
    pub(crate) fn allocated_bytes(&self) -> usize {
        self.keys.len() * 8 + self.slots.len() * 4
    }
}

/// Scratch buffers for the radix batch router, owned by the arena so a
/// steady-state [`FleetArena::insert_batch`] call allocates nothing.
/// Shared with [`crate::sparse::SparseFleet`], whose batch path is the
/// same two-pass counting sort (route first, resolve class per run).
#[derive(Debug, Clone, Default)]
pub(crate) struct RouterScratch {
    /// Slot of each pair of the current batch (pass 1 output).
    pub(crate) pair_slots: Vec<u32>,
    /// Item *hashes* regrouped by slot, arrival order preserved within a
    /// slot (pass 2 output). Hashing is fused into the scatter — the
    /// slot (hence the per-key hasher) is already known there, so the
    /// per-slot ingest becomes a pure probe loop over a contiguous run.
    pub(crate) grouped: Vec<u64>,
    /// Per-slot cursor/offset table (counting-sort prefix sums).
    pub(crate) offsets: Vec<u32>,
    /// Slot of each *bucket* of the current batch (`EMPTY` when the
    /// bucket has no run) — what pass 3 walks.
    pub(crate) run_slots: Vec<u32>,
}

impl RouterScratch {
    /// Allocated scratch bytes — storage accounting.
    pub(crate) fn allocated_bytes(&self) -> usize {
        self.pair_slots.capacity() * 4
            + self.grouped.capacity() * 8
            + self.offsets.capacity() * 4
            + self.run_slots.capacity() * 4
    }
}

/// Counting sort's classic cursor trick: turn start-of-run offsets into
/// write cursors. Afterwards `offsets[k+1]` is bucket `k`'s cursor; once
/// the scatter completes it has advanced to the end of the run, so
/// `offsets[k]..offsets[k+1]` frames bucket `k`'s run again.
pub(crate) fn shift_to_cursors(offsets: &mut [u32]) {
    for k in (1..offsets.len()).rev() {
        offsets[k] = offsets[k - 1];
    }
    offsets[0] = 0;
}

/// A keyed fleet of S-bitmaps packed into one contiguous arena.
///
/// Drop-in hot-path replacement for [`crate::SketchFleet`]: same
/// constructor signature, same per-key seed derivation
/// ([`crate::fleet::sketch_seed`]), bit-identical per-key sketch state,
/// byte-identical checkpoints. What changes is the memory layout — one
/// allocation for every bitmap, dense fill counters, an open-addressed
/// key index — and the batch path, which replaces per-call bucket tables
/// with a reusable counting-sort router.
///
/// ```
/// use sbitmap_core::FleetArena;
///
/// let mut fleet: FleetArena = FleetArena::new(100_000, 4_000, 7).unwrap();
/// let pairs: Vec<(u64, u64)> = (0..9_000u64).map(|i| (i % 3, i / 3)).collect();
/// fleet.insert_batch(&pairs);
/// assert_eq!(fleet.len(), 3);
/// let (key, estimate) = fleet.estimates().next().unwrap();
/// assert_eq!(key, 0);
/// assert!((estimate / 3_000.0 - 1.0).abs() < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct FleetArena<H: Hasher64 + FromSeed = SplitMix64Hasher> {
    schedule: Arc<RateSchedule>,
    seed: u64,
    /// Words per slot: `⌈m/64⌉`, fixed by the shared dimensioning.
    stride: usize,
    /// All bitmaps, slot-major: slot `s` owns `words[s·stride..(s+1)·stride]`.
    words: Vec<u64>,
    /// Per-slot fill counters (the paper's `L`), parallel to the arena.
    fills: Vec<usize>,
    /// Per-slot keys, in slot (= first-insert) order.
    keys: Vec<u64>,
    /// Per-slot hashers, seeded by `sketch_seed(fleet seed, key)`.
    hashers: Vec<H>,
    index: SlotIndex,
    /// Direct `key → slot` table for keys below
    /// [`FleetArena::DENSE_KEY_CACHE`] (the §7.2 shape: link indices).
    /// Authoritative for `key < dense_slots.len()`; the open-addressed
    /// index covers the sparse remainder. One bounds check and one load
    /// replace a hash probe on the batch router's hottest pass.
    dense_slots: Vec<u32>,
    router: RouterScratch,
}

impl<H: Hasher64 + FromSeed> FleetArena<H> {
    /// Create an empty arena fleet for cardinalities in `[1, n_max]` with
    /// `m` bits per key.
    ///
    /// # Errors
    ///
    /// See [`crate::Dimensioning::from_memory`].
    pub fn new(n_max: u64, m: usize, seed: u64) -> Result<Self, SBitmapError> {
        Ok(Self::with_schedule(
            Arc::new(RateSchedule::from_memory(n_max, m)?),
            seed,
        ))
    }

    /// Create an arena fleet over an existing shared schedule.
    pub fn with_schedule(schedule: Arc<RateSchedule>, seed: u64) -> Self {
        let stride = schedule.dims().m().div_ceil(64);
        Self {
            schedule,
            seed,
            stride,
            words: Vec::new(),
            fills: Vec::new(),
            keys: Vec::new(),
            hashers: Vec::new(),
            index: SlotIndex::new(),
            dense_slots: Vec::new(),
            router: RouterScratch::default(),
        }
    }

    /// Largest key served by the direct `dense_slots` table. Link
    /// indices (the paper's deployment) sit far below this; the table
    /// grows only to the largest dense key actually seen, so its
    /// worst-case footprint is 256 KiB.
    pub(crate) const DENSE_KEY_CACHE: u64 = 1 << 16;

    /// The slot for `key`, if present: one load for dense keys, a hash
    /// probe for sparse ones.
    #[inline]
    fn lookup_slot(&self, key: u64) -> Option<u32> {
        if key < Self::DENSE_KEY_CACHE {
            // `dense_slots` is authoritative below its length: every
            // dense-key creation records itself here.
            let k = key as usize;
            if k < self.dense_slots.len() {
                let slot = self.dense_slots[k];
                return (slot != EMPTY).then_some(slot);
            }
            return None;
        }
        self.index.get(key)
    }

    /// The slot for `key`, creating it (zero bitmap, derived hasher) if
    /// absent.
    fn slot_for(&mut self, key: u64) -> usize {
        if let Some(slot) = self.lookup_slot(key) {
            return slot as usize;
        }
        let slot = self.keys.len();
        assert!(slot < EMPTY as usize, "fleet arena slot count overflow");
        self.keys.push(key);
        self.fills.push(0);
        self.hashers.push(H::from_seed(sketch_seed(self.seed, key)));
        self.words.resize(self.words.len() + self.stride, 0);
        self.index.insert(key, slot as u32);
        if key < Self::DENSE_KEY_CACHE {
            let k = key as usize;
            if k >= self.dense_slots.len() {
                self.dense_slots.resize(k + 1, EMPTY);
            }
            self.dense_slots[k] = slot as u32;
        }
        slot
    }

    /// Ensure `key` has a (possibly empty) sketch, as a first insert
    /// would. Useful when a downstream consumer expects a record for
    /// every key of a known universe, observed or not.
    pub fn touch(&mut self, key: u64) {
        self.slot_for(key);
    }

    /// The arena region and fill counter of `slot`, as the sketch update
    /// needs them. Split borrows: the caller keeps `self.hashers` and
    /// `self.schedule` available immutably.
    #[inline]
    fn region(words: &mut [u64], stride: usize, m: usize, slot: usize) -> SliceBitmap<'_> {
        SliceBitmap::new(&mut words[slot * stride..(slot + 1) * stride], m)
            .expect("stride is ⌈m/64⌉ by construction")
    }

    /// Feed one pre-split hash into `slot`'s sketch — the exact update of
    /// [`SBitmap::insert_hash`] over the arena region.
    #[inline]
    fn insert_hash_at(&mut self, slot: usize, hash: u64) -> bool {
        let m = self.schedule.dims().m();
        let mut bits = Self::region(&mut self.words, self.stride, m, slot);
        let (bucket, u) = self.schedule.split().split(hash);
        if bits.get_unchecked(bucket) {
            return false;
        }
        let fill = &mut self.fills[slot];
        debug_assert!(*fill < self.schedule.len());
        if u < self.schedule.threshold(*fill + 1) {
            bits.set_unchecked(bucket);
            *fill += 1;
            true
        } else {
            false
        }
    }

    /// Insert `item` into the sketch for `key` (created if absent).
    /// Returns `true` if the update set a new bit.
    pub fn insert_u64(&mut self, key: u64, item: u64) -> bool {
        let slot = self.slot_for(key);
        let hash = self.hashers[slot].hash_u64(item);
        self.insert_hash_at(slot, hash)
    }

    /// Insert a byte-string item into the sketch for `key`.
    pub fn insert_bytes(&mut self, key: u64, item: &[u8]) -> bool {
        let slot = self.slot_for(key);
        let hash = self.hashers[slot].hash_bytes(item);
        self.insert_hash_at(slot, hash)
    }

    /// Batched per-key ingest: feed `items` to `key`'s sketch in order,
    /// returning how many bits were newly set. Bit-identical to calling
    /// [`FleetArena::insert_u64`] per item; hashes are batch-computed in
    /// 256-item stack chunks and probes are prefetch-pipelined, exactly
    /// like [`SBitmap::insert_u64s`].
    pub fn insert_u64s(&mut self, key: u64, items: &[u64]) -> u64 {
        let slot = self.slot_for(key);
        self.ingest_slot(slot, items)
    }

    /// The batched sketch update over one arena region.
    fn ingest_slot(&mut self, slot: usize, items: &[u64]) -> u64 {
        let m = self.schedule.dims().m();
        let hasher = &self.hashers[slot];
        let mut bits = Self::region(&mut self.words, self.stride, m, slot);
        let fill = &mut self.fills[slot];
        let mut buf = [0u64; BATCH_CHUNK];
        let mut newly = 0u64;
        for chunk in items.chunks(BATCH_CHUNK) {
            let hashes = &mut buf[..chunk.len()];
            hasher.hash_u64_batch(chunk, hashes);
            newly += probe_hashes(&self.schedule, bits.words_mut(), fill, hashes);
        }
        newly
    }

    /// Ingest a batch of `(key, item)` pairs through the radix router,
    /// returning how many bits were newly set across the fleet.
    ///
    /// The router is a two-pass counting sort into arena-owned scratch:
    ///
    /// 1. map every key to its slot — one direct load for dense keys,
    ///    a hash probe for sparse ones, creating slots for new keys —
    ///    and count pairs per slot;
    /// 2. prefix-sum the counts and scatter the item **hashes** into one
    ///    reused buffer, grouped by slot with arrival order preserved
    ///    (the slot is known here, so per-key hashing fuses into the
    ///    scatter instead of being a separate chunked pass);
    /// 3. run each slot's contiguous hash run through the
    ///    prefetch-pipelined probe loop, warming the next occupied
    ///    slot's arena region while the current one is being filled.
    ///
    /// Per-key sketch state afterwards is bit-identical to feeding
    /// [`FleetArena::insert_u64`] pair by pair. After warm-up the call
    /// performs no allocation: the scratch grows to the largest batch
    /// and slot count seen, then stabilizes.
    pub fn insert_batch(&mut self, pairs: &[(u64, u64)]) -> u64 {
        if pairs.is_empty() {
            return 0;
        }
        assert!(
            pairs.len() < u32::MAX as usize,
            "batch too large for u32 offsets"
        );
        // Route in blocks: the scatter buffer and the second read of the
        // block stay cache-resident instead of streaming megabytes
        // through DRAM twice, and the arena regions stay hot across
        // blocks. Blocks preserve arrival order (outer loop in order,
        // counting sort stable within), so per-key state is unchanged.
        const BLOCK: usize = 32 * 1024;
        let mut newly = 0u64;
        for block in pairs.chunks(BLOCK) {
            newly += self.insert_batch_dense(block);
        }
        newly
    }

    /// Dense-key router (the §7.2 shape: keys are link indices). Counts
    /// land directly in a key-indexed table — no per-pair slot lookup,
    /// no per-pair slot buffer — and slots for new keys are created once
    /// per *key* between the counting and scatter passes. Falls back to
    /// [`FleetArena::insert_batch_general`] the moment a key exceeds the
    /// dense bound.
    fn insert_batch_dense(&mut self, pairs: &[(u64, u64)]) -> u64 {
        let mut r = std::mem::take(&mut self.router);

        // Pass 1: count per key, growing the table on demand (fused max
        // scan — the batch is read only twice in total). Dense only
        // while the counting table stays small relative to the batch —
        // a lone pair with key 60000 must not sweep a 60001-entry table
        // (same guard as the legacy fleet's dense path).
        let bound = Self::DENSE_KEY_CACHE.min(pairs.len().saturating_mul(4).max(64) as u64);
        r.offsets.clear();
        let mut dense = true;
        for &(key, _) in pairs {
            let k = key as usize;
            // Saturating: `key` can be anything up to `u64::MAX`; any
            // key at or beyond the bound bails before indexing.
            if k.saturating_add(2) > r.offsets.len() {
                if key >= bound {
                    dense = false;
                    break;
                }
                r.offsets.resize(k + 2, 0);
            }
            r.offsets[k + 1] += 1;
        }
        if !dense {
            self.router = r;
            return self.insert_batch_general(pairs);
        }
        let buckets = r.offsets.len() - 1;
        // Prefix sums: offsets[k] = start of key k's run.
        for k in 1..=buckets {
            r.offsets[k] += r.offsets[k - 1];
        }
        debug_assert_eq!(r.offsets[buckets] as usize, pairs.len());
        // Create slots for the batch's first-seen keys — once per
        // *present* key (nonempty run), not per pair — and record the
        // bucket → slot map for the scatter and probe passes. Absent
        // keys in [0, max_key) get no slot, matching the pair-by-pair
        // feed.
        r.run_slots.clear();
        r.run_slots.resize(buckets, EMPTY);
        for key in 0..buckets {
            if r.offsets[key + 1] > r.offsets[key] {
                r.run_slots[key] = self.slot_for(key as u64) as u32;
            }
        }
        shift_to_cursors(&mut r.offsets);

        // Pass 2: stable hash-and-scatter. The slot (hence the per-key
        // hasher) is one bucket-table load away; per-item hash chains
        // are independent, so the CPU pipelines them across iterations.
        if r.grouped.len() < pairs.len() {
            // Growth only: every element of [0, pairs.len()) is written
            // exactly once by a cursor before being read, so stale tail
            // contents are never observed and no per-call memset is paid.
            r.grouped.resize(pairs.len(), 0);
        }
        for &(key, item) in pairs {
            let slot = r.run_slots[key as usize] as usize;
            let cursor = &mut r.offsets[key as usize + 1];
            r.grouped[*cursor as usize] = self.hashers[slot].hash_u64(item);
            *cursor += 1;
        }

        let newly = self.ingest_runs(&r.offsets, &r.run_slots, &r.grouped);
        self.router = r;
        newly
    }

    /// General router for arbitrary keys: pass 1 maps every pair to its
    /// slot (hash probe for sparse keys) and records it, the rest is the
    /// same counting sort over slots.
    fn insert_batch_general(&mut self, pairs: &[(u64, u64)]) -> u64 {
        let mut r = std::mem::take(&mut self.router);

        // Pass 1: key → slot per pair (creating new slots), then count.
        r.pair_slots.clear();
        r.pair_slots.extend(pairs.iter().map(|&(key, _)| {
            let slot = self.slot_for(key);
            slot as u32
        }));
        let n_slots = self.keys.len();
        r.offsets.clear();
        r.offsets.resize(n_slots + 1, 0);
        for &slot in &r.pair_slots {
            r.offsets[slot as usize + 1] += 1;
        }
        // Prefix sums: offsets[s] = start of slot s's run in `grouped`.
        for s in 1..=n_slots {
            r.offsets[s] += r.offsets[s - 1];
        }
        debug_assert_eq!(r.offsets[n_slots] as usize, pairs.len());
        shift_to_cursors(&mut r.offsets);
        // Buckets are slots themselves here: the bucket → slot map is
        // the identity.
        r.run_slots.clear();
        r.run_slots.extend(0..n_slots as u32);

        // Pass 2: stable hash-and-scatter (preserves arrival order
        // within a slot).
        if r.grouped.len() < pairs.len() {
            r.grouped.resize(pairs.len(), 0);
        }
        for (&(_, item), &slot) in pairs.iter().zip(&r.pair_slots) {
            let cursor = &mut r.offsets[slot as usize + 1];
            r.grouped[*cursor as usize] = self.hashers[slot as usize].hash_u64(item);
            *cursor += 1;
        }

        let newly = self.ingest_runs(&r.offsets, &r.run_slots, &r.grouped);
        self.router = r;
        newly
    }

    /// Pass 3 of the router, shared by both key shapes: ingest each
    /// bucket's contiguous hash run into its slot, warming the next
    /// occupied slot's arena region one run ahead so its cold cache
    /// misses overlap with the current run's probes.
    fn ingest_runs(&mut self, offsets: &[u32], run_slots: &[u32], grouped: &[u64]) -> u64 {
        let mut newly = 0u64;
        let mut pending: Option<(usize, u32, u32)> = None;
        for bucket in 0..run_slots.len() {
            let start = offsets[bucket];
            let end = offsets[bucket + 1];
            if end == start {
                continue;
            }
            let slot = run_slots[bucket] as usize;
            if let Some((prev, ps, pe)) = pending.replace((slot, start, end)) {
                self.prefetch_region(slot);
                newly += self.ingest_slot_hashes(prev, &grouped[ps as usize..pe as usize]);
            }
        }
        if let Some((last, ps, pe)) = pending {
            newly += self.ingest_slot_hashes(last, &grouped[ps as usize..pe as usize]);
        }
        newly
    }

    /// The probe half of the sketch update over one arena region:
    /// `hashes` are already per-key hashed, in arrival order.
    fn ingest_slot_hashes(&mut self, slot: usize, hashes: &[u64]) -> u64 {
        let m = self.schedule.dims().m();
        let mut bits = Self::region(&mut self.words, self.stride, m, slot);
        probe_hashes(
            &self.schedule,
            bits.words_mut(),
            &mut self.fills[slot],
            hashes,
        )
    }

    /// Warm the leading cache lines of `slot`'s arena region.
    #[inline]
    fn prefetch_region(&self, slot: usize) {
        let base = slot * self.stride;
        // Four 64-byte lines = the first 32 words of the region.
        for line in 0..4usize {
            sbitmap_bitvec::prefetch_word(&self.words, base + line * 8);
        }
    }

    /// Estimate for one key; `None` if the key has never been inserted.
    pub fn estimate(&self, key: u64) -> Option<f64> {
        let slot = self.lookup_slot(key)? as usize;
        Some(self.schedule.estimate_at(self.fills[slot]))
    }

    /// Fill counter for one key; `None` if the key has never been
    /// inserted.
    pub fn fill(&self, key: u64) -> Option<usize> {
        Some(self.fills[self.lookup_slot(key)? as usize])
    }

    /// Keys with a sketch, in ascending order.
    pub fn keys_sorted(&self) -> Vec<u64> {
        let mut keys = self.keys.clone();
        keys.sort_unstable();
        keys
    }

    /// Keys with a sketch, in slot (= first-insert) order — the raw
    /// backing list, no copy, no sort. For callers that aggregate keys
    /// across several arenas (the window ring) and sort once at the end
    /// instead of paying a clone + sort per arena.
    #[inline]
    pub fn keys_unsorted(&self) -> &[u64] {
        &self.keys
    }

    /// `(key, slot)` pairs in ascending key order — the canonical
    /// iteration order shared with [`crate::SketchFleet`].
    fn slots_by_key(&self) -> Vec<(u64, usize)> {
        let mut pairs: Vec<(u64, usize)> =
            self.keys.iter().enumerate().map(|(s, &k)| (k, s)).collect();
        pairs.sort_unstable_by_key(|&(k, _)| k);
        pairs
    }

    /// All `(key, estimate)` pairs, in ascending key order.
    pub fn estimates(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.slots_by_key()
            .into_iter()
            .map(|(key, slot)| (key, self.schedule.estimate_at(self.fills[slot])))
    }

    /// Materialize one key's sketch as a standalone [`SBitmap`] (words
    /// copied out of the arena); `None` if the key has never been
    /// inserted. The result is bit-identical to the sketch a
    /// [`crate::SketchFleet`] fed the same stream would hold, so its
    /// checkpoint bytes are interchangeable.
    pub fn export_sketch(&self, key: u64) -> Option<SBitmap<H>> {
        let slot = self.lookup_slot(key)? as usize;
        let m = self.schedule.dims().m();
        let words = self.words[slot * self.stride..(slot + 1) * self.stride].to_vec();
        let bitmap = Bitmap::from_words(words, m).expect("arena region is a valid bitmap");
        let mut sketch = SBitmap::with_shared_schedule(
            self.schedule.clone(),
            H::from_seed(sketch_seed(self.seed, key)),
        );
        sketch.restore_state(bitmap, self.fills[slot]);
        Some(sketch)
    }

    /// One key's raw record — fill counter and borrowed bitmap words —
    /// without materializing a sketch (checkpoint writers).
    pub(crate) fn slot_record(&self, key: u64) -> Option<(usize, &[u64])> {
        let slot = self.lookup_slot(key)? as usize;
        Some((
            self.fills[slot],
            &self.words[slot * self.stride..(slot + 1) * self.stride],
        ))
    }

    /// Borrow one key's raw bitmap words (`⌈m/64⌉` of them); `None` if
    /// the key has never been inserted. This is the read side delta
    /// encoders snapshot between rounds — no copy, no sketch
    /// materialization.
    pub fn slot_words(&self, key: u64) -> Option<&[u64]> {
        let slot = self.lookup_slot(key)? as usize;
        Some(&self.words[slot * self.stride..(slot + 1) * self.stride])
    }

    /// OR a decoded delta-record body onto `key`'s bitmap (the slot is
    /// created if absent — a round-0 baseline record does exactly that),
    /// updating the fill counter by the newly-set count. Returns how
    /// many bits were newly set.
    ///
    /// Infallible by construction: [`crate::codec::FleetDeltaFrame`]
    /// decoding already bounds every run inside the stride and every
    /// sparse position below `m`, and the caller
    /// ([`crate::WindowedFleet::absorb_delta_from`]) has verified the
    /// frame's dimensioning matches this arena's.
    pub(crate) fn or_apply_delta(&mut self, key: u64, body: &crate::codec::DeltaBody) -> u64 {
        let slot = self.slot_for(key);
        let base = slot * self.stride;
        let mut newly = 0usize;
        match body {
            crate::codec::DeltaBody::Runs(runs) => {
                let kernels = sbitmap_bitvec::kernels::WordKernels::dispatched();
                for run in runs {
                    let start = base + run.start as usize;
                    let dst = &mut self.words[start..start + run.words.len()];
                    newly += kernels.union_or_count(dst, &run.words);
                }
            }
            crate::codec::DeltaBody::Sparse(positions) => {
                for &pos in positions {
                    let w = base + (pos as usize >> 6);
                    let bit = 1u64 << (pos & 63);
                    if self.words[w] & bit == 0 {
                        self.words[w] |= bit;
                        newly += 1;
                    }
                }
            }
        }
        self.fills[slot] += newly;
        newly as u64
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when no key has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Keys whose sketches have saturated (estimates pinned near `N`) —
    /// the operational signal to re-dimension. Ascending key order.
    pub fn saturated_keys(&self) -> Vec<u64> {
        let b_max = self.schedule.dims().b_max();
        let mut keys: Vec<u64> = self
            .keys
            .iter()
            .zip(&self.fills)
            .filter(|&(_, &fill)| fill >= b_max)
            .map(|(&k, _)| k)
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Total sketch payload across the fleet, in bits (paper accounting:
    /// the shared schedule and the key index are configuration, not
    /// state).
    pub fn memory_bits(&self) -> usize {
        self.keys.len() * self.schedule.dims().m()
    }

    /// Reset every sketch, keeping keys, slots and scratch allocations.
    pub fn reset_all(&mut self) {
        self.words.fill(0);
        self.fills.fill(0);
    }

    /// Drop all keys, keeping the arena and scratch allocations for
    /// reuse.
    pub fn clear(&mut self) {
        self.words.clear();
        self.fills.clear();
        self.keys.clear();
        self.hashers.clear();
        self.index.clear();
        self.dense_slots.clear();
    }

    /// The shared schedule.
    pub fn schedule(&self) -> &Arc<RateSchedule> {
        &self.schedule
    }

    /// The fleet seed per-key hashers are derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Bitwise-OR `other`'s per-key bitmaps into `self`, creating slots
    /// for keys `self` has not seen. Returns how many bits were newly
    /// set across the fleet.
    ///
    /// This is the **storage-level union**, not a distinct-counting
    /// merge: the S-bitmap is not mergeable (whether an item is sampled
    /// depends on the sketch-local fill at its arrival time), so the
    /// union of two arenas fed *overlapping* streams is not the arena of
    /// the combined stream. The two sound uses are:
    ///
    /// * reassembling **disjoint** state — e.g. a windowed collector
    ///   folding per-shard epoch checkpoints whose key sets never
    ///   overlap (each link is owned by one shard), where the union *is*
    ///   the state a single node would have built;
    /// * the [`crate::WindowedFleet`] epoch-union estimator, which ORs
    ///   one key's per-epoch bitmaps and re-reads the fill — a
    ///   documented sliding-window heuristic, not the paper's estimator.
    ///
    /// # Errors
    ///
    /// The two fleets must share a configuration: same `(n_max, m, d)`
    /// dimensioning and the same fleet seed (per-key hashers are derived
    /// from it, so unioning across seeds would mix incompatible bucket
    /// mappings).
    pub fn union_from(&mut self, other: &Self) -> Result<u64, SBitmapError> {
        let (a, b) = (self.schedule.dims(), other.schedule.dims());
        if a.n_max() != b.n_max()
            || a.m() != b.m()
            || self.schedule.split().sampling_bits() != other.schedule.split().sampling_bits()
        {
            return Err(SBitmapError::invalid(
                "union",
                "fleets have different dimensioning".to_string(),
            ));
        }
        if self.seed != other.seed {
            return Err(SBitmapError::invalid(
                "union",
                "fleets have different seeds".to_string(),
            ));
        }
        let kernels = sbitmap_bitvec::kernels::WordKernels::dispatched();
        let mut newly = 0u64;
        // One reused copy buffer for the whole union: the borrow of
        // `other` must end before `self` is mutated (`slot_for` may grow
        // `self.words`), but that costs one allocation total, not one
        // per key.
        let mut src = Vec::new();
        for key in other.keys_sorted() {
            let (_, words) = other.slot_record(key).expect("key listed");
            src.clear();
            src.extend_from_slice(words);
            let slot = self.slot_for(key);
            let dst = &mut self.words[slot * self.stride..(slot + 1) * self.stride];
            let set = kernels.union_or_count(dst, &src);
            self.fills[slot] += set;
            newly += set as u64;
        }
        Ok(newly)
    }

    /// Bitwise-OR a [`crate::sparse::SparseFleet`]'s per-key bitmaps into
    /// `self`, creating slots for keys `self` has not seen. The sparse
    /// counterpart of [`FleetArena::union_from`] — same storage-level
    /// union semantics and the same soundness caveats (disjoint key sets,
    /// or the window's epoch-union estimator), with each sparse record
    /// expanded to its full-stride word image on the fly. Returns how
    /// many bits were newly set.
    ///
    /// # Errors
    ///
    /// Same compatibility requirements as [`FleetArena::union_from`]:
    /// identical `(n_max, m, sampling_bits)` dimensioning and the same
    /// fleet seed.
    pub fn union_from_sparse(
        &mut self,
        other: &crate::sparse::SparseFleet<H>,
    ) -> Result<u64, SBitmapError> {
        let (a, b) = (self.schedule.dims(), other.schedule().dims());
        if a.n_max() != b.n_max()
            || a.m() != b.m()
            || self.schedule.split().sampling_bits() != other.schedule().split().sampling_bits()
        {
            return Err(SBitmapError::invalid(
                "union",
                "fleets have different dimensioning".to_string(),
            ));
        }
        if self.seed != other.seed() {
            return Err(SBitmapError::invalid(
                "union",
                "fleets have different seeds".to_string(),
            ));
        }
        let kernels = sbitmap_bitvec::kernels::WordKernels::dispatched();
        let mut newly = 0u64;
        let mut src = Vec::new();
        for (key, ordinal) in other.ordinals_by_key() {
            other.copy_full_words(ordinal, &mut src);
            let slot = self.slot_for(key);
            let dst = &mut self.words[slot * self.stride..(slot + 1) * self.stride];
            let set = kernels.union_or_count(dst, &src);
            self.fills[slot] += set;
            newly += set as u64;
        }
        Ok(newly)
    }

    /// Adopt one key's restored state (checkpoint/reshard path): the
    /// bitmap words and the matching fill counter.
    pub(crate) fn restore_slot(
        &mut self,
        key: u64,
        fill: usize,
        words: Vec<u64>,
    ) -> Result<(), SBitmapError> {
        let fail = |msg: &str| SBitmapError::invalid("checkpoint", msg.to_string());
        let m = self.schedule.dims().m();
        // Bitmap::from_words validates the word count and that no bit is
        // set beyond the logical length.
        let bitmap =
            Bitmap::from_words(words, m).map_err(|e| SBitmapError::invalid("checkpoint", e))?;
        if bitmap.count_ones() != fill {
            return Err(fail("fill counter disagrees with bitmap"));
        }
        if self.lookup_slot(key).is_some() {
            return Err(fail("duplicate key in fleet checkpoint"));
        }
        let slot = self.slot_for(key);
        self.words[slot * self.stride..(slot + 1) * self.stride].copy_from_slice(bitmap.words());
        self.fills[slot] = fill;
        Ok(())
    }
}

impl<H: Hasher64 + FromSeed> KeyedEstimates for FleetArena<H> {
    fn keys_sorted(&self) -> Vec<u64> {
        FleetArena::keys_sorted(self)
    }

    fn estimate(&self, key: u64) -> Option<f64> {
        FleetArena::estimate(self, key)
    }
}

/// Arena fleets serialize exactly like [`crate::SketchFleet`] — same
/// [`CounterKind::SketchFleet`] tag, same payload (config header, then
/// `(key, fill, words)` records sorted by key) — so the two flavors'
/// checkpoints are interchangeable: a fleet written by either restores
/// into either.
impl<H: Hasher64 + FromSeed> Checkpoint for FleetArena<H> {
    const KIND: CounterKind = CounterKind::SketchFleet;

    fn write_payload(&self, out: &mut PayloadWriter) {
        let dims = self.schedule.dims();
        out.u64(dims.n_max());
        out.u64(dims.m() as u64);
        out.u32(self.schedule.split().sampling_bits());
        out.u64(self.seed);
        out.u64(self.keys.len() as u64);
        for (key, slot) in self.slots_by_key() {
            out.u64(key);
            out.u64(self.fills[slot] as u64);
            out.words(&self.words[slot * self.stride..(slot + 1) * self.stride]);
        }
    }

    fn read_payload(r: &mut PayloadReader<'_>) -> Result<Self, SBitmapError> {
        let n_max = r.u64()?;
        let m = r.len_u64()?;
        // The schedule rebuild below is O(m) and runs before any
        // m-sized record can bound `m` against the payload — cap it
        // (see `codec::MAX_WIRE_M`).
        crate::codec::check_wire_m(m)?;
        let sampling_bits = r.u32()?;
        let seed = r.u64()?;
        let count = r.len_u64()?;
        let dims = crate::dimensioning::Dimensioning::from_memory(n_max, m)?;
        let schedule = Arc::new(RateSchedule::new(dims, sampling_bits)?);
        let mut fleet = FleetArena::with_schedule(schedule, seed);
        for _ in 0..count {
            let key = r.u64()?;
            let fill = r.len_u64()?;
            let words = r.words(m.div_ceil(64))?;
            fleet.restore_slot(key, fill, words)?;
        }
        Ok(fleet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::SketchFleet;

    fn arena() -> FleetArena {
        FleetArena::new(100_000, 4_000, 9).unwrap()
    }

    fn fleet() -> SketchFleet {
        SketchFleet::new(100_000, 4_000, 9).unwrap()
    }

    #[test]
    fn scalar_inserts_match_hashmap_fleet_bit_for_bit() {
        let mut a = arena();
        let mut f = fleet();
        for i in 0..20_000u64 {
            let key = i % 7;
            let item = i / 7 % 2_500;
            a.insert_u64(key, item);
            f.insert_u64(key, item);
        }
        assert_eq!(a.len(), f.len());
        for (key, sketch) in f.sketches() {
            assert_eq!(a.fill(key), Some(sketch.fill()), "fill for key {key}");
            let exported = a.export_sketch(key).unwrap();
            assert_eq!(exported.bitmap(), sketch.bitmap(), "bitmap for key {key}");
            assert_eq!(exported.seed(), sketch.seed(), "seed for key {key}");
        }
    }

    #[test]
    fn insert_batch_matches_pairwise_feed() {
        let mut batched = arena();
        let mut scalar = arena();
        let pairs: Vec<(u64, u64)> = (0..30_000u64).map(|i| (i % 7, i / 7 % 3_000)).collect();
        for &(k, item) in &pairs {
            scalar.insert_u64(k, item);
        }
        let newly = batched.insert_batch(&pairs);
        assert_eq!(batched.len(), scalar.len());
        let mut total = 0u64;
        for key in 0..7u64 {
            assert_eq!(batched.estimate(key), scalar.estimate(key), "key {key}");
            assert_eq!(
                batched.export_sketch(key).unwrap().bitmap(),
                scalar.export_sketch(key).unwrap().bitmap(),
                "bitmap for key {key}"
            );
            total += batched.fill(key).unwrap() as u64;
        }
        assert_eq!(newly, total, "newly-set count must equal total fill");
    }

    #[test]
    fn repeated_batches_reuse_scratch_without_cross_talk() {
        let mut batched = arena();
        let mut scalar = arena();
        let a: Vec<(u64, u64)> = (0..5_000u64).map(|i| (i % 5, i)).collect();
        let b: Vec<(u64, u64)> = (0..5_000u64).map(|i| (i % 11, i + 70_000)).collect();
        let c: Vec<(u64, u64)> = (0..500u64).map(|i| (u64::MAX - (i % 2), i)).collect();
        for pairs in [&a, &b, &c] {
            batched.insert_batch(pairs);
            for &(k, item) in pairs.iter() {
                scalar.insert_u64(k, item);
            }
        }
        assert_eq!(batched.len(), scalar.len());
        for key in batched.keys_sorted() {
            assert_eq!(batched.fill(key), scalar.fill(key), "key {key}");
        }
    }

    #[test]
    fn sparse_and_colliding_keys_route_correctly() {
        // Keys engineered to stress the open-addressed index: large,
        // clustered, and hitting the same probe neighborhoods.
        let mut a = arena();
        let mut f = fleet();
        let keys = [u64::MAX, u64::MAX - 16, 0, 16, 1 << 60, (1 << 60) + 16];
        let pairs: Vec<(u64, u64)> = (0..12_000u64)
            .map(|i| (keys[(i % 6) as usize], i / 6 % 1_500))
            .collect();
        a.insert_batch(&pairs);
        f.insert_batch(&pairs);
        for &k in &keys {
            assert_eq!(a.estimate(k), f.estimate(k), "key {k}");
        }
    }

    #[test]
    fn checkpoints_are_byte_identical_and_interchangeable() {
        let mut a = arena();
        let mut f = fleet();
        let pairs: Vec<(u64, u64)> = (0..20_000u64).map(|i| (i % 11, i / 11 % 1_500)).collect();
        a.insert_batch(&pairs);
        f.insert_batch(&pairs);
        let arena_bytes = a.checkpoint();
        let fleet_bytes = f.checkpoint();
        assert_eq!(arena_bytes, fleet_bytes, "checkpoint bytes must match");
        // Cross-restore both ways.
        let arena_from_fleet: FleetArena = Checkpoint::restore(&fleet_bytes).unwrap();
        let fleet_from_arena: SketchFleet = Checkpoint::restore(&arena_bytes).unwrap();
        assert_eq!(arena_from_fleet.len(), 11);
        assert_eq!(fleet_from_arena.len(), 11);
        // Restored fleets keep counting identically.
        let mut x = arena_from_fleet;
        let mut y = fleet_from_arena;
        x.insert_u64(3, 999_999);
        y.insert_u64(3, 999_999);
        assert_eq!(x.estimate(3), y.estimate(3));
        assert_eq!(x.checkpoint(), y.checkpoint());
    }

    #[test]
    fn empty_and_touched_keys_round_trip() {
        let mut a = arena();
        assert_eq!(a.insert_batch(&[]), 0);
        assert!(a.is_empty());
        a.touch(42);
        assert_eq!(a.len(), 1);
        assert_eq!(a.estimate(42), Some(0.0));
        assert_eq!(a.fill(42), Some(0));
        let restored: FleetArena = Checkpoint::restore(&a.checkpoint()).unwrap();
        assert_eq!(restored.estimate(42), Some(0.0));
    }

    #[test]
    fn saturation_reporting_matches_fleet() {
        let mut a: FleetArena = FleetArena::new(1_000, 120, 1).unwrap();
        let mut f: SketchFleet = SketchFleet::new(1_000, 120, 1).unwrap();
        for i in 0..10_000u64 {
            a.insert_u64(42, i);
            f.insert_u64(42, i);
        }
        a.insert_u64(7, 1);
        f.insert_u64(7, 1);
        assert_eq!(a.saturated_keys(), vec![42]);
        assert_eq!(a.saturated_keys(), f.saturated_keys());
        assert_eq!(a.checkpoint(), f.checkpoint(), "saturated checkpoints");
    }

    #[test]
    fn estimates_are_sorted_by_key() {
        let mut a = arena();
        for key in [9u64, 2, 77, 41, 5] {
            a.insert_u64(key, 1);
        }
        let keys: Vec<u64> = a.estimates().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![2, 5, 9, 41, 77]);
        assert_eq!(a.keys_sorted(), keys);
    }

    #[test]
    fn reset_and_clear_semantics() {
        let mut a = arena();
        a.insert_u64(5, 1);
        a.insert_u64(6, 2);
        assert_eq!(a.memory_bits(), 8_000);
        a.reset_all();
        assert_eq!(a.len(), 2);
        assert_eq!(a.estimate(5), Some(0.0));
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.estimate(5), None);
        // The arena is reusable after clear.
        a.insert_u64(5, 1);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn index_survives_growth_past_initial_capacity() {
        let mut a = arena();
        for key in 0..500u64 {
            a.insert_u64(key * 1_000_003, key);
        }
        assert_eq!(a.len(), 500);
        for key in 0..500u64 {
            assert!(a.fill(key * 1_000_003).is_some(), "key {key} lost");
        }
        assert_eq!(a.estimate(1), None);
    }

    #[test]
    fn restore_rejects_tampered_fill() {
        let mut a = arena();
        a.insert_u64(1, 1);
        let bytes = a.checkpoint();
        let payload_start = 6;
        let payload_end = bytes.len() - 8;
        let mut payload = bytes[payload_start..payload_end].to_vec();
        // Header is 36 bytes + key(8): fill sits at offset 44.
        payload[44..52].copy_from_slice(&3u64.to_le_bytes());
        let reframed = crate::codec::frame(CounterKind::SketchFleet, &payload);
        let err = <FleetArena as Checkpoint>::restore(&reframed).unwrap_err();
        assert!(err.to_string().contains("fill"), "{err}");
    }
}
