//! A fleet of S-bitmaps sharing one rate schedule — the deployment
//! pattern of the paper's §7.2 (600 backbone links, one configuration).
//!
//! The schedule (threshold table) is a pure function of `(N, m, d)` and
//! is by far the largest per-sketch allocation (`8m` bytes vs `m/8`
//! bytes of bitmap). Sharing it across a fleet keeps per-key overhead at
//! the paper's accounting: `m` bits of bitmap plus a fill counter.

use std::collections::HashMap;
use std::sync::Arc;

use sbitmap_hash::{FromSeed, Hasher64, SplitMix64Hasher};

use crate::counter::DistinctCounter;
use crate::schedule::RateSchedule;
use crate::sketch::SBitmap;
use crate::SBitmapError;

/// A keyed collection of identically-configured S-bitmaps.
///
/// Sketches are created lazily on first insert for a key. Each key's
/// sketch hashes with a seed derived from `(fleet seed, key)`, so
/// distinct keys' estimates are independent.
#[derive(Debug, Clone)]
pub struct SketchFleet<H: Hasher64 + FromSeed = SplitMix64Hasher> {
    schedule: Arc<RateSchedule>,
    seed: u64,
    sketches: HashMap<u64, SBitmap<H>>,
}

impl<H: Hasher64 + FromSeed> SketchFleet<H> {
    /// Create an empty fleet for cardinalities in `[1, n_max]` with `m`
    /// bits per key.
    ///
    /// # Errors
    ///
    /// See [`crate::Dimensioning::from_memory`].
    pub fn new(n_max: u64, m: usize, seed: u64) -> Result<Self, SBitmapError> {
        Ok(Self::with_schedule(
            Arc::new(RateSchedule::from_memory(n_max, m)?),
            seed,
        ))
    }

    /// Create a fleet over an existing shared schedule.
    pub fn with_schedule(schedule: Arc<RateSchedule>, seed: u64) -> Self {
        Self {
            schedule,
            seed,
            sketches: HashMap::new(),
        }
    }

    /// Insert `item` into the sketch for `key` (created if absent).
    pub fn insert_u64(&mut self, key: u64, item: u64) {
        self.sketch_mut(key).insert_u64(item);
    }

    /// Insert a byte-string item into the sketch for `key`.
    pub fn insert_bytes(&mut self, key: u64, item: &[u8]) {
        self.sketch_mut(key).insert_bytes(item);
    }

    fn sketch_mut(&mut self, key: u64) -> &mut SBitmap<H> {
        let schedule = &self.schedule;
        let seed = self.seed;
        self.sketches.entry(key).or_insert_with(|| {
            let sketch_seed = sbitmap_hash::mix64(seed ^ key.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            SBitmap::with_shared_schedule(schedule.clone(), H::from_seed(sketch_seed))
        })
    }

    /// Estimate for one key; `None` if the key has never been inserted.
    pub fn estimate(&self, key: u64) -> Option<f64> {
        self.sketches.get(&key).map(|s| s.estimate())
    }

    /// All `(key, estimate)` pairs, unordered.
    pub fn estimates(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.sketches.iter().map(|(&k, s)| (k, s.estimate()))
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.sketches.len()
    }

    /// `true` when no key has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.sketches.is_empty()
    }

    /// Keys whose sketches have saturated (estimates pinned near `N`) —
    /// the operational signal to re-dimension.
    pub fn saturated_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .sketches
            .iter()
            .filter(|(_, s)| s.is_saturated())
            .map(|(&k, _)| k)
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Total sketch payload across the fleet, in bits (paper accounting:
    /// the shared schedule is configuration, not state).
    pub fn memory_bits(&self) -> usize {
        self.sketches.values().map(DistinctCounter::memory_bits).sum()
    }

    /// Reset every sketch, keeping keys and allocations.
    pub fn reset_all(&mut self) {
        for s in self.sketches.values_mut() {
            s.reset();
        }
    }

    /// Drop all keys.
    pub fn clear(&mut self) {
        self.sketches.clear();
    }

    /// The shared schedule.
    pub fn schedule(&self) -> &Arc<RateSchedule> {
        &self.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> SketchFleet {
        SketchFleet::new(100_000, 4_000, 9).unwrap()
    }

    #[test]
    fn lazy_creation_and_estimates() {
        let mut f = fleet();
        assert!(f.is_empty());
        assert_eq!(f.estimate(3), None);
        for i in 0..5_000u64 {
            f.insert_u64(3, i);
        }
        for i in 0..500u64 {
            f.insert_u64(8, i);
        }
        assert_eq!(f.len(), 2);
        let e3 = f.estimate(3).unwrap();
        let e8 = f.estimate(8).unwrap();
        assert!((e3 / 5_000.0 - 1.0).abs() < 0.15, "{e3}");
        assert!((e8 / 500.0 - 1.0).abs() < 0.2, "{e8}");
    }

    #[test]
    fn keys_are_independent() {
        let mut f = fleet();
        // Identical items into two keys: per-key hashing differs, so the
        // touched buckets differ, but both estimates are correct.
        for i in 0..2_000u64 {
            f.insert_u64(1, i);
            f.insert_u64(2, i);
        }
        let e1 = f.estimate(1).unwrap();
        let e2 = f.estimate(2).unwrap();
        assert!((e1 / 2_000.0 - 1.0).abs() < 0.2);
        assert!((e2 / 2_000.0 - 1.0).abs() < 0.2);
        // With ~4.7% error, the two independent estimates almost surely
        // differ in their low digits.
        assert_ne!(e1, e2);
    }

    #[test]
    fn memory_scales_with_keys() {
        let mut f = fleet();
        f.insert_u64(1, 1);
        assert_eq!(f.memory_bits(), 4_000);
        f.insert_u64(2, 1);
        assert_eq!(f.memory_bits(), 8_000);
        // The schedule is shared: exactly one strong reference per fleet
        // plus one per sketch.
        assert!(Arc::strong_count(f.schedule()) >= 3);
    }

    #[test]
    fn saturation_reporting() {
        let mut f = SketchFleet::<SplitMix64Hasher>::new(1_000, 120, 1).unwrap();
        for i in 0..10_000u64 {
            f.insert_u64(42, i);
        }
        f.insert_u64(7, 1);
        assert_eq!(f.saturated_keys(), vec![42]);
    }

    #[test]
    fn reset_all_keeps_keys() {
        let mut f = fleet();
        f.insert_u64(5, 1);
        f.reset_all();
        assert_eq!(f.len(), 1);
        assert_eq!(f.estimate(5), Some(0.0));
        f.clear();
        assert!(f.is_empty());
    }
}
