//! A fleet of S-bitmaps sharing one rate schedule — the deployment
//! pattern of the paper's §7.2 (600 backbone links, one configuration).
//!
//! The schedule (threshold table) is a pure function of `(N, m, d)` and
//! is by far the largest per-sketch allocation (`8m` bytes vs `m/8`
//! bytes of bitmap). Sharing it across a fleet keeps per-key overhead at
//! the paper's accounting: `m` bits of bitmap plus a fill counter.

use std::collections::HashMap;
use std::sync::Arc;

use sbitmap_bitvec::Bitmap;
use sbitmap_hash::{FromSeed, Hasher64, SplitMix64Hasher};

use crate::codec::{Checkpoint, CounterKind, PayloadReader, PayloadWriter};
use crate::counter::{DistinctCounter, KeyedEstimates};
use crate::schedule::RateSchedule;
use crate::sketch::SBitmap;
use crate::SBitmapError;

/// Per-key sketch seed derivation: a pure function of `(fleet seed, key)`
/// so a restored fleet rebuilds identical hashers.
///
/// Public because every fleet flavor ([`SketchFleet`],
/// [`crate::FleetArena`], [`crate::ParallelFleet`]) and the stream
/// collector derive per-key seeds through this one function — which is
/// what makes their per-key sketches interchangeable and their
/// checkpoints mutually restorable.
pub fn sketch_seed(fleet_seed: u64, key: u64) -> u64 {
    sbitmap_hash::mix64(fleet_seed ^ key.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A keyed collection of identically-configured S-bitmaps.
///
/// Sketches are created lazily on first insert for a key. Each key's
/// sketch hashes with a seed derived from `(fleet seed, key)`, so
/// distinct keys' estimates are independent.
///
/// This is the pointer-rich flavor: one heap allocation per key behind a
/// `HashMap`. It is the most flexible (cheap key removal, sketches can
/// be borrowed individually) but the slowest to ingest at fleet scale;
/// [`crate::FleetArena`] packs the same state contiguously and is the
/// hot-path choice.
///
/// ```
/// use sbitmap_core::SketchFleet;
///
/// let mut fleet: SketchFleet = SketchFleet::new(100_000, 4_000, 7).unwrap();
/// let pairs: Vec<(u64, u64)> = (0..9_000u64).map(|i| (i % 3, i / 3)).collect();
/// fleet.insert_batch(&pairs);
/// assert_eq!(fleet.len(), 3);
/// for (key, estimate) in fleet.estimates() {
///     assert!(key < 3, "ascending key order starts at the smallest");
///     assert!((estimate / 3_000.0 - 1.0).abs() < 0.2);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SketchFleet<H: Hasher64 + FromSeed = SplitMix64Hasher> {
    schedule: Arc<RateSchedule>,
    seed: u64,
    sketches: HashMap<u64, SBitmap<H>>,
    /// Reused dense-path bucket table (`insert_batch_dense`): buckets are
    /// drained after every call but keep their capacity, so the steady
    /// state allocates nothing.
    scratch_buckets: Vec<Vec<u64>>,
    /// Reused sparse-path sort buffer (`insert_batch_sorted`).
    scratch_pairs: Vec<(u64, u64)>,
    /// Reused per-run item buffer (`insert_batch_sorted`).
    scratch_items: Vec<u64>,
}

impl<H: Hasher64 + FromSeed> SketchFleet<H> {
    /// Create an empty fleet for cardinalities in `[1, n_max]` with `m`
    /// bits per key.
    ///
    /// # Errors
    ///
    /// See [`crate::Dimensioning::from_memory`].
    pub fn new(n_max: u64, m: usize, seed: u64) -> Result<Self, SBitmapError> {
        Ok(Self::with_schedule(
            Arc::new(RateSchedule::from_memory(n_max, m)?),
            seed,
        ))
    }

    /// Create a fleet over an existing shared schedule.
    pub fn with_schedule(schedule: Arc<RateSchedule>, seed: u64) -> Self {
        Self {
            schedule,
            seed,
            sketches: HashMap::new(),
            scratch_buckets: Vec::new(),
            scratch_pairs: Vec::new(),
            scratch_items: Vec::new(),
        }
    }

    /// Insert `item` into the sketch for `key` (created if absent).
    pub fn insert_u64(&mut self, key: u64, item: u64) {
        self.sketch_mut(key).insert_u64(item);
    }

    /// Insert a byte-string item into the sketch for `key`.
    pub fn insert_bytes(&mut self, key: u64, item: &[u8]) {
        self.sketch_mut(key).insert_bytes(item);
    }

    /// Largest key eligible for the O(n) dense grouping path of
    /// [`SketchFleet::insert_batch`]. Covers the paper's §7.2 shape
    /// (hundreds to thousands of link indices) with a bounded per-call
    /// bucket table; beyond it, grouping falls back to a stable sort.
    const DENSE_KEY_LIMIT: u64 = 1 << 16;

    /// Ingest a batch of `(key, item)` pairs, returning how many bits
    /// were newly set across the fleet.
    ///
    /// The batch is grouped by key first, preserving each key's arrival
    /// order — so per-key sketch state is bit-identical to feeding
    /// [`SketchFleet::insert_u64`] pair by pair. Each group then pays
    /// its HashMap lookup *once* and runs through the batched sketch
    /// path ([`SBitmap::insert_u64s`]) — the §7.2 shape, where a
    /// collector drains a packet buffer spanning hundreds of links in
    /// one call.
    ///
    /// Grouping is O(n) bucketing when keys are dense (all below
    /// `Self::DENSE_KEY_LIMIT`, as link indices are), and a stable
    /// sort otherwise; both orderings feed the sketches identically.
    pub fn insert_batch(&mut self, pairs: &[(u64, u64)]) -> u64 {
        if pairs.is_empty() {
            return 0;
        }
        let max_key = pairs.iter().map(|&(k, _)| k).max().expect("non-empty");
        // Dense only when the bucket table is small relative to the
        // batch — a lone pair with key 60000 should not allocate and
        // sweep 60001 buckets.
        let table_bound = pairs.len().saturating_mul(4).max(64) as u64;
        if max_key < Self::DENSE_KEY_LIMIT.min(table_bound) {
            self.insert_batch_dense(pairs, max_key as usize)
        } else {
            self.insert_batch_sorted(pairs)
        }
    }

    /// Dense-key grouping: one order-preserving pass into the reused
    /// per-key bucket table, then one batched ingest per touched key.
    /// Buckets are drained (not dropped) afterwards, so after warm-up no
    /// call allocates.
    fn insert_batch_dense(&mut self, pairs: &[(u64, u64)], max_key: usize) -> u64 {
        let mut buckets = std::mem::take(&mut self.scratch_buckets);
        if buckets.len() <= max_key {
            buckets.resize_with(max_key + 1, Vec::new);
        }
        for &(key, item) in pairs {
            buckets[key as usize].push(item);
        }
        let mut newly = 0u64;
        // Sweep only this batch's key range: the persistent table may be
        // wider than `max_key` after an earlier large-key batch.
        for (key, items) in buckets[..=max_key].iter_mut().enumerate() {
            if !items.is_empty() {
                newly += self.sketch_mut(key as u64).insert_u64s(items);
                items.clear();
            }
        }
        self.scratch_buckets = buckets;
        newly
    }

    /// Sparse-key grouping: stable sort into the reused pair buffer
    /// (preserves arrival order within a key), then run detection.
    fn insert_batch_sorted(&mut self, pairs: &[(u64, u64)]) -> u64 {
        let mut sorted = std::mem::take(&mut self.scratch_pairs);
        let mut items = std::mem::take(&mut self.scratch_items);
        sorted.clear();
        sorted.extend_from_slice(pairs);
        sorted.sort_by_key(|&(key, _)| key);
        let mut newly = 0u64;
        let mut i = 0;
        while i < sorted.len() {
            let key = sorted[i].0;
            let run = i + sorted[i..].partition_point(|&(k, _)| k == key);
            items.clear();
            items.extend(sorted[i..run].iter().map(|&(_, item)| item));
            newly += self.sketch_mut(key).insert_u64s(&items);
            i = run;
        }
        self.scratch_pairs = sorted;
        self.scratch_items = items;
        newly
    }

    fn sketch_mut(&mut self, key: u64) -> &mut SBitmap<H> {
        let schedule = &self.schedule;
        let seed = self.seed;
        self.sketches.entry(key).or_insert_with(|| {
            SBitmap::with_shared_schedule(schedule.clone(), H::from_seed(sketch_seed(seed, key)))
        })
    }

    /// The sketch for one key; `None` if the key has never been inserted.
    pub fn sketch(&self, key: u64) -> Option<&SBitmap<H>> {
        self.sketches.get(&key)
    }

    /// Keys with a sketch, in ascending order.
    ///
    /// Sorting (rather than exposing HashMap order) keeps every consumer
    /// — CLI tables, examples, checkpoints — deterministic across runs
    /// and across fleet flavors.
    pub fn keys_sorted(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.sketches.keys().copied().collect();
        keys.sort_unstable();
        keys
    }

    /// All `(key, sketch)` pairs, in ascending key order.
    pub fn sketches(&self) -> impl Iterator<Item = (u64, &SBitmap<H>)> + '_ {
        self.keys_sorted()
            .into_iter()
            .map(move |k| (k, &self.sketches[&k]))
    }

    /// Estimate for one key; `None` if the key has never been inserted.
    pub fn estimate(&self, key: u64) -> Option<f64> {
        self.sketches.get(&key).map(|s| s.estimate())
    }

    /// All `(key, estimate)` pairs, in ascending key order.
    pub fn estimates(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.sketches().map(|(k, s)| (k, s.estimate()))
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.sketches.len()
    }

    /// `true` when no key has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.sketches.is_empty()
    }

    /// Keys whose sketches have saturated (estimates pinned near `N`) —
    /// the operational signal to re-dimension. Ascending key order.
    pub fn saturated_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .sketches
            .iter()
            .filter(|(_, s)| s.is_saturated())
            .map(|(&k, _)| k)
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Total sketch payload across the fleet, in bits (paper accounting:
    /// the shared schedule is configuration, not state).
    pub fn memory_bits(&self) -> usize {
        self.sketches
            .values()
            .map(DistinctCounter::memory_bits)
            .sum()
    }

    /// Reset every sketch, keeping keys and allocations.
    pub fn reset_all(&mut self) {
        for s in self.sketches.values_mut() {
            s.reset();
        }
    }

    /// Drop all keys.
    pub fn clear(&mut self) {
        self.sketches.clear();
    }

    /// The shared schedule.
    pub fn schedule(&self) -> &Arc<RateSchedule> {
        &self.schedule
    }
}

impl<H: Hasher64 + FromSeed> KeyedEstimates for SketchFleet<H> {
    fn keys_sorted(&self) -> Vec<u64> {
        SketchFleet::keys_sorted(self)
    }

    fn estimate(&self, key: u64) -> Option<f64> {
        SketchFleet::estimate(self, key)
    }
}

/// Fleet checkpoint payload: the shared configuration key once —
/// `n_max` (u64), `m` (u64), sampling `d` (u32), fleet seed (u64) — then
/// `count` (u64) per-key records of `key` (u64), fill (u64) and the
/// bitmap words, sorted by key. Per-key hash seeds are *derived* from
/// `(fleet seed, key)`, so they are not stored: the whole fleet costs
/// `16 + ⌈m/64⌉·8` bytes per key plus a 38-byte header.
impl<H: Hasher64 + FromSeed> Checkpoint for SketchFleet<H> {
    const KIND: CounterKind = CounterKind::SketchFleet;

    fn write_payload(&self, out: &mut PayloadWriter) {
        let dims = self.schedule.dims();
        out.u64(dims.n_max());
        out.u64(dims.m() as u64);
        out.u32(self.schedule.split().sampling_bits());
        out.u64(self.seed);
        out.u64(self.sketches.len() as u64);
        for key in self.keys_sorted() {
            let sketch = &self.sketches[&key];
            out.u64(key);
            out.u64(sketch.fill() as u64);
            out.words(sketch.bitmap().words());
        }
    }

    fn read_payload(r: &mut PayloadReader<'_>) -> Result<Self, SBitmapError> {
        let fail = |msg: &str| SBitmapError::invalid("checkpoint", msg.to_string());
        let n_max = r.u64()?;
        let m = r.len_u64()?;
        // Cap before the O(m) schedule rebuild — see `codec::MAX_WIRE_M`.
        crate::codec::check_wire_m(m)?;
        let sampling_bits = r.u32()?;
        let seed = r.u64()?;
        let count = r.len_u64()?;
        let dims = crate::dimensioning::Dimensioning::from_memory(n_max, m)?;
        let schedule = Arc::new(RateSchedule::new(dims, sampling_bits)?);
        let mut fleet = SketchFleet::with_schedule(schedule.clone(), seed);
        for _ in 0..count {
            let key = r.u64()?;
            let fill = r.len_u64()?;
            let words = r.words(m.div_ceil(64))?;
            let bitmap =
                Bitmap::from_words(words, m).map_err(|e| SBitmapError::invalid("checkpoint", e))?;
            if bitmap.count_ones() != fill {
                return Err(fail("fill counter disagrees with bitmap"));
            }
            let mut sketch = SBitmap::with_shared_schedule(
                schedule.clone(),
                H::from_seed(sketch_seed(seed, key)),
            );
            sketch.restore_state(bitmap, fill);
            if fleet.sketches.insert(key, sketch).is_some() {
                return Err(fail("duplicate key in fleet checkpoint"));
            }
        }
        Ok(fleet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet() -> SketchFleet {
        SketchFleet::new(100_000, 4_000, 9).unwrap()
    }

    #[test]
    fn lazy_creation_and_estimates() {
        let mut f = fleet();
        assert!(f.is_empty());
        assert_eq!(f.estimate(3), None);
        for i in 0..5_000u64 {
            f.insert_u64(3, i);
        }
        for i in 0..500u64 {
            f.insert_u64(8, i);
        }
        assert_eq!(f.len(), 2);
        let e3 = f.estimate(3).unwrap();
        let e8 = f.estimate(8).unwrap();
        assert!((e3 / 5_000.0 - 1.0).abs() < 0.15, "{e3}");
        assert!((e8 / 500.0 - 1.0).abs() < 0.2, "{e8}");
    }

    #[test]
    fn keys_are_independent() {
        let mut f = fleet();
        // Identical items into two keys: per-key hashing differs, so the
        // touched buckets differ, but both estimates are correct.
        for i in 0..2_000u64 {
            f.insert_u64(1, i);
            f.insert_u64(2, i);
        }
        let e1 = f.estimate(1).unwrap();
        let e2 = f.estimate(2).unwrap();
        assert!((e1 / 2_000.0 - 1.0).abs() < 0.2);
        assert!((e2 / 2_000.0 - 1.0).abs() < 0.2);
        // With ~4.7% error, the two independent estimates almost surely
        // differ in their low digits.
        assert_ne!(e1, e2);
    }

    #[test]
    fn insert_batch_matches_pairwise_feed() {
        let mut batched = fleet();
        let mut scalar = fleet();
        // Interleaved keys with duplicates, order-sensitive within key.
        let pairs: Vec<(u64, u64)> = (0..30_000u64).map(|i| (i % 7, i / 7 % 3_000)).collect();
        for &(k, item) in &pairs {
            scalar.insert_u64(k, item);
        }
        let newly = batched.insert_batch(&pairs);
        assert_eq!(batched.len(), scalar.len());
        let mut total = 0u64;
        for key in 0..7u64 {
            assert_eq!(
                batched.estimate(key),
                scalar.estimate(key),
                "estimates diverged for key {key}"
            );
            total += batched.sketches[&key].fill() as u64;
        }
        assert_eq!(newly, total, "newly-set count must equal total fill");
    }

    #[test]
    fn insert_batch_sparse_keys_match_pairwise_feed() {
        // Keys above DENSE_KEY_LIMIT exercise the stable-sort path.
        let mut batched = fleet();
        let mut scalar = fleet();
        let keys = [u64::MAX, 1 << 20, 0xdead_beef_u64, 3];
        let pairs: Vec<(u64, u64)> = (0..8_000u64)
            .map(|i| (keys[(i % 4) as usize], i / 4 % 900))
            .collect();
        for &(k, item) in &pairs {
            scalar.insert_u64(k, item);
        }
        batched.insert_batch(&pairs);
        for &k in &keys {
            assert_eq!(batched.estimate(k), scalar.estimate(k), "key {k}");
        }
    }

    #[test]
    fn small_batch_with_high_key_avoids_dense_table() {
        // One pair with a key just under DENSE_KEY_LIMIT must not build
        // a 60k-bucket table; it routes to the sort path and still
        // matches the pairwise feed.
        let mut batched = fleet();
        let mut scalar = fleet();
        let pairs = [(60_000u64, 7u64), (60_000, 8), (3, 9)];
        for &(k, item) in &pairs {
            scalar.insert_u64(k, item);
        }
        batched.insert_batch(&pairs);
        assert_eq!(batched.estimate(60_000), scalar.estimate(60_000));
        assert_eq!(batched.estimate(3), scalar.estimate(3));
    }

    #[test]
    fn insert_batch_empty_is_noop() {
        let mut f = fleet();
        assert_eq!(f.insert_batch(&[]), 0);
        assert!(f.is_empty());
    }

    #[test]
    fn memory_scales_with_keys() {
        let mut f = fleet();
        f.insert_u64(1, 1);
        assert_eq!(f.memory_bits(), 4_000);
        f.insert_u64(2, 1);
        assert_eq!(f.memory_bits(), 8_000);
        // The schedule is shared: exactly one strong reference per fleet
        // plus one per sketch.
        assert!(Arc::strong_count(f.schedule()) >= 3);
    }

    #[test]
    fn saturation_reporting() {
        let mut f = SketchFleet::<SplitMix64Hasher>::new(1_000, 120, 1).unwrap();
        for i in 0..10_000u64 {
            f.insert_u64(42, i);
        }
        f.insert_u64(7, 1);
        assert_eq!(f.saturated_keys(), vec![42]);
    }

    #[test]
    fn checkpoint_round_trips_whole_fleet() {
        let mut f = fleet();
        let pairs: Vec<(u64, u64)> = (0..20_000u64).map(|i| (i % 11, i / 11 % 1_500)).collect();
        f.insert_batch(&pairs);
        let bytes = f.checkpoint();
        let restored: SketchFleet = Checkpoint::restore(&bytes).unwrap();
        assert_eq!(restored.len(), f.len());
        for (key, sketch) in f.sketches() {
            let r = restored.sketch(key).expect("key restored");
            assert_eq!(r.fill(), sketch.fill(), "key {key}");
            assert_eq!(r.bitmap(), sketch.bitmap(), "key {key}");
            assert_eq!(r.seed(), sketch.seed(), "derived seed must match");
        }
        // The restored fleet keeps counting identically.
        let mut a = f.clone();
        let mut b = restored;
        a.insert_u64(3, 999_999);
        b.insert_u64(3, 999_999);
        assert_eq!(a.estimate(3), b.estimate(3));
    }

    #[test]
    fn empty_fleet_checkpoint_round_trips() {
        let f = fleet();
        let restored: SketchFleet = Checkpoint::restore(&f.checkpoint()).unwrap();
        assert!(restored.is_empty());
        assert_eq!(restored.schedule().dims().m(), 4_000);
    }

    #[test]
    fn fleet_checkpoint_rejects_tampered_fill() {
        let mut f = fleet();
        f.insert_u64(1, 1);
        let bytes = f.checkpoint();
        // Rebuild the frame with a corrupted per-key fill but a valid
        // checksum: structural validation must reject it.
        let payload_start = 6;
        let payload_end = bytes.len() - 8;
        let mut payload = bytes[payload_start..payload_end].to_vec();
        // Header is 36 bytes + key(8): fill sits at offset 44.
        payload[44..52].copy_from_slice(&3u64.to_le_bytes());
        let reframed = crate::codec::frame(CounterKind::SketchFleet, &payload);
        let err = <SketchFleet as Checkpoint>::restore(&reframed).unwrap_err();
        assert!(err.to_string().contains("fill"), "{err}");
    }

    #[test]
    fn iteration_is_sorted_by_key() {
        let mut f = fleet();
        for key in [9u64, 2, 77, 41, 5] {
            f.insert_u64(key, 1);
        }
        let keys: Vec<u64> = f.estimates().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![2, 5, 9, 41, 77]);
        let sketch_keys: Vec<u64> = f.sketches().map(|(k, _)| k).collect();
        assert_eq!(sketch_keys, keys);
        assert_eq!(f.keys_sorted(), keys);
    }

    #[test]
    fn repeated_batches_reuse_scratch_and_stay_consistent() {
        // Two calls through each grouping path must leave no stale items
        // behind in the reused scratch buffers.
        let mut batched = fleet();
        let mut scalar = fleet();
        let dense_a: Vec<(u64, u64)> = (0..4_000u64).map(|i| (i % 5, i)).collect();
        let dense_b: Vec<(u64, u64)> = (0..4_000u64).map(|i| (i % 3, i + 9_000)).collect();
        let sparse: Vec<(u64, u64)> = (0..2_000u64).map(|i| (u64::MAX - (i % 2), i)).collect();
        for pairs in [&dense_a, &dense_b, &sparse] {
            batched.insert_batch(pairs);
            for &(k, item) in pairs.iter() {
                scalar.insert_u64(k, item);
            }
        }
        assert_eq!(batched.len(), scalar.len());
        for (key, sketch) in scalar.sketches() {
            assert_eq!(
                batched.sketch(key).map(|s| s.fill()),
                Some(sketch.fill()),
                "key {key}"
            );
        }
    }

    #[test]
    fn reset_all_keeps_keys() {
        let mut f = fleet();
        f.insert_u64(5, 1);
        f.reset_all();
        assert_eq!(f.len(), 1);
        assert_eq!(f.estimate(5), Some(0.0));
        f.clear();
        assert!(f.is_empty());
    }
}
