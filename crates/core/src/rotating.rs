//! Per-interval counting: the paper's §7.1 usage pattern (one estimate
//! per minute) as a reusable wrapper around any [`DistinctCounter`].

use std::sync::mpsc::Sender;

use crate::codec::Checkpoint;
use crate::counter::DistinctCounter;
use crate::window::EpochClock;

/// Wraps a counter and produces one estimate per time interval, reusing
/// the underlying allocation via [`DistinctCounter::reset`].
///
/// The S-bitmap is not mergeable and not decrementable, so interval
/// statistics are obtained the way the paper's §7.1 does: a fresh (reset)
/// sketch per interval. `RotatingCounter` keeps a bounded history of
/// `(interval, estimate)` pairs for trend queries.
///
/// Rotation advances through [`EpochClock`] — the same caller-driven
/// clock (no wall time) the sliding-window ring
/// ([`crate::WindowedFleet`]) runs on, so the workspace has one rotation
/// mechanism. This wrapper is the single-counter, history-keeping view
/// of that clock; the windowed fleet is the keyed, ring-buffered one.
///
/// When the wrapped counter implements [`Checkpoint`], closed intervals
/// can also be *shipped*: [`RotatingCounter::ship_checkpoints_to`]
/// registers a channel and [`RotatingCounter::rotate_with_checkpoint`]
/// serializes the interval's sketch before resetting it — the node side
/// of the collector pipeline in `sbitmap-stream`.
#[derive(Debug, Clone)]
pub struct RotatingCounter<C: DistinctCounter> {
    counter: C,
    clock: EpochClock,
    history: std::collections::VecDeque<(u64, f64)>,
    history_cap: usize,
    /// Checkpoint-on-rotate hook: `(interval, checkpoint bytes)` per
    /// closed interval. A disconnected receiver disables shipping rather
    /// than failing rotation (monitoring must not stop because the
    /// collector restarted).
    ship: Option<Sender<(u64, Vec<u8>)>>,
}

impl<C: DistinctCounter> RotatingCounter<C> {
    /// Wrap `counter`, keeping at most `history_cap` closed intervals.
    pub fn new(counter: C, history_cap: usize) -> Self {
        Self {
            counter,
            clock: EpochClock::unbounded(),
            history: std::collections::VecDeque::with_capacity(history_cap.min(1024)),
            history_cap: history_cap.max(1),
            ship: None,
        }
    }

    /// Register the checkpoint-on-rotate hook: every
    /// [`RotatingCounter::rotate_with_checkpoint`] sends the closed
    /// interval's `(index, checkpoint bytes)` on `tx`.
    pub fn ship_checkpoints_to(&mut self, tx: Sender<(u64, Vec<u8>)>) {
        self.ship = Some(tx);
    }

    /// Insert an item into the current interval.
    #[inline]
    pub fn insert_u64(&mut self, item: u64) {
        self.counter.insert_u64(item);
    }

    /// Insert a byte-string item into the current interval.
    #[inline]
    pub fn insert_bytes(&mut self, item: &[u8]) {
        self.counter.insert_bytes(item);
    }

    /// Current interval's running estimate.
    pub fn current_estimate(&self) -> f64 {
        self.counter.estimate()
    }

    /// Index of the open interval (starts at 0).
    pub fn current_interval(&self) -> u64 {
        self.clock.epoch()
    }

    /// The interval clock (see [`EpochClock`]).
    pub fn clock(&self) -> &EpochClock {
        &self.clock
    }

    /// Close the current interval: record its estimate, reset the
    /// counter, advance the clock. Returns `(interval, estimate)` of the
    /// closed interval.
    pub fn rotate(&mut self) -> (u64, f64) {
        let estimate = self.counter.estimate();
        let closed = (self.clock.advance(), estimate);
        if self.history.len() == self.history_cap {
            self.history.pop_front();
        }
        self.history.push_back(closed);
        self.counter.reset();
        closed
    }

    /// Closed-interval history, oldest first.
    pub fn history(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.history.iter().copied()
    }

    /// Median of the closed-interval estimates — a robust baseline for
    /// anomaly detection (see the `worm_monitor` example).
    pub fn baseline(&self) -> Option<f64> {
        if self.history.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.history.iter().map(|&(_, e)| e).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN estimates"));
        Some(v[v.len() / 2])
    }

    /// Access the wrapped counter.
    pub fn counter(&self) -> &C {
        &self.counter
    }
}

impl<C: DistinctCounter + Checkpoint> RotatingCounter<C> {
    /// [`RotatingCounter::rotate`], but serialize the closed interval's
    /// sketch *before* the reset and ship it on the registered channel
    /// (if any). Returns `(interval, estimate, checkpoint bytes)`.
    ///
    /// The bytes are always returned, so a caller without a channel can
    /// still persist closed intervals (e.g. write-ahead to disk).
    pub fn rotate_with_checkpoint(&mut self) -> (u64, f64, Vec<u8>) {
        let bytes = self.counter.checkpoint();
        let (interval, estimate) = self.rotate();
        if let Some(tx) = &self.ship {
            // A gone collector must not wedge the measurement node.
            if tx.send((interval, bytes.clone())).is_err() {
                self.ship = None;
            }
        }
        (interval, estimate, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SBitmap;

    fn rotating() -> RotatingCounter<SBitmap> {
        RotatingCounter::new(SBitmap::with_memory(100_000, 4_000, 3).unwrap(), 4)
    }

    #[test]
    fn rotate_records_and_resets() {
        let mut r = rotating();
        for i in 0..1_000u64 {
            r.insert_u64(i);
        }
        let (idx, est) = r.rotate();
        assert_eq!(idx, 0);
        assert!((est / 1_000.0 - 1.0).abs() < 0.2);
        assert_eq!(r.current_estimate(), 0.0, "counter must reset");
        assert_eq!(r.current_interval(), 1);
    }

    #[test]
    fn history_is_bounded_and_ordered() {
        let mut r = rotating();
        for interval in 0..6u64 {
            for i in 0..100u64 {
                r.insert_u64(interval * 1_000 + i);
            }
            r.rotate();
        }
        let hist: Vec<(u64, f64)> = r.history().collect();
        assert_eq!(hist.len(), 4, "capped at history_cap");
        assert_eq!(hist[0].0, 2, "oldest retained interval");
        assert_eq!(hist[3].0, 5);
    }

    #[test]
    fn baseline_is_median() {
        let mut r = rotating();
        for (interval, n) in [(0u64, 100u64), (1, 300), (2, 200)] {
            for i in 0..n {
                r.insert_u64(interval << 32 | i);
            }
            r.rotate();
        }
        let b = r.baseline().unwrap();
        assert!(
            (b / 200.0 - 1.0).abs() < 0.25,
            "median-ish baseline, got {b}"
        );
    }

    #[test]
    fn empty_history_has_no_baseline() {
        assert_eq!(rotating().baseline(), None);
    }

    #[test]
    fn rotate_with_checkpoint_ships_and_keeps_history_bounded() {
        use crate::codec::Checkpoint;

        let (tx, rx) = std::sync::mpsc::channel();
        let mut r = rotating();
        r.ship_checkpoints_to(tx);
        for interval in 0..7u64 {
            for i in 0..200u64 {
                r.insert_u64(interval * 10_000 + i);
            }
            let (idx, est, bytes) = r.rotate_with_checkpoint();
            assert_eq!(idx, interval);
            // The shipped checkpoint restores to the *closed* interval's
            // sketch (pre-reset state).
            let restored: SBitmap = Checkpoint::restore(&bytes).unwrap();
            assert_eq!(restored.estimate(), est);
            assert_eq!(r.current_estimate(), 0.0, "reset after checkpoint");
        }
        // History bound holds with shipping enabled: 7 rotations, cap 4.
        let hist: Vec<(u64, f64)> = r.history().collect();
        assert_eq!(hist.len(), 4);
        assert_eq!(hist[0].0, 3, "oldest retained interval");
        // Every closed interval arrived on the channel, in order.
        let shipped: Vec<u64> = rx.try_iter().map(|(i, _)| i).collect();
        assert_eq!(shipped, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn disconnected_collector_does_not_stop_rotation() {
        let (tx, rx) = std::sync::mpsc::channel();
        let mut r = rotating();
        r.ship_checkpoints_to(tx);
        drop(rx);
        r.insert_u64(1);
        let (idx, _, bytes) = r.rotate_with_checkpoint();
        assert_eq!(idx, 0);
        assert!(!bytes.is_empty(), "bytes still returned to the caller");
        assert_eq!(r.current_interval(), 1);
    }
}
