//! Per-interval counting: the paper's §7.1 usage pattern (one estimate
//! per minute) as a reusable wrapper around any [`DistinctCounter`].

use crate::counter::DistinctCounter;

/// Wraps a counter and produces one estimate per time interval, reusing
/// the underlying allocation via [`DistinctCounter::reset`].
///
/// The S-bitmap is not mergeable and not decrementable, so interval
/// statistics are obtained the way the paper's §7.1 does: a fresh (reset)
/// sketch per interval. `RotatingCounter` keeps a bounded history of
/// `(interval, estimate)` pairs for trend queries.
#[derive(Debug, Clone)]
pub struct RotatingCounter<C: DistinctCounter> {
    counter: C,
    interval: u64,
    history: std::collections::VecDeque<(u64, f64)>,
    history_cap: usize,
}

impl<C: DistinctCounter> RotatingCounter<C> {
    /// Wrap `counter`, keeping at most `history_cap` closed intervals.
    pub fn new(counter: C, history_cap: usize) -> Self {
        Self {
            counter,
            interval: 0,
            history: std::collections::VecDeque::with_capacity(history_cap.min(1024)),
            history_cap: history_cap.max(1),
        }
    }

    /// Insert an item into the current interval.
    #[inline]
    pub fn insert_u64(&mut self, item: u64) {
        self.counter.insert_u64(item);
    }

    /// Insert a byte-string item into the current interval.
    #[inline]
    pub fn insert_bytes(&mut self, item: &[u8]) {
        self.counter.insert_bytes(item);
    }

    /// Current interval's running estimate.
    pub fn current_estimate(&self) -> f64 {
        self.counter.estimate()
    }

    /// Index of the open interval (starts at 0).
    pub fn current_interval(&self) -> u64 {
        self.interval
    }

    /// Close the current interval: record its estimate, reset the
    /// counter, advance the interval index. Returns `(interval,
    /// estimate)` of the closed interval.
    pub fn rotate(&mut self) -> (u64, f64) {
        let closed = (self.interval, self.counter.estimate());
        if self.history.len() == self.history_cap {
            self.history.pop_front();
        }
        self.history.push_back(closed);
        self.counter.reset();
        self.interval += 1;
        closed
    }

    /// Closed-interval history, oldest first.
    pub fn history(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.history.iter().copied()
    }

    /// Median of the closed-interval estimates — a robust baseline for
    /// anomaly detection (see the `worm_monitor` example).
    pub fn baseline(&self) -> Option<f64> {
        if self.history.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.history.iter().map(|&(_, e)| e).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN estimates"));
        Some(v[v.len() / 2])
    }

    /// Access the wrapped counter.
    pub fn counter(&self) -> &C {
        &self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SBitmap;

    fn rotating() -> RotatingCounter<SBitmap> {
        RotatingCounter::new(SBitmap::with_memory(100_000, 4_000, 3).unwrap(), 4)
    }

    #[test]
    fn rotate_records_and_resets() {
        let mut r = rotating();
        for i in 0..1_000u64 {
            r.insert_u64(i);
        }
        let (idx, est) = r.rotate();
        assert_eq!(idx, 0);
        assert!((est / 1_000.0 - 1.0).abs() < 0.2);
        assert_eq!(r.current_estimate(), 0.0, "counter must reset");
        assert_eq!(r.current_interval(), 1);
    }

    #[test]
    fn history_is_bounded_and_ordered() {
        let mut r = rotating();
        for interval in 0..6u64 {
            for i in 0..100u64 {
                r.insert_u64(interval * 1_000 + i);
            }
            r.rotate();
        }
        let hist: Vec<(u64, f64)> = r.history().collect();
        assert_eq!(hist.len(), 4, "capped at history_cap");
        assert_eq!(hist[0].0, 2, "oldest retained interval");
        assert_eq!(hist[3].0, 5);
    }

    #[test]
    fn baseline_is_median() {
        let mut r = rotating();
        for (interval, n) in [(0u64, 100u64), (1, 300), (2, 200)] {
            for i in 0..n {
                r.insert_u64(interval << 32 | i);
            }
            r.rotate();
        }
        let b = r.baseline().unwrap();
        assert!(
            (b / 200.0 - 1.0).abs() < 0.25,
            "median-ish baseline, got {b}"
        );
    }

    #[test]
    fn empty_history_has_no_baseline() {
        assert_eq!(rotating().baseline(), None);
    }
}
