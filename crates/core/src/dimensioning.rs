//! The paper's dimensioning rule (§5.1, equation (7)).
//!
//! The three quantities `N` (cardinality upper bound), `m` (bitmap bits)
//! and `C` (accuracy constant, `RRMSE = (C−1)^{−1/2}`) are linked by
//!
//! ```text
//! m = C/2 + ln(1 + 2N/C) / ln(1 + 2/(C−1))          (7)
//! ```
//!
//! [`Dimensioning`] captures a solved triple. Build it from whichever pair
//! you know:
//!
//! * [`Dimensioning::from_memory`] — given `(N, m)`, solve for `C`
//!   numerically (the right-hand side of (7) is strictly increasing in
//!   `C`, so bisection is exact and robust);
//! * [`Dimensioning::from_error`] — given `(N, ε)`, use `C = 1 + ε^{−2}`
//!   and evaluate (7) for `m` directly.

use crate::SBitmapError;

/// A solved `(N, m, C)` triple plus derived constants.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dimensioning {
    n_max: u64,
    m: usize,
    c: f64,
}

/// Evaluate the right-hand side of equation (7): the number of bitmap bits
/// needed to cover cardinalities up to `n_max` with accuracy constant `c`.
pub fn memory_for(n_max: u64, c: f64) -> f64 {
    debug_assert!(c > 1.0);
    c / 2.0 + (1.0 + 2.0 * n_max as f64 / c).ln() / (2.0 / (c - 1.0)).ln_1p()
}

impl Dimensioning {
    /// Solve for `C` given the bitmap size `m` (in bits) and the target
    /// range `[1, n_max]`. This is the configuration used throughout the
    /// paper's experiments ("m = 4000 bits gives C = 915.6").
    ///
    /// # Errors
    ///
    /// * `n_max == 0` or `m == 0`;
    /// * `m` too small to hold any schedule for `n_max` (fewer than a
    ///   handful of bits);
    /// * solver failure (cannot happen for sane inputs; kept explicit
    ///   rather than panicking).
    pub fn from_memory(n_max: u64, m: usize) -> Result<Self, SBitmapError> {
        if n_max == 0 {
            return Err(SBitmapError::invalid("n_max", "must be at least 1"));
        }
        if m == 0 {
            return Err(SBitmapError::invalid("m", "must be at least 1 bit"));
        }
        // Require at least C = 2, i.e. a theoretical RRMSE of at most 100%;
        // below that the "estimate" carries no information.
        if (m as f64) < memory_for(n_max, 2.0) {
            return Err(SBitmapError::invalid(
                "m",
                format!(
                    "{m} bits cannot cover n_max = {n_max} with RRMSE <= 100% \
                     (need at least {} bits)",
                    memory_for(n_max, 2.0).ceil()
                ),
            ));
        }

        // memory_for(n_max, ·) is strictly increasing, so bisect.
        let target = m as f64;
        let mut lo = 2.0;
        let mut hi = 4.0;
        while memory_for(n_max, hi) < target {
            hi *= 2.0;
            if hi > 1e18 {
                return Err(SBitmapError::SolverFailure(format!(
                    "could not bracket C for n_max={n_max}, m={m}"
                )));
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if memory_for(n_max, mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let c = 0.5 * (lo + hi);
        if !(c.is_finite() && c > 1.0) {
            return Err(SBitmapError::SolverFailure(format!(
                "solver produced C = {c} for n_max={n_max}, m={m}"
            )));
        }
        Ok(Self { n_max, m, c })
    }

    /// Dimension for a target RRMSE `epsilon` over `[1, n_max]`:
    /// `C = 1 + ε^{−2}`, `m = ⌈eq. (7)⌉`.
    ///
    /// # Errors
    ///
    /// `n_max == 0`, or `epsilon` outside `(0, 1)`.
    pub fn from_error(n_max: u64, epsilon: f64) -> Result<Self, SBitmapError> {
        if n_max == 0 {
            return Err(SBitmapError::invalid("n_max", "must be at least 1"));
        }
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(SBitmapError::invalid(
                "epsilon",
                format!("target RRMSE must be in (0, 1), got {epsilon}"),
            ));
        }
        let c = 1.0 + epsilon.powi(-2);
        let m = memory_for(n_max, c).ceil() as usize;
        Ok(Self { n_max, m, c })
    }

    /// The cardinality upper bound `N`.
    #[inline]
    pub fn n_max(&self) -> u64 {
        self.n_max
    }

    /// The bitmap size in bits, `m`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// The accuracy constant `C` of Theorem 2.
    #[inline]
    pub fn c(&self) -> f64 {
        self.c
    }

    /// The theoretical scale-invariant RRMSE, `(C − 1)^{−1/2}` (Theorem 3).
    #[inline]
    pub fn epsilon(&self) -> f64 {
        (self.c - 1.0).powf(-0.5)
    }

    /// The geometric decay factor `r = 1 − 2/(C + 1)`.
    #[inline]
    pub fn r(&self) -> f64 {
        1.0 - 2.0 / (self.c + 1.0)
    }

    /// The truncation point `b_max = ⌊m − C/2⌋` (paper's remark after
    /// eq. (7) and eq. (8)): sampling rates are only strictly decreasing up
    /// to here, `p_b` is clamped beyond it, and the reported fill is
    /// truncated to it. Clamped into `[1, m]`.
    #[inline]
    pub fn b_max(&self) -> usize {
        let raw = (self.m as f64 - self.c / 2.0).floor();
        (raw.max(1.0) as usize).min(self.m)
    }

    /// Approximate memory rule (paper §5.1):
    /// `m ≈ ε^{−2}(1 + ln(1 + 2Nε²))/2`. Useful for quick capacity
    /// planning; the exact value is [`Dimensioning::from_error`].
    pub fn approx_memory_bits(n_max: u64, epsilon: f64) -> f64 {
        0.5 * epsilon.powi(-2) * (1.0 + (1.0 + 2.0 * n_max as f64 * epsilon * epsilon).ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The worked examples printed in the paper.
    #[test]
    fn paper_example_n_2_20_m_4000() {
        let d = Dimensioning::from_memory(1 << 20, 4000).unwrap();
        assert!((d.c() - 915.6).abs() < 1.0, "C = {}", d.c());
        assert!((d.epsilon() - 0.033).abs() < 0.001, "eps = {}", d.epsilon());
    }

    #[test]
    fn paper_example_n_2_20_m_1800() {
        let d = Dimensioning::from_memory(1 << 20, 1800).unwrap();
        assert!((d.c() - 373.7).abs() < 1.0, "C = {}", d.c());
        assert!((d.epsilon() - 0.052).abs() < 0.001, "eps = {}", d.epsilon());
    }

    #[test]
    fn paper_example_worm_trace_config() {
        // §7.1: N = 1e6, m = 8000 → C = 2026.55, eps ≈ 2.2%.
        let d = Dimensioning::from_memory(1_000_000, 8000).unwrap();
        assert!((d.c() - 2026.55).abs() < 1.0, "C = {}", d.c());
        assert!((d.epsilon() - 0.022).abs() < 0.001);
    }

    #[test]
    fn paper_example_30kbit_for_1pct_at_1e6() {
        // §5.1: N = 1e6, m = 30000 → C ≈ 0.01^{-2}, i.e. eps ≈ 1%.
        let d = Dimensioning::from_memory(1_000_000, 30_000).unwrap();
        assert!((d.epsilon() - 0.01).abs() < 0.0005, "eps = {}", d.epsilon());
    }

    #[test]
    fn from_error_round_trips_through_from_memory() {
        for &(n, eps) in &[(10_000u64, 0.03), (1_000_000, 0.01), (1 << 20, 0.09)] {
            let a = Dimensioning::from_error(n, eps).unwrap();
            let b = Dimensioning::from_memory(n, a.m()).unwrap();
            // Solving back for C from the ceil'd m can only improve epsilon.
            assert!(
                b.epsilon() <= eps + 1e-6,
                "n={n} eps={eps} got {}",
                b.epsilon()
            );
            assert!((b.c() - a.c()).abs() / a.c() < 0.01);
        }
    }

    #[test]
    fn table2_sbitmap_memory_cells() {
        // Table 2, S-bitmap columns (unit: 100 bits).
        let cases: &[(u64, f64, f64)] = &[
            (1_000, 0.01, 59.1),
            (10_000, 0.01, 104.9),
            (100_000, 0.01, 202.2),
            (1_000_000, 0.01, 315.2),
            (10_000_000, 0.01, 430.1),
            (1_000, 0.03, 11.3),
            (1_000_000, 0.03, 47.2),
            (1_000, 0.09, 2.4),
            (10_000_000, 0.09, 8.1),
        ];
        for &(n, eps, expect) in cases {
            let c = 1.0 + eps.powi(-2);
            let m = memory_for(n, c) / 100.0;
            assert!(
                (m - expect).abs() < 0.15,
                "N={n} eps={eps}: got {m:.1}, paper says {expect}"
            );
        }
    }

    #[test]
    fn memory_monotone_in_n_and_accuracy() {
        let m1 = memory_for(1_000, 1.0 + 0.03f64.powi(-2));
        let m2 = memory_for(1_000_000, 1.0 + 0.03f64.powi(-2));
        assert!(m2 > m1);
        let m3 = memory_for(1_000_000, 1.0 + 0.01f64.powi(-2));
        assert!(m3 > m2);
    }

    #[test]
    fn b_max_leaves_room_for_the_schedule() {
        let d = Dimensioning::from_memory(1 << 20, 4000).unwrap();
        // b_max = m − C/2 ≈ 4000 − 457.8.
        assert_eq!(d.b_max(), (4000.0f64 - d.c() / 2.0).floor() as usize);
        assert!(d.b_max() < d.m());
        assert!(d.b_max() > d.m() / 2);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(Dimensioning::from_memory(0, 100).is_err());
        assert!(Dimensioning::from_memory(100, 0).is_err());
        assert!(Dimensioning::from_error(100, 0.0).is_err());
        assert!(Dimensioning::from_error(100, 1.0).is_err());
        assert!(Dimensioning::from_error(0, 0.1).is_err());
        // m too small for the range: 10 bits cannot track a million.
        assert!(Dimensioning::from_memory(1_000_000, 10).is_err());
    }

    #[test]
    fn tiny_but_valid_configs_work() {
        let d = Dimensioning::from_memory(100, 64).unwrap();
        assert!(d.c() > 1.0);
        assert!(d.b_max() >= 1);
        let e = Dimensioning::from_error(1, 0.5).unwrap();
        assert!(e.m() >= 1);
    }

    #[test]
    fn approx_memory_close_to_exact() {
        for &(n, eps) in &[(1_000_000u64, 0.01), (10_000, 0.03)] {
            let exact = Dimensioning::from_error(n, eps).unwrap().m() as f64;
            let approx = Dimensioning::approx_memory_bits(n, eps);
            assert!(
                (approx / exact - 1.0).abs() < 0.02,
                "n={n} eps={eps}: exact {exact}, approx {approx}"
            );
        }
    }

    #[test]
    fn r_in_unit_interval() {
        let d = Dimensioning::from_memory(1 << 20, 4000).unwrap();
        assert!(d.r() > 0.0 && d.r() < 1.0);
        // r = (C−1)/(C+1)
        assert!((d.r() - (d.c() - 1.0) / (d.c() + 1.0)).abs() < 1e-12);
    }
}
