//! The layered trait family every distinct-counting sketch in this
//! workspace implements — the S-bitmap itself and all the baselines it is
//! evaluated against.
//!
//! The interface is split into capability layers rather than one fat
//! trait, because the capabilities genuinely differ across the sketch
//! family (the paper's Table 1):
//!
//! | trait | contract | who implements it |
//! |---|---|---|
//! | [`DistinctCounter`] | streaming insert + estimate | every sketch |
//! | [`BatchedCounter`] | slice ingestion, bit-identical to scalar | every sketch (S-bitmap overrides with the prefetch-pipelined path) |
//! | [`MergeableCounter`] | union of two same-configuration sketches | OR-mergeable bitmaps, the loglog family, order statistics — **not** the S-bitmap |
//! | [`Checkpoint`](crate::codec::Checkpoint) | versioned dependency-free binary encode/decode | everything a collector ships |
//!
//! The S-bitmap deliberately does not implement [`MergeableCounter`]:
//! whether an item is sampled depends on the sketch-local fill level at
//! its arrival time, so two S-bitmaps over different substreams cannot be
//! combined into the sketch of the union. Distributed S-bitmap
//! deployments ship per-link checkpoints and aggregate *estimates*
//! instead (see `sbitmap_stream`'s collector), which is exactly the
//! paper's §7.2 architecture.

use crate::SBitmapError;

/// A streaming distinct counter (cardinality estimator).
///
/// The contract mirrors the paper's problem statement (§2.1): items arrive
/// one at a time, possibly with duplicates; the sketch may not buffer the
/// stream; [`DistinctCounter::estimate`] may be called at any point and
/// returns an estimate of the number of *distinct* items inserted so far.
///
/// Implementations hash internally with their own seeded hasher, so two
/// sketches built with different seeds give independent estimates of the
/// same stream (the property replicated experiments rely on).
pub trait DistinctCounter {
    /// Insert a `u64` item (e.g. a flow key already packed into a word).
    fn insert_u64(&mut self, item: u64);

    /// Insert an arbitrary byte-string item.
    fn insert_bytes(&mut self, item: &[u8]);

    /// Estimate the number of distinct items inserted so far.
    fn estimate(&self) -> f64;

    /// Size of the summary statistic in bits, using the paper's accounting
    /// (§6.2): the sketch payload only, excluding hash seeds and any
    /// configuration shared across sketch instances.
    fn memory_bits(&self) -> usize;

    /// Forget everything, keeping the configuration and allocation.
    fn reset(&mut self);

    /// Short stable name used in experiment output ("s-bitmap", "hll", …).
    fn name(&self) -> &'static str;
}

/// Slice ingestion, semantically identical to a scalar insert loop.
///
/// The default methods are the scalar loop, so implementing the trait is
/// a one-line opt-in; sketches with a faster path (batch hashing,
/// prefetch-pipelined probes — see `SBitmap::insert_hashes`) override
/// them. The contract is strict: the sketch state after a batched call is
/// **bit-identical** to inserting the items one at a time in order, so
/// batching is a pure performance transform (property-tested in
/// `tests/properties.rs`).
pub trait BatchedCounter: DistinctCounter {
    /// Insert a slice of `u64` items, in order.
    fn insert_u64_batch(&mut self, items: &[u64]) {
        for &item in items {
            self.insert_u64(item);
        }
    }

    /// Insert a slice of byte-string items, in order.
    fn insert_bytes_batch(&mut self, items: &[&[u8]]) {
        for &item in items {
            self.insert_bytes(item);
        }
    }
}

/// Sketches whose union is computable from the sketches alone: merging
/// two same-configuration sketches of streams `A` and `B` yields exactly
/// the sketch of `A ∪ B`.
///
/// This holds for the OR-mergeable bitmap family (linear counting,
/// virtual bitmap, multiresolution bitmap, FM/PCSA), for max-mergeable
/// rank registers (LogLog, HyperLogLog) and for order statistics (KMV) —
/// and does **not** hold for the S-bitmap (see the module docs). The
/// bit-identity `merge(sketch(A), sketch(B)) == sketch(A ∪ B)` is
/// property-tested per implementation in `tests/merge_properties.rs`.
pub trait MergeableCounter: DistinctCounter {
    /// Fold `other` into `self`, making `self` the sketch of the union of
    /// both input streams.
    ///
    /// # Errors
    ///
    /// Merging requires identical configuration (size/shape *and* hash
    /// seed); incompatible sketches are rejected, never silently mixed.
    fn merge_from(&mut self, other: &Self) -> Result<(), SBitmapError>;
}

/// Keyed fleets with deterministic, ascending-key iteration — the query
/// surface shared by every fleet flavor ([`crate::SketchFleet`],
/// [`crate::FleetArena`], [`crate::ParallelFleet`]) and by the window
/// ring ([`crate::WindowedFleet`]).
///
/// **Ordering guarantee:** [`KeyedEstimates::keys_sorted`] returns keys
/// in strictly ascending order, and [`KeyedEstimates::estimates_sorted`]
/// follows it — never insertion order, never `HashMap` order, never a
/// shard- or epoch-dependent order. Every consumer (CLI tables,
/// checkpoints, the collector summaries, the examples) relies on this to
/// stay byte-for-byte reproducible across runs, storage flavors, shard
/// counts and window spans; implementations must sort, not expose their
/// internal layout.
pub trait KeyedEstimates {
    /// Keys with state, in strictly ascending order.
    fn keys_sorted(&self) -> Vec<u64>;

    /// Estimate for one key; `None` if the key has no state.
    fn estimate(&self, key: u64) -> Option<f64>;

    /// All `(key, estimate)` pairs, in ascending key order (provided:
    /// derived from [`KeyedEstimates::keys_sorted`], so every flavor
    /// reports the same keys in the same order for the same state).
    fn estimates_sorted(&self) -> Vec<(u64, f64)> {
        self.keys_sorted()
            .into_iter()
            .map(|key| (key, self.estimate(key).expect("key listed")))
            .collect()
    }
}

/// Blanket impl so `Box<dyn DistinctCounter>` is itself a counter — the
/// experiment harness stores heterogeneous sketch fleets this way.
impl DistinctCounter for Box<dyn DistinctCounter> {
    fn insert_u64(&mut self, item: u64) {
        (**self).insert_u64(item)
    }
    fn insert_bytes(&mut self, item: &[u8]) {
        (**self).insert_bytes(item)
    }
    fn estimate(&self) -> f64 {
        (**self).estimate()
    }
    fn memory_bits(&self) -> usize {
        (**self).memory_bits()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Boxed counters batch through the scalar loop (the box erases any
/// faster path; unbox for hot-loop ingestion).
impl BatchedCounter for Box<dyn DistinctCounter> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SBitmap;

    #[test]
    fn batched_defaults_match_scalar() {
        // Through the trait's default methods (the boxed counter), the
        // batch calls must be the scalar loop.
        let mut boxed: Box<dyn DistinctCounter> =
            Box::new(SBitmap::with_memory(100_000, 2_000, 3).unwrap());
        let mut scalar = SBitmap::with_memory(100_000, 2_000, 3).unwrap();
        let items: Vec<u64> = (0..5_000).collect();
        boxed.insert_u64_batch(&items);
        for &i in &items {
            scalar.insert_u64(i);
        }
        assert_eq!(boxed.estimate(), scalar.estimate());
    }
}
