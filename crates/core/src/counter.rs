//! The common interface every distinct-counting sketch in this workspace
//! implements — the S-bitmap itself and all the baselines it is evaluated
//! against.

/// A streaming distinct counter (cardinality estimator).
///
/// The contract mirrors the paper's problem statement (§2.1): items arrive
/// one at a time, possibly with duplicates; the sketch may not buffer the
/// stream; [`DistinctCounter::estimate`] may be called at any point and
/// returns an estimate of the number of *distinct* items inserted so far.
///
/// Implementations hash internally with their own seeded hasher, so two
/// sketches built with different seeds give independent estimates of the
/// same stream (the property replicated experiments rely on).
pub trait DistinctCounter {
    /// Insert a `u64` item (e.g. a flow key already packed into a word).
    fn insert_u64(&mut self, item: u64);

    /// Insert an arbitrary byte-string item.
    fn insert_bytes(&mut self, item: &[u8]);

    /// Estimate the number of distinct items inserted so far.
    fn estimate(&self) -> f64;

    /// Size of the summary statistic in bits, using the paper's accounting
    /// (§6.2): the sketch payload only, excluding hash seeds and any
    /// configuration shared across sketch instances.
    fn memory_bits(&self) -> usize;

    /// Forget everything, keeping the configuration and allocation.
    fn reset(&mut self);

    /// Short stable name used in experiment output ("s-bitmap", "hll", …).
    fn name(&self) -> &'static str;
}

/// Blanket impl so `Box<dyn DistinctCounter>` is itself a counter — the
/// experiment harness stores heterogeneous sketch fleets this way.
impl DistinctCounter for Box<dyn DistinctCounter> {
    fn insert_u64(&mut self, item: u64) {
        (**self).insert_u64(item)
    }
    fn insert_bytes(&mut self, item: &[u8]) {
        (**self).insert_bytes(item)
    }
    fn estimate(&self) -> f64 {
        (**self).estimate()
    }
    fn memory_bits(&self) -> usize {
        (**self).memory_bits()
    }
    fn reset(&mut self) {
        (**self).reset()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}
