//! Sliding-window distinct counting on epoch arenas.
//!
//! The paper's motivating workload — per-link flow counting on a
//! backbone — is temporal: operators ask *"how many distinct flows in
//! the last N minutes"*, not *"since process start"*. The S-bitmap
//! cannot answer that from one sketch (it is neither mergeable nor
//! decrementable), so this module does what §7.1's per-interval usage
//! pattern implies at fleet scale: keep a **ring of W epoch fleets**,
//! one [`FleetArena`] per epoch, and answer window queries over the live
//! epochs.
//!
//! * **Rotation** is driven by [`EpochClock`] — a pure item-count /
//!   caller-tick clock, no wall time anywhere, so every run is
//!   deterministic and replayable. The same clock type backs
//!   [`crate::RotatingCounter`], so the workspace has exactly one
//!   rotation mechanism.
//! * **Ingest** lands in the current epoch's arena at full arena speed:
//!   the only overhead over a plain [`FleetArena::insert_batch`] is the
//!   clock bookkeeping and, on a count-driven clock, splitting a batch
//!   at an epoch boundary (so batched and scalar feeds stay
//!   bit-identical — the same contract every other batch path in this
//!   workspace honors).
//! * **Queries** merge one key's per-epoch bitmaps through the
//!   runtime-dispatched [`sbitmap_bitvec::kernels`] gather kernel in
//!   one fused pass — every live region read once, fleet-owned scratch
//!   written once, popcount taken in the same pass — amortized
//!   O(⌈m/64⌉ · W) per query with **zero allocation after warmup**. A
//!   key live in a single epoch skips scratch entirely (the fill
//!   counter is already the union popcount), and the estimator curve
//!   is a precomputed table ([`RateSchedule::estimate_at`]), so a
//!   query performs no transcendental math.
//! * **Expiry** is O(1) amortized: rotating past window capacity clears
//!   the oldest arena in place (allocations are kept and reused).
//!
//! ## The windowed estimator, honestly
//!
//! The S-bitmap is not mergeable: sampling depends on the fill at
//! arrival time, so no function of per-epoch sketches reproduces the
//! sketch a single S-bitmap over the whole window would hold. What the
//! per-epoch state *does* support are two upper-bound-flavored reads,
//! and the window estimate takes their minimum:
//!
//! * **`t(U)`** — the estimator applied to the union fill `U`
//!   (popcount of the OR of the key's per-epoch bitmaps). A key's
//!   per-epoch sketches share one derived hasher, so a flow present in
//!   several epochs lands in the *same* bucket and is counted once; in
//!   the limit of identical epoch streams the per-epoch bitmaps are
//!   bit-identical (the update is deterministic) and `t(U)` is exactly
//!   the paper's estimate. For *disjoint* epochs it overestimates:
//!   every epoch restarts at high sampling rates, so the union holds
//!   more bits than one saturating sketch would, and `t_B` is
//!   exponential in `B`.
//! * **`Σ t(Lₑ)`** — the sum of the per-epoch estimates (each unbiased
//!   for its epoch, Theorem 3). Exact for disjoint epoch substreams;
//!   overestimates when flows persist across epochs (double counting).
//!
//! `min` picks whichever regime the data is in, and both terms err
//! upward, so the combination degrades gracefully in between. With
//! W = 1 the two coincide and the windowed estimate *is* the paper's
//! estimator. Everything is a deterministic function of per-epoch fills
//! and bitmaps, which is what lets the property tests lock the windowed
//! estimate to a naive per-epoch [`crate::SketchFleet`] reference
//! bit-for-bit — no statistical guarantee the paper does not offer is
//! pretended; deployments that need exact windowed unions at scale
//! should pair the ring with a mergeable sketch (see the HyperLogLog
//! lane of `sbitmap_stream::collector`).

use std::cell::RefCell;
use std::collections::HashSet;
use std::sync::Arc;

use sbitmap_bitvec::Bitmap;
use sbitmap_hash::{FromSeed, Hasher64, SplitMix64Hasher};

use crate::arena::FleetArena;
use crate::codec::{Checkpoint, CounterKind, FleetDeltaFrame, PayloadReader, PayloadWriter};
use crate::counter::KeyedEstimates;
use crate::fleet::sketch_seed;
use crate::schedule::RateSchedule;
use crate::sketch::SBitmap;
use crate::SBitmapError;

/// A deterministic epoch clock: item-count driven or caller driven,
/// never wall time.
///
/// This is the single rotation mechanism of the workspace — both
/// [`WindowedFleet`] (a ring of epoch arenas) and
/// [`crate::RotatingCounter`] (a single counter with an estimate
/// history) advance through it. An unbudgeted clock only moves when the
/// caller says so ([`EpochClock::advance`]); a budgeted clock is due
/// after exactly `budget` recorded items, which makes epoch assignment a
/// pure function of the item sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochClock {
    /// Absolute index of the open epoch (starts at 0).
    epoch: u64,
    /// Items recorded into the open epoch so far.
    in_epoch: u64,
    /// Count-driven budget: the epoch is due after this many items.
    /// `None` = caller-driven only.
    budget: Option<u64>,
}

impl EpochClock {
    /// A caller-driven clock: epochs close only on [`EpochClock::advance`].
    pub fn unbounded() -> Self {
        Self {
            epoch: 0,
            in_epoch: 0,
            budget: None,
        }
    }

    /// A count-driven clock: the epoch is due after `budget` items.
    ///
    /// # Errors
    ///
    /// A zero budget (every insert would rotate before landing).
    pub fn with_budget(budget: u64) -> Result<Self, SBitmapError> {
        if budget == 0 {
            return Err(SBitmapError::invalid(
                "epoch_items",
                "per-epoch item budget must be at least 1".to_string(),
            ));
        }
        Ok(Self {
            epoch: 0,
            in_epoch: 0,
            budget: Some(budget),
        })
    }

    /// Absolute index of the open epoch (starts at 0).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Items recorded into the open epoch so far.
    #[inline]
    pub fn items_in_epoch(&self) -> u64 {
        self.in_epoch
    }

    /// The count-driven budget, if any.
    #[inline]
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Items that still fit in the open epoch (`None` = unbounded).
    #[inline]
    pub fn remaining(&self) -> Option<u64> {
        self.budget.map(|b| b.saturating_sub(self.in_epoch))
    }

    /// Record `n` items into the open epoch. Callers must not overfill:
    /// split batches at [`EpochClock::remaining`] first.
    #[inline]
    pub fn record(&mut self, n: u64) {
        debug_assert!(
            self.remaining().is_none_or(|r| n <= r),
            "epoch overfilled: recording {n} with {:?} remaining",
            self.remaining()
        );
        self.in_epoch += n;
    }

    /// `true` when the budget is exhausted and the epoch must close
    /// before the next item.
    #[inline]
    pub fn is_due(&self) -> bool {
        self.budget.is_some_and(|b| self.in_epoch >= b)
    }

    /// Close the open epoch and start the next. Returns the index of the
    /// epoch just closed.
    pub fn advance(&mut self) -> u64 {
        let closed = self.epoch;
        self.epoch += 1;
        self.in_epoch = 0;
        closed
    }
}

/// A sliding-window fleet: a ring of `W` epoch [`FleetArena`]s over one
/// shared schedule, answering per-key distinct estimates for the last
/// `W` epochs.
///
/// Ingest feeds the current epoch; [`WindowedFleet::rotate`] (or a
/// count-driven [`EpochClock`] budget) closes it, and the arena that
/// falls out of the window is cleared in place and reused. Queries OR
/// one key's live per-epoch bitmaps into a fleet-owned scratch region
/// and estimate from the union fill — see the module docs for exactly
/// what that estimator is (and is not).
///
/// ```
/// use sbitmap_core::WindowedFleet;
///
/// // Window of 3 epochs, ~4k distinct per window, key = link id.
/// let mut fleet: WindowedFleet = WindowedFleet::new(100_000, 4_000, 7, 3).unwrap();
/// for epoch in 0..5u64 {
///     if epoch > 0 {
///         fleet.rotate(); // close the minute, expire epoch − 3
///     }
///     for i in 0..800u64 {
///         fleet.insert_u64(1, epoch * 800 + i); // 800 fresh flows per epoch
///     }
/// }
/// // Only the last 3 epochs (2400 distinct flows) are still visible.
/// let windowed = fleet.estimate(1).unwrap();
/// assert!((windowed / 2_400.0 - 1.0).abs() < 0.25, "{windowed}");
/// assert_eq!(fleet.keys_sorted(), vec![1]);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedFleet<H: Hasher64 + FromSeed = SplitMix64Hasher> {
    /// Ring of epoch arenas; absolute epoch `e` lives at slot `e % W`.
    ring: Vec<FleetArena<H>>,
    clock: EpochClock,
    /// Words per key: `⌈m/64⌉`, shared by every epoch arena.
    stride: usize,
    /// Query scratch: the union of one key's live epoch bitmaps is
    /// assembled here, so a warm query allocates nothing. Interior
    /// mutability keeps queries `&self` like every other fleet flavor.
    scratch: RefCell<Vec<u64>>,
    /// Per-slot absorb guard: the `(source, round)` pairs whose frame
    /// for the slot's current epoch has already been absorbed. Full v2
    /// frames ([`WindowedFleet::absorb_epoch_from`]) record the
    /// [`FULL_FRAME_ROUND`] sentinel; v3 delta frames
    /// ([`WindowedFleet::absorb_delta_from`]) record their round, and
    /// the round-0 entry doubles as the baseline marker rounds > 0
    /// require. Cleared whenever the slot is reused, never serialized —
    /// see the method docs for why a restore losing the guard is safe.
    seen: Vec<HashSet<(u64, u32)>>,
}

/// The guard-set round sentinel full (non-delta) frames absorb under —
/// `u32::MAX` is rejected as a wire round index by the v3 decoder, so
/// the sentinel can never collide with a real delta round.
const FULL_FRAME_ROUND: u32 = u32::MAX;

/// What [`WindowedFleet::absorb_epoch_from`] did with a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsorbOutcome {
    /// The frame was folded into the ring (first delivery from this
    /// source for this epoch).
    Absorbed,
    /// The same `(source, epoch)` was already absorbed — the replay was
    /// skipped. State is unchanged (and would have been unchanged even
    /// without the guard: the storage-level union is an OR).
    Duplicate,
    /// The epoch has already expired from the window; the late frame was
    /// dropped, not an error.
    Expired,
}

impl<H: Hasher64 + FromSeed> WindowedFleet<H> {
    /// Largest window span a checkpoint is allowed to declare (the
    /// in-memory API has no such cap). 65536 epochs is far beyond any
    /// real monitoring window; the limit only exists so a corrupt or
    /// hostile 8-byte wire field cannot demand a ring allocation the
    /// rest of the payload never backs. Recorded in
    /// `docs/wire-format.md` (tag 10).
    pub const MAX_WIRE_WINDOW: usize = 1 << 16;

    /// Most `(source, round)` entries one epoch slot's absorb guard may
    /// hold. The guard exists to shortcut replays, but a peer that
    /// churns through source ids within one epoch would otherwise grow
    /// it without bound — a memory DoS on a long-lived collector. Once
    /// a slot reaches the cap, further frames from *new* guard
    /// identities are rejected with [`SBitmapError::GuardFull`] (the
    /// ring untouched); already-tracked identities keep working. 65536
    /// entries is far beyond any real agent fleet's `sources × rounds`
    /// per epoch.
    pub const MAX_GUARD_ENTRIES_PER_SLOT: usize = 1 << 16;

    /// Create a windowed fleet for cardinalities in `[1, n_max]` with
    /// `m` bits per key per epoch and a window of `window` epochs.
    ///
    /// Size `(n_max, m)` for the cardinality of the whole *window*, not
    /// of one epoch — the union estimator is at its best when per-epoch
    /// fills stay low (see the module docs).
    ///
    /// # Errors
    ///
    /// A zero window, or an invalid `(n_max, m)` (see
    /// [`crate::Dimensioning::from_memory`]).
    pub fn new(n_max: u64, m: usize, seed: u64, window: usize) -> Result<Self, SBitmapError> {
        Self::with_schedule(Arc::new(RateSchedule::from_memory(n_max, m)?), seed, window)
    }

    /// Create a windowed fleet over an existing shared schedule.
    ///
    /// # Errors
    ///
    /// A zero window.
    pub fn with_schedule(
        schedule: Arc<RateSchedule>,
        seed: u64,
        window: usize,
    ) -> Result<Self, SBitmapError> {
        if window == 0 {
            return Err(SBitmapError::invalid(
                "window",
                "window must span at least 1 epoch".to_string(),
            ));
        }
        let stride = schedule.dims().m().div_ceil(64);
        Ok(Self {
            ring: (0..window)
                .map(|_| FleetArena::with_schedule(schedule.clone(), seed))
                .collect(),
            clock: EpochClock::unbounded(),
            stride,
            scratch: RefCell::new(Vec::new()),
            seen: (0..window).map(|_| HashSet::new()).collect(),
        })
    }

    /// Switch to a count-driven clock: the epoch closes automatically
    /// after `items` inserted items. Epoch assignment becomes a pure
    /// function of the item sequence, so batched and scalar feeds remain
    /// bit-identical (batches are split at epoch boundaries).
    ///
    /// The open epoch's progress is preserved when the budget changes;
    /// if that progress already meets the new budget, the epoch closes
    /// right before the next insert lands.
    ///
    /// # Errors
    ///
    /// A zero budget.
    pub fn with_epoch_items(mut self, items: u64) -> Result<Self, SBitmapError> {
        let mut clock = EpochClock::with_budget(items)?;
        clock.epoch = self.clock.epoch;
        clock.in_epoch = self.clock.in_epoch;
        self.clock = clock;
        Ok(self)
    }

    /// The window span, in epochs (the `W` the fleet was built with).
    pub fn window_epochs(&self) -> usize {
        self.ring.len()
    }

    /// Absolute index of the open epoch (starts at 0).
    pub fn current_epoch(&self) -> u64 {
        self.clock.epoch()
    }

    /// Epochs currently contributing to queries: `min(opened, W)`.
    pub fn live_epochs(&self) -> usize {
        usize::try_from(self.clock.epoch() + 1)
            .unwrap_or(usize::MAX)
            .min(self.ring.len())
    }

    /// The rotation clock (epoch index, per-epoch budget and progress).
    pub fn clock(&self) -> &EpochClock {
        &self.clock
    }

    /// The shared schedule.
    pub fn schedule(&self) -> &Arc<RateSchedule> {
        self.ring[0].schedule()
    }

    /// The fleet seed per-key hashers are derived from.
    pub fn seed(&self) -> u64 {
        self.ring[0].seed()
    }

    /// The arena holding the open epoch.
    #[inline]
    fn current_mut(&mut self) -> &mut FleetArena<H> {
        let slot = (self.clock.epoch() % self.ring.len() as u64) as usize;
        &mut self.ring[slot]
    }

    /// The arena holding the open epoch (read side).
    #[inline]
    fn current(&self) -> &FleetArena<H> {
        let slot = (self.clock.epoch() % self.ring.len() as u64) as usize;
        &self.ring[slot]
    }

    /// The ring slot of absolute epoch `epoch`, if that epoch is live.
    fn live_slot(&self, epoch: u64) -> Option<usize> {
        let current = self.clock.epoch();
        (epoch <= current && current - epoch < self.ring.len() as u64)
            .then(|| (epoch % self.ring.len() as u64) as usize)
    }

    /// Close the open epoch and start the next: the arena that falls out
    /// of the window is cleared in place (allocations kept). Returns the
    /// index of the epoch just closed.
    pub fn rotate(&mut self) -> u64 {
        let closed = self.clock.advance();
        // The new epoch reuses the slot that held epoch `new − W`.
        self.current_mut().clear();
        let slot = (self.clock.epoch() % self.ring.len() as u64) as usize;
        self.seen[slot].clear();
        closed
    }

    /// Drive the clock forward until the open epoch is `epoch` (a
    /// collector replaying an epoch-tagged stream). No-op when already
    /// there.
    ///
    /// # Errors
    ///
    /// `epoch` lies in the past — the ring cannot rotate backwards.
    pub fn advance_to(&mut self, epoch: u64) -> Result<(), SBitmapError> {
        if epoch < self.clock.epoch() {
            return Err(SBitmapError::invalid(
                "epoch",
                format!(
                    "cannot rotate back to epoch {epoch} from {}",
                    self.clock.epoch()
                ),
            ));
        }
        while self.clock.epoch() < epoch {
            self.rotate();
        }
        Ok(())
    }

    /// Rotate if the count-driven budget is exhausted.
    #[inline]
    fn rotate_if_due(&mut self) {
        if self.clock.is_due() {
            self.rotate();
        }
    }

    /// Insert `item` into the open epoch's sketch for `key`. Returns
    /// `true` if the update set a new bit.
    pub fn insert_u64(&mut self, key: u64, item: u64) -> bool {
        // Leading check: a budget change can leave the open epoch
        // already full, and the item must land in the next one — the
        // same boundary the batch paths take via a zero-length slice.
        self.rotate_if_due();
        let newly = self.current_mut().insert_u64(key, item);
        self.clock.record(1);
        self.rotate_if_due();
        newly
    }

    /// Insert a byte-string item into the open epoch's sketch for `key`.
    pub fn insert_bytes(&mut self, key: u64, item: &[u8]) -> bool {
        self.rotate_if_due();
        let newly = self.current_mut().insert_bytes(key, item);
        self.clock.record(1);
        self.rotate_if_due();
        newly
    }

    /// Batched per-key ingest into the open epoch(s); on a count-driven
    /// clock the slice is split at epoch boundaries, so the result is
    /// bit-identical to feeding [`WindowedFleet::insert_u64`] per item.
    /// Returns how many bits were newly set.
    pub fn insert_u64s(&mut self, key: u64, mut items: &[u64]) -> u64 {
        let mut newly = 0u64;
        while !items.is_empty() {
            let take = self
                .clock
                .remaining()
                .map_or(items.len(), |r| r.min(items.len() as u64) as usize);
            newly += self.current_mut().insert_u64s(key, &items[..take]);
            self.clock.record(take as u64);
            self.rotate_if_due();
            items = &items[take..];
        }
        newly
    }

    /// Ingest a batch of `(key, item)` pairs through the arena's radix
    /// router, splitting at epoch boundaries on a count-driven clock.
    /// Returns how many bits were newly set.
    pub fn insert_batch(&mut self, mut pairs: &[(u64, u64)]) -> u64 {
        let mut newly = 0u64;
        while !pairs.is_empty() {
            let take = self
                .clock
                .remaining()
                .map_or(pairs.len(), |r| r.min(pairs.len() as u64) as usize);
            newly += self.current_mut().insert_batch(&pairs[..take]);
            self.clock.record(take as u64);
            self.rotate_if_due();
            pairs = &pairs[take..];
        }
        newly
    }

    /// Ensure `key` has a record in the open epoch, as a first insert
    /// would (does not count against a count-driven budget).
    pub fn touch(&mut self, key: u64) {
        // Same boundary as the insert paths: a due epoch closes first,
        // so the record lands where the next insert would.
        self.rotate_if_due();
        self.current_mut().touch(key);
    }

    /// The union fill of `key` over the live epochs — the popcount of
    /// the OR of its per-epoch bitmaps. `None` if no live epoch has seen
    /// the key.
    ///
    /// This is the **fused single-pass** query: the common shapes never
    /// touch word memory at all (key absent, or present in exactly one
    /// epoch — where the union fill *is* that epoch's fill counter, an
    /// invariant the arena maintains per probe and re-validates on
    /// restore), and the multi-epoch shape runs on the
    /// [`sbitmap_bitvec::kernels`] gather kernel: all live regions are
    /// OR-ed into the fleet-owned scratch and popcounted in **one pass
    /// over the words** — each epoch read once, scratch written once,
    /// no zero-fill, no separate popcount sweep. Zero allocation after
    /// warmup, like every other fleet query path.
    /// [`WindowedFleet::window_fill_naive`] keeps the old three-pass
    /// shape callable as the reference the benches gate against.
    pub fn window_fill(&self, key: u64) -> Option<usize> {
        let (live, only_fill, pop) = self.scan_live(key, |_| {});
        match live {
            0 => None,
            // Single live epoch: the union fill is that epoch's fill
            // counter — no scratch traffic at all.
            1 => Some(only_fill),
            _ => Some(pop),
        }
    }

    /// The one fused scan both query entry points run on: walk `key`'s
    /// live epoch records **oldest → newest**, hand every fill counter
    /// to `visit` (the estimate path accumulates Σ t(Lₑ) there; the
    /// epoch order keeps that f64 sum identical across flavors and
    /// restores — the union OR itself is order-independent), and feed
    /// every bitmap region to the gather machine: up to `GATHER`
    /// pending regions on the stack, flushed through the fused
    /// multi-source kernel, with the scratch borrowed (and sized) only
    /// if a flush actually happens.
    ///
    /// Returns `(live, only_fill, pop)`: how many epochs hold the key,
    /// the last seen fill counter (**the** union fill when `live == 1`
    /// — no flush can have happened, so no scratch was touched), and
    /// the gathered union popcount (meaningful when `live >= 2`).
    fn scan_live(&self, key: u64, mut visit: impl FnMut(usize)) -> (usize, usize, usize) {
        const GATHER: usize = 8;
        let current = self.clock.epoch();
        let live_span = self.live_epochs() as u64;
        let w = self.ring.len() as u64;
        let mut srcs: [&[u64]; GATHER] = [&[]; GATHER];
        let mut gathered = 0usize;
        let mut live = 0usize;
        let mut only_fill = 0usize;
        let mut scratch = None;
        let mut overwrite = true;
        let mut pop = 0usize;
        for epoch in (current + 1 - live_span)..=current {
            let slot = (epoch % w) as usize;
            if let Some((fill, words)) = self.ring[slot].slot_record(key) {
                visit(fill);
                live += 1;
                only_fill = fill;
                srcs[gathered] = words;
                gathered += 1;
                if gathered == GATHER {
                    pop = self.gather_flush(&mut scratch, &srcs, overwrite);
                    overwrite = false;
                    gathered = 0;
                }
            }
        }
        if live >= 2 && gathered > 0 {
            pop = self.gather_flush(&mut scratch, &srcs[..gathered], overwrite);
        }
        (live, only_fill, pop)
    }

    /// Flush gathered epoch regions into the query scratch through the
    /// fused multi-source kernel, borrowing (and sizing) the scratch
    /// only on the first flush of a query. Returns the union popcount
    /// after this flush.
    fn gather_flush<'a>(
        &'a self,
        scratch: &mut Option<std::cell::RefMut<'a, Vec<u64>>>,
        srcs: &[&[u64]],
        overwrite: bool,
    ) -> usize {
        let s = scratch.get_or_insert_with(|| {
            let mut s = self.scratch.borrow_mut();
            s.resize(self.stride, 0);
            s
        });
        sbitmap_bitvec::kernels::WordKernels::dispatched().or_gather_popcount(s, srcs, overwrite)
    }

    /// The reference implementation of [`WindowedFleet::window_fill`]:
    /// the pre-kernel three-pass shape (zero the scratch, OR every live
    /// epoch in with a plain scalar word loop, then a separate popcount
    /// sweep). Kept callable so `bench-window` can time the fused kernel
    /// path against it **in the same run** — and refuse to time at all
    /// if the two ever disagree — and so the property suites can lock
    /// them bit-identical.
    pub fn window_fill_naive(&self, key: u64) -> Option<usize> {
        let mut scratch = self.scratch.borrow_mut();
        scratch.resize(self.stride, 0);
        scratch.fill(0);
        let mut found = false;
        for arena in &self.ring {
            if let Some((_, words)) = arena.slot_record(key) {
                for (dst, &src) in scratch.iter_mut().zip(words) {
                    *dst |= src;
                }
                found = true;
            }
        }
        found.then(|| scratch.iter().map(|w| w.count_ones() as usize).sum())
    }

    /// The `min(t(U), Σₑ t(Lₑ))` combination from a precomputed union
    /// fill — shared by the fused and naive estimate paths so the two
    /// can only diverge through the union fill itself.
    fn estimate_from_union(&self, key: u64, union_fill: usize) -> f64 {
        let schedule = self.schedule();
        // Sum per-epoch estimates oldest → newest: a fixed order keeps
        // the f64 sum identical across flavors and restores. Estimates
        // come from the schedule's precomputed curve — one load per
        // epoch, bit-identical to `estimator::estimate_from_fill`.
        let current = self.clock.epoch();
        let live = self.live_epochs() as u64;
        let mut sum = 0.0;
        for epoch in (current + 1 - live)..=current {
            let slot = self.live_slot(epoch).expect("live by construction");
            if let Some(fill) = self.ring[slot].fill(key) {
                sum += schedule.estimate_at(fill);
            }
        }
        schedule.estimate_at(union_fill).min(sum)
    }

    /// The sliding-window distinct estimate for `key`:
    /// `min(t(U), Σₑ t(Lₑ))` over the live epochs — the union term
    /// de-duplicates persistent flows, the sum term is exact for
    /// disjoint epochs, and both err upward (see the module docs).
    /// `None` if no live epoch has seen the key.
    ///
    /// One scan over the live epochs (the private `scan_live` helper
    /// shared with [`WindowedFleet::window_fill`]) does everything: the
    /// per-epoch estimate sum accumulates from the fill counters
    /// (precomputed-curve loads) while the same
    /// `slot_record` lookups feed the fused union gather of
    /// [`WindowedFleet::window_fill`] — no second pass over the ring.
    pub fn estimate(&self, key: u64) -> Option<f64> {
        let schedule = self.schedule();
        let mut sum = 0.0f64;
        let (live, only_fill, pop) = self.scan_live(key, |fill| sum += schedule.estimate_at(fill));
        let union_fill = match live {
            0 => return None,
            1 => only_fill,
            _ => pop,
        };
        Some(schedule.estimate_at(union_fill).min(sum))
    }

    /// [`WindowedFleet::estimate`] on the naive three-pass union
    /// ([`WindowedFleet::window_fill_naive`]) — the reference lane
    /// `bench-window` times and gates the fused path against.
    pub fn estimate_naive(&self, key: u64) -> Option<f64> {
        let union_fill = self.window_fill_naive(key)?;
        Some(self.estimate_from_union(key, union_fill))
    }

    /// The open epoch's estimate for `key` alone (the §7.1 per-interval
    /// view); `None` if the open epoch has not seen the key.
    pub fn epoch_estimate(&self, key: u64) -> Option<f64> {
        self.current().estimate(key)
    }

    /// Keys seen in any live epoch, in ascending order (the workspace
    /// ordering guarantee — see [`KeyedEstimates`]). Gathers each
    /// arena's raw key list and sorts once, rather than paying a clone
    /// and sort per epoch.
    pub fn keys_sorted(&self) -> Vec<u64> {
        let total: usize = self.ring.iter().map(FleetArena::len).sum();
        let mut keys: Vec<u64> = Vec::with_capacity(total);
        for arena in &self.ring {
            keys.extend_from_slice(arena.keys_unsorted());
        }
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// All `(key, windowed estimate)` pairs, in ascending key order
    /// (the [`KeyedEstimates`] derivation, so every flavor reports the
    /// same keys in the same order).
    pub fn estimates(&self) -> Vec<(u64, f64)> {
        KeyedEstimates::estimates_sorted(self)
    }

    /// Number of distinct keys across the live epochs.
    pub fn len(&self) -> usize {
        self.keys_sorted().len()
    }

    /// `true` when no live epoch holds any key.
    pub fn is_empty(&self) -> bool {
        self.ring.iter().all(FleetArena::is_empty)
    }

    /// Total sketch payload across the live epochs, in bits.
    pub fn memory_bits(&self) -> usize {
        self.ring.iter().map(FleetArena::memory_bits).sum()
    }

    /// Materialize the window union of `key` as a standalone
    /// [`SBitmap`] (the union state behind the `t(U)` term of
    /// [`WindowedFleet::estimate`]); `None` if no live epoch has seen
    /// the key. The union is assembled directly in the result's own
    /// allocation — the first live epoch's words seed it and the rest OR
    /// in through the fused kernel — so there is no intermediate scratch
    /// copy to clone out of.
    pub fn export_window_sketch(&self, key: u64) -> Option<SBitmap<H>> {
        let kernels = sbitmap_bitvec::kernels::WordKernels::dispatched();
        let mut words: Vec<u64> = Vec::new();
        let mut fill = 0usize;
        for arena in &self.ring {
            if let Some((epoch_fill, src)) = arena.slot_record(key) {
                if words.is_empty() {
                    words.reserve_exact(self.stride);
                    words.extend_from_slice(src);
                    fill = epoch_fill;
                } else {
                    // Each call returns the running union popcount; the
                    // last one is the final fill.
                    fill = kernels.or_accumulate_popcount(&mut words, src);
                }
            }
        }
        if words.is_empty() {
            return None;
        }
        let m = self.schedule().dims().m();
        let bitmap = Bitmap::from_words(words, m).expect("arena regions are valid bitmaps");
        let mut sketch = SBitmap::with_shared_schedule(
            self.schedule().clone(),
            H::from_seed(sketch_seed(self.seed(), key)),
        );
        sketch.restore_state(bitmap, fill);
        Some(sketch)
    }

    /// Serialize the open epoch alone as a [`CounterKind::SketchFleet`]
    /// checkpoint — what a measurement node ships per epoch in the
    /// windowed collector pipeline.
    pub fn epoch_checkpoint(&self) -> Vec<u8> {
        self.current().checkpoint()
    }

    /// Fold another fleet's state into the ring at absolute epoch
    /// `epoch` via [`FleetArena::union_from`] — the collector side of
    /// the windowed pipeline, where node shards ship per-epoch
    /// checkpoints for disjoint key sets. Returns `Ok(false)` when the
    /// epoch has already expired from the window (a late frame is
    /// dropped, not an error).
    ///
    /// # Errors
    ///
    /// A future epoch (drive the ring with
    /// [`WindowedFleet::advance_to`] first), or a configuration/seed
    /// mismatch (see [`FleetArena::union_from`]).
    pub fn absorb_epoch(
        &mut self,
        epoch: u64,
        other: &FleetArena<H>,
    ) -> Result<bool, SBitmapError> {
        if epoch > self.clock.epoch() {
            return Err(SBitmapError::invalid(
                "epoch",
                format!(
                    "epoch {epoch} is ahead of the ring's open epoch {}",
                    self.clock.epoch()
                ),
            ));
        }
        let Some(slot) = self.live_slot(epoch) else {
            return Ok(false);
        };
        self.ring[slot].union_from(other)?;
        Ok(true)
    }

    /// [`WindowedFleet::absorb_epoch`] for a sparse shard: fold a
    /// [`crate::SparseFleet`]'s state into the ring at absolute epoch
    /// `epoch` via [`FleetArena::union_from_sparse`] — the collector
    /// side when measurement nodes run million-key per-flow fleets in
    /// size-classed sparse storage. Bit-identical to expanding the shard
    /// with [`crate::SparseFleet::to_arena`] and calling
    /// [`WindowedFleet::absorb_epoch`], without materializing the dense
    /// copy. Returns `Ok(false)` when the epoch has already expired.
    ///
    /// # Errors
    ///
    /// A future epoch, or a configuration/seed mismatch (see
    /// [`FleetArena::union_from_sparse`]).
    pub fn absorb_epoch_sparse(
        &mut self,
        epoch: u64,
        other: &crate::sparse::SparseFleet<H>,
    ) -> Result<bool, SBitmapError> {
        if epoch > self.clock.epoch() {
            return Err(SBitmapError::invalid(
                "epoch",
                format!(
                    "epoch {epoch} is ahead of the ring's open epoch {}",
                    self.clock.epoch()
                ),
            ));
        }
        let Some(slot) = self.live_slot(epoch) else {
            return Ok(false);
        };
        self.ring[slot].union_from_sparse(other)?;
        Ok(true)
    }

    /// [`WindowedFleet::absorb_epoch`] with an at-least-once delivery
    /// guard: a `(source, epoch)` pair that was already absorbed is
    /// skipped and reported as [`AbsorbOutcome::Duplicate`], so a network
    /// peer may replay unacknowledged frames freely. The guard is a
    /// *shortcut*, not a correctness requirement — the storage-level
    /// union is an OR, so replaying an identical frame sets zero new
    /// bits either way — which is exactly why the guard is **not**
    /// serialized in the tag-10 checkpoint: a restored ring that re-sees
    /// an old frame re-absorbs a bitwise no-op.
    ///
    /// # Errors
    ///
    /// Same as [`WindowedFleet::absorb_epoch`]: a future epoch, or a
    /// configuration/seed mismatch (the source is *not* marked seen on
    /// error — a corrected retry still lands).
    pub fn absorb_epoch_from(
        &mut self,
        source: u64,
        epoch: u64,
        other: &FleetArena<H>,
    ) -> Result<AbsorbOutcome, SBitmapError> {
        if epoch > self.clock.epoch() {
            return Err(SBitmapError::invalid(
                "epoch",
                format!(
                    "epoch {epoch} is ahead of the ring's open epoch {}",
                    self.clock.epoch()
                ),
            ));
        }
        let Some(slot) = self.live_slot(epoch) else {
            return Ok(AbsorbOutcome::Expired);
        };
        if self.seen[slot].contains(&(source, FULL_FRAME_ROUND)) {
            return Ok(AbsorbOutcome::Duplicate);
        }
        self.check_guard_capacity(slot, epoch)?;
        self.seen[slot].insert((source, FULL_FRAME_ROUND));
        if let Err(e) = self.ring[slot].union_from(other) {
            self.seen[slot].remove(&(source, FULL_FRAME_ROUND));
            return Err(e);
        }
        Ok(AbsorbOutcome::Absorbed)
    }

    /// Reject a *new* guard identity once `slot`'s guard is at
    /// [`WindowedFleet::MAX_GUARD_ENTRIES_PER_SLOT`] — before any O(m)
    /// absorb work, so a rejected frame provably leaves the ring
    /// untouched.
    fn check_guard_capacity(&self, slot: usize, epoch: u64) -> Result<(), SBitmapError> {
        if self.seen[slot].len() >= Self::MAX_GUARD_ENTRIES_PER_SLOT {
            return Err(SBitmapError::GuardFull {
                epoch,
                cap: Self::MAX_GUARD_ENTRIES_PER_SLOT,
            });
        }
        Ok(())
    }

    /// Absorb a wire-v3 [`FleetDeltaFrame`] incrementally into the ring:
    /// every record is OR-applied straight onto the epoch arena's words
    /// through the word kernels — no full-frame materialization, no
    /// intermediate arena. The at-least-once guard works per `(source,
    /// round)`: replays come back as [`AbsorbOutcome::Duplicate`], late
    /// frames for expired epochs as [`AbsorbOutcome::Expired`], and a
    /// round > 0 whose `(source, epoch)` baseline (round 0) has not been
    /// absorbed is rejected with [`SBitmapError::MissingBaseline`] after
    /// nothing more than two map lookups — the sender must resync from a
    /// baseline frame.
    ///
    /// Correctness under duplication and reorder: within an epoch the
    /// S-bitmap only sets bits, so round frames carry disjoint
    /// newly-set-bit sets and OR-absorption is idempotent and
    /// commutative — absorbing all rounds of an epoch in any order, any
    /// number of times, converges to exactly the epoch's final bitmap.
    /// (Rounds > 0 still require the baseline first: round 0 is the only
    /// frame guaranteed to carry a record — and thus create the slot —
    /// for every key of the shard, including still-empty ones.)
    ///
    /// # Errors
    ///
    /// A future epoch (drive the ring with [`WindowedFleet::advance_to`]
    /// first), a configuration/seed mismatch between the frame and the
    /// ring, or a broken delta chain ([`SBitmapError::MissingBaseline`]).
    pub fn absorb_delta_from(
        &mut self,
        source: u64,
        frame: &FleetDeltaFrame,
    ) -> Result<AbsorbOutcome, SBitmapError> {
        self.absorb_delta_inner(source, frame, true)
    }

    /// [`WindowedFleet::absorb_delta_from`] minus the baseline
    /// requirement — the journal-replay entry point.
    ///
    /// A write-ahead journal only records frames *after* they were
    /// absorbed, so every journaled round > 0 had its baseline absorbed
    /// first; but a ring restored from a snapshot has an empty guard,
    /// and the baseline's journal record may live in a segment the
    /// snapshot already covered (truncated away). Re-checking the
    /// baseline at replay would therefore reject causally-valid
    /// records. Replay skips the check — safe because OR-absorption is
    /// idempotent and commutative — while still recording `(source,
    /// round)` in the guard, so post-recovery live traffic dedupes
    /// against everything the replay restored.
    ///
    /// # Errors
    ///
    /// Same as [`WindowedFleet::absorb_delta_from`], except
    /// [`SBitmapError::MissingBaseline`] is never raised.
    pub fn absorb_delta_replay(
        &mut self,
        source: u64,
        frame: &FleetDeltaFrame,
    ) -> Result<AbsorbOutcome, SBitmapError> {
        self.absorb_delta_inner(source, frame, false)
    }

    fn absorb_delta_inner(
        &mut self,
        source: u64,
        frame: &FleetDeltaFrame,
        require_baseline: bool,
    ) -> Result<AbsorbOutcome, SBitmapError> {
        let schedule = self.schedule();
        let dims = schedule.dims();
        if frame.n_max != dims.n_max()
            || frame.m != dims.m()
            || frame.sampling_bits != schedule.split().sampling_bits()
        {
            return Err(SBitmapError::invalid(
                "delta",
                "delta frame has different dimensioning".to_string(),
            ));
        }
        if frame.seed != self.seed() {
            return Err(SBitmapError::invalid(
                "delta",
                "delta frame has a different fleet seed".to_string(),
            ));
        }
        if frame.epoch > self.clock.epoch() {
            return Err(SBitmapError::invalid(
                "epoch",
                format!(
                    "epoch {} is ahead of the ring's open epoch {}",
                    frame.epoch,
                    self.clock.epoch()
                ),
            ));
        }
        let Some(slot) = self.live_slot(frame.epoch) else {
            return Ok(AbsorbOutcome::Expired);
        };
        if self.seen[slot].contains(&(source, frame.round)) {
            return Ok(AbsorbOutcome::Duplicate);
        }
        if require_baseline && frame.round != 0 && !self.seen[slot].contains(&(source, 0)) {
            return Err(SBitmapError::MissingBaseline {
                epoch: frame.epoch,
                round: frame.round,
            });
        }
        self.check_guard_capacity(slot, frame.epoch)?;
        for rec in &frame.records {
            self.ring[slot].or_apply_delta(rec.key, &rec.body);
        }
        self.seen[slot].insert((source, frame.round));
        Ok(AbsorbOutcome::Absorbed)
    }

    /// Reset every live epoch, keeping keys, slots and allocations; the
    /// clock keeps running.
    pub fn reset_all(&mut self) {
        for arena in &mut self.ring {
            arena.reset_all();
        }
        for seen in &mut self.seen {
            seen.clear();
        }
    }

    /// Drop all keys from every epoch, keeping allocations for reuse;
    /// the clock keeps running.
    pub fn clear(&mut self) {
        for arena in &mut self.ring {
            arena.clear();
        }
        for seen in &mut self.seen {
            seen.clear();
        }
    }
}

impl<H: Hasher64 + FromSeed> KeyedEstimates for WindowedFleet<H> {
    fn keys_sorted(&self) -> Vec<u64> {
        WindowedFleet::keys_sorted(self)
    }

    fn estimate(&self, key: u64) -> Option<f64> {
        WindowedFleet::estimate(self, key)
    }
}

/// Windowed fleets serialize as [`CounterKind::WindowedFleet`]: the
/// shared configuration once, the clock, then every live epoch's
/// per-key records (fleet wire layout), oldest epoch first, keys sorted.
/// See `docs/wire-format.md` (tag 10) for the byte layout.
impl<H: Hasher64 + FromSeed> Checkpoint for WindowedFleet<H> {
    const KIND: CounterKind = CounterKind::WindowedFleet;

    fn write_payload(&self, out: &mut PayloadWriter) {
        let schedule = self.schedule();
        let dims = schedule.dims();
        out.u64(dims.n_max());
        out.u64(dims.m() as u64);
        out.u32(schedule.split().sampling_bits());
        out.u64(self.seed());
        out.u64(self.ring.len() as u64);
        out.u64(self.clock.epoch());
        out.u64(self.clock.budget().unwrap_or(0));
        out.u64(self.clock.items_in_epoch());
        let live = self.live_epochs() as u64;
        out.u64(live);
        let current = self.clock.epoch();
        for epoch in (current + 1 - live)..=current {
            let slot = self.live_slot(epoch).expect("live by construction");
            let arena = &self.ring[slot];
            out.u64(epoch);
            let keys = arena.keys_sorted();
            out.u64(keys.len() as u64);
            for key in keys {
                let (fill, words) = arena.slot_record(key).expect("key listed");
                out.u64(key);
                out.u64(fill as u64);
                out.words(words);
            }
        }
    }

    fn read_payload(r: &mut PayloadReader<'_>) -> Result<Self, SBitmapError> {
        let fail = |msg: &str| SBitmapError::invalid("checkpoint", msg.to_string());
        let n_max = r.u64()?;
        let m = r.len_u64()?;
        // Cap before the O(m) schedule rebuild — see `codec::MAX_WIRE_M`.
        crate::codec::check_wire_m(m)?;
        let sampling_bits = r.u32()?;
        let seed = r.u64()?;
        let window = r.len_u64()?;
        let epoch = r.u64()?;
        let budget = r.u64()?;
        let in_epoch = r.u64()?;
        let live = r.len_u64()?;
        // `window` drives the ring allocation *before* any byte-backed
        // record is read, so unlike the per-epoch record counts it is
        // not implicitly bounded by the payload length — cap it so a
        // crafted 8-byte field cannot demand a multi-GB ring.
        if window > Self::MAX_WIRE_WINDOW {
            return Err(fail("window span exceeds the wire limit"));
        }
        let next_epoch = epoch
            .checked_add(1)
            .ok_or_else(|| fail("epoch index out of range"))?;
        if live > window || live as u64 > next_epoch {
            return Err(fail("live epoch count exceeds the window"));
        }
        let dims = crate::dimensioning::Dimensioning::from_memory(n_max, m)?;
        let schedule = Arc::new(RateSchedule::new(dims, sampling_bits)?);
        let mut fleet = WindowedFleet::with_schedule(schedule, seed, window)?;
        if budget > 0 {
            fleet = fleet.with_epoch_items(budget)?;
        }
        fleet.clock.epoch = epoch;
        fleet.clock.in_epoch = in_epoch;
        if budget > 0 && in_epoch > budget {
            return Err(fail("open epoch overfills its item budget"));
        }
        let mut last: Option<u64> = None;
        for _ in 0..live {
            let e = r.u64()?;
            if last.is_some_and(|l| e <= l) {
                return Err(fail("epoch indices must be strictly increasing"));
            }
            last = Some(e);
            let Some(slot) = fleet.live_slot(e) else {
                return Err(fail("epoch record outside the live window"));
            };
            let count = r.len_u64()?;
            for _ in 0..count {
                let key = r.u64()?;
                let fill = r.len_u64()?;
                let words = r.words(m.div_ceil(64))?;
                fleet.ring[slot].restore_slot(key, fill, words)?;
            }
        }
        Ok(fleet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::DistinctCounter;
    use crate::estimator;
    use crate::fleet::SketchFleet;

    fn windowed(window: usize) -> WindowedFleet {
        WindowedFleet::new(100_000, 4_000, 9, window).unwrap()
    }

    /// The naive reference: one standalone [`SketchFleet`] per epoch,
    /// window fill = popcount of the OR of the key's per-epoch bitmaps.
    fn reference_fill(epochs: &[SketchFleet], key: u64) -> Option<usize> {
        let mut acc: Option<Bitmap> = None;
        for fleet in epochs {
            if let Some(sketch) = fleet.sketch(key) {
                match &mut acc {
                    None => acc = Some(sketch.bitmap().clone()),
                    Some(bits) => {
                        bits.union_or(sketch.bitmap()).unwrap();
                    }
                }
            }
        }
        acc.map(|bits| bits.count_ones())
    }

    /// The naive reference estimate: `min(t(U), Σₑ t(Lₑ))` computed from
    /// standalone per-epoch fleets, oldest first.
    fn reference_estimate(epochs: &[SketchFleet], key: u64) -> Option<f64> {
        let union = reference_fill(epochs, key)?;
        let dims = *epochs[0].schedule().dims();
        let sum: f64 = epochs
            .iter()
            .filter_map(|f| f.sketch(key))
            .map(|s| estimator::estimate_from_fill(&dims, s.fill()))
            .sum();
        Some(estimator::estimate_from_fill(&dims, union).min(sum))
    }

    #[test]
    fn clock_budget_and_advance_semantics() {
        let mut clock = EpochClock::with_budget(3).unwrap();
        assert_eq!(clock.remaining(), Some(3));
        clock.record(2);
        assert!(!clock.is_due());
        clock.record(1);
        assert!(clock.is_due());
        assert_eq!(clock.advance(), 0);
        assert_eq!(clock.epoch(), 1);
        assert_eq!(clock.items_in_epoch(), 0);
        assert!(EpochClock::with_budget(0).is_err());
        assert_eq!(EpochClock::unbounded().remaining(), None);
    }

    #[test]
    fn single_epoch_matches_plain_arena() {
        let mut w = windowed(4);
        let mut a: FleetArena = FleetArena::new(100_000, 4_000, 9).unwrap();
        let pairs: Vec<(u64, u64)> = (0..20_000u64).map(|i| (i % 7, i / 7 % 2_000)).collect();
        w.insert_batch(&pairs);
        a.insert_batch(&pairs);
        for key in 0..7u64 {
            assert_eq!(w.estimate(key), a.estimate(key), "key {key}");
            assert_eq!(w.window_fill(key), a.fill(key), "key {key}");
        }
        assert_eq!(w.epoch_checkpoint(), a.checkpoint());
    }

    #[test]
    fn windowed_estimates_match_naive_per_epoch_reference() {
        let mut w = windowed(3);
        let mut reference: Vec<SketchFleet> = Vec::new();
        let mut current = SketchFleet::new(100_000, 4_000, 9).unwrap();
        for epoch in 0..7u64 {
            for i in 0..4_000u64 {
                let key = i % 5;
                let item = epoch * 10_000 + i / 5 % 900;
                w.insert_u64(key, item);
                current.insert_u64(key, item);
            }
            w.rotate();
            reference.push(std::mem::replace(
                &mut current,
                SketchFleet::new(100_000, 4_000, 9).unwrap(),
            ));
        }
        // Live window after 7 rotations: epochs 5, 6 and the (empty)
        // open epoch 7 — epochs 0..=4 must have expired.
        let live = &reference[5..7];
        for key in 0..5u64 {
            assert_eq!(
                w.window_fill(key),
                reference_fill(live, key),
                "fill for key {key}"
            );
            assert_eq!(
                w.estimate(key),
                reference_estimate(live, key),
                "estimate for key {key}"
            );
            assert_eq!(
                w.window_fill(key),
                w.window_fill_naive(key),
                "fused vs naive fill for key {key}"
            );
            assert_eq!(
                w.estimate(key),
                w.estimate_naive(key),
                "fused vs naive estimate for key {key}"
            );
        }
        let expired_only = reference_fill(&reference[..5], 0).unwrap();
        assert!(expired_only > 0, "sanity: expired epochs held state");
    }

    #[test]
    fn count_driven_batches_match_scalar_feed() {
        let pairs: Vec<(u64, u64)> = (0..9_500u64).map(|i| (i % 4, i * 31 % 3_000)).collect();
        let mut batched = windowed(3).with_epoch_items(1_000).unwrap();
        let mut scalar = windowed(3).with_epoch_items(1_000).unwrap();
        batched.insert_batch(&pairs);
        for &(k, item) in &pairs {
            scalar.insert_u64(k, item);
        }
        assert_eq!(batched.current_epoch(), 9, "9500 items / 1000 per epoch");
        assert_eq!(batched.current_epoch(), scalar.current_epoch());
        assert_eq!(batched.estimates(), scalar.estimates());
        assert_eq!(batched.checkpoint(), scalar.checkpoint());
    }

    #[test]
    fn expiry_forgets_old_epochs() {
        let mut w = windowed(2);
        for i in 0..2_000u64 {
            w.insert_u64(1, i);
        }
        let full = w.estimate(1).unwrap();
        w.rotate();
        assert!(w.estimate(1).is_some(), "still live one epoch later");
        w.rotate();
        assert_eq!(w.estimate(1), None, "expired after W rotations");
        assert!(w.is_empty());
        assert!(full > 0.0);
    }

    #[test]
    fn checkpoint_round_trips_mid_window() {
        let mut w = windowed(3).with_epoch_items(2_500).unwrap();
        let pairs: Vec<(u64, u64)> = (0..8_000u64).map(|i| (i % 6, i / 6 % 1_100)).collect();
        w.insert_batch(&pairs);
        let bytes = w.checkpoint();
        let mut restored: WindowedFleet = Checkpoint::restore(&bytes).unwrap();
        assert_eq!(restored.current_epoch(), w.current_epoch());
        assert_eq!(restored.window_epochs(), 3);
        assert_eq!(restored.estimates(), w.estimates());
        assert_eq!(restored.checkpoint(), bytes, "canonical re-encode");
        // Both continue identically across further epochs.
        let more: Vec<(u64, u64)> = (0..4_000u64).map(|i| (i % 6, 50_000 + i)).collect();
        w.insert_batch(&more);
        restored.insert_batch(&more);
        assert_eq!(restored.estimates(), w.estimates());
        assert_eq!(restored.checkpoint(), w.checkpoint());
    }

    #[test]
    fn absorb_epoch_unions_disjoint_shards() {
        let schedule = Arc::new(RateSchedule::from_memory(100_000, 4_000).unwrap());
        let mut ring: WindowedFleet = WindowedFleet::with_schedule(schedule.clone(), 9, 3).unwrap();
        let mut single = windowed(3);
        for epoch in 0..4u64 {
            // Two "shards" own disjoint keys {0,2} and {1,3}.
            let mut a: FleetArena = FleetArena::with_schedule(schedule.clone(), 9);
            let mut b: FleetArena = FleetArena::with_schedule(schedule.clone(), 9);
            for i in 0..3_000u64 {
                let key = i % 4;
                let item = epoch * 10_000 + i / 4 % 600;
                if key % 2 == 0 {
                    a.insert_u64(key, item);
                } else {
                    b.insert_u64(key, item);
                }
                single.insert_u64(key, item);
            }
            ring.advance_to(epoch).unwrap();
            assert!(ring.absorb_epoch(epoch, &a).unwrap());
            assert!(ring.absorb_epoch(epoch, &b).unwrap());
            single.advance_to(epoch).unwrap();
            if epoch < 3 {
                ring.rotate();
                single.rotate();
            }
        }
        assert_eq!(ring.estimates(), single.estimates());
        // A frame for an expired epoch is dropped, a future one rejected.
        let empty: FleetArena = FleetArena::with_schedule(schedule.clone(), 9);
        assert!(!ring.absorb_epoch(0, &empty).unwrap());
        assert!(ring.absorb_epoch(99, &empty).is_err());
        // Mismatched seeds are rejected, not silently mixed.
        let alien: FleetArena = FleetArena::with_schedule(schedule, 77);
        assert!(ring.absorb_epoch(ring.current_epoch(), &alien).is_err());
    }

    #[test]
    fn absorb_guard_dedups_per_source_and_resets_on_reuse() {
        let schedule = Arc::new(RateSchedule::from_memory(100_000, 4_000).unwrap());
        let mut ring: WindowedFleet = WindowedFleet::with_schedule(schedule.clone(), 9, 2).unwrap();
        let mut a: FleetArena = FleetArena::with_schedule(schedule.clone(), 9);
        for i in 0..1_000u64 {
            a.insert_u64(3, i);
        }
        assert_eq!(
            ring.absorb_epoch_from(7, 0, &a).unwrap(),
            AbsorbOutcome::Absorbed
        );
        let after_first = ring.checkpoint();
        // Replays from the same source are skipped; a different source
        // absorbs (a bitwise no-op here — identical frame), and neither
        // changes the ring state.
        assert_eq!(
            ring.absorb_epoch_from(7, 0, &a).unwrap(),
            AbsorbOutcome::Duplicate
        );
        assert_eq!(
            ring.absorb_epoch_from(8, 0, &a).unwrap(),
            AbsorbOutcome::Absorbed
        );
        assert_eq!(ring.checkpoint(), after_first, "replay is a no-op");
        // A failed absorb does not poison the guard: the source retries.
        let alien: FleetArena = FleetArena::with_schedule(schedule.clone(), 77);
        let mut fresh: WindowedFleet = WindowedFleet::with_schedule(schedule, 9, 2).unwrap();
        assert!(fresh.absorb_epoch_from(9, 0, &alien).is_err());
        assert_eq!(
            fresh.absorb_epoch_from(9, 0, &a).unwrap(),
            AbsorbOutcome::Absorbed
        );
        // Expiry: epoch 0 falls out after W rotations, and the guard of
        // its reused slot is cleared for the new epoch.
        ring.advance_to(2).unwrap();
        assert_eq!(
            ring.absorb_epoch_from(7, 0, &a).unwrap(),
            AbsorbOutcome::Expired
        );
        assert_eq!(
            ring.absorb_epoch_from(7, 2, &a).unwrap(),
            AbsorbOutcome::Absorbed,
            "slot reuse cleared the old epoch's seen set"
        );
        // The guard is not serialized: a restored ring re-absorbs.
        let mut restored: WindowedFleet = Checkpoint::restore(&ring.checkpoint()).unwrap();
        let before = restored.checkpoint();
        assert_eq!(
            restored.absorb_epoch_from(7, 2, &a).unwrap(),
            AbsorbOutcome::Absorbed
        );
        assert_eq!(restored.checkpoint(), before, "re-absorb is bitwise no-op");
    }

    /// Build the round-`r` delta frame for `shard` against `prev`
    /// per-key snapshots (updating the snapshots in place) — the same
    /// shape the stream-layer encoder produces.
    fn delta_round(
        shard: &FleetArena,
        prev: &mut std::collections::HashMap<u64, Vec<u64>>,
        epoch: u64,
        round: u32,
    ) -> FleetDeltaFrame {
        let schedule = shard.schedule();
        let dims = schedule.dims();
        let mut frame = FleetDeltaFrame::new(
            dims.n_max(),
            dims.m(),
            schedule.split().sampling_bits(),
            shard.seed(),
            epoch,
            round,
        );
        for key in shard.keys_sorted() {
            let cur = shard.slot_words(key).expect("key listed");
            let old = prev.entry(key).or_insert_with(|| vec![0; cur.len()]);
            let delta: Vec<u64> = cur.iter().zip(old.iter()).map(|(&c, &p)| c ^ p).collect();
            let fresh = delta.iter().any(|&w| w != 0);
            if round == 0 || fresh {
                frame.push(key, &delta);
            }
            old.copy_from_slice(cur);
        }
        frame
    }

    #[test]
    fn delta_chain_reproduces_the_full_absorb_under_duplication_and_reorder() {
        let schedule = Arc::new(RateSchedule::from_memory(100_000, 4_000).unwrap());
        let mut shard: FleetArena = FleetArena::with_schedule(schedule.clone(), 9);
        let mut prev = std::collections::HashMap::new();
        // Three rounds of one epoch; keys 1..4 grow each round.
        let mut frames = Vec::new();
        for round in 0..3u32 {
            for i in 0..2_000u64 {
                shard.insert_u64(i % 4, u64::from(round) * 10_000 + i / 4 % 450);
            }
            frames.push(delta_round(&shard, &mut prev, 0, round));
        }
        let bytes: Vec<Vec<u8>> = frames.iter().map(FleetDeltaFrame::encode).collect();

        // Reference: the whole shard absorbed as one full frame.
        let mut reference: WindowedFleet =
            WindowedFleet::with_schedule(schedule.clone(), 9, 2).unwrap();
        reference.absorb_epoch_from(7, 0, &shard).unwrap();

        // In-order chain.
        let mut ring: WindowedFleet = WindowedFleet::with_schedule(schedule.clone(), 9, 2).unwrap();
        for b in &bytes {
            let f = FleetDeltaFrame::decode(b).unwrap();
            assert_eq!(
                ring.absorb_delta_from(7, &f).unwrap(),
                AbsorbOutcome::Absorbed
            );
        }
        assert_eq!(ring.checkpoint(), reference.checkpoint());
        assert_eq!(ring.estimates(), reference.estimates());

        // Baseline first, later rounds reordered and duplicated: the OR
        // absorb is idempotent and commutative, so the state is
        // bit-identical (duplicates are skipped by the guard anyway).
        let mut chaos: WindowedFleet =
            WindowedFleet::with_schedule(schedule.clone(), 9, 2).unwrap();
        let f0 = FleetDeltaFrame::decode(&bytes[0]).unwrap();
        let f1 = FleetDeltaFrame::decode(&bytes[1]).unwrap();
        let f2 = FleetDeltaFrame::decode(&bytes[2]).unwrap();
        assert_eq!(
            chaos.absorb_delta_from(7, &f0).unwrap(),
            AbsorbOutcome::Absorbed
        );
        assert_eq!(
            chaos.absorb_delta_from(7, &f2).unwrap(),
            AbsorbOutcome::Absorbed,
            "round 2 before round 1 is fine once the baseline landed"
        );
        assert_eq!(
            chaos.absorb_delta_from(7, &f2).unwrap(),
            AbsorbOutcome::Duplicate
        );
        assert_eq!(
            chaos.absorb_delta_from(7, &f1).unwrap(),
            AbsorbOutcome::Absorbed
        );
        assert_eq!(
            chaos.absorb_delta_from(7, &f0).unwrap(),
            AbsorbOutcome::Duplicate
        );
        assert_eq!(chaos.checkpoint(), reference.checkpoint());

        // A second source replays the same chain: absorbed (bitwise
        // no-op — same shard state), ring unchanged.
        let before = ring.checkpoint();
        assert_eq!(
            ring.absorb_delta_from(8, &f0).unwrap(),
            AbsorbOutcome::Absorbed
        );
        assert_eq!(ring.checkpoint(), before);
    }

    #[test]
    fn delta_absorb_guards_baseline_expiry_and_config() {
        let schedule = Arc::new(RateSchedule::from_memory(100_000, 4_000).unwrap());
        let mut shard: FleetArena = FleetArena::with_schedule(schedule.clone(), 9);
        let mut prev = std::collections::HashMap::new();
        for i in 0..1_000u64 {
            shard.insert_u64(3, i);
        }
        let base = delta_round(&shard, &mut prev, 0, 0);
        for i in 1_000..2_000u64 {
            shard.insert_u64(3, i);
        }
        let delta = delta_round(&shard, &mut prev, 0, 1);

        // Round 1 before round 0: MissingBaseline, typed, state intact.
        let mut ring: WindowedFleet = WindowedFleet::with_schedule(schedule.clone(), 9, 2).unwrap();
        let err = ring.absorb_delta_from(7, &delta).unwrap_err();
        assert_eq!(err, SBitmapError::MissingBaseline { epoch: 0, round: 1 });
        assert!(err.to_string().contains("baseline"), "{err}");
        assert!(ring.is_empty(), "rejected delta must not touch the ring");
        // The recovery path: baseline, then the delta.
        assert_eq!(
            ring.absorb_delta_from(7, &base).unwrap(),
            AbsorbOutcome::Absorbed
        );
        assert_eq!(
            ring.absorb_delta_from(7, &delta).unwrap(),
            AbsorbOutcome::Absorbed
        );
        // A v2 full frame from the same source does not stand in for a
        // delta baseline (different guard entries)…
        let mut full_first: WindowedFleet =
            WindowedFleet::with_schedule(schedule.clone(), 9, 2).unwrap();
        full_first.absorb_epoch_from(7, 0, &shard).unwrap();
        assert!(full_first.absorb_delta_from(7, &delta).is_err());

        // Expired epoch → Expired, future epoch → error.
        ring.advance_to(2).unwrap();
        assert_eq!(
            ring.absorb_delta_from(7, &base).unwrap(),
            AbsorbOutcome::Expired
        );
        let mut future = base.clone();
        future.epoch = 99;
        assert!(ring.absorb_delta_from(7, &future).is_err());

        // Config/seed mismatches are typed errors, not silent mixes.
        let mut alien = base.clone();
        alien.seed = 77;
        assert!(ring.absorb_delta_from(7, &alien).is_err());
        let mut alien = base.clone();
        alien.m = 8_000;
        assert!(ring.absorb_delta_from(7, &alien).is_err());
    }

    #[test]
    fn replay_absorb_skips_the_baseline_requirement_but_keeps_the_guard() {
        let schedule = Arc::new(RateSchedule::from_memory(100_000, 4_000).unwrap());
        let mut shard: FleetArena = FleetArena::with_schedule(schedule.clone(), 9);
        let mut prev = std::collections::HashMap::new();
        for i in 0..1_000u64 {
            shard.insert_u64(3, i);
        }
        let base = delta_round(&shard, &mut prev, 0, 0);
        for i in 1_000..2_000u64 {
            shard.insert_u64(3, i);
        }
        let delta = delta_round(&shard, &mut prev, 0, 1);

        // Reference: the chain absorbed in order through the live path.
        let mut reference: WindowedFleet =
            WindowedFleet::with_schedule(schedule.clone(), 9, 2).unwrap();
        reference.absorb_delta_from(7, &base).unwrap();
        reference.absorb_delta_from(7, &delta).unwrap();

        // Replay path: round 1 with no baseline in the guard (the
        // snapshot-covered-baseline shape) is absorbed, not rejected…
        let mut ring: WindowedFleet = WindowedFleet::with_schedule(schedule.clone(), 9, 2).unwrap();
        assert_eq!(
            ring.absorb_delta_replay(7, &delta).unwrap(),
            AbsorbOutcome::Absorbed
        );
        assert_eq!(
            ring.absorb_delta_replay(7, &base).unwrap(),
            AbsorbOutcome::Absorbed
        );
        assert_eq!(ring.checkpoint(), reference.checkpoint());
        // …and the guard entries stuck: live-path replays are dupes.
        assert_eq!(
            ring.absorb_delta_from(7, &delta).unwrap(),
            AbsorbOutcome::Duplicate
        );
        // Config mismatches stay typed errors on the replay path too.
        let mut alien = base.clone();
        alien.seed = 77;
        assert!(ring.absorb_delta_replay(7, &alien).is_err());
    }

    #[test]
    fn guard_capacity_is_capped_with_a_typed_rejection() {
        let schedule = Arc::new(RateSchedule::from_memory(100_000, 4_000).unwrap());
        let mut ring: WindowedFleet = WindowedFleet::with_schedule(schedule.clone(), 9, 2).unwrap();
        // Churn source ids through empty baseline frames: guard entries
        // without absorb work.
        let dims = schedule.dims();
        let empty = || {
            FleetDeltaFrame::new(
                dims.n_max(),
                dims.m(),
                schedule.split().sampling_bits(),
                9,
                0,
                0,
            )
        };
        let cap = <WindowedFleet>::MAX_GUARD_ENTRIES_PER_SLOT;
        for source in 0..cap as u64 {
            assert_eq!(
                ring.absorb_delta_from(source, &empty()).unwrap(),
                AbsorbOutcome::Absorbed
            );
        }
        // One more source: typed rejection, ring untouched.
        let before = ring.checkpoint();
        let err = ring.absorb_delta_from(cap as u64, &empty()).unwrap_err();
        assert_eq!(err, SBitmapError::GuardFull { epoch: 0, cap });
        assert!(err.to_string().contains("guard full"), "{err}");
        assert_eq!(ring.checkpoint(), before);
        // Full frames hit the same cap…
        let shard: FleetArena = FleetArena::with_schedule(schedule.clone(), 9);
        let err = ring.absorb_epoch_from(cap as u64, 0, &shard).unwrap_err();
        assert_eq!(err, SBitmapError::GuardFull { epoch: 0, cap });
        // …while already-tracked identities keep deduping.
        assert_eq!(
            ring.absorb_delta_from(5, &empty()).unwrap(),
            AbsorbOutcome::Duplicate
        );
        // Rotation clears the slot's guard and frees capacity again.
        ring.advance_to(2).unwrap();
        let fresh = FleetDeltaFrame::new(
            dims.n_max(),
            dims.m(),
            schedule.split().sampling_bits(),
            9,
            2,
            0,
        );
        assert_eq!(
            ring.absorb_delta_from(cap as u64, &fresh).unwrap(),
            AbsorbOutcome::Absorbed
        );
    }

    #[test]
    fn fused_query_special_cases_match_naive() {
        // Every shape the fused path special-cases: key absent, key in
        // exactly one live epoch (the zero-word-traffic shortcut), key
        // in exactly two (copy + fused OR only), and key in all epochs.
        let mut w = windowed(4);
        w.insert_u64(1, 7); // epoch 0 only — expires later
        w.rotate();
        for i in 0..800u64 {
            w.insert_u64(2, i); // epoch 1 only
        }
        w.rotate();
        for i in 0..800u64 {
            w.insert_u64(2, 10_000 + i); // epochs 1 and 2
            w.insert_u64(3, i); // epoch 2 only
        }
        w.rotate();
        for i in 0..800u64 {
            w.insert_u64(2, 20_000 + i);
            w.insert_u64(3, i + 400); // epochs 2 and 3
        }
        for key in 0..6u64 {
            assert_eq!(w.window_fill(key), w.window_fill_naive(key), "key {key}");
            assert_eq!(w.estimate(key), w.estimate_naive(key), "key {key}");
        }
        // Single-epoch key: the shortcut answers without word traffic,
        // and an absent key answers None on both paths.
        assert!(w.window_fill(1).is_some());
        assert_eq!(w.window_fill(5), None);
        assert_eq!(w.estimate_naive(5), None);
        // Expire key 1 (inserted in epoch 0; window is 4 epochs).
        w.rotate();
        assert_eq!(w.window_fill(1), None);
        assert_eq!(w.window_fill_naive(1), None);
    }

    #[test]
    fn export_window_sketch_carries_the_union_state() {
        let mut w = windowed(2);
        for i in 0..1_500u64 {
            w.insert_u64(4, i);
        }
        w.rotate();
        for i in 1_000..2_500u64 {
            w.insert_u64(4, i);
        }
        let sketch = w.export_window_sketch(4).unwrap();
        let union_fill = w.window_fill(4).unwrap();
        assert_eq!(sketch.fill(), union_fill);
        // The exported sketch carries the t(U) term; the windowed
        // estimate is min(t(U), Σ t(Lₑ)) and can only be tighter.
        let t_union = estimator::estimate_from_fill(w.schedule().dims(), union_fill);
        assert_eq!(sketch.estimate(), t_union);
        assert!(w.estimate(4).unwrap() <= t_union);
        assert!(w.export_window_sketch(5).is_none());
    }

    #[test]
    fn shrinking_the_budget_under_an_open_epoch_stays_scalar_batch_identical() {
        // Fill an unbudgeted epoch past the budget about to be set; the
        // overfull epoch must close before the next insert lands, and
        // scalar and batched feeds must keep agreeing bit-for-bit.
        let mut scalar = windowed(3);
        for i in 0..1_500u64 {
            scalar.insert_u64(1, i);
        }
        let mut batched = scalar.clone();
        scalar = scalar.with_epoch_items(1_000).unwrap();
        batched = batched.with_epoch_items(1_000).unwrap();
        scalar.insert_u64(1, 9_999);
        assert_eq!(scalar.current_epoch(), 1, "overfull epoch closed first");
        assert_eq!(scalar.clock().items_in_epoch(), 1);
        batched.insert_batch(&[(1, 9_999)]);
        assert_eq!(batched.checkpoint(), scalar.checkpoint());
    }

    #[test]
    fn restore_rejects_hostile_window_and_epoch_fields() {
        use crate::codec::{frame, PayloadWriter};

        // A frame with a valid checksum but an absurd window span must
        // be rejected before any ring allocation happens.
        let hostile = |window: u64, epoch: u64, live: u64| {
            let mut w = PayloadWriter::default();
            w.u64(100_000); // n_max
            w.u64(4_000); // m
            w.u32(32); // d
            w.u64(9); // seed
            w.u64(window);
            w.u64(epoch);
            w.u64(0); // budget
            w.u64(0); // in_epoch
            w.u64(live);
            frame(CounterKind::WindowedFleet, &w.into_inner())
        };
        let err = <WindowedFleet as Checkpoint>::restore(&hostile(1 << 40, 0, 0)).unwrap_err();
        assert!(err.to_string().contains("wire limit"), "{err}");
        // epoch = u64::MAX must fail loudly, not overflow.
        let err = <WindowedFleet as Checkpoint>::restore(&hostile(2, u64::MAX, 1)).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        // An in-range frame with no live epochs restores fine.
        let ok: WindowedFleet = Checkpoint::restore(&hostile(2, 5, 0)).unwrap();
        assert_eq!(ok.current_epoch(), 5);
        assert!(ok.is_empty());
    }

    #[test]
    fn rejects_degenerate_configs_and_tampered_checkpoints() {
        assert!(WindowedFleet::<SplitMix64Hasher>::new(100_000, 4_000, 9, 0).is_err());
        assert!(windowed(2).with_epoch_items(0).is_err());
        let mut w = windowed(2);
        w.insert_u64(1, 1);
        let bytes = w.checkpoint();
        for pos in [0usize, 10, 40, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[pos] ^= 1;
            assert!(
                <WindowedFleet as Checkpoint>::restore(&bad).is_err(),
                "corruption at {pos} accepted"
            );
        }
    }

    #[test]
    fn ordering_guarantee_holds_across_epochs() {
        let mut w = windowed(3);
        for key in [41u64, 5, 77] {
            w.insert_u64(key, 1);
        }
        w.rotate();
        for key in [9u64, 2, 41] {
            w.insert_u64(key, 2);
        }
        assert_eq!(w.keys_sorted(), vec![2, 5, 9, 41, 77]);
        let keys: Vec<u64> = w.estimates().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, w.keys_sorted());
        assert_eq!(w.len(), 5);
        assert_eq!(KeyedEstimates::estimates_sorted(&w), w.estimates());
    }
}
