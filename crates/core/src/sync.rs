//! Shared-handle counting for multi-threaded ingestion.
//!
//! The S-bitmap update is inherently sequential — the sampling decision
//! for an item depends on the current fill `L` — so the sketch cannot be
//! updated lock-free without changing its distribution. [`SharedCounter`]
//! is the honest primitive: a cloneable handle around a mutex-guarded
//! counter, with a batched insert path that amortizes the lock to one
//! acquisition per buffer. For embarrassingly parallel *replicated*
//! work, prefer independent sketches per thread (the experiment harness
//! does); for a single logical stream fanned across threads (e.g. an
//! RSS-spread NIC feeding one per-link counter), use this.

use std::sync::{Arc, Mutex};

use crate::counter::DistinctCounter;

/// A cloneable, thread-safe handle to a distinct counter.
#[derive(Debug, Default)]
pub struct SharedCounter<C: DistinctCounter> {
    inner: Arc<Mutex<C>>,
}

impl<C: DistinctCounter> Clone for SharedCounter<C> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<C: DistinctCounter> SharedCounter<C> {
    /// Wrap a counter.
    pub fn new(counter: C) -> Self {
        Self {
            inner: Arc::new(Mutex::new(counter)),
        }
    }

    /// Insert one item (one lock acquisition).
    pub fn insert_u64(&self, item: u64) {
        self.lock().insert_u64(item);
    }

    /// Insert a batch under a single lock acquisition — the intended
    /// high-throughput path (buffer a few thousand items per thread,
    /// then flush).
    pub fn insert_batch(&self, items: &[u64]) {
        let mut guard = self.lock();
        for &item in items {
            guard.insert_u64(item);
        }
    }

    /// Current estimate.
    pub fn estimate(&self) -> f64 {
        self.lock().estimate()
    }

    /// Sketch payload in bits.
    pub fn memory_bits(&self) -> usize {
        self.lock().memory_bits()
    }

    /// Reset the underlying counter.
    pub fn reset(&self) {
        self.lock().reset();
    }

    /// Run a closure against the locked counter (for sketch-specific
    /// accessors like `SBitmap::fill`).
    pub fn with<R>(&self, f: impl FnOnce(&C) -> R) -> R {
        f(&self.lock())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, C> {
        // A poisoned mutex means another thread panicked mid-insert; the
        // bitmap itself is still structurally valid (single bit writes),
        // so recover rather than propagate.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SBitmap;

    #[test]
    fn concurrent_ingestion_counts_every_item() {
        let counter = SharedCounter::new(SBitmap::with_memory(1_000_000, 8_000, 3).unwrap());
        let threads = 8;
        let per_thread = 25_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads as u64 {
                let handle = counter.clone();
                scope.spawn(move || {
                    let base = t * per_thread;
                    let mut buf = Vec::with_capacity(1024);
                    for i in 0..per_thread {
                        buf.push(base + i);
                        if buf.len() == 1024 {
                            handle.insert_batch(&buf);
                            buf.clear();
                        }
                    }
                    handle.insert_batch(&buf);
                });
            }
        });
        let n = f64::from(threads) * per_thread as f64;
        let rel = counter.estimate() / n - 1.0;
        assert!(rel.abs() < 0.10, "rel {rel}");
    }

    #[test]
    fn overlapping_threads_deduplicate() {
        // All threads insert the SAME items: the union is still 10k.
        let counter = SharedCounter::new(SBitmap::with_memory(100_000, 4_000, 5).unwrap());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = counter.clone();
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        handle.insert_u64(i);
                    }
                });
            }
        });
        let rel = counter.estimate() / 10_000.0 - 1.0;
        assert!(rel.abs() < 0.15, "rel {rel}");
    }

    #[test]
    fn with_exposes_sketch_accessors() {
        let counter = SharedCounter::new(SBitmap::with_memory(100_000, 4_000, 5).unwrap());
        counter.insert_u64(1);
        let fill = counter.with(|s| s.fill());
        assert!(fill <= 1);
        assert_eq!(counter.memory_bits(), 4_000);
        counter.reset();
        assert_eq!(counter.estimate(), 0.0);
    }
}
