//! Error type for configuration and construction failures.

/// Errors produced when configuring or building sketches.
///
/// The hot paths (insert/estimate) are infallible by construction; all
/// validation happens when a sketch is dimensioned and built.
#[derive(Debug, Clone, PartialEq)]
pub enum SBitmapError {
    /// A dimensioning or construction parameter is out of its valid range.
    InvalidParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// The numeric solver for `C` failed to bracket or converge.
    SolverFailure(String),
    /// A delta frame (wire v3) arrived for a `(source, epoch)` whose
    /// round-0 baseline has not been absorbed: the delta chain is
    /// broken and the sender must resync from a baseline frame. Raised
    /// *before* any O(m) apply work, so a peer with a stale chain costs
    /// the receiver one map lookup.
    MissingBaseline {
        /// Absolute epoch of the rejected delta frame.
        epoch: u64,
        /// Round index of the rejected delta frame (always > 0).
        round: u32,
    },
    /// An epoch slot's absorb guard is full: too many distinct
    /// `(source, round)` pairs were recorded for one epoch. Raised
    /// instead of growing the guard without bound when peers churn
    /// through source ids; the frame is rejected, the ring untouched.
    GuardFull {
        /// Absolute epoch whose guard hit the cap.
        epoch: u64,
        /// The per-slot entry cap that was reached.
        cap: usize,
    },
}

impl std::fmt::Display for SBitmapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SBitmapError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            SBitmapError::SolverFailure(msg) => write!(f, "dimensioning solver failed: {msg}"),
            SBitmapError::MissingBaseline { epoch, round } => write!(
                f,
                "missing baseline: delta round {round} for epoch {epoch} \
                 arrived before its round-0 baseline"
            ),
            SBitmapError::GuardFull { epoch, cap } => write!(
                f,
                "absorb guard full: epoch {epoch} already tracks {cap} \
                 (source, round) entries; frame rejected"
            ),
        }
    }
}

impl std::error::Error for SBitmapError {}

impl SBitmapError {
    /// Convenience constructor for parameter errors.
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        SBitmapError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SBitmapError::invalid("m", "must be positive");
        assert_eq!(e.to_string(), "invalid parameter `m`: must be positive");
        let s = SBitmapError::SolverFailure("no bracket".into());
        assert!(s.to_string().contains("no bracket"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SBitmapError::invalid("x", "y"));
    }
}
