//! Closed-form quantities from §4–§5 of the paper: the expectation and
//! variance of the fill-time process `T_b`, and the theoretical RRMSE.
//!
//! These are used by the estimator (`n̂ = t_B`), by the experiment harness
//! (Figure 2 plots empirical against theoretical error), and by the tests
//! (the identities of Theorem 2 are verified numerically against the
//! recurrences they were derived from).

use crate::dimensioning::Dimensioning;

/// `q_k = (1 + 1/C)·r^k` — the success probability of fill step `k`
/// under the idealized (un-clamped, un-quantized) schedule.
#[inline]
pub fn q(dims: &Dimensioning, k: usize) -> f64 {
    (1.0 + 1.0 / dims.c()) * dims.r().powi(k as i32)
}

/// `t_b = E[T_b] = (C/2)(r^{−b} − 1)` — the expected number of distinct
/// items needed to set `b` bits (Theorem 2). `t_0 = 0`.
#[inline]
pub fn t(dims: &Dimensioning, b: usize) -> f64 {
    if b == 0 {
        return 0.0;
    }
    // r^{-b} = exp(-b ln r); ln r is computed via ln_1p for accuracy when
    // C is large (r close to 1).
    let ln_r = (-2.0 / (dims.c() + 1.0)).ln_1p();
    dims.c() / 2.0 * ((-(b as f64) * ln_r).exp() - 1.0)
}

/// `var(T_b) = Σ_{k≤b} (1 − q_k)/q_k²` (Lemma 1). Under the dimensioning
/// rule this equals `t_b²/C` (the invariance (3) that Theorem 2 enforces).
pub fn var_t(dims: &Dimensioning, b: usize) -> f64 {
    (1..=b)
        .map(|k| (1.0 - q(dims, k)) / (q(dims, k) * q(dims, k)))
        .sum()
}

/// Theoretical scale-invariant RRMSE of the S-bitmap estimator,
/// `(C − 1)^{−1/2}` (Theorem 3).
#[inline]
pub fn rrmse(dims: &Dimensioning) -> f64 {
    dims.epsilon()
}

/// The expected number of set bits after `n` distinct items, i.e. the
/// `b` with `t_b ≈ n`: `b(n) = ln(1 + 2n/C) / ln(1/r)` (inverse of `t`).
pub fn expected_fill(dims: &Dimensioning, n: u64) -> f64 {
    let ln_r = (-2.0 / (dims.c() + 1.0)).ln_1p();
    ((1.0 + 2.0 * n as f64 / dims.c()).ln() / -ln_r).min(dims.b_max() as f64)
}

/// Exact probability mass function of the fill level `L_n` after `n`
/// distinct items, computed by forward recursion over Theorem 1's
/// Markov chain with the idealized rates `q_k`:
///
/// ```text
/// P(L_{t+1} = b) = P(L_t = b)·(1 − q_{b+1}) + P(L_t = b−1)·q_b
/// ```
///
/// Runs in `O(n · E[L_n])` by tracking only the support. Returns the PMF
/// over `b = 0..len`. This gives *exact* (to floating point) checks of
/// the paper's Theorem 3 — `Σ_b t_b·P(L_n = b) = n` — where simulation
/// could only check to Monte-Carlo noise; the identity test lives in this
/// module's test suite.
///
/// Intended for validation at small/medium `n` (cost is ~`n · b_max`
/// multiply-adds); the experiments use [`crate::simulate`] at scale.
pub fn fill_pmf(dims: &Dimensioning, n: u64) -> Vec<f64> {
    let b_cap = dims.b_max();
    // pmf[b] = P(L_t = b); support grows by at most 1 per step.
    let mut pmf = vec![0.0f64; 1];
    pmf[0] = 1.0;
    // Precompute q_k for k = 1..=b_cap.
    let qs: Vec<f64> = (1..=b_cap).map(|k| q(dims, k)).collect();
    for _ in 0..n {
        let hi = pmf.len().min(b_cap); // L cannot exceed b_cap here
        if pmf.len() < b_cap + 1 {
            pmf.push(0.0);
        }
        // Walk downward so each step reads the previous time's values.
        for b in (0..=hi).rev() {
            let stay = if b < b_cap { 1.0 - qs[b] } else { 1.0 };
            let from_below = if b > 0 { pmf[b - 1] * qs[b - 1] } else { 0.0 };
            pmf[b] = pmf[b] * stay + from_below;
        }
        // Trim numerically-dead tail growth to keep the loop O(E[L]).
        while pmf.len() > 1 && *pmf.last().expect("non-empty") == 0.0 {
            pmf.pop();
        }
    }
    pmf
}

/// Exact RRMSE of the (untruncated) estimator at cardinality `n`,
/// computed from [`fill_pmf`]: `sqrt(Σ_b (t_b/n − 1)²·P(L_n = b))`.
pub fn exact_rrmse(dims: &Dimensioning, n: u64) -> f64 {
    assert!(n > 0, "cardinality must be positive");
    let pmf = fill_pmf(dims, n);
    let mut mse = 0.0;
    for (b, &p) in pmf.iter().enumerate() {
        let rel = t(dims, b) / n as f64 - 1.0;
        mse += rel * rel * p;
    }
    mse.sqrt()
}

/// Two-sided normal critical value for a given confidence level, via
/// Winitzki's inverse-erf approximation (absolute error < 5e-3 on the
/// levels used for intervals). `confidence ∈ (0, 1)`, e.g. `0.95 → 1.96`.
pub fn z_score(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1), got {confidence}"
    );
    std::f64::consts::SQRT_2 * erf_inv(confidence)
}

fn erf_inv(x: f64) -> f64 {
    // Winitzki (2008): erf^{-1}(x) ≈ sgn(x)·sqrt(sqrt(t² − l/a) − t),
    // t = 2/(πa) + l/2, l = ln(1 − x²), a ≈ 0.147.
    const A: f64 = 0.147;
    let l = (1.0 - x * x).ln();
    let t = 2.0 / (std::f64::consts::PI * A) + l / 2.0;
    x.signum() * ((t * t - l / A).sqrt() - t).sqrt()
}

/// A cardinality estimate with a normal-approximation confidence
/// interval derived from the scale-invariant RRMSE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The point estimate `n̂ = t_B` (unbiased, Theorem 3).
    pub value: f64,
    /// Lower end of the interval (clamped at 0).
    pub lo: f64,
    /// Upper end of the interval.
    pub hi: f64,
    /// The confidence level the interval was built for.
    pub confidence: f64,
}

/// Attach a two-sided confidence interval to an estimate. Because the
/// relative error is the scale-invariant constant `ε = (C−1)^{−1/2}`
/// (Theorem 3), the interval is simply `n̂·(1 ± z·ε)` — no per-estimate
/// variance bookkeeping is needed, which is itself a consequence of the
/// paper's headline property.
pub fn confidence_interval(dims: &Dimensioning, value: f64, confidence: f64) -> Estimate {
    let z = z_score(confidence);
    let eps = dims.epsilon();
    Estimate {
        value,
        lo: (value * (1.0 - z * eps)).max(0.0),
        hi: value * (1.0 + z * eps),
        confidence,
    }
}

/// Memory rule of §5.1 for the *log-counting family* (for the asymptotic
/// comparison in the paper): S-bitmap wins against HyperLogLog when
/// `ε < sqrt((log N)^η / (2eN))` with `η ≈ 3.1206`.
pub fn hll_crossover_epsilon(n_max: u64) -> f64 {
    const ETA: f64 = 3.1206;
    let n = n_max as f64;
    ((n.log2()).powf(ETA) / (2.0 * std::f64::consts::E * n)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> Dimensioning {
        Dimensioning::from_memory(1 << 20, 4000).unwrap()
    }

    #[test]
    fn t_matches_sum_of_inverse_q() {
        // Theorem 2 derives the closed form from t_b = Σ 1/q_k; verify.
        let d = dims();
        for &b in &[1usize, 10, 100, 1000, d.b_max()] {
            let direct: f64 = (1..=b).map(|k| 1.0 / q(&d, k)).sum();
            let closed = t(&d, b);
            assert!(
                (direct / closed - 1.0).abs() < 1e-9,
                "b={b}: sum {direct} vs closed form {closed}"
            );
        }
    }

    #[test]
    fn t1_is_c_over_c_minus_1() {
        let d = dims();
        let expect = d.c() / (d.c() - 1.0);
        assert!((t(&d, 1) - expect).abs() < 1e-9);
    }

    #[test]
    fn variance_identity_of_theorem_2() {
        // var(T_b) = t_b² / C — the relative-error invariance.
        let d = dims();
        for &b in &[1usize, 50, 500, 2000, d.b_max()] {
            let v = var_t(&d, b);
            let expect = t(&d, b).powi(2) / d.c();
            assert!(
                (v / expect - 1.0).abs() < 1e-6,
                "b={b}: var {v} vs t_b^2/C {expect}"
            );
        }
    }

    #[test]
    fn relative_error_of_t_b_is_constant() {
        // sqrt(var)/mean = C^{-1/2} for every b — equation (4).
        let d = dims();
        let target = d.c().powf(-0.5);
        for &b in &[1usize, 10, 100, 1000, 3000] {
            let re = var_t(&d, b).sqrt() / t(&d, b);
            assert!(
                (re - target).abs() < 1e-8,
                "b={b}: Re = {re}, want {target}"
            );
        }
    }

    #[test]
    fn t_at_b_max_reaches_n_max() {
        // Equation (6): the schedule is dimensioned so t_{m−C/2} = N.
        let d = dims();
        let reach = t(&d, d.b_max());
        let n = d.n_max() as f64;
        assert!(
            (reach / n - 1.0).abs() < 0.01,
            "t(b_max) = {reach}, N = {n}"
        );
    }

    #[test]
    fn t_is_strictly_increasing() {
        let d = dims();
        let mut last = 0.0;
        for b in 1..=d.b_max() {
            let v = t(&d, b);
            assert!(v > last);
            last = v;
        }
    }

    #[test]
    fn expected_fill_inverts_t() {
        let d = dims();
        for &b in &[10usize, 100, 1000] {
            let n = t(&d, b);
            let fill = expected_fill(&d, n.round() as u64);
            // Rounding n to an integer can shift the inverse by < 1 bit.
            assert!((fill - b as f64).abs() < 0.5, "b={b} fill={fill}");
        }
    }

    #[test]
    fn fill_pmf_is_a_distribution() {
        let d = Dimensioning::from_memory(100_000, 1500).unwrap();
        for &n in &[1u64, 10, 500, 5_000] {
            let pmf = fill_pmf(&d, n);
            let total: f64 = pmf.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n}: mass {total}");
            assert!(pmf.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn theorem_3_unbiasedness_exact() {
        // E[t_B] = n to floating-point precision — the martingale
        // identity, checked against the exact chain rather than by
        // simulation.
        let d = Dimensioning::from_memory(100_000, 1500).unwrap();
        for &n in &[1u64, 7, 100, 2_000, 10_000] {
            let pmf = fill_pmf(&d, n);
            let mean: f64 = pmf.iter().enumerate().map(|(b, &p)| t(&d, b) * p).sum();
            assert!(
                (mean / n as f64 - 1.0).abs() < 1e-8,
                "n={n}: E[t_B] = {mean}"
            );
        }
    }

    #[test]
    fn theorem_3_rrmse_exact() {
        // RRMSE(n̂) = (C−1)^{−1/2} for every n — the scale-invariance
        // theorem, verified exactly across two orders of magnitude.
        let d = Dimensioning::from_memory(100_000, 1500).unwrap();
        let target = (d.c() - 1.0).powf(-0.5);
        for &n in &[10u64, 100, 1_000, 10_000] {
            let e = exact_rrmse(&d, n);
            assert!(
                (e / target - 1.0).abs() < 1e-6,
                "n={n}: exact rrmse {e} vs theory {target}"
            );
        }
    }

    #[test]
    fn pmf_mode_tracks_expected_fill() {
        let d = Dimensioning::from_memory(100_000, 1500).unwrap();
        let n = 5_000u64;
        let pmf = fill_pmf(&d, n);
        let mode = pmf
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(b, _)| b)
            .unwrap();
        let expect = expected_fill(&d, n);
        assert!(
            (mode as f64 - expect).abs() < 3.0,
            "mode {mode} vs expected fill {expect}"
        );
    }

    #[test]
    fn z_scores_match_tables() {
        for (conf, expect, tol) in [
            (0.6827, 1.0, 0.01),
            (0.90, 1.6449, 0.01),
            (0.95, 1.9600, 0.01),
            (0.99, 2.5758, 0.02),
        ] {
            let z = z_score(conf);
            assert!(
                (z - expect).abs() < tol,
                "conf {conf}: z {z}, expect {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "confidence must be in")]
    fn z_score_rejects_bad_level() {
        z_score(1.0);
    }

    #[test]
    fn confidence_interval_brackets_truth_at_nominal_rate() {
        // The interval is n(1 ± z eps); by construction it covers the
        // truth whenever |rel err| < z eps. Check structure only.
        let d = dims();
        let est = confidence_interval(&d, 10_000.0, 0.95);
        assert!(est.lo < est.value && est.value < est.hi);
        let half_width = (est.hi - est.lo) / 2.0 / est.value;
        assert!((half_width - 1.96 * d.epsilon()).abs() < 0.01 * d.epsilon());
        // Tiny estimates clamp at zero instead of going negative.
        let tiny = confidence_interval(&d, 0.5, 0.9999);
        assert!(tiny.lo >= 0.0);
    }

    #[test]
    fn crossover_epsilon_is_sane() {
        // At N = 1e6 the paper's asymptotic crossover is a small epsilon.
        let e = hll_crossover_epsilon(1_000_000);
        assert!(e > 0.0 && e < 0.2, "crossover = {e}");
    }
}
