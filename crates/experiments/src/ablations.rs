//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **Sampling width `d`** — the paper suggests `d = 30` suffices; we
//!    sweep `d` and show where threshold quantization starts to bias the
//!    estimator. The tail sampling rates are O(C/2N) ≈ 2^{−12} here, so
//!    widths near or below 12 bits break down — visibly so at large `n`,
//!    which is why the probe cardinality is `2^19`.
//! 2. **Hash family** — S-bitmap accuracy under all four hash
//!    implementations; the uniform-hash idealization holds for each.
//! 3. **Truncation (eq. 8)** — error at the boundary `n → N` with and
//!    without the `B = min(L, b_max)` truncation.
//! 4. **Fast simulator** — Lemma-1 geometric simulation vs the real
//!    hashed sketch: same error distribution up to Monte-Carlo noise.

use std::sync::Arc;

use crate::config::RunConfig;
use crate::fmt::{pct, Table};
use crate::runner::accuracy;
use sbitmap_core::{simulate, theory, Dimensioning, DistinctCounter, RateSchedule, SBitmap};
use sbitmap_hash::rng::Xoshiro256StarStar;
use sbitmap_hash::HashKind;
use sbitmap_stats::replicate;

/// Shared configuration: the Figure 2 setup (`N = 2^20`, `m = 4000`).
pub const N_MAX: u64 = 1 << 20;
/// Bitmap bits.
pub const M_BITS: usize = 4_000;
/// Probe cardinality for the sweeps.
pub const N_PROBE: u64 = 524_288;

/// Ablation 1: RRMSE vs sampling width `d`.
pub fn d_bits_table(cfg: &RunConfig) -> Table {
    let dims = Dimensioning::from_memory(N_MAX, M_BITS).expect("dimensioning");
    let mut t = Table::new(
        format!(
            "Ablation: sampling width d (N = 2^20, m = 4000, n = {N_PROBE}; theory {}%)",
            pct(dims.epsilon(), 2)
        ),
        &["d (bits)", "RRMSE (%)", "bias (%)"],
    );
    for &d in &[8u32, 10, 12, 14, 16, 20, 24, 30, 32] {
        let schedule = Arc::new(RateSchedule::new(dims, d).expect("schedule for every d"));
        let stats = accuracy(cfg.replicates, N_PROBE, 0xd0 + u64::from(d), |seed| {
            SBitmap::with_shared_schedule(
                schedule.clone(),
                sbitmap_hash::SplitMix64Hasher::new(seed),
            )
        });
        t.row(vec![
            d.to_string(),
            pct(stats.rrmse(), 2),
            pct(stats.mean_bias(), 2),
        ]);
    }
    t
}

/// Ablation 2: RRMSE per hash family, on sequential and on pre-scrambled
/// keys.
///
/// **Finding**: the three strong mixing hashes meet the theoretical error
/// on any key structure, but Carter-Wegman — the classic 2-universal
/// construction the literature cites — *fails badly on sequential keys*
/// (RRMSE more than 10x theory). Pairwise independence is not enough for
/// the S-bitmap's adaptive sampling: the affine map sends arithmetic key
/// progressions to structured (three-distance) sampling-word sequences,
/// which interact with the monotone threshold schedule. The paper's
/// idealized-hash analysis implicitly assumes a stronger mixing notion.
pub fn hash_table(cfg: &RunConfig) -> Table {
    let mut t = Table::new(
        format!("Ablation: hash family (N = 2^20, m = 4000, n = {N_PROBE})"),
        &["hash", "RRMSE seq keys (%)", "RRMSE mixed keys (%)"],
    );
    let schedule = Arc::new(RateSchedule::from_memory(N_MAX, M_BITS).expect("schedule"));
    for kind in HashKind::ALL {
        let sequential = accuracy(cfg.replicates, N_PROBE, 0x4a5_000 ^ kind as u64, |seed| {
            SBitmap::with_shared_schedule(schedule.clone(), kind.build(seed))
        });
        let mixed = replicate(cfg.replicates, |r| {
            let seed = sbitmap_hash::mix64(r ^ 0x4a5_111 ^ ((kind as u64) << 40));
            let mut s = SBitmap::with_shared_schedule(schedule.clone(), kind.build(seed));
            for item in sbitmap_stream::distinct_items(seed, N_PROBE) {
                // Scramble the key so the hasher sees unstructured input.
                s.insert_u64(sbitmap_hash::mix64(item));
            }
            (N_PROBE as f64, s.estimate())
        });
        t.row(vec![
            kind.name().to_string(),
            pct(sequential.rrmse(), 2),
            pct(mixed.rrmse(), 2),
        ]);
    }
    t
}

/// Ablation 3: truncation at the boundary. For `n` near `N`, compare the
/// shipped estimator `t_{min(L, b_max)}` against the raw `t_L`.
pub fn truncation_table(cfg: &RunConfig) -> Table {
    let schedule = Arc::new(RateSchedule::from_memory(N_MAX, M_BITS).expect("schedule"));
    let dims = *schedule.dims();
    let mut t = Table::new(
        "Ablation: boundary truncation (eq. 8), RRMSE (%) with vs without",
        &["n / N", "truncated", "raw t_L"],
    );
    for &frac in &[0.5f64, 0.9, 0.99, 1.0] {
        let n = ((N_MAX as f64) * frac) as u64;
        let truncated = accuracy(cfg.replicates, n, 0x7c0 ^ n, |seed| {
            SBitmap::with_shared_schedule(
                schedule.clone(),
                sbitmap_hash::SplitMix64Hasher::new(seed),
            )
        });
        // Raw estimator: re-run and map the observed fill through t(·)
        // without the min(·, b_max) clamp.
        let raw = replicate(cfg.replicates, |r| {
            let seed = sbitmap_hash::mix64(r ^ 0x7c1 ^ n);
            let mut s = SBitmap::with_shared_schedule(
                schedule.clone(),
                sbitmap_hash::SplitMix64Hasher::new(seed),
            );
            for item in sbitmap_stream::distinct_items(seed ^ 0x11, n) {
                s.insert_u64(item);
            }
            (n as f64, theory::t(&dims, s.fill()))
        });
        t.row(vec![
            format!("{frac:.2}"),
            pct(truncated.rrmse(), 2),
            pct(raw.rrmse(), 2),
        ]);
    }
    t
}

/// Ablation 4: the Lemma-1 fast simulator against the real sketch.
pub fn fastsim_table(cfg: &RunConfig) -> Table {
    let schedule = Arc::new(RateSchedule::from_memory(N_MAX, M_BITS).expect("schedule"));
    let mut t = Table::new(
        "Ablation: real hashed sketch vs Lemma-1 geometric simulation, RRMSE (%)",
        &["n", "real sketch", "fast sim"],
    );
    for &n in &[1_024u64, 16_384, 262_144] {
        let real = accuracy(cfg.replicates, n, 0xfa57 ^ n, |seed| {
            SBitmap::with_shared_schedule(
                schedule.clone(),
                sbitmap_hash::SplitMix64Hasher::new(seed),
            )
        });
        let sim = replicate(cfg.replicates, |r| {
            let mut rng = Xoshiro256StarStar::new(sbitmap_hash::mix64(r ^ 0xfa58 ^ n));
            (
                n as f64,
                simulate::simulate_estimate(&schedule, n, &mut rng),
            )
        });
        t.row(vec![
            n.to_string(),
            pct(real.rrmse(), 2),
            pct(sim.rrmse(), 2),
        ]);
    }
    t
}

/// Throughput sanity number (items/sec, single thread) for the paper's
/// "similar or less computational cost" claim — the precise benchmarks
/// live in `crates/bench`.
pub fn quick_throughput() -> f64 {
    let mut s = SBitmap::with_memory(N_MAX, M_BITS, 1).expect("config");
    let n = 2_000_000u64;
    let start = std::time::Instant::now();
    for item in sbitmap_stream::distinct_items(9, n) {
        s.insert_u64(item);
    }
    let dt = start.elapsed().as_secs_f64();
    std::hint::black_box(s.estimate());
    n as f64 / dt
}

/// Entry point used by the `ablations` and `repro` binaries.
pub fn main_with(cfg: &RunConfig) {
    let tables = [
        ("ablation_d_bits.csv", d_bits_table(cfg)),
        ("ablation_hash.csv", hash_table(cfg)),
        ("ablation_truncation.csv", truncation_table(cfg)),
        ("ablation_fastsim.csv", fastsim_table(cfg)),
    ];
    for (csv, t) in &tables {
        t.print();
        t.write_csv(&cfg.csv_path(csv)).expect("write ablation csv");
    }
    println!(
        "single-thread S-bitmap update throughput: {:.1} M items/sec\n",
        quick_throughput() / 1e6
    );
    println!("wrote {}/ablation_*.csv\n", cfg.out_dir.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunConfig {
        RunConfig {
            replicates: 60,
            out_dir: std::env::temp_dir(),
        }
    }

    #[test]
    fn narrow_d_breaks_wide_d_works() {
        let cfg = quick();
        let dims = Dimensioning::from_memory(N_MAX, M_BITS).unwrap();
        let rrmse_at = |d: u32| {
            let schedule = Arc::new(RateSchedule::new(dims, d).unwrap());
            accuracy(cfg.replicates, N_PROBE, u64::from(d), |seed| {
                SBitmap::with_shared_schedule(
                    schedule.clone(),
                    sbitmap_hash::SplitMix64Hasher::new(seed),
                )
            })
            .rrmse()
        };
        // 8 bits cannot represent the tail rates (≈ 2^-12): large error.
        assert!(rrmse_at(8) > 3.0 * dims.epsilon());
        // 24+ bits are indistinguishable from the ideal schedule.
        assert!(rrmse_at(24) < 1.6 * dims.epsilon());
    }

    #[test]
    fn strong_hashes_meet_theory_carter_wegman_needs_mixed_keys() {
        let cfg = quick();
        let schedule = Arc::new(RateSchedule::from_memory(N_MAX, M_BITS).unwrap());
        let eps = schedule.dims().epsilon();
        let rrmse_seq = |kind: HashKind| {
            accuracy(cfg.replicates, N_PROBE, kind as u64, |seed| {
                SBitmap::with_shared_schedule(schedule.clone(), kind.build(seed))
            })
            .rrmse()
        };
        for kind in [HashKind::SplitMix64, HashKind::Xxh64, HashKind::Murmur3] {
            let r = rrmse_seq(kind);
            assert!(r < 1.7 * eps, "{}: rrmse {r}", kind.name());
        }
        // The documented finding: 2-universal hashing breaks down on
        // sequential keys under adaptive sampling...
        assert!(rrmse_seq(HashKind::CarterWegman) > 4.0 * eps);
        // ...but is fine once the keys themselves are unstructured.
        let mixed = replicate(cfg.replicates, |r| {
            let seed = sbitmap_hash::mix64(r ^ 0xc3);
            let mut s =
                SBitmap::with_shared_schedule(schedule.clone(), HashKind::CarterWegman.build(seed));
            for item in sbitmap_stream::distinct_items(seed, N_PROBE) {
                s.insert_u64(sbitmap_hash::mix64(item));
            }
            (N_PROBE as f64, s.estimate())
        });
        assert!(
            mixed.rrmse() < 2.0 * eps,
            "mixed-key CW rrmse {}",
            mixed.rrmse()
        );
    }

    #[test]
    fn fastsim_agrees_with_real_sketch() {
        let cfg = RunConfig {
            replicates: 400,
            ..quick()
        };
        let t = fastsim_table(&cfg);
        // Parse nothing: recompute a single cell here instead.
        let schedule = Arc::new(RateSchedule::from_memory(N_MAX, M_BITS).unwrap());
        let n = 16_384u64;
        let real = accuracy(cfg.replicates, n, 0x1, |seed| {
            SBitmap::with_shared_schedule(
                schedule.clone(),
                sbitmap_hash::SplitMix64Hasher::new(seed),
            )
        })
        .rrmse();
        let sim = replicate(cfg.replicates, |r| {
            let mut rng = Xoshiro256StarStar::new(sbitmap_hash::mix64(r ^ 0x2));
            (
                n as f64,
                simulate::simulate_estimate(&schedule, n, &mut rng),
            )
        })
        .rrmse();
        assert!((real / sim - 1.0).abs() < 0.35, "real {real} vs sim {sim}");
        drop(t);
    }
}
