//! Figure 2: empirical vs theoretical RRMSE of the S-bitmap across the
//! whole cardinality range (the scale-invariance validation).
//!
//! Configuration (paper §6.1): `N = 2^20`; `m = 4000` bits (C ≈ 915.6,
//! ε ≈ 3.3%) and `m = 1800` bits (C ≈ 373.7, ε ≈ 5.2%); cardinalities at
//! powers of two; 1000 replicates (paper) / `cfg.replicates` (here).

use crate::config::RunConfig;
use crate::fmt::{pct, Table};
use crate::runner::{accuracy, sbitmap_maker};
use sbitmap_core::Dimensioning;

/// The paper's design range `N = 2^20`.
pub const N_MAX: u64 = 1 << 20;
/// The two memory configurations of §6.1.
pub const MEMORY_CONFIGS: [usize; 2] = [4000, 1800];

/// One measured cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// True cardinality.
    pub n: u64,
    /// Bitmap bits.
    pub m: usize,
    /// Empirical RRMSE.
    pub rrmse: f64,
    /// Theoretical RRMSE `(C−1)^{−1/2}`.
    pub theory: f64,
}

/// Run the experiment, returning all cells.
pub fn run(cfg: &RunConfig) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (ci, &m) in MEMORY_CONFIGS.iter().enumerate() {
        let dims = Dimensioning::from_memory(N_MAX, m).expect("paper config must dimension");
        let maker = sbitmap_maker(N_MAX, m).expect("paper config must build");
        for k in 2..=20u32 {
            let n = 1u64 << k;
            let salt = (ci as u64) << 32 | u64::from(k);
            let stats = accuracy(cfg.replicates, n, salt ^ 0xf162, &maker);
            cells.push(Cell {
                n,
                m,
                rrmse: stats.rrmse(),
                theory: dims.epsilon(),
            });
        }
    }
    cells
}

/// Render the cells as the figure's table (one row per cardinality).
pub fn table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "Figure 2: empirical vs theoretical RRMSE of S-bitmap (%, N = 2^20)",
        &[
            "n",
            "rrmse(m=4000)",
            "theory(3.3)",
            "rrmse(m=1800)",
            "theory(5.2)",
        ],
    );
    let (a, b): (Vec<&Cell>, Vec<&Cell>) = cells.iter().partition(|c| c.m == MEMORY_CONFIGS[0]);
    for (ca, cb) in a.iter().zip(&b) {
        assert_eq!(ca.n, cb.n);
        t.row(vec![
            ca.n.to_string(),
            pct(ca.rrmse, 2),
            pct(ca.theory, 2),
            pct(cb.rrmse, 2),
            pct(cb.theory, 2),
        ]);
    }
    t
}

/// ASCII rendition of the figure: empirical RRMSE per memory config
/// against the two theoretical constants.
pub fn chart(cells: &[Cell]) -> String {
    let series: Vec<crate::plot::Series> = MEMORY_CONFIGS
        .iter()
        .map(|&m| {
            crate::plot::Series::new(
                format!("m={m}"),
                cells
                    .iter()
                    .filter(|c| c.m == m)
                    .map(|c| (c.n as f64, c.rrmse * 100.0))
                    .collect(),
            )
        })
        .collect();
    crate::plot::render(
        "Figure 2 (ASCII): RRMSE (%) vs n — flat lines = scale-invariance",
        &series,
        64,
        12,
        true,
        None,
    )
}

/// Entry point used by the `fig2` and `repro` binaries.
pub fn main_with(cfg: &RunConfig) {
    let cells = run(cfg);
    let t = table(&cells);
    t.print();
    println!("{}", chart(&cells));
    let path = cfg.csv_path("fig2.csv");
    t.write_csv(&path).expect("write fig2.csv");
    println!("wrote {}\n", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_matches_theory_shape() {
        // A cheap smoke run: 40 replicates, both configs; every cell's
        // empirical error must be within 50% of its theoretical value
        // (the full run in EXPERIMENTS.md uses 1000 replicates).
        let cfg = RunConfig {
            replicates: 40,
            out_dir: std::env::temp_dir(),
        };
        let cells = run(&cfg);
        assert_eq!(cells.len(), 2 * 19);
        for c in &cells {
            assert!(
                (c.rrmse / c.theory) < 1.8 && (c.rrmse / c.theory) > 0.4,
                "n={} m={}: rrmse {} vs theory {}",
                c.n,
                c.m,
                c.rrmse,
                c.theory
            );
        }
    }
}
