//! Plain-text table rendering and CSV output for the experiment binaries.

use std::io::Write;

/// A simple right-aligned text table that can also serialize to CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Render to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Write the table as CSV.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Format a float with `digits` decimal places.
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Format a float as a percentage with `digits` decimals.
pub fn pct(x: f64, digits: usize) -> String {
    format!("{:.digits$}", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["n", "rrmse"]);
        t.row(vec!["16".into(), "0.033".into()]);
        t.row(vec!["1048576".into(), "0.032".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("      n  rrmse"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let p = std::env::temp_dir().join("sbitmap-fmt-test.csv");
        t.write_csv(&p).unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert_eq!(s, "a,b\n1,2\n");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.033, 1), "3.3");
    }
}
