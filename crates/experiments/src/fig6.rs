//! Figure 6: error-exceedance curves on the worm traces — for each
//! threshold `x`, the proportion of minutes whose absolute relative error
//! exceeds `x`, per algorithm and link.
//!
//! Same configuration as Figure 5 (`N = 10^6`, `m = 8000` for every
//! algorithm). The paper's vertical reference lines sit at 2, 3 and 4
//! times the S-bitmap's expected standard deviation (2.2%). Headline
//! claim to reproduce: S-bitmap is the most resistant to large errors —
//! its exceedance at 3σ is ≈ 0 while every competitor retains ≥ 1.5%.

use crate::config::RunConfig;
use crate::fig5::{M_BITS, N_MAX, TRACE_SEED};
use crate::fmt::{pct, Table};
use crate::runner::{run_trace, Algo};
use sbitmap_core::Dimensioning;
use sbitmap_stats::ErrorStats;
use sbitmap_stream::{WormLink, WormTrace};

/// Exceedance thresholds of the figure's x-axis (4%..10%).
pub fn thresholds() -> Vec<f64> {
    (0..=12).map(|i| 0.04 + 0.005 * i as f64).collect()
}

/// Run all four algorithms over one link's trace.
pub fn run_link(link: WormLink) -> Vec<(Algo, ErrorStats)> {
    let trace = WormTrace::generate(link, TRACE_SEED);
    Algo::ALL
        .iter()
        .map(|&algo| {
            let mut counter = algo
                .build(M_BITS, N_MAX, TRACE_SEED ^ (algo as u64) << 8)
                .expect("fig6 configs build");
            let intervals = (0..WormTrace::MINUTES)
                .map(|minute| (trace.counts()[minute], trace.minute_stream(minute)));
            let (stats, _) = run_trace(&mut counter, intervals);
            (algo, stats)
        })
        .collect()
}

/// Render one link's exceedance table.
pub fn table(link: WormLink, results: &[(Algo, ErrorStats)]) -> Table {
    let dims = Dimensioning::from_memory(N_MAX, M_BITS).expect("dimensioning");
    let mut t = Table::new(
        format!(
            "Figure 6 ({}): proportion of minutes with |rel err| > x   [sigma = {}%; 2/3/4 sigma = {}/{}/{}%]",
            link.name(),
            pct(dims.epsilon(), 1),
            pct(2.0 * dims.epsilon(), 1),
            pct(3.0 * dims.epsilon(), 1),
            pct(4.0 * dims.epsilon(), 1),
        ),
        &["x (%)", "S-bitmap", "mr-bitmap", "LLog", "HLLog"],
    );
    for &x in &thresholds() {
        let mut row = vec![pct(x, 1)];
        for (_, stats) in results {
            row.push(format!("{:.3}", stats.exceedance(x)));
        }
        t.row(row);
    }
    t
}

/// ASCII rendition of one link's exceedance curves.
pub fn chart(link: WormLink, results: &[(Algo, ErrorStats)]) -> String {
    let series: Vec<crate::plot::Series> = results
        .iter()
        .map(|(algo, stats)| {
            crate::plot::Series::new(
                algo.label(),
                thresholds()
                    .iter()
                    .map(|&x| (x * 100.0, stats.exceedance(x)))
                    .collect(),
            )
        })
        .collect();
    crate::plot::render(
        &format!(
            "Figure 6 (ASCII, {}): P(|rel err| > x) vs x (%)",
            link.name()
        ),
        &series,
        52,
        10,
        false,
        None,
    )
}

/// Entry point used by the `fig6` and `repro` binaries.
pub fn main_with(cfg: &RunConfig) {
    for link in [WormLink::Link1, WormLink::Link0] {
        let results = run_link(link);
        let t = table(link, &results);
        t.print();
        println!("{}", chart(link, &results));
        t.write_csv(&cfg.csv_path(&format!("fig6_{}.csv", link.name())))
            .expect("write fig6 csv");
        // The paper's 3-sigma summary sentence.
        let dims = Dimensioning::from_memory(N_MAX, M_BITS).expect("dimensioning");
        let three_sigma = 3.0 * dims.epsilon();
        for (algo, stats) in &results {
            println!(
                "{}: {} exceeds 3 sigma on {:.1}% of minutes",
                link.name(),
                algo.label(),
                stats.exceedance(three_sigma) * 100.0
            );
        }
        println!();
    }
    println!("wrote {}/fig6_link*.csv\n", cfg.out_dir.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbitmap_most_resistant_to_large_errors() {
        let results = run_link(WormLink::Link1);
        let dims = Dimensioning::from_memory(N_MAX, M_BITS).unwrap();
        let three_sigma = 3.0 * dims.epsilon();
        let s_exc = results[0].1.exceedance(three_sigma);
        assert!(s_exc < 0.01, "S-bitmap 3-sigma exceedance {s_exc}");
        // Each competitor should be no better than S-bitmap at 3 sigma.
        for (algo, stats) in &results[1..] {
            assert!(
                stats.exceedance(three_sigma) >= s_exc,
                "{} beats S-bitmap at 3 sigma",
                algo.label()
            );
        }
    }
}
