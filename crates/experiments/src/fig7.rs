//! Figure 7: histogram (log base 2) of five-minute flow counts across the
//! 600 backbone links, with the published quantiles.

use crate::config::RunConfig;
use crate::fmt::Table;
use sbitmap_stream::backbone::{BackboneSnapshot, FIGURE7_QUANTILES};

/// Seed fixed so the snapshot (and Figure 8 built on it) is stable.
pub const SNAPSHOT_SEED: u64 = 600;

/// Render the histogram table plus a quantile check.
pub fn tables() -> (Table, Table) {
    let snap = BackboneSnapshot::generate(SNAPSHOT_SEED);
    let mut hist = Table::new(
        "Figure 7: histogram of five-minute flow counts on 600 backbone links",
        &["log2 bin", "links", "bar"],
    );
    for (bin, count) in snap.log2_histogram() {
        hist.row(vec![
            format!("2^{bin}..2^{}", bin + 1),
            count.to_string(),
            "#".repeat(count),
        ]);
    }
    let mut quant = Table::new(
        "Figure 7 quantiles: generated vs published",
        &["quantile", "published", "generated"],
    );
    let mut sorted = snap.counts().to_vec();
    sorted.sort_unstable();
    for &(p, expect) in &FIGURE7_QUANTILES {
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        quant.row(vec![
            format!("{:.1}%", p * 100.0),
            format!("{expect:.0}"),
            sorted[idx].to_string(),
        ]);
    }
    (hist, quant)
}

/// Entry point used by the `fig7` and `repro` binaries.
pub fn main_with(cfg: &RunConfig) {
    let (hist, quant) = tables();
    hist.print();
    quant.print();
    hist.write_csv(&cfg.csv_path("fig7_histogram.csv"))
        .expect("write fig7 csv");
    quant
        .write_csv(&cfg.csv_path("fig7_quantiles.csv"))
        .expect("write fig7 csv");
    println!("wrote {}/fig7_*.csv\n", cfg.out_dir.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_spans_the_published_range() {
        let (hist, _) = tables();
        let s = hist.render();
        // Counts span from below 2^5 to above 2^18 in the paper's figure.
        assert!(s.contains("2^4..2^5") || s.contains("2^3..2^4") || s.contains("2^5..2^6"));
        assert!(s.contains("2^18..2^19") || s.contains("2^17..2^18"));
    }
}
