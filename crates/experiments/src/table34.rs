//! Tables 3 and 4: L1, L2 (RRMSE) and 99%-quantile comparisons (×100)
//! among S-bitmap, mr-bitmap and Hyper-LogLog.
//!
//! Table 3: `N = 10^4`, `m = 2700` bits, `n ∈ {10, 100, 1000, 5000,
//! 7500, 10000}`. Table 4: `N = 10^6`, `m = 6720` bits, `n ∈ {10, 100,
//! 1000, 10^4, 10^5, 5·10^5, 750000, 10^6}`.
//!
//! The qualitative signatures to reproduce: S-bitmap's three metrics are
//! flat in `n`; mr-bitmap collapses at the boundary (`n → N`, errors of
//! order 100); Hyper-LogLog drifts upward with `n` and loses to S-bitmap
//! at large `n`.

use crate::config::RunConfig;
use crate::fmt::{f, Table};
use crate::runner::{accuracy, Algo};
use sbitmap_stats::ErrorStats;

/// The three compared algorithms, in the tables' column order.
pub const ALGOS: [Algo; 3] = [Algo::SBitmap, Algo::MrBitmap, Algo::HyperLogLog];

/// Specification of one of the two tables.
#[derive(Debug, Clone)]
pub struct Spec {
    /// Table name ("Table 3" / "Table 4").
    pub name: &'static str,
    /// Design range.
    pub n_max: u64,
    /// Memory budget (bits).
    pub m: usize,
    /// Cardinality rows.
    pub rows: Vec<u64>,
}

/// Table 3's configuration.
pub fn table3_spec() -> Spec {
    Spec {
        name: "Table 3 (N = 1e4, m = 2700)",
        n_max: 10_000,
        m: 2_700,
        rows: vec![10, 100, 1_000, 5_000, 7_500, 10_000],
    }
}

/// Table 4's configuration.
pub fn table4_spec() -> Spec {
    Spec {
        name: "Table 4 (N = 1e6, m = 6720)",
        n_max: 1_000_000,
        m: 6_720,
        rows: vec![10, 100, 1_000, 10_000, 100_000, 500_000, 750_000, 1_000_000],
    }
}

/// Run one table: per cardinality row, per algorithm, the replicated
/// error statistics.
pub fn run(cfg: &RunConfig, spec: &Spec) -> Vec<(u64, Vec<ErrorStats>)> {
    spec.rows
        .iter()
        .map(|&n| {
            let per_algo = ALGOS
                .iter()
                .enumerate()
                .map(|(ai, &algo)| {
                    let salt = 0x7ab1_e000u64 ^ (spec.n_max << 8) ^ ((ai as u64) << 4) ^ n;
                    accuracy(cfg.replicates, n, salt, |seed| {
                        algo.build(spec.m, spec.n_max, seed)
                            .expect("table config builds")
                    })
                })
                .collect();
            (n, per_algo)
        })
        .collect()
}

/// Render in the paper's layout: L1 | L2 | 99%-quantile blocks, each with
/// S / mr / H columns, all values ×100.
pub fn table(spec: &Spec, results: &[(u64, Vec<ErrorStats>)]) -> Table {
    let mut t = Table::new(
        format!(
            "{}: L1, L2, 99% quantile (x100); columns S / mr / H",
            spec.name
        ),
        &[
            "n", "L1:S", "L1:mr", "L1:H", "L2:S", "L2:mr", "L2:H", "q99:S", "q99:mr", "q99:H",
        ],
    );
    for (n, per_algo) in results {
        let mut row = vec![n.to_string()];
        for metric in 0..3 {
            for stats in per_algo {
                let v = match metric {
                    0 => stats.l1(),
                    1 => stats.rrmse(),
                    _ => stats.quantile_abs(0.99),
                };
                row.push(f(v * 100.0, 1));
            }
        }
        t.row(row);
    }
    t
}

/// Entry point for the `table3` binary.
pub fn main_table3(cfg: &RunConfig) {
    run_and_print(cfg, &table3_spec(), "table3.csv");
}

/// Entry point for the `table4` binary.
pub fn main_table4(cfg: &RunConfig) {
    run_and_print(cfg, &table4_spec(), "table4.csv");
}

fn run_and_print(cfg: &RunConfig, spec: &Spec, csv: &str) {
    let results = run(cfg, spec);
    let t = table(spec, &results);
    t.print();
    t.write_csv(&cfg.csv_path(csv)).expect("write table csv");
    println!("wrote {}/{csv}\n", cfg.out_dir.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_boundary_signatures_smoke() {
        let cfg = RunConfig {
            replicates: 50,
            out_dir: std::env::temp_dir(),
        };
        let spec = Spec {
            rows: vec![1_000, 10_000],
            ..table3_spec()
        };
        let results = run(&cfg, &spec);
        // At n = N = 1e4 the S-bitmap stays at its design error (paper:
        // L2 ≈ 2.6). Our mr-bitmap implementation is *more* robust at the
        // in-range boundary than the authors' configuration (see
        // EXPERIMENTS.md "deviations"); its collapse shows past N, which
        // `mr_bitmap::tests::saturates_beyond_design_range` covers. Here
        // we assert the in-range scale trend: mr degrades from n = 1000
        // to n = N while S-bitmap does not.
        let (_, at_boundary) = &results[1];
        let (_, mid) = &results[0];
        let s_b = at_boundary[0].rrmse();
        assert!(s_b < 0.06, "S-bitmap at boundary: {s_b}");
        let mr_mid = mid[1].rrmse();
        let mr_b = at_boundary[1].rrmse();
        assert!(
            mr_b > mr_mid,
            "mr should degrade with scale: {mr_mid} -> {mr_b}"
        );
        for (i, stats) in mid.iter().enumerate() {
            assert!(
                stats.rrmse() < 0.12,
                "algo {i} at n=1000: {}",
                stats.rrmse()
            );
        }
    }
}
