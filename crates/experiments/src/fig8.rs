//! Figure 8: error-exceedance counts across the 600 backbone links — for
//! each threshold `x`, how many links' estimates have absolute relative
//! error above `x`, per algorithm.
//!
//! Configuration (paper §7.2): `N = 1.5×10^6`, `m = 7200` bits for every
//! algorithm → S-bitmap expected standard deviation ≈ 2.4%. Links with
//! fewer than 10 flows are skipped (as in the paper). Headline claims:
//! S-bitmap and HLL stay within 8% everywhere; LogLog is off the range;
//! S-bitmap alone stays within 3σ on every link.

use crate::config::RunConfig;
use crate::fig7::SNAPSHOT_SEED;
use crate::fmt::{pct, Table};
use crate::runner::{run_trace, Algo};
use sbitmap_core::Dimensioning;
use sbitmap_stats::ErrorStats;
use sbitmap_stream::BackboneSnapshot;

/// Paper §7.2 design range.
pub const N_MAX: u64 = 1_500_000;
/// Paper §7.2 memory budget.
pub const M_BITS: usize = 7_200;

/// Exceedance thresholds of the figure's x-axis (4%..10%).
pub fn thresholds() -> Vec<f64> {
    (0..=12).map(|i| 0.04 + 0.005 * i as f64).collect()
}

/// Run all four algorithms across the snapshot's links.
pub fn run() -> Vec<(Algo, ErrorStats)> {
    let snap = BackboneSnapshot::generate(SNAPSHOT_SEED);
    Algo::ALL
        .iter()
        .map(|&algo| {
            let mut counter = algo
                .build(M_BITS, N_MAX, 0xf8_u64 ^ (algo as u64) << 8)
                .expect("fig8 configs build");
            let intervals = (0..snap.counts().len())
                .filter(|&l| snap.counts()[l] >= 10) // paper drops tiny links
                .map(|l| (snap.counts()[l], snap.link_stream(l)));
            let (stats, _) = run_trace(&mut counter, intervals);
            (algo, stats)
        })
        .collect()
}

/// Render the exceedance-count table.
pub fn table(results: &[(Algo, ErrorStats)]) -> Table {
    let dims = Dimensioning::from_memory(N_MAX, M_BITS).expect("dimensioning");
    let mut t = Table::new(
        format!(
            "Figure 8: number of links with |rel err| > x (of {} links)   [sigma = {}%]",
            results[0].1.count(),
            pct(dims.epsilon(), 1)
        ),
        &["x (%)", "S-bitmap", "mr-bitmap", "LLog", "HLLog"],
    );
    for &x in &thresholds() {
        let mut row = vec![pct(x, 1)];
        for (_, stats) in results {
            let links = (stats.exceedance(x) * stats.count() as f64).round() as usize;
            row.push(links.to_string());
        }
        t.row(row);
    }
    t
}

/// Entry point used by the `fig8` and `repro` binaries.
pub fn main_with(cfg: &RunConfig) {
    let dims = Dimensioning::from_memory(N_MAX, M_BITS).expect("dimensioning");
    println!(
        "Figure 8 config: N = 1.5e6, m = 7200 -> expected sd = {}%",
        pct(dims.epsilon(), 1)
    );
    let results = run();
    let t = table(&results);
    t.print();
    let series: Vec<crate::plot::Series> = results
        .iter()
        .map(|(algo, stats)| {
            crate::plot::Series::new(
                algo.label(),
                thresholds()
                    .iter()
                    .map(|&x| (x * 100.0, stats.exceedance(x) * stats.count() as f64))
                    .collect(),
            )
        })
        .collect();
    println!(
        "{}",
        crate::plot::render(
            "Figure 8 (ASCII): links with |rel err| > x vs x (%), y clipped at 25",
            &series,
            52,
            10,
            false,
            Some(25.0),
        )
    );
    t.write_csv(&cfg.csv_path("fig8.csv"))
        .expect("write fig8 csv");
    let three_sigma = 3.0 * dims.epsilon();
    for (algo, stats) in &results {
        let over = (stats.exceedance(three_sigma) * stats.count() as f64).round() as usize;
        println!(
            "{}: {} of {} links beyond 3 sigma; max |rel err| = {}%",
            algo.label(),
            over,
            stats.count(),
            pct(stats.max_abs(), 1)
        );
    }
    println!("wrote {}/fig8.csv\n", cfg.out_dir.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbitmap_and_hll_accurate_loglog_worst() {
        let results = run();
        let dims = Dimensioning::from_memory(N_MAX, M_BITS).unwrap();
        let s = &results[0].1;
        let ll = &results[2].1;
        let hll = &results[3].1;
        // Paper: S-bitmap and HLL give accurate estimates across all
        // links and S-bitmap is the most resistant to large errors;
        // LogLog is off the range. (The paper saw *zero* links beyond 3
        // sigma for S-bitmap; over 600 links that is partly draw luck —
        // at the smallest links a single missed sample is a ~1/n ≈ 5-10%
        // error — so we assert "at most a handful" instead; see
        // EXPERIMENTS.md.)
        assert!(
            s.rrmse() < 1.5 * dims.epsilon(),
            "S-bitmap rrmse {}",
            s.rrmse()
        );
        assert!(s.max_abs() < 0.15, "S-bitmap max {}", s.max_abs());
        assert!(hll.max_abs() < 0.15, "HLL max {}", hll.max_abs());
        assert!(s.exceedance(3.0 * dims.epsilon()) < 0.01);
        assert!(ll.rrmse() > s.rrmse(), "LogLog should be the worst family");
        assert!(ll.rrmse() > hll.rrmse());
    }
}
