//! Figure 5: per-minute flow-count time series on the two worm-outbreak
//! links with S-bitmap estimates overlaid.
//!
//! Configuration (paper §7.1): `N = 10^6`, `m = 8000` bits → C ≈ 2026.55,
//! expected RRMSE ≈ 2.2%. One fresh S-bitmap per minute interval. The
//! trace is the synthetic Slammer stand-in from `sbitmap-stream` (see
//! DESIGN.md §4).

use crate::config::RunConfig;
use crate::fmt::{pct, Table};
use crate::runner::{run_trace, Algo};
use sbitmap_core::Dimensioning;
use sbitmap_stream::{WormLink, WormTrace};

/// Paper §7.1 design range.
pub const N_MAX: u64 = 1_000_000;
/// Paper §7.1 memory budget.
pub const M_BITS: usize = 8_000;
/// Seed for the synthetic traces (fixed so EXPERIMENTS.md is stable).
pub const TRACE_SEED: u64 = 20030125; // the Slammer capture date

/// Run one link: (per-minute truth, estimate) series plus summary stats.
pub fn run_link(link: WormLink) -> (sbitmap_stats::ErrorStats, Vec<(u64, f64)>) {
    let trace = WormTrace::generate(link, TRACE_SEED);
    let mut sketch = Algo::SBitmap
        .build(M_BITS, N_MAX, TRACE_SEED ^ link.base_seed())
        .expect("paper config builds");
    let intervals =
        (0..WormTrace::MINUTES).map(|minute| (trace.counts()[minute], trace.minute_stream(minute)));
    run_trace(&mut sketch, intervals)
}

/// Helper: a per-link seed component.
trait LinkSeed {
    fn base_seed(self) -> u64;
}
impl LinkSeed for WormLink {
    fn base_seed(self) -> u64 {
        match self {
            WormLink::Link0 => 0xe0,
            WormLink::Link1 => 0xe1,
        }
    }
}

/// Entry point used by the `fig5` and `repro` binaries.
pub fn main_with(cfg: &RunConfig) {
    let dims = Dimensioning::from_memory(N_MAX, M_BITS).expect("dimensioning");
    println!(
        "Figure 5 config: N = 1e6, m = 8000 -> C = {:.2}, expected sd = {}%",
        dims.c(),
        pct(dims.epsilon(), 1)
    );
    for link in [WormLink::Link1, WormLink::Link0] {
        let (stats, series) = run_link(link);
        let mut t = Table::new(
            format!(
                "Figure 5 ({}): per-minute truth vs S-bitmap estimate (every 30th minute)",
                link.name()
            ),
            &["minute", "flows", "estimate", "rel err (%)"],
        );
        for (minute, &(truth, est)) in series.iter().enumerate() {
            if minute % 30 == 0 {
                t.row(vec![
                    minute.to_string(),
                    truth.to_string(),
                    format!("{est:.0}"),
                    pct(est / truth as f64 - 1.0, 2),
                ]);
            }
        }
        t.print();
        println!(
            "{} summary over {} minutes: RRMSE = {}%, max |rel err| = {}%  (theory {}%)\n",
            link.name(),
            series.len(),
            pct(stats.rrmse(), 2),
            pct(stats.max_abs(), 2),
            pct(dims.epsilon(), 2),
        );
        // Full-resolution series goes to CSV.
        let mut full = Table::new(
            format!("fig5 {}", link.name()),
            &["minute", "flows", "estimate"],
        );
        for (minute, &(truth, est)) in series.iter().enumerate() {
            full.row(vec![
                minute.to_string(),
                truth.to_string(),
                format!("{est:.1}"),
            ]);
        }
        full.write_csv(&cfg.csv_path(&format!("fig5_{}.csv", link.name())))
            .expect("write fig5 csv");
    }
    println!("wrote {}/fig5_link*.csv\n", cfg.out_dir.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_track_the_bursty_trace() {
        let (stats, series) = run_link(WormLink::Link1);
        assert_eq!(series.len(), WormTrace::MINUTES);
        // The paper: "estimation errors are almost invisible despite the
        // non-stationary and bursty points" — RRMSE near theory (2.2%).
        assert!(stats.rrmse() < 0.035, "rrmse {}", stats.rrmse());
        assert!(stats.max_abs() < 0.12, "max {}", stats.max_abs());
    }
}
