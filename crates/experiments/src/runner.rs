//! Shared measurement helpers: replicated accuracy runs and the
//! algorithm roster of the paper's comparisons.

use std::sync::Arc;

use sbitmap_baselines::{HyperLogLog, LogLog, MrBitmap};
use sbitmap_core::{DistinctCounter, RateSchedule, SBitmap, SBitmapError};
use sbitmap_hash::{mix64, SplitMix64Hasher};
use sbitmap_stats::{replicate, ErrorStats};
use sbitmap_stream::distinct_items;

/// Measure the error distribution of a counter at cardinality `n` over
/// `reps` independent replicates: each replicate builds a fresh counter
/// (seeded from the replicate index and `salt`), feeds it `n` distinct
/// items, and records `(n, estimate)`.
pub fn accuracy<C, F>(reps: usize, n: u64, salt: u64, make: F) -> ErrorStats
where
    C: DistinctCounter,
    F: Fn(u64) -> C + Sync,
{
    replicate(reps, |r| {
        let seed = mix64(r.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt);
        let mut counter = make(seed);
        for item in distinct_items(seed ^ 0xa5a5_5a5a_c3c3_3c3c, n) {
            counter.insert_u64(item);
        }
        (n as f64, counter.estimate())
    })
}

/// A factory for S-bitmaps sharing one precomputed [`RateSchedule`]
/// (constructing the schedule per replicate would dominate small-`n`
/// runs).
///
/// # Errors
///
/// Propagates dimensioning failures.
pub fn sbitmap_maker(
    n_max: u64,
    m_bits: usize,
) -> Result<impl Fn(u64) -> SBitmap + Sync, SBitmapError> {
    let schedule = Arc::new(RateSchedule::from_memory(n_max, m_bits)?);
    Ok(move |seed: u64| {
        SBitmap::with_shared_schedule(schedule.clone(), SplitMix64Hasher::new(seed))
    })
}

/// The four algorithms of the paper's §6.2/§7 comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// The paper's contribution.
    SBitmap,
    /// Multiresolution bitmap (Estan et al. 2006).
    MrBitmap,
    /// LogLog (Durand–Flajolet 2003).
    LogLog,
    /// HyperLogLog (Flajolet et al. 2007).
    HyperLogLog,
}

impl Algo {
    /// The roster in the paper's presentation order.
    pub const ALL: [Algo; 4] = [
        Algo::SBitmap,
        Algo::MrBitmap,
        Algo::LogLog,
        Algo::HyperLogLog,
    ];

    /// Display name matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Algo::SBitmap => "S-bitmap",
            Algo::MrBitmap => "mr-bitmap",
            Algo::LogLog => "LLog",
            Algo::HyperLogLog => "HLLog",
        }
    }

    /// Build a boxed counter with `m_bits` of memory dimensioned for
    /// cardinalities up to `n_max`.
    ///
    /// # Errors
    ///
    /// Propagates the per-algorithm dimensioning errors.
    pub fn build(
        self,
        m_bits: usize,
        n_max: u64,
        seed: u64,
    ) -> Result<Box<dyn DistinctCounter>, SBitmapError> {
        Ok(match self {
            Algo::SBitmap => Box::new(SBitmap::with_memory(n_max, m_bits, seed)?),
            Algo::MrBitmap => Box::new(MrBitmap::with_memory(m_bits, n_max, seed)?),
            Algo::LogLog => Box::new(LogLog::with_memory(m_bits, n_max, seed)?),
            Algo::HyperLogLog => Box::new(HyperLogLog::with_memory(m_bits, n_max, seed)?),
        })
    }
}

/// Run a per-interval trace experiment: for every `(truth, stream)`
/// interval, reset the counter, ingest the stream, estimate. Returns the
/// error statistics plus the raw estimate series.
pub fn run_trace<C, I, S>(counter: &mut C, intervals: I) -> (ErrorStats, Vec<(u64, f64)>)
where
    C: DistinctCounter,
    I: IntoIterator<Item = (u64, S)>,
    S: Iterator<Item = u64>,
{
    let mut stats = ErrorStats::new();
    let mut series = Vec::new();
    for (truth, stream) in intervals {
        counter.reset();
        for item in stream {
            counter.insert_u64(item);
        }
        let est = counter.estimate();
        stats.push(truth as f64, est);
        series.push((truth, est));
    }
    (stats, series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_matches_sbitmap_theory() {
        let maker = sbitmap_maker(1 << 20, 4000).unwrap();
        let stats = accuracy(300, 10_000, 1, maker);
        let eps = 0.033;
        assert!(stats.rrmse() < 2.0 * eps, "rrmse {}", stats.rrmse());
        assert!(stats.mean_bias().abs() < 3.0 * eps / (300f64).sqrt() + 0.01);
    }

    #[test]
    fn all_algos_build_and_count() {
        for algo in Algo::ALL {
            let mut c = algo.build(8_000, 1_000_000, 42).unwrap();
            for i in 0..10_000u64 {
                c.insert_u64(i);
            }
            let rel = c.estimate() / 10_000.0 - 1.0;
            assert!(rel.abs() < 0.30, "{}: rel {rel}", algo.label());
            assert!(c.memory_bits() <= 8_000, "{} over budget", algo.label());
        }
    }

    #[test]
    fn run_trace_resets_between_intervals() {
        let mut c = Algo::SBitmap.build(8_000, 1_000_000, 7).unwrap();
        let intervals = (0..5u64).map(|i| {
            let n = 1_000 * (i + 1);
            (n, distinct_items(i, n))
        });
        let (stats, series) = run_trace(&mut c, intervals);
        assert_eq!(stats.count(), 5);
        assert_eq!(series.len(), 5);
        for (truth, est) in series {
            assert!((est / truth as f64 - 1.0).abs() < 0.25, "{truth} vs {est}");
        }
    }
}
