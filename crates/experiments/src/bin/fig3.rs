//! Regenerate the paper's fig3 output. See sbitmap-experiments docs.
fn main() {
    let cfg = sbitmap_experiments::RunConfig::from_env();
    sbitmap_experiments::fig3::main_with(&cfg);
}
