//! Run every table and figure of the paper in sequence, writing CSVs to
//! `results/`. `--reps N` / `--full` control the replicate count.
fn main() {
    let cfg = sbitmap_experiments::RunConfig::from_env();
    let t0 = std::time::Instant::now();
    println!("=== S-bitmap reproduction: all tables and figures ===");
    println!(
        "replicates per cell: {} (paper: 1000; use --full)\n",
        cfg.replicates
    );
    sbitmap_experiments::fig2::main_with(&cfg);
    sbitmap_experiments::table2::main_with(&cfg);
    sbitmap_experiments::fig3::main_with(&cfg);
    sbitmap_experiments::fig4::main_with(&cfg);
    sbitmap_experiments::table34::main_table3(&cfg);
    sbitmap_experiments::table34::main_table4(&cfg);
    sbitmap_experiments::fig5::main_with(&cfg);
    sbitmap_experiments::fig6::main_with(&cfg);
    sbitmap_experiments::fig7::main_with(&cfg);
    sbitmap_experiments::fig8::main_with(&cfg);
    sbitmap_experiments::ablations::main_with(&cfg);
    println!("=== done in {:.1}s ===", t0.elapsed().as_secs_f64());
}
