//! Regenerate the paper's Figure 4 (RRMSE vs n, four algorithms).
fn main() {
    let cfg = sbitmap_experiments::RunConfig::from_env();
    sbitmap_experiments::fig4::main_with(&cfg);
}
