//! Regenerate the paper's table2 output. See sbitmap-experiments docs.
fn main() {
    let cfg = sbitmap_experiments::RunConfig::from_env();
    sbitmap_experiments::table2::main_with(&cfg);
}
