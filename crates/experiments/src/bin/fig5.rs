//! Regenerate the paper's fig5 output. See sbitmap-experiments docs.
fn main() {
    let cfg = sbitmap_experiments::RunConfig::from_env();
    sbitmap_experiments::fig5::main_with(&cfg);
}
