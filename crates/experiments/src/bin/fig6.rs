//! Regenerate the paper's fig6 output. See sbitmap-experiments docs.
fn main() {
    let cfg = sbitmap_experiments::RunConfig::from_env();
    sbitmap_experiments::fig6::main_with(&cfg);
}
