//! Regenerate the paper's ablations output. See sbitmap-experiments docs.
fn main() {
    let cfg = sbitmap_experiments::RunConfig::from_env();
    sbitmap_experiments::ablations::main_with(&cfg);
}
