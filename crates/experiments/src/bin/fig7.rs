//! Regenerate the paper's fig7 output. See sbitmap-experiments docs.
fn main() {
    let cfg = sbitmap_experiments::RunConfig::from_env();
    sbitmap_experiments::fig7::main_with(&cfg);
}
