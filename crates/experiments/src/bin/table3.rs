//! Regenerate the paper's Table 3 (N = 1e4, m = 2700).
fn main() {
    let cfg = sbitmap_experiments::RunConfig::from_env();
    sbitmap_experiments::table34::main_table3(&cfg);
}
