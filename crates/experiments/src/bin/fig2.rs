//! Regenerate the paper's fig2 output. See sbitmap-experiments docs.
fn main() {
    let cfg = sbitmap_experiments::RunConfig::from_env();
    sbitmap_experiments::fig2::main_with(&cfg);
}
