//! Regenerate the paper's Table 4 (N = 1e6, m = 6720).
fn main() {
    let cfg = sbitmap_experiments::RunConfig::from_env();
    sbitmap_experiments::table34::main_table4(&cfg);
}
