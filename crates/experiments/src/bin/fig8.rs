//! Regenerate the paper's fig8 output. See sbitmap-experiments docs.
fn main() {
    let cfg = sbitmap_experiments::RunConfig::from_env();
    sbitmap_experiments::fig8::main_with(&cfg);
}
