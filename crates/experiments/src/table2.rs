//! Table 2: memory cost (unit: 100 bits) of Hyper-LogLog vs S-bitmap for
//! target accuracies ε ∈ {1%, 3%, 9%} and ranges N ∈ {10^3 … 10^7}.
//!
//! Pure closed-form evaluation: HLL uses `1.04²ε^{−2}` registers of
//! `α(N)` bits; the S-bitmap uses equation (7) with `C = 1 + ε^{−2}`.

use crate::config::RunConfig;
use crate::fmt::{f, Table};
use sbitmap_baselines::memory_model;

/// The table's ε columns.
pub const EPSILONS: [f64; 3] = [0.01, 0.03, 0.09];
/// The table's N rows.
pub const N_VALUES: [u64; 5] = [1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Render the paper's Table 2.
pub fn table() -> Table {
    let mut t = Table::new(
        "Table 2: memory cost (unit 100 bits), Hyper-LogLog vs S-bitmap",
        &[
            "N", "HLL(1%)", "S-b(1%)", "HLL(3%)", "S-b(3%)", "HLL(9%)", "S-b(9%)",
        ],
    );
    for &n in &N_VALUES {
        let mut row = vec![format!("1e{}", (n as f64).log10().round() as u32)];
        for &eps in &EPSILONS {
            row.push(f(memory_model::hyperloglog_bits(n, eps) / 100.0, 1));
            row.push(f(memory_model::sbitmap_bits(n, eps) / 100.0, 1));
        }
        t.row(row);
    }
    t
}

/// Entry point used by the `table2` and `repro` binaries.
pub fn main_with(cfg: &RunConfig) {
    let t = table();
    t.print();
    let path = cfg.csv_path("table2.csv");
    t.write_csv(&path).expect("write table2.csv");
    println!("wrote {}\n", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_cells() {
        // Spot-check the rendered strings against the published table.
        let s = table().render();
        for expect in ["432.6", "59.1", "540.8", "315.2", "6.7", "8.1", "2.4"] {
            assert!(s.contains(expect), "missing cell {expect} in\n{s}");
        }
    }
}
