//! Figure 4: RRMSE vs cardinality for mr-bitmap, LogLog, Hyper-LogLog and
//! S-bitmap under equal memory budgets.
//!
//! Configuration (paper §6.2): `N = 2^20`, budgets `m ∈ {40000, 3200,
//! 800}` bits (the running text; the figure's middle-panel label reads
//! `m = 7200` — we run the text's 3200 and note the discrepancy in
//! EXPERIMENTS.md), cardinalities from 10 to 10^6, 1000 replicates
//! (paper) / `cfg.replicates` (here).
//!
//! The paper's qualitative claims to reproduce: the S-bitmap curve is
//! flat (scale-invariant); mr-bitmap beats the loglog family at small `n`
//! under the big budget but degrades at large `n`; Hyper-LogLog's error
//! wanders with `n`; S-bitmap wins beyond a few thousand distinct items.

use crate::config::RunConfig;
use crate::fmt::{pct, Table};
use crate::runner::{accuracy, Algo};
use sbitmap_core::Dimensioning;

/// Design range.
pub const N_MAX: u64 = 1 << 20;
/// Memory budgets from the running text of §6.2.
pub const MEMORY_CONFIGS: [usize; 3] = [40_000, 3_200, 800];

/// Cardinality grid: powers of four from 16 to 2^20, plus the endpoints
/// 10 and 10^6 the text quotes.
pub fn cardinality_grid() -> Vec<u64> {
    let mut v = vec![10];
    v.extend((2..=10).map(|k| 1u64 << (2 * k)));
    v.push(1_000_000);
    v
}

/// One measured cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Memory budget in bits.
    pub m: usize,
    /// Algorithm.
    pub algo: Algo,
    /// True cardinality.
    pub n: u64,
    /// Empirical RRMSE.
    pub rrmse: f64,
}

/// Run the full sweep.
pub fn run(cfg: &RunConfig) -> Vec<Cell> {
    let mut cells = Vec::new();
    for (mi, &m) in MEMORY_CONFIGS.iter().enumerate() {
        for (ai, &algo) in Algo::ALL.iter().enumerate() {
            for (ni, &n) in cardinality_grid().iter().enumerate() {
                let salt = 0xf164_0000u64 ^ ((mi as u64) << 24) ^ ((ai as u64) << 16) ^ ni as u64;
                let stats = accuracy(cfg.replicates, n, salt, |seed| {
                    algo.build(m, N_MAX, seed).expect("fig4 configs must build")
                });
                cells.push(Cell {
                    m,
                    algo,
                    n,
                    rrmse: stats.rrmse(),
                });
            }
        }
    }
    cells
}

/// Render one panel (one memory budget) as a table.
pub fn panel_table(cells: &[Cell], m: usize) -> Table {
    let dims = Dimensioning::from_memory(N_MAX, m).expect("config dimensioned");
    let mut t = Table::new(
        format!(
            "Figure 4 (m = {m} bits): RRMSE (%) vs n   [S-bitmap theory: {}%]",
            pct(dims.epsilon(), 2)
        ),
        &["n", "S-bitmap", "mr-bitmap", "LLog", "HLLog"],
    );
    for &n in &cardinality_grid() {
        let cell = |algo: Algo| -> String {
            cells
                .iter()
                .find(|c| c.m == m && c.algo == algo && c.n == n)
                .map_or("-".into(), |c| pct(c.rrmse, 2))
        };
        t.row(vec![
            n.to_string(),
            cell(Algo::SBitmap),
            cell(Algo::MrBitmap),
            cell(Algo::LogLog),
            cell(Algo::HyperLogLog),
        ]);
    }
    t
}

/// ASCII rendition of one panel, y clipped at 3x the S-bitmap theory so
/// LogLog's small-n explosion doesn't flatten everything else.
pub fn chart(cells: &[Cell], m: usize) -> String {
    let dims = Dimensioning::from_memory(N_MAX, m).expect("config dimensioned");
    let series: Vec<crate::plot::Series> = Algo::ALL
        .iter()
        .map(|&algo| {
            crate::plot::Series::new(
                algo.label(),
                cells
                    .iter()
                    .filter(|c| c.m == m && c.algo == algo)
                    .map(|c| (c.n as f64, c.rrmse * 100.0))
                    .collect(),
            )
        })
        .collect();
    crate::plot::render(
        &format!("Figure 4 (ASCII, m = {m}): RRMSE (%) vs n"),
        &series,
        64,
        12,
        true,
        Some(3.0 * dims.epsilon() * 100.0),
    )
}

/// Entry point used by the `fig4` and `repro` binaries.
pub fn main_with(cfg: &RunConfig) {
    let cells = run(cfg);
    for &m in &MEMORY_CONFIGS {
        let t = panel_table(&cells, m);
        t.print();
        println!("{}", chart(&cells, m));
        t.write_csv(&cfg.csv_path(&format!("fig4_m{m}.csv")))
            .expect("write fig4 csv");
    }
    println!("wrote {}/fig4_m*.csv\n", cfg.out_dir.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbitmap_flat_and_winning_at_scale_smoke() {
        // Tiny smoke version of the headline claims, m = 3200 only.
        let reps = 60;
        let m = 3_200;
        let grid = [1_024u64, 65_536, 1_000_000];
        let rrmse = |algo: Algo, n: u64| {
            accuracy(reps, n, 0x55 ^ n, |seed| {
                algo.build(m, N_MAX, seed).unwrap()
            })
            .rrmse()
        };
        let dims = Dimensioning::from_memory(N_MAX, m).unwrap();
        for &n in &grid {
            let s = rrmse(Algo::SBitmap, n);
            assert!(
                (s / dims.epsilon()) < 1.6,
                "S-bitmap not flat at n={n}: {s} vs {}",
                dims.epsilon()
            );
        }
        // At one million, S-bitmap beats both loglog variants (paper:
        // "S-bitmap performs better than all competitors for
        // cardinalities greater than 1,000" at this budget).
        let n = 1_000_000;
        let s = rrmse(Algo::SBitmap, n);
        assert!(s < rrmse(Algo::LogLog, n));
        assert!(s < rrmse(Algo::HyperLogLog, n));
    }
}
