//! Run configuration shared by all experiment binaries.

/// How many replicates to run and where to write CSVs.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Replicates per experiment cell (the paper uses 1000).
    pub replicates: usize,
    /// Output directory for CSV artifacts (`results/` by default).
    pub out_dir: std::path::PathBuf,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            replicates: 200,
            out_dir: std::path::PathBuf::from("results"),
        }
    }
}

impl RunConfig {
    /// Build from the process environment and CLI arguments:
    /// `--reps N` / `SBITMAP_REPS=N` set the replicate count;
    /// `--full` is shorthand for the paper's 1000 replicates;
    /// `--out DIR` / `SBITMAP_OUT=DIR` set the artifact directory.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("SBITMAP_REPS") {
            if let Ok(n) = v.parse() {
                cfg.replicates = n;
            }
        }
        if let Ok(v) = std::env::var("SBITMAP_OUT") {
            cfg.out_dir = v.into();
        }
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--reps" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        cfg.replicates = v;
                    }
                    i += 1;
                }
                "--full" => cfg.replicates = 1000,
                "--out" => {
                    if let Some(v) = args.get(i + 1) {
                        cfg.out_dir = v.into();
                    }
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        cfg.replicates = cfg.replicates.max(1);
        cfg
    }

    /// Ensure the output directory exists and return the path for `name`.
    pub fn csv_path(&self, name: &str) -> std::path::PathBuf {
        std::fs::create_dir_all(&self.out_dir).ok();
        self.out_dir.join(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = RunConfig::default();
        assert_eq!(c.replicates, 200);
        assert_eq!(c.out_dir, std::path::PathBuf::from("results"));
    }

    #[test]
    fn csv_path_joins() {
        let c = RunConfig {
            out_dir: std::env::temp_dir().join("sbitmap-test-results"),
            ..Default::default()
        };
        let p = c.csv_path("x.csv");
        assert!(p.ends_with("sbitmap-test-results/x.csv"));
        assert!(c.out_dir.exists());
        std::fs::remove_dir_all(&c.out_dir).ok();
    }
}
