//! Minimal ASCII line charts, so the figure binaries emit a visual
//! rendition of each paper figure alongside the numeric table.

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points, in increasing `x`.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
        }
    }
}

/// Render series into a fixed-size character grid. `log_x` plots x on a
/// log scale (the paper's figures all do); `y_cap` clips outliers (e.g.
/// LogLog's small-`n` explosions) so the interesting band stays visible.
pub fn render(
    title: &str,
    series: &[Series],
    width: usize,
    height: usize,
    log_x: bool,
    y_cap: Option<f64>,
) -> String {
    assert!(width >= 16 && height >= 4, "chart too small");
    let marks = ['S', 'm', 'L', 'H', 'x', 'o', '+', '*'];

    let xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    let ys: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(_, y)| y))
        .map(|y| y_cap.map_or(y, |c| y.min(c)))
        .collect();
    if xs.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let tx = |x: f64| {
        if log_x {
            x.max(f64::MIN_POSITIVE).ln()
        } else {
            x
        }
    };
    let (x_min, x_max) = bounds(xs.iter().map(|&x| tx(x)));
    let (y_min, y_max) = bounds(ys.iter().copied());
    let x_span = (x_max - x_min).max(f64::EPSILON);
    let y_span = (y_max - y_min).max(f64::EPSILON);

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let mark = marks[si % marks.len()];
        for &(x, y) in &s.points {
            let y = y_cap.map_or(y, |c| y.min(c));
            let col = (((tx(x) - x_min) / x_span) * (width - 1) as f64).round() as usize;
            let row = (((y - y_min) / y_span) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row;
            let cell = &mut grid[row][col.min(width - 1)];
            // Overlapping series show the later mark; exact collisions
            // are rare at these resolutions and the table has the truth.
            *cell = if *cell == ' ' || *cell == mark {
                mark
            } else {
                '#'
            };
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (i, row) in grid.iter().enumerate() {
        let y_label = if i == 0 {
            format!("{y_max:>8.2}")
        } else if i == height - 1 {
            format!("{y_min:>8.2}")
        } else {
            " ".repeat(8)
        };
        out.push_str(&y_label);
        out.push_str(" |");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(9));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    let x_lo = if log_x { x_min.exp() } else { x_min };
    let x_hi = if log_x { x_max.exp() } else { x_max };
    out.push_str(&format!(
        "{:>9}{:<w$}{}\n",
        "",
        format_x(x_lo),
        format_x(x_hi),
        w = width.saturating_sub(format_x(x_hi).len())
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, s)| format!("{} = {}", marks[i % marks.len()], s.label))
        .collect();
    out.push_str(&format!("{:>9} {}\n", "", legend.join("   ")));
    if let Some(cap) = y_cap {
        out.push_str(&format!("{:>9} (y clipped at {cap:.2})\n", ""));
    }
    out
}

fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

fn format_x(x: f64) -> String {
    if x >= 1e4 {
        format!("{:.0e}", x)
    } else if x >= 10.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_and_rising_series() {
        let flat = Series::new("flat", (0..10).map(|i| (2f64.powi(i), 3.3)).collect());
        let rising = Series::new(
            "rising",
            (0..10).map(|i| (2f64.powi(i), i as f64)).collect(),
        );
        let s = render("demo", &[flat, rising], 40, 10, true, None);
        assert!(s.contains("demo"));
        assert!(s.contains("f = flat") || s.contains("S = flat"));
        // The flat series occupies one row; find a row with many marks.
        let mark_rows = s.lines().filter(|l| l.matches('S').count() >= 5).count();
        assert!(mark_rows >= 1, "flat series not visible:\n{s}");
    }

    #[test]
    fn clipping_caps_outliers() {
        let spike = Series::new("spike", vec![(1.0, 1.0), (2.0, 1e6), (3.0, 1.0)]);
        let s = render("clip", &[spike], 20, 6, false, Some(10.0));
        assert!(s.contains("clipped at 10.00"));
        assert!(s.contains("10.00"), "cap should set the top label:\n{s}");
    }

    #[test]
    fn empty_series_is_graceful() {
        let s = render("empty", &[Series::new("none", vec![])], 20, 6, false, None);
        assert!(s.contains("no data"));
    }

    #[test]
    #[should_panic(expected = "chart too small")]
    fn tiny_grid_rejected() {
        render("x", &[], 4, 2, false, None);
    }
}
