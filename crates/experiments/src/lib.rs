//! # sbitmap-experiments — the paper's evaluation, regenerated
//!
//! One module (and one binary) per table and figure of the paper's
//! evaluation sections (§6 simulation studies, §7 experimental studies),
//! plus the ablations DESIGN.md calls out. Each binary prints the same
//! rows/series the paper reports and writes a CSV under `results/`.
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig2` | empirical vs theoretical RRMSE (scale-invariance) |
//! | `table2` | memory cost of HLL vs S-bitmap |
//! | `fig3` | memory-ratio contour + crossover line |
//! | `fig4` | RRMSE vs `n` for mr-bitmap/LogLog/HLL/S-bitmap |
//! | `table3` / `table4` | L1 / L2 / 99%-quantile comparisons |
//! | `fig5` | worm-trace time series + S-bitmap estimates |
//! | `fig6` | worm-trace error exceedance curves |
//! | `fig7` | backbone flow-count histogram |
//! | `fig8` | backbone error exceedance counts |
//! | `ablations` | `d` width, hash family, truncation, fast-sim |
//! | `repro` | everything above in sequence |
//!
//! Replicate counts default to a laptop-friendly 200 and can be raised to
//! the paper's 1000 with `SBITMAP_REPS=1000` (or `--reps 1000`); every
//! run is deterministic in the replicate index, so tables are
//! reproducible across thread counts.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablations;
pub mod config;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fmt;
pub mod plot;
pub mod runner;
pub mod table2;
pub mod table34;

pub use config::RunConfig;
