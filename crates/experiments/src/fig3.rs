//! Figure 3: contour of the memory ratio Hyper-LogLog / S-bitmap over the
//! `(ε, N)` plane, including the ratio-1 crossover line.
//!
//! The paper plots ε from 0.5% to 128% (log2-spaced) against N from 10^3
//! to 10^7; a text rendering prints the ratio grid plus, per N, the
//! crossover ε* where both methods cost the same (the circles-and-'1'
//! contour of the figure).

use crate::config::RunConfig;
use crate::fmt::{f, pct, Table};
use sbitmap_baselines::memory_model::hll_over_sbitmap;

/// The ε grid (log2-spaced from 0.5% to 128%, as on the figure's x-axis).
pub fn epsilon_grid() -> Vec<f64> {
    (0..9).map(|i| 0.005 * 2f64.powi(i)).collect()
}

/// The N grid (decades 10^3 … 10^7, as on the figure's y-axis).
pub const N_GRID: [u64; 5] = [1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// The crossover accuracy ε* at which HLL and S-bitmap cost the same
/// memory for range `N` (finer ε favours the S-bitmap). Found by
/// bisection; the ratio is monotone decreasing in ε.
pub fn crossover_epsilon(n: u64) -> f64 {
    let (mut lo, mut hi): (f64, f64) = (1e-4, 4.0);
    for _ in 0..100 {
        let mid = (lo * hi).sqrt();
        if hll_over_sbitmap(n, mid) > 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo * hi).sqrt()
}

/// Render the ratio grid.
pub fn grid_table() -> Table {
    let eps = epsilon_grid();
    let mut headers: Vec<String> = vec!["N \\ eps".to_string()];
    headers.extend(eps.iter().map(|e| format!("{}%", pct(*e, 1))));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Figure 3: memory ratio HLL / S-bitmap (values > 1: S-bitmap smaller)",
        &header_refs,
    );
    for &n in &N_GRID {
        let mut row = vec![format!("1e{}", (n as f64).log10().round() as u32)];
        for &e in &eps {
            row.push(f(hll_over_sbitmap(n, e), 2));
        }
        t.row(row);
    }
    t
}

/// Render the crossover line (the figure's '1' contour).
pub fn crossover_table() -> Table {
    let mut t = Table::new(
        "Figure 3 contour: crossover eps* where HLL and S-bitmap cost the same",
        &["N", "eps* (%)", "S-bitmap wins for eps <"],
    );
    for &n in &N_GRID {
        let e = crossover_epsilon(n);
        t.row(vec![
            format!("1e{}", (n as f64).log10().round() as u32),
            pct(e, 2),
            format!("{}%", pct(e, 2)),
        ]);
    }
    t
}

/// Entry point used by the `fig3` and `repro` binaries.
pub fn main_with(cfg: &RunConfig) {
    let g = grid_table();
    g.print();
    let c = crossover_table();
    c.print();
    g.write_csv(&cfg.csv_path("fig3_grid.csv"))
        .expect("write fig3_grid.csv");
    c.write_csv(&cfg.csv_path("fig3_crossover.csv"))
        .expect("write fig3_crossover.csv");
    println!(
        "wrote {}/fig3_grid.csv, fig3_crossover.csv\n",
        cfg.out_dir.display()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_is_monotone_down_in_n() {
        // Larger ranges shrink the S-bitmap's advantage region.
        let mut last = f64::INFINITY;
        for &n in &N_GRID {
            let e = crossover_epsilon(n);
            assert!(e < last, "crossover not decreasing at N={n}");
            last = e;
        }
    }

    #[test]
    fn crossover_brackets_ratio_one() {
        for &n in &N_GRID {
            let e = crossover_epsilon(n);
            assert!(hll_over_sbitmap(n, e * 0.9) > 1.0);
            assert!(hll_over_sbitmap(n, e * 1.1) < 1.0);
        }
    }

    #[test]
    fn grid_has_both_regions() {
        // The paper's point: the plane is split — fine eps → ratio > 1,
        // coarse eps at large N → ratio < 1.
        assert!(hll_over_sbitmap(1_000, 0.005) > 2.0);
        assert!(hll_over_sbitmap(10_000_000, 0.64) < 1.0);
    }
}
