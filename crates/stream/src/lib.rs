//! # sbitmap-stream — workloads and synthetic traces
//!
//! The experiment harness needs three kinds of input:
//!
//! * [`generators`] — item streams with controlled distinct counts and
//!   duplication patterns (sequential, shuffled, Zipf-duplicated);
//! * [`worm`] — a synthetic stand-in for the MIT LCS "Slammer" outbreak
//!   traces used in the paper's §7.1 (per-minute flow counts on two
//!   peering links, bursty and non-stationary);
//! * [`backbone`] — a synthetic stand-in for the Tier-1 provider's
//!   600-link five-minute flow-count snapshot of §7.2, regenerated from
//!   the quantiles the paper publishes under its Figure 7;
//! * [`collector`] — the §7.2 deployment itself: sharded measurement
//!   nodes shipping binary checkpoints over channels to a collector that
//!   merges mergeable sketches and aggregates per-link S-bitmap
//!   estimates — including a *windowed* mode where nodes ship one
//!   checkpoint per epoch and the collector maintains a central
//!   sliding-window ring (`sbitmap_core::WindowedFleet`);
//! * [`net`] — the transport-agnostic session protocol (framed,
//!   checksummed messages with typed error frames) the `sbitmap-daemon`
//!   crate speaks over TCP;
//! * [`fault`] — deterministic, seeded fault injection ([`FaultPlan`])
//!   at the byte-stream and frame level, powering the robustness
//!   property suites.
//!
//! Both trace generators are deterministic in their seed, and both match
//! the *published statistics* of the original data (see DESIGN.md §4 for
//! the substitution argument — notably, the paper itself simulated
//! per-link streams from observed counts in §7.2, which is exactly what
//! we do).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backbone;
pub mod collector;
pub mod fault;
pub mod generators;
pub mod net;
pub mod worm;

pub use backbone::BackboneSnapshot;
pub use collector::{
    quantile_summary, run_pipeline, run_windowed_pipeline, run_windowed_pipeline_rounds,
    run_windowed_pipeline_v3, CollectSummary, DeltaFrameSource, EpochFrames, LinkReport,
    PipelineConfig, ShardFrameSource, WindowedLinkReport, WindowedPipelineConfig, WindowedSummary,
};
pub use fault::{FaultPlan, FaultyStream};
pub use generators::{distinct_items, shuffle_stream, zipf_stream, DistinctItems};
pub use worm::{WormLink, WormTrace};
