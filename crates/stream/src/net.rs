//! The `sbitmapd` session protocol: transport-agnostic message framing.
//!
//! This module is the byte-level contract between the collector daemon
//! (`sbitmap-daemon`) and its node agents, specified in prose in
//! `docs/wire-format.md` §"Session protocol". It deliberately knows
//! nothing about sockets: the reader and writer work over any
//! [`Read`]/[`Write`], which is what lets the fault-injection harness
//! ([`crate::fault`]) wrap a real `TcpStream` and an in-memory pipe with
//! the same code.
//!
//! Design points, all load-bearing for the daemon's robustness story:
//!
//! * **Every message is one checksummed frame** — magic, type, length,
//!   payload, trailing XXH64 — so a flipped bit anywhere is detected
//!   before the payload is interpreted.
//! * **Corruption is classified, not fatal.** A frame whose declared
//!   length was read in full but whose checksum or payload fails decodes
//!   as [`ReadEvent::Corrupt`]: the stream is still frame-aligned, the
//!   peer can be answered with a typed [`Message::Error`] and the
//!   connection lives on. Only a bad magic or an absurd declared length
//!   — where the byte stream itself has desynchronized — is a fatal
//!   [`NetError::Desync`].
//! * **The reader is resumable.** [`FrameReader::read_event`] buffers
//!   partial frames across read timeouts ([`ReadEvent::TimedOut`]), so a
//!   connection handler can poll a shutdown flag on its read deadline
//!   without ever tearing a frame.
//! * **Bounded allocation.** The declared payload length is capped at
//!   [`MAX_PAYLOAD`] *before* any buffer grows, mirroring the hostile
//!   -input rules of the checkpoint codec.

use std::fmt;
use std::io::{self, Read, Write};

use sbitmap_hash::xxh64;

/// Frame magic: distinguishes session frames from raw v2 checkpoint
/// frames ("SBMP") on the wire.
pub const NET_MAGIC: [u8; 4] = *b"SBND";
/// Protocol version spoken by this build. Version 2 adds the v3
/// fleet-delta messages ([`Message::BatchDelta`] / [`Message::AckDelta`]).
/// The handshake negotiates *down*: the daemon answers a Hello with
/// `Welcome.proto = min(client, daemon)`, so a proto-1 peer keeps working
/// (its session simply carries full v2 frames only, and the delta
/// messages are a [`ErrorCode::Protocol`] error on it). Only a proto the
/// daemon cannot speak at all (0) is rejected with
/// [`ErrorCode::VersionMismatch`].
pub const PROTO_VERSION: u16 = 2;
/// Hard cap on a frame's declared payload length, enforced before any
/// allocation. Generous: the largest legitimate payload is an epoch
/// fleet checkpoint (~1 KiB per link at the paper's `m = 8000`).
pub const MAX_PAYLOAD: usize = 1 << 26;

/// Frame header: magic (4) + type (1) + payload length (4, LE).
const HEADER_LEN: usize = 9;
/// Trailing XXH64 (seed 0) over header + payload.
const CHECKSUM_LEN: usize = 8;

/// The sketch configuration echoed in both handshake directions. Ingest
/// sessions must agree on every sketch field — absorbing frames built
/// under a different schedule or seed would silently corrupt estimates,
/// so a mismatch is rejected before any batch is accepted. The `term`
/// field is *not* part of that agreement: it carries the replication
/// fencing term of whichever side wrote the echo (see
/// `docs/replication.md`), and handshake validation must use
/// [`ConfigEcho::agrees_with`], never `==`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigEcho {
    /// Design maximum cardinality `n_max`.
    pub n_max: u64,
    /// Bits per key per epoch `m`.
    pub m: u64,
    /// Sampling word width `d` (derived from the schedule, echoed so a
    /// derivation change cannot slip through unnoticed).
    pub sampling_bits: u32,
    /// Fleet seed (per-key seeds derive from it).
    pub seed: u64,
    /// Window span in epochs.
    pub window: u64,
    /// The sender's replication term: monotonic, bumped on standby
    /// promotion. A daemon advertises its current term in `Welcome`;
    /// clients echo the highest term they have seen in `Hello` (0 if
    /// they have never spoken to a collector).
    pub term: u64,
}

impl ConfigEcho {
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.n_max.to_le_bytes());
        out.extend_from_slice(&self.m.to_le_bytes());
        out.extend_from_slice(&self.sampling_bits.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.window.to_le_bytes());
        out.extend_from_slice(&self.term.to_le_bytes());
    }

    fn read(r: &mut SliceReader<'_>) -> Result<Self, String> {
        Ok(Self {
            n_max: r.u64()?,
            m: r.u64()?,
            sampling_bits: r.u32()?,
            seed: r.u64()?,
            window: r.u64()?,
            term: r.u64()?,
        })
    }

    /// Sketch-compatibility check: every field that shapes absorb
    /// semantics must match; the fencing `term` is deliberately ignored
    /// (a standby at term 2 still speaks the same sketch as a primary
    /// that welcomed agents at term 1).
    #[must_use]
    pub fn agrees_with(&self, other: &Self) -> bool {
        self.n_max == other.n_max
            && self.m == other.m
            && self.sampling_bits == other.sampling_bits
            && self.seed == other.seed
            && self.window == other.window
    }

    /// A copy of `self` with its fencing term replaced (handshakes stamp
    /// the live term into a config template this way).
    #[must_use]
    pub fn with_term(mut self, term: u64) -> Self {
        self.term = term;
        self
    }
}

/// What a connecting peer wants from the daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Ship epoch batch frames (a node agent).
    Ingest,
    /// Ask estimate/window/top-K questions (a monitoring client).
    Query,
    /// Receive the primary's journal stream (a standby collector).
    Replicate,
}

impl Role {
    fn to_wire(self) -> u8 {
        match self {
            Role::Ingest => 1,
            Role::Query => 2,
            Role::Replicate => 3,
        }
    }

    fn from_wire(b: u8) -> Result<Self, String> {
        match b {
            1 => Ok(Role::Ingest),
            2 => Ok(Role::Query),
            3 => Ok(Role::Replicate),
            other => Err(format!("unknown session role {other}")),
        }
    }
}

/// A collector's replication role, as reported by
/// [`QueryReply::Status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Accepting ingest sessions and serving standbys.
    Primary,
    /// Following a primary's journal stream; refuses ingest with
    /// [`ErrorCode::NotPrimary`] until promoted.
    Standby,
    /// Replaying the local write-ahead journal after a restart.
    Recovering,
}

impl NodeRole {
    fn to_wire(self) -> u8 {
        match self {
            NodeRole::Primary => 1,
            NodeRole::Standby => 2,
            NodeRole::Recovering => 3,
        }
    }

    fn from_wire(b: u8) -> Result<Self, String> {
        match b {
            1 => Ok(NodeRole::Primary),
            2 => Ok(NodeRole::Standby),
            3 => Ok(NodeRole::Recovering),
            other => Err(format!("unknown node role {other}")),
        }
    }
}

impl fmt::Display for NodeRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NodeRole::Primary => "primary",
            NodeRole::Standby => "standby",
            NodeRole::Recovering => "recovering",
        })
    }
}

/// The collector's verdict on one absorbed batch frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckOutcome {
    /// First delivery: folded into the ring.
    Absorbed,
    /// At-least-once replay: already absorbed from this agent, skipped.
    Duplicate,
    /// The epoch had already expired from the window; dropped.
    Expired,
}

impl AckOutcome {
    fn to_wire(self) -> u8 {
        match self {
            AckOutcome::Absorbed => 1,
            AckOutcome::Duplicate => 2,
            AckOutcome::Expired => 3,
        }
    }

    fn from_wire(b: u8) -> Result<Self, String> {
        match b {
            1 => Ok(AckOutcome::Absorbed),
            2 => Ok(AckOutcome::Duplicate),
            3 => Ok(AckOutcome::Expired),
            other => Err(format!("unknown ack outcome {other}")),
        }
    }
}

/// Typed error codes carried by [`Message::Error`] frames. Append-only
/// wire constants, like checkpoint kind tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The peer's byte stream desynchronized (bad magic / absurd
    /// length); the connection is being closed.
    Desync,
    /// Handshake protocol version mismatch.
    VersionMismatch,
    /// Handshake sketch-configuration mismatch.
    ConfigMismatch,
    /// One frame failed its checksum or payload validation; the
    /// connection survives and the frame should be retransmitted.
    BadFrame,
    /// A batch epoch the ring cannot accept (e.g. running far ahead).
    EpochOutOfRange,
    /// The daemon is draining; no further batches are accepted.
    Draining,
    /// A message type that is not valid in the current session state.
    Protocol,
    /// An internal collector failure.
    Internal,
    /// A delta frame arrived before its epoch's round-0 baseline (the
    /// chain broke — e.g. the baseline expired between retransmits). The
    /// connection survives; the agent must resend the epoch from its
    /// baseline.
    MissingBaseline,
    /// The collector's absorb queue stayed full past its shed deadline:
    /// the frame was dropped unacked and the peer should back off and
    /// retry. `context` carries a retry-after hint in milliseconds.
    Busy,
    /// The collector is replaying its write-ahead journal after a
    /// restart; no sessions are accepted until recovery completes. Peers
    /// should back off and reconnect — the existing retry path handles
    /// it.
    Recovering,
    /// This collector is a standby (or otherwise not the fleet's
    /// primary): it refuses ingest and replication sessions until
    /// promoted. `context` carries the standby's current term; agents
    /// treat the code as a cue to rotate to the next address in their
    /// failover list.
    NotPrimary,
}

impl ErrorCode {
    fn to_wire(self) -> u16 {
        match self {
            ErrorCode::Desync => 1,
            ErrorCode::VersionMismatch => 2,
            ErrorCode::ConfigMismatch => 3,
            ErrorCode::BadFrame => 4,
            ErrorCode::EpochOutOfRange => 5,
            ErrorCode::Draining => 6,
            ErrorCode::Protocol => 7,
            ErrorCode::Internal => 8,
            ErrorCode::MissingBaseline => 9,
            ErrorCode::Busy => 10,
            ErrorCode::Recovering => 11,
            ErrorCode::NotPrimary => 12,
        }
    }

    fn from_wire(v: u16) -> Result<Self, String> {
        Ok(match v {
            1 => ErrorCode::Desync,
            2 => ErrorCode::VersionMismatch,
            3 => ErrorCode::ConfigMismatch,
            4 => ErrorCode::BadFrame,
            5 => ErrorCode::EpochOutOfRange,
            6 => ErrorCode::Draining,
            7 => ErrorCode::Protocol,
            8 => ErrorCode::Internal,
            9 => ErrorCode::MissingBaseline,
            10 => ErrorCode::Busy,
            11 => ErrorCode::Recovering,
            12 => ErrorCode::NotPrimary,
            other => return Err(format!("unknown error code {other}")),
        })
    }
}

/// A question for the daemon's query listener.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryRequest {
    /// The sliding-window estimate for one key.
    Estimate(u64),
    /// The union fill (set bits over the live window) for one key.
    Fill(u64),
    /// The `k` keys with the largest windowed estimates.
    TopK(u64),
    /// Key count + the Figure 7 quantile summary of all estimates.
    Summary,
    /// Flip the daemon's drain flag (graceful shutdown).
    Drain,
    /// Replication role, fencing term and frame counters.
    Status,
    /// Promote a standby to primary (bumps the fencing term).
    Promote,
}

impl QueryRequest {
    fn kind(&self) -> u8 {
        match self {
            QueryRequest::Estimate(_) => 1,
            QueryRequest::Fill(_) => 2,
            QueryRequest::TopK(_) => 3,
            QueryRequest::Summary => 4,
            QueryRequest::Drain => 5,
            QueryRequest::Status => 6,
            QueryRequest::Promote => 7,
        }
    }

    fn arg(&self) -> u64 {
        match self {
            QueryRequest::Estimate(k) | QueryRequest::Fill(k) | QueryRequest::TopK(k) => *k,
            QueryRequest::Summary
            | QueryRequest::Drain
            | QueryRequest::Status
            | QueryRequest::Promote => 0,
        }
    }

    fn from_wire(kind: u8, arg: u64) -> Result<Self, String> {
        Ok(match kind {
            1 => QueryRequest::Estimate(arg),
            2 => QueryRequest::Fill(arg),
            3 => QueryRequest::TopK(arg),
            4 => QueryRequest::Summary,
            5 => QueryRequest::Drain,
            6 => QueryRequest::Status,
            7 => QueryRequest::Promote,
            other => return Err(format!("unknown query kind {other}")),
        })
    }
}

/// The daemon's answer to a [`QueryRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryReply {
    /// `None` when no live epoch has seen the key.
    Estimate(Option<f64>),
    /// `None` when no live epoch has seen the key.
    Fill(Option<u64>),
    /// `(key, estimate)` pairs, estimate-descending, ties key-ascending.
    TopK(Vec<(u64, f64)>),
    /// Distinct keys live in the window + the quantile summary
    /// (`(probability, estimate)` pairs).
    Summary {
        /// Distinct keys live in the window.
        keys: u64,
        /// `(probability, estimate)` quantile knots.
        quantiles: Vec<(f64, f64)>,
    },
    /// The drain flag is now set.
    Draining,
    /// Answer to [`QueryRequest::Status`]: the collector's replication
    /// state in one frame (what the failover harness and CI smoke poll).
    Status {
        /// Current replication role.
        role: NodeRole,
        /// Current fencing term.
        term: u64,
        /// Sequence number of the live journal segment (0 when the
        /// daemon runs without a data dir).
        journal_seq: u64,
        /// Frames folded into the ring since startup (replay included).
        absorbed: u64,
        /// Frames shed unacked under backpressure.
        shed: u64,
        /// Journal records shipped to (primary) or absorbed from
        /// (standby) the replication stream.
        replicated: u64,
        /// Standby sessions currently attached (primary side).
        peers: u64,
    },
    /// Answer to [`QueryRequest::Promote`]: the term now in force.
    Promoted {
        /// The (possibly just bumped) fencing term.
        term: u64,
    },
}

/// A session message. See `docs/wire-format.md` §"Session protocol" for
/// the exact payload bytes of each variant.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → daemon session opener.
    Hello {
        /// The client's [`PROTO_VERSION`].
        proto: u16,
        /// What the session is for.
        role: Role,
        /// The agent's stable identity (drives the at-least-once absorb
        /// guard); 0 for query sessions.
        agent: u64,
        /// The client's sketch configuration.
        config: ConfigEcho,
    },
    /// Daemon → client handshake acceptance.
    Welcome {
        /// The daemon's [`PROTO_VERSION`].
        proto: u16,
        /// Credit window: batch frames the agent may leave unacked.
        credits: u32,
        /// The daemon's sketch configuration.
        config: ConfigEcho,
    },
    /// One epoch's `sketch-fleet` checkpoint from a node agent.
    Batch {
        /// Absolute epoch the frame belongs to.
        epoch: u64,
        /// The shipping agent's identity.
        agent: u64,
        /// A complete v2 `sketch-fleet` checkpoint frame (tag 9).
        frame: Vec<u8>,
    },
    /// Daemon → agent batch acknowledgement.
    Ack {
        /// The acknowledged epoch.
        epoch: u64,
        /// What the collector did with the frame.
        outcome: AckOutcome,
        /// The acking collector's fencing term. Agents discard acks
        /// whose term is below the highest they have seen — a deposed
        /// primary cannot retire frames the new primary never absorbed.
        term: u64,
    },
    /// A typed error frame; whether the connection survives depends on
    /// the code (see [`ErrorCode`]).
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Code-specific context (the offending epoch, the peer's
        /// protocol version, ...).
        context: u64,
        /// Human-readable detail.
        detail: String,
    },
    /// Clean session close.
    Goodbye,
    /// Client → daemon question (query sessions only).
    Query(QueryRequest),
    /// Daemon → client answer.
    Reply(QueryReply),
    /// One round of an epoch's v3 delta chain from a node agent
    /// (proto ≥ 2 sessions only).
    BatchDelta {
        /// Absolute epoch the chain belongs to.
        epoch: u64,
        /// Round within the epoch; 0 is the baseline reset.
        round: u32,
        /// The shipping agent's identity.
        agent: u64,
        /// A complete v3 `fleet-delta` frame (tag 11).
        frame: Vec<u8>,
    },
    /// Daemon → agent delta acknowledgement (proto ≥ 2 sessions only).
    AckDelta {
        /// The acknowledged epoch.
        epoch: u64,
        /// The acknowledged round.
        round: u32,
        /// What the collector did with the frame.
        outcome: AckOutcome,
        /// The acking collector's fencing term (see [`Message::Ack`]).
        term: u64,
    },
    /// Primary → standby: one write-ahead journal record, shipped
    /// verbatim in the `SBJR` codec (replication sessions only).
    Replicate {
        /// Per-session monotonic sequence number, echoed by the ack.
        seq: u64,
        /// The primary's fencing term when the record was shipped.
        term: u64,
        /// A complete `SBJR` journal record (its own magic + checksum).
        record: Vec<u8>,
    },
    /// Standby → primary: the record with this sequence number is
    /// absorbed and journaled on the standby.
    ReplicateAck {
        /// The acknowledged sequence number.
        seq: u64,
        /// The standby's fencing term.
        term: u64,
    },
    /// Primary → standby catch-up: the primary's full ring state as a
    /// window checkpoint frame, sent once at the head of a replication
    /// session so a late-joining standby starts bit-identical.
    ReplicateSnapshot {
        /// The primary's fencing term.
        term: u64,
        /// A complete window checkpoint frame (tag 10).
        frame: Vec<u8>,
    },
}

/// Internal bounds-checked little-endian slice cursor for payload
/// decoding (the session-frame analogue of the codec's `PayloadReader`).
struct SliceReader<'a> {
    bytes: &'a [u8],
}

impl<'a> SliceReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.bytes.len() < n {
            return Err(format!(
                "payload truncated: needed {n} bytes, {} left",
                self.bytes.len()
            ));
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A count field that will drive a loop over remaining payload bytes
    /// of at least `min_item_bytes` each: bounded by what the payload
    /// can actually back, so a hostile count cannot demand a huge
    /// allocation.
    fn count(&mut self, min_item_bytes: usize) -> Result<usize, String> {
        let n = self.u64()?;
        let cap = (self.bytes.len() / min_item_bytes.max(1)) as u64;
        if n > cap {
            return Err(format!("count {n} exceeds what the payload backs ({cap})"));
        }
        Ok(n as usize)
    }

    /// Everything left in the payload (variable-length tail fields).
    fn rest(&mut self) -> &'a [u8] {
        std::mem::take(&mut self.bytes)
    }

    fn finish(self) -> Result<(), String> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(format!("{} trailing payload bytes", self.bytes.len()))
        }
    }
}

fn message_tag(msg: &Message) -> u8 {
    match msg {
        Message::Hello { .. } => 1,
        Message::Welcome { .. } => 2,
        Message::Batch { .. } => 3,
        Message::Ack { .. } => 4,
        Message::Error { .. } => 5,
        Message::Goodbye => 6,
        Message::Query(_) => 7,
        Message::Reply(_) => 8,
        Message::BatchDelta { .. } => 9,
        Message::AckDelta { .. } => 10,
        Message::Replicate { .. } => 11,
        Message::ReplicateAck { .. } => 12,
        Message::ReplicateSnapshot { .. } => 13,
    }
}

fn write_payload(msg: &Message, out: &mut Vec<u8>) {
    match msg {
        Message::Hello {
            proto,
            role,
            agent,
            config,
        } => {
            out.extend_from_slice(&proto.to_le_bytes());
            out.push(role.to_wire());
            out.extend_from_slice(&agent.to_le_bytes());
            config.write(out);
        }
        Message::Welcome {
            proto,
            credits,
            config,
        } => {
            out.extend_from_slice(&proto.to_le_bytes());
            out.extend_from_slice(&credits.to_le_bytes());
            config.write(out);
        }
        Message::Batch {
            epoch,
            agent,
            frame,
        } => {
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&agent.to_le_bytes());
            out.extend_from_slice(frame);
        }
        Message::Ack {
            epoch,
            outcome,
            term,
        } => {
            out.extend_from_slice(&epoch.to_le_bytes());
            out.push(outcome.to_wire());
            out.extend_from_slice(&term.to_le_bytes());
        }
        Message::Error {
            code,
            context,
            detail,
        } => {
            out.extend_from_slice(&code.to_wire().to_le_bytes());
            out.extend_from_slice(&context.to_le_bytes());
            out.extend_from_slice(detail.as_bytes());
        }
        Message::Goodbye => {}
        Message::Query(q) => {
            out.push(q.kind());
            out.extend_from_slice(&q.arg().to_le_bytes());
        }
        Message::Reply(reply) => match reply {
            QueryReply::Estimate(v) => {
                out.push(1);
                out.push(u8::from(v.is_some()));
                out.extend_from_slice(&v.unwrap_or(0.0).to_le_bytes());
            }
            QueryReply::Fill(v) => {
                out.push(2);
                out.push(u8::from(v.is_some()));
                out.extend_from_slice(&v.unwrap_or(0).to_le_bytes());
            }
            QueryReply::TopK(rows) => {
                out.push(3);
                out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
                for (key, est) in rows {
                    out.extend_from_slice(&key.to_le_bytes());
                    out.extend_from_slice(&est.to_le_bytes());
                }
            }
            QueryReply::Summary { keys, quantiles } => {
                out.push(4);
                out.extend_from_slice(&keys.to_le_bytes());
                out.extend_from_slice(&(quantiles.len() as u64).to_le_bytes());
                for (p, v) in quantiles {
                    out.extend_from_slice(&p.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            QueryReply::Draining => out.push(5),
            QueryReply::Status {
                role,
                term,
                journal_seq,
                absorbed,
                shed,
                replicated,
                peers,
            } => {
                out.push(6);
                out.push(role.to_wire());
                out.extend_from_slice(&term.to_le_bytes());
                out.extend_from_slice(&journal_seq.to_le_bytes());
                out.extend_from_slice(&absorbed.to_le_bytes());
                out.extend_from_slice(&shed.to_le_bytes());
                out.extend_from_slice(&replicated.to_le_bytes());
                out.extend_from_slice(&peers.to_le_bytes());
            }
            QueryReply::Promoted { term } => {
                out.push(7);
                out.extend_from_slice(&term.to_le_bytes());
            }
        },
        Message::BatchDelta {
            epoch,
            round,
            agent,
            frame,
        } => {
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&round.to_le_bytes());
            out.extend_from_slice(&agent.to_le_bytes());
            out.extend_from_slice(frame);
        }
        Message::AckDelta {
            epoch,
            round,
            outcome,
            term,
        } => {
            out.extend_from_slice(&epoch.to_le_bytes());
            out.extend_from_slice(&round.to_le_bytes());
            out.push(outcome.to_wire());
            out.extend_from_slice(&term.to_le_bytes());
        }
        Message::Replicate { seq, term, record } => {
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&term.to_le_bytes());
            out.extend_from_slice(record);
        }
        Message::ReplicateAck { seq, term } => {
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&term.to_le_bytes());
        }
        Message::ReplicateSnapshot { term, frame } => {
            out.extend_from_slice(&term.to_le_bytes());
            out.extend_from_slice(frame);
        }
    }
}

fn read_payload(tag: u8, payload: &[u8]) -> Result<Message, String> {
    let mut r = SliceReader::new(payload);
    let msg = match tag {
        1 => Message::Hello {
            proto: r.u16()?,
            role: Role::from_wire(r.u8()?)?,
            agent: r.u64()?,
            config: ConfigEcho::read(&mut r)?,
        },
        2 => Message::Welcome {
            proto: r.u16()?,
            credits: r.u32()?,
            config: ConfigEcho::read(&mut r)?,
        },
        3 => {
            let epoch = r.u64()?;
            let agent = r.u64()?;
            let frame = r.rest().to_vec();
            Message::Batch {
                epoch,
                agent,
                frame,
            }
        }
        4 => Message::Ack {
            epoch: r.u64()?,
            outcome: AckOutcome::from_wire(r.u8()?)?,
            term: r.u64()?,
        },
        5 => {
            let code = ErrorCode::from_wire(r.u16()?)?;
            let context = r.u64()?;
            let detail = String::from_utf8_lossy(r.rest()).into_owned();
            Message::Error {
                code,
                context,
                detail,
            }
        }
        6 => Message::Goodbye,
        7 => {
            let kind = r.u8()?;
            let arg = r.u64()?;
            Message::Query(QueryRequest::from_wire(kind, arg)?)
        }
        8 => {
            let kind = r.u8()?;
            let reply = match kind {
                1 => {
                    let some = r.u8()? != 0;
                    let v = r.f64()?;
                    QueryReply::Estimate(some.then_some(v))
                }
                2 => {
                    let some = r.u8()? != 0;
                    let v = r.u64()?;
                    QueryReply::Fill(some.then_some(v))
                }
                3 => {
                    let n = r.count(16)?;
                    let mut rows = Vec::with_capacity(n);
                    for _ in 0..n {
                        rows.push((r.u64()?, r.f64()?));
                    }
                    QueryReply::TopK(rows)
                }
                4 => {
                    let keys = r.u64()?;
                    let n = r.count(16)?;
                    let mut quantiles = Vec::with_capacity(n);
                    for _ in 0..n {
                        quantiles.push((r.f64()?, r.f64()?));
                    }
                    QueryReply::Summary { keys, quantiles }
                }
                5 => QueryReply::Draining,
                6 => QueryReply::Status {
                    role: NodeRole::from_wire(r.u8()?)?,
                    term: r.u64()?,
                    journal_seq: r.u64()?,
                    absorbed: r.u64()?,
                    shed: r.u64()?,
                    replicated: r.u64()?,
                    peers: r.u64()?,
                },
                7 => QueryReply::Promoted { term: r.u64()? },
                other => return Err(format!("unknown reply kind {other}")),
            };
            Message::Reply(reply)
        }
        9 => {
            let epoch = r.u64()?;
            let round = r.u32()?;
            let agent = r.u64()?;
            let frame = r.rest().to_vec();
            Message::BatchDelta {
                epoch,
                round,
                agent,
                frame,
            }
        }
        10 => Message::AckDelta {
            epoch: r.u64()?,
            round: r.u32()?,
            outcome: AckOutcome::from_wire(r.u8()?)?,
            term: r.u64()?,
        },
        11 => {
            let seq = r.u64()?;
            let term = r.u64()?;
            let record = r.rest().to_vec();
            Message::Replicate { seq, term, record }
        }
        12 => Message::ReplicateAck {
            seq: r.u64()?,
            term: r.u64()?,
        },
        13 => {
            let term = r.u64()?;
            let frame = r.rest().to_vec();
            Message::ReplicateSnapshot { term, frame }
        }
        other => return Err(format!("unknown message type {other}")),
    };
    r.finish()?;
    Ok(msg)
}

/// Encode one message as a complete session frame (header + payload +
/// checksum).
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut payload = Vec::new();
    write_payload(msg, &mut payload);
    debug_assert!(payload.len() <= MAX_PAYLOAD, "oversized session payload");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&NET_MAGIC);
    out.push(message_tag(msg));
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    let checksum = xxh64(&out, 0);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// A fatal transport failure: the connection must be closed.
#[derive(Debug)]
pub enum NetError {
    /// The underlying transport failed.
    Io(io::Error),
    /// The byte stream desynchronized (bad magic, absurd declared
    /// length, or EOF mid-frame) — frame boundaries are lost, so no
    /// error frame can safely be exchanged.
    Desync(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Desync(msg) => write!(f, "stream desynchronized: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

/// One observation from [`FrameReader::read_event`].
#[derive(Debug)]
pub enum ReadEvent {
    /// A complete, checksum-verified, decoded message.
    Message(Message),
    /// A complete frame that failed its checksum or payload decode. The
    /// stream is still frame-aligned: answer with a typed
    /// [`Message::Error`] and keep reading.
    Corrupt(String),
    /// The transport hit its read timeout mid-wait. Partial frame bytes
    /// (if any) are retained; call again to resume.
    TimedOut,
    /// Clean EOF at a frame boundary.
    Closed,
}

/// An incremental session-frame reader over any [`Read`].
///
/// Tolerates read timeouts (partial frames are buffered and resumed) so
/// connection handlers can use `set_read_timeout` as a poll interval for
/// shutdown flags without corrupting the stream position.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    /// Bytes of the in-flight frame accumulated so far.
    buf: Vec<u8>,
    /// Total bytes `buf` must reach before the next parse step: the
    /// header first, then the full frame once the length is known.
    need: usize,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a transport.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            buf: Vec::new(),
            need: HEADER_LEN,
        }
    }

    /// The wrapped transport, for interleaved writes between reads
    /// (single-threaded clients write requests and read replies on one
    /// duplex stream).
    pub fn inner_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    /// Consume the reader, returning the transport.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Current capacity of the persistent frame buffer (test hook for
    /// the no-per-frame-reallocation property).
    #[cfg(test)]
    fn buffer_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Read until one complete frame is buffered, then verify and decode
    /// it. See [`ReadEvent`] for the non-fatal outcomes and [`NetError`]
    /// for the fatal ones.
    pub fn read_event(&mut self) -> Result<ReadEvent, NetError> {
        loop {
            // Fill towards the current target, tolerating timeouts.
            while self.buf.len() < self.need {
                let mut chunk = [0u8; 4096];
                let want = (self.need - self.buf.len()).min(chunk.len());
                match self.inner.read(&mut chunk[..want]) {
                    Ok(0) => {
                        return if self.buf.is_empty() {
                            Ok(ReadEvent::Closed)
                        } else {
                            Err(NetError::Desync("connection closed mid-frame".into()))
                        };
                    }
                    Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                        ) =>
                    {
                        return Ok(ReadEvent::TimedOut);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(NetError::Io(e)),
                }
            }
            if self.need == HEADER_LEN {
                // Header complete: validate before trusting the length.
                if self.buf[..4] != NET_MAGIC {
                    return Err(NetError::Desync("bad frame magic".into()));
                }
                let len = u32::from_le_bytes(self.buf[5..9].try_into().unwrap()) as usize;
                if len > MAX_PAYLOAD {
                    return Err(NetError::Desync(format!(
                        "declared payload length {len} exceeds the cap"
                    )));
                }
                self.need = HEADER_LEN + len + CHECKSUM_LEN;
                continue; // fall through to read the remainder
            }
            // Full frame buffered: verify, decode, reset for the next.
            // The buffer is cleared in place, not replaced, so a
            // long-lived session reuses one allocation frame after frame
            // (its capacity is bounded by the MAX_PAYLOAD check above).
            self.need = HEADER_LEN;
            let (body, sum) = self.buf.split_at(self.buf.len() - CHECKSUM_LEN);
            let expect = u64::from_le_bytes(sum.try_into().unwrap());
            let event = if xxh64(body, 0) != expect {
                ReadEvent::Corrupt("frame checksum mismatch".into())
            } else {
                match read_payload(body[4], &body[HEADER_LEN..]) {
                    Ok(msg) => ReadEvent::Message(msg),
                    Err(e) => ReadEvent::Corrupt(e),
                }
            };
            self.buf.clear();
            return Ok(event);
        }
    }
}

/// A session-frame writer over any [`Write`].
#[derive(Debug)]
pub struct FrameWriter<W> {
    inner: W,
}

impl<W: Write> FrameWriter<W> {
    /// Wrap a transport.
    pub fn new(inner: W) -> Self {
        Self { inner }
    }

    /// Encode, write and flush one message.
    ///
    /// # Errors
    ///
    /// Any transport write/flush failure.
    pub fn send(&mut self, msg: &Message) -> io::Result<()> {
        self.inner.write_all(&encode(msg))?;
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        let config = ConfigEcho {
            n_max: 1_500_000,
            m: 8_000,
            sampling_bits: 32,
            seed: 0xc011,
            window: 8,
            term: 1,
        };
        vec![
            Message::Hello {
                proto: PROTO_VERSION,
                role: Role::Ingest,
                agent: 7,
                config,
            },
            Message::Welcome {
                proto: PROTO_VERSION,
                credits: 4,
                config,
            },
            Message::Batch {
                epoch: 3,
                agent: 7,
                frame: vec![0xde, 0xad, 0xbe, 0xef],
            },
            Message::Ack {
                epoch: 3,
                outcome: AckOutcome::Duplicate,
                term: 1,
            },
            Message::Error {
                code: ErrorCode::BadFrame,
                context: 3,
                detail: "checksum mismatch".into(),
            },
            Message::Error {
                code: ErrorCode::MissingBaseline,
                context: 3,
                detail: "delta round 2 before its baseline".into(),
            },
            Message::Error {
                code: ErrorCode::Busy,
                context: 40,
                detail: "absorb queue full; retry in 40 ms".into(),
            },
            Message::Error {
                code: ErrorCode::Recovering,
                context: 0,
                detail: "collector is replaying its journal".into(),
            },
            Message::Error {
                code: ErrorCode::NotPrimary,
                context: 2,
                detail: "standby at term 2; promote or route elsewhere".into(),
            },
            Message::BatchDelta {
                epoch: 3,
                round: 2,
                agent: 7,
                frame: vec![0xca, 0xfe],
            },
            Message::AckDelta {
                epoch: 3,
                round: 2,
                outcome: AckOutcome::Absorbed,
                term: 1,
            },
            Message::Replicate {
                seq: 12,
                term: 1,
                record: vec![0x53, 0x42, 0x4a, 0x52],
            },
            Message::ReplicateAck { seq: 12, term: 1 },
            Message::ReplicateSnapshot {
                term: 2,
                frame: vec![0x53, 0x42, 0x4d, 0x50],
            },
            Message::Goodbye,
            Message::Query(QueryRequest::TopK(5)),
            Message::Query(QueryRequest::Summary),
            Message::Query(QueryRequest::Status),
            Message::Query(QueryRequest::Promote),
            Message::Reply(QueryReply::Estimate(Some(1234.5))),
            Message::Reply(QueryReply::Estimate(None)),
            Message::Reply(QueryReply::Fill(Some(99))),
            Message::Reply(QueryReply::TopK(vec![(4, 100.0), (2, 50.0)])),
            Message::Reply(QueryReply::Summary {
                keys: 150,
                quantiles: vec![(0.25, 10.0), (0.99, 90.0)],
            }),
            Message::Reply(QueryReply::Draining),
            Message::Reply(QueryReply::Status {
                role: NodeRole::Standby,
                term: 2,
                journal_seq: 5,
                absorbed: 120,
                shed: 1,
                replicated: 119,
                peers: 0,
            }),
            Message::Reply(QueryReply::Promoted { term: 3 }),
        ]
    }

    #[test]
    fn config_agreement_ignores_the_fencing_term() {
        let base = ConfigEcho {
            n_max: 1000,
            m: 64,
            sampling_bits: 16,
            seed: 9,
            window: 4,
            term: 1,
        };
        assert!(base.agrees_with(&base.with_term(7)));
        assert_ne!(base, base.with_term(7), "== must still see the term");
        let mut other = base;
        other.seed = 10;
        assert!(!base.agrees_with(&other));
    }

    #[test]
    fn every_message_round_trips_through_one_stream() {
        let msgs = sample_messages();
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode(m));
        }
        let mut reader = FrameReader::new(wire.as_slice());
        for expect in &msgs {
            match reader.read_event().unwrap() {
                ReadEvent::Message(got) => assert_eq!(&got, expect),
                other => panic!("expected {expect:?}, got {other:?}"),
            }
        }
        assert!(matches!(reader.read_event().unwrap(), ReadEvent::Closed));
    }

    #[test]
    fn corrupt_payload_is_survivable_but_bad_magic_is_fatal() {
        let good = encode(&Message::Goodbye);
        // Flip a payload-region bit... Goodbye has no payload, so use an
        // Ack and corrupt its epoch byte: checksum now fails, but the
        // header (hence frame alignment) is intact.
        let mut wire = encode(&Message::Ack {
            epoch: 1,
            outcome: AckOutcome::Absorbed,
            term: 0,
        });
        wire[HEADER_LEN] ^= 0x40;
        wire.extend_from_slice(&good);
        let mut reader = FrameReader::new(wire.as_slice());
        assert!(matches!(
            reader.read_event().unwrap(),
            ReadEvent::Corrupt(_)
        ));
        assert!(matches!(
            reader.read_event().unwrap(),
            ReadEvent::Message(Message::Goodbye)
        ));
        // Bad magic: the stream position itself is untrustworthy.
        let mut wire = encode(&Message::Goodbye);
        wire[0] = b'X';
        let mut reader = FrameReader::new(wire.as_slice());
        assert!(matches!(reader.read_event(), Err(NetError::Desync(_))));
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocation() {
        let mut wire = encode(&Message::Goodbye);
        wire[5..9].copy_from_slice(&(u32::MAX).to_le_bytes());
        let mut reader = FrameReader::new(wire.as_slice());
        match reader.read_event() {
            Err(NetError::Desync(msg)) => assert!(msg.contains("cap"), "{msg}"),
            other => panic!("expected desync, got {other:?}"),
        }
    }

    #[test]
    fn eof_mid_frame_is_a_desync_not_a_hang() {
        let wire = encode(&Message::Ack {
            epoch: 9,
            outcome: AckOutcome::Expired,
            term: 0,
        });
        for cut in 1..wire.len() {
            let mut reader = FrameReader::new(&wire[..cut]);
            match reader.read_event() {
                Err(NetError::Desync(_)) => {}
                Ok(ReadEvent::Corrupt(_)) => panic!("truncation must not decode"),
                other => panic!("cut at {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn reader_resumes_across_timeouts_without_tearing_frames() {
        /// A transport that times out after every few bytes.
        struct Trickle<'a> {
            bytes: &'a [u8],
            pos: usize,
            served_since_timeout: bool,
        }
        impl Read for Trickle<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.served_since_timeout {
                    self.served_since_timeout = false;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "poll tick"));
                }
                if self.pos >= self.bytes.len() {
                    return Ok(0);
                }
                let n = buf.len().min(3).min(self.bytes.len() - self.pos);
                buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
                self.pos += n;
                self.served_since_timeout = true;
                Ok(n)
            }
        }
        let msgs = sample_messages();
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode(m));
        }
        let mut reader = FrameReader::new(Trickle {
            bytes: &wire,
            pos: 0,
            served_since_timeout: false,
        });
        let mut got = Vec::new();
        loop {
            match reader.read_event().unwrap() {
                ReadEvent::Message(m) => got.push(m),
                ReadEvent::TimedOut => {}
                ReadEvent::Closed => break,
                ReadEvent::Corrupt(e) => panic!("corrupt: {e}"),
            }
        }
        assert_eq!(got, msgs);
    }

    #[test]
    fn hostile_bit_flips_never_panic_and_are_always_detected() {
        // Any single-bit flip anywhere in a frame must surface as a
        // typed outcome (Corrupt / Desync), never a panic and never a
        // silently different message.
        let wire = encode(&Message::Batch {
            epoch: 5,
            agent: 3,
            frame: vec![1, 2, 3, 4, 5, 6, 7, 8],
        });
        for pos in 0..wire.len() {
            for bit in 0..8 {
                let mut bad = wire.clone();
                bad[pos] ^= 1 << bit;
                let mut reader = FrameReader::new(bad.as_slice());
                match reader.read_event() {
                    Ok(ReadEvent::Corrupt(_)) | Err(NetError::Desync(_)) => {}
                    Ok(ReadEvent::Message(m)) => {
                        panic!("flip at {pos}.{bit} decoded as {m:?}")
                    }
                    other => panic!("flip at {pos}.{bit}: unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn frame_buffer_is_reused_across_frames() {
        // After the first (largest) frame sizes the buffer, later frames
        // of at most that size must not grow it — one allocation serves
        // the whole session.
        let big = Message::Batch {
            epoch: 1,
            agent: 2,
            frame: vec![0xab; 4096],
        };
        let mut wire = encode(&big);
        for epoch in 0..50u64 {
            wire.extend_from_slice(&encode(&Message::Ack {
                epoch,
                outcome: AckOutcome::Absorbed,
                term: 0,
            }));
        }
        let mut reader = FrameReader::new(wire.as_slice());
        assert!(matches!(
            reader.read_event().unwrap(),
            ReadEvent::Message(Message::Batch { .. })
        ));
        let cap = reader.buffer_capacity();
        let mut acks = 0;
        while let ReadEvent::Message(_) = reader.read_event().unwrap() {
            acks += 1;
            assert_eq!(reader.buffer_capacity(), cap, "no per-frame growth");
        }
        assert_eq!(acks, 50);
    }

    #[test]
    fn reply_counts_are_bounded_by_their_payload() {
        // A TopK reply declaring 2^60 rows over a short payload must be
        // rejected without allocating.
        let mut payload = vec![3u8];
        payload.extend_from_slice(&(1u64 << 60).to_le_bytes());
        payload.extend_from_slice(&[0u8; 16]);
        let err = read_payload(8, &payload).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }
}
