//! Synthetic 600-link backbone flow-count snapshot (the paper's §7.2
//! substitute).
//!
//! The paper's Figure 7 reports the distribution of five-minute flow
//! counts across 600 Tier-1 backbone MPLS links, publishing the
//! 0.1%/25%/50%/75%/99% quantiles (18 / 196 / 2817 / 19401 / 361485) and
//! noting that ~10% of links with fewer than 10 flows were excluded.
//! Since the original traces were unavailable *to the paper's authors
//! too*, they simulated per-link streams from the observed counts — this
//! module regenerates the counts themselves by sampling from the quantile
//! function reconstructed by monotone log-linear interpolation through
//! the published points.

use crate::generators::distinct_items;
use sbitmap_hash::rng::{Rng, Xoshiro256StarStar};

/// The published quantiles of Figure 7: `(probability, flow count)`.
pub const FIGURE7_QUANTILES: [(f64, f64); 5] = [
    (0.001, 18.0),
    (0.25, 196.0),
    (0.50, 2_817.0),
    (0.75, 19_401.0),
    (0.99, 361_485.0),
];

/// Endpoints used to close the quantile function: the paper floors counts
/// at 10 and configures the estimators for `N = 1.5×10^6`.
const P0: (f64, f64) = (0.0, 10.0);
const P1: (f64, f64) = (1.0, 1_200_000.0);

/// Evaluate the reconstructed quantile function at probability `p`.
pub fn quantile(p: f64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    let mut lo = P0;
    let mut hi = P1;
    for &(q, v) in &FIGURE7_QUANTILES {
        if q <= p && q >= lo.0 {
            lo = (q, v);
        }
        if q >= p && q < hi.0 {
            hi = (q, v);
        }
    }
    if (hi.0 - lo.0).abs() < f64::EPSILON {
        return lo.1;
    }
    let t = (p - lo.0) / (hi.0 - lo.0);
    // Log-linear between knots: counts span 5 orders of magnitude.
    (lo.1.ln() + t * (hi.1.ln() - lo.1.ln())).exp()
}

/// A snapshot of per-link five-minute distinct flow counts.
#[derive(Debug, Clone)]
pub struct BackboneSnapshot {
    seed: u64,
    counts: Vec<u64>,
}

impl BackboneSnapshot {
    /// Number of links in the paper's snapshot.
    pub const LINKS: usize = 600;

    /// Generate the snapshot (600 links), deterministic in `seed`.
    pub fn generate(seed: u64) -> Self {
        Self::with_links(Self::LINKS, seed)
    }

    /// Generate a snapshot with an arbitrary link count (for tests and
    /// scaled-down runs).
    pub fn with_links(links: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256StarStar::new(seed ^ 0x0006_00d1_u64);
        // Stratified sampling: one uniform draw per equal-probability
        // stratum, shuffled. With 600 links this pins the empirical
        // quantiles to the published ones far more tightly than i.i.d.
        // draws would.
        let mut counts: Vec<u64> = (0..links)
            .map(|i| {
                let p = (i as f64 + rng.next_f64()) / links as f64;
                quantile(p).round().max(1.0) as u64
            })
            .collect();
        rng.shuffle(&mut counts);
        Self { seed, counts }
    }

    /// Per-link distinct flow counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The distinct flow-id stream for one link (ids unique within the
    /// link, as in the worm trace — see `WormTrace::minute_stream`).
    pub fn link_stream(&self, link: usize) -> crate::generators::DistinctItems {
        distinct_items(
            self.seed
                .wrapping_mul(0xd129_0d3b_32f8_57a1)
                .wrapping_add(link as u64),
            self.counts[link],
        )
    }

    /// The distinct flow-id substream of one link during one *epoch* —
    /// the sliding-window workload. Deterministic in `(snapshot seed,
    /// link, epoch)`, exactly `count` ids, and (almost surely, as 64-bit
    /// draws) disjoint from every other `(link, epoch)` substream — so
    /// windowed ground truths are sums of per-epoch counts, the same
    /// argument [`crate::collector`] already uses for the backbone
    /// union.
    pub fn link_epoch_stream(
        &self,
        link: usize,
        epoch: u64,
        count: u64,
    ) -> crate::generators::DistinctItems {
        distinct_items(
            self.seed
                .wrapping_mul(0xd129_0d3b_32f8_57a1)
                .wrapping_add(link as u64)
                ^ epoch.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            count,
        )
    }

    /// Histogram of `log2(count)` with unit-width bins — the paper's
    /// Figure 7 view. Returns `(bin_floor_log2, count)` pairs.
    pub fn log2_histogram(&self) -> Vec<(u32, usize)> {
        let mut bins = std::collections::BTreeMap::new();
        for &c in &self.counts {
            let b = (c.max(1) as f64).log2().floor() as u32;
            *bins.entry(b).or_insert(0usize) += 1;
        }
        bins.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_quantile(sorted: &[u64], p: f64) -> f64 {
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx] as f64
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            BackboneSnapshot::generate(5).counts(),
            BackboneSnapshot::generate(5).counts()
        );
        assert_ne!(
            BackboneSnapshot::generate(5).counts(),
            BackboneSnapshot::generate(6).counts()
        );
    }

    #[test]
    fn reproduces_published_quantiles() {
        let snap = BackboneSnapshot::generate(1);
        let mut sorted = snap.counts().to_vec();
        sorted.sort_unstable();
        for &(p, expect) in &FIGURE7_QUANTILES {
            let got = empirical_quantile(&sorted, p);
            let ratio = got / expect;
            assert!(
                (0.8..1.25).contains(&ratio),
                "quantile {p}: got {got}, published {expect}"
            );
        }
    }

    #[test]
    fn quantile_function_is_monotone() {
        let mut last = 0.0;
        for i in 0..=1000 {
            let q = quantile(i as f64 / 1000.0);
            assert!(q >= last, "quantile dipped at p={}", i as f64 / 1000.0);
            last = q;
        }
    }

    #[test]
    fn quantile_hits_knots() {
        for &(p, v) in &FIGURE7_QUANTILES {
            assert!((quantile(p) / v - 1.0).abs() < 1e-9, "knot {p}");
        }
    }

    #[test]
    fn counts_span_orders_of_magnitude() {
        let snap = BackboneSnapshot::generate(2);
        let min = *snap.counts().iter().min().unwrap();
        let max = *snap.counts().iter().max().unwrap();
        assert!(min < 100);
        assert!(max > 100_000);
        assert!(max < 1_500_000, "within the paper's N = 1.5e6 design");
    }

    #[test]
    fn link_streams_match_counts() {
        let snap = BackboneSnapshot::with_links(20, 3);
        for link in 0..20 {
            let items: Vec<u64> = snap.link_stream(link).collect();
            assert_eq!(items.len() as u64, snap.counts()[link]);
        }
    }

    #[test]
    fn histogram_covers_all_links() {
        let snap = BackboneSnapshot::generate(4);
        let total: usize = snap.log2_histogram().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 600);
    }
}
